"""Unit tests for relation and product schemas."""

import pytest

from repro.errors import SchemaError
from repro.relational.schema import ProductSchema, RelationSchema, require_distinct


class TestRelationSchema:
    def test_basic_construction(self):
        schema = RelationSchema("r1", ("W", "X"))
        assert schema.name == "r1"
        assert schema.attributes == ("W", "X")
        assert schema.arity == 2
        assert schema.key is None

    def test_positions(self):
        schema = RelationSchema("r", ("A", "B", "C"))
        assert schema.position("A") == 0
        assert schema.position("C") == 2

    def test_unknown_attribute_raises(self):
        schema = RelationSchema("r", ("A",))
        with pytest.raises(SchemaError):
            schema.position("B")

    def test_has_attribute(self):
        schema = RelationSchema("r", ("A", "B"))
        assert schema.has_attribute("A")
        assert not schema.has_attribute("Z")

    def test_duplicate_attributes_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("r", ("A", "A"))

    def test_empty_attributes_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("r", ())

    def test_bad_relation_name_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("not a name", ("A",))
        with pytest.raises(SchemaError):
            RelationSchema("", ("A",))

    def test_bad_attribute_name_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("r", ("a b",))

    def test_validate_row(self):
        schema = RelationSchema("r", ("A", "B"))
        assert schema.validate_row([1, 2]) == (1, 2)
        with pytest.raises(SchemaError):
            schema.validate_row((1,))
        with pytest.raises(SchemaError):
            schema.validate_row((1, 2, 3))

    def test_key_declaration(self):
        schema = RelationSchema("r", ("A", "B"), key=("B",))
        assert schema.key == ("B",)
        assert schema.key_positions() == (1,)
        assert schema.key_of((10, 20)) == (20,)

    def test_composite_key(self):
        schema = RelationSchema("r", ("A", "B", "C"), key=("C", "A"))
        assert schema.key_of((1, 2, 3)) == (3, 1)

    def test_key_must_reference_attributes(self):
        with pytest.raises(SchemaError):
            RelationSchema("r", ("A",), key=("Z",))

    def test_empty_key_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("r", ("A",), key=())

    def test_duplicate_key_attributes_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("r", ("A", "B"), key=("A", "A"))

    def test_key_positions_without_key_raises(self):
        schema = RelationSchema("r", ("A",))
        with pytest.raises(SchemaError):
            schema.key_positions()

    def test_equality_and_hash(self):
        a = RelationSchema("r", ("A", "B"), key=("A",))
        b = RelationSchema("r", ("A", "B"), key=("A",))
        c = RelationSchema("r", ("A", "B"))
        assert a == b
        assert hash(a) == hash(b)
        assert a != c

    def test_repr_mentions_name_and_key(self):
        schema = RelationSchema("r", ("A",), key=("A",))
        assert "r" in repr(schema)
        assert "key" in repr(schema)


class TestProductSchema:
    def test_width_and_qualified_resolution(self):
        product = ProductSchema(
            [RelationSchema("r1", ("W", "X")), RelationSchema("r2", ("X", "Y"))]
        )
        assert product.width == 4
        assert product.resolve("r1.W") == 0
        assert product.resolve("r1.X") == 1
        assert product.resolve("r2.X") == 2
        assert product.resolve("r2.Y") == 3

    def test_bare_resolution_when_unambiguous(self):
        product = ProductSchema(
            [RelationSchema("r1", ("W", "X")), RelationSchema("r2", ("X", "Y"))]
        )
        assert product.resolve("W") == 0
        assert product.resolve("Y") == 3

    def test_ambiguous_bare_name_raises(self):
        product = ProductSchema(
            [RelationSchema("r1", ("W", "X")), RelationSchema("r2", ("X", "Y"))]
        )
        with pytest.raises(SchemaError):
            product.resolve("X")

    def test_unknown_name_raises(self):
        product = ProductSchema([RelationSchema("r1", ("W",))])
        with pytest.raises(SchemaError):
            product.resolve("nope")

    def test_duplicate_relations_rejected(self):
        schema = RelationSchema("r1", ("W",))
        with pytest.raises(SchemaError):
            ProductSchema([schema, schema])

    def test_empty_product_rejected(self):
        with pytest.raises(SchemaError):
            ProductSchema([])

    def test_qualified_name_roundtrip(self):
        product = ProductSchema(
            [RelationSchema("r1", ("W", "X")), RelationSchema("r2", ("X", "Y"))]
        )
        for position in range(product.width):
            name = product.qualified_name(position)
            assert product.resolve(name) == position

    def test_qualified_name_out_of_range(self):
        product = ProductSchema([RelationSchema("r1", ("W",))])
        with pytest.raises(SchemaError):
            product.qualified_name(5)

    def test_output_name_prefers_bare(self):
        product = ProductSchema(
            [RelationSchema("r1", ("W", "X")), RelationSchema("r2", ("X", "Y"))]
        )
        assert product.output_name("r1.W") == "W"
        assert product.output_name("r1.X") == "r1.X"

    def test_relation_span(self):
        product = ProductSchema(
            [RelationSchema("r1", ("W", "X")), RelationSchema("r2", ("X", "Y"))]
        )
        assert product.relation_span("r1") == (0, 2)
        assert product.relation_span("r2") == (2, 4)
        with pytest.raises(SchemaError):
            product.relation_span("r9")


def test_require_distinct():
    a = RelationSchema("a", ("X",))
    b = RelationSchema("b", ("X",))
    require_distinct([a, b])
    with pytest.raises(SchemaError):
        require_distinct([a, RelationSchema("a", ("Y",))])
