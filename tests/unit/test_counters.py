"""Unit tests for the measured-cost recorder."""

import pytest

from repro.costmodel.counters import CostRecorder
from repro.costmodel.io_scenarios import Scenario2Estimator
from repro.costmodel.parameters import PaperParameters
from repro.messaging.messages import QueryAnswer, QueryRequest
from repro.relational.bag import SignedBag
from repro.source.memory import MemorySource
from repro.workloads.example6 import example6_schemas, example6_view


@pytest.fixture
def recorder():
    return CostRecorder(PaperParameters())


class TestMessageAccounting:
    def test_requests_and_answers_counted(self, recorder):
        view = example6_view()
        recorder.record_request(QueryRequest(1, view.as_query()))
        recorder.record_answer(QueryAnswer(1, SignedBag()))
        assert recorder.query_messages == 1
        assert recorder.answer_messages == 1
        assert recorder.messages == 2

    def test_bytes_are_s_per_answer_tuple(self, recorder):
        recorder.record_answer(QueryAnswer(1, SignedBag({(1, 2): 3})))
        assert recorder.answer_tuples == 3
        assert recorder.bytes == 3 * 4  # S = 4

    def test_signed_tuples_count_by_absolute_multiplicity(self, recorder):
        recorder.record_answer(QueryAnswer(1, SignedBag({(1,): -2, (2,): 1})))
        assert recorder.answer_tuples == 3


class TestIOAccounting:
    def test_no_estimator_skips_io(self, recorder):
        view = example6_view()
        source = MemorySource(example6_schemas())
        recorder.record_evaluation(view.as_query(), source)
        assert recorder.ios == 0
        assert recorder.terms_evaluated == 1

    def test_estimator_wired_through(self):
        params = PaperParameters()
        recorder = CostRecorder(params, Scenario2Estimator(params))
        source = MemorySource(example6_schemas())
        for schema in example6_schemas():
            source.load(schema.name, [(i, i) for i in range(100)])
        recorder.record_evaluation(example6_view().as_query(), source)
        assert recorder.ios == params.I**3

    def test_summary_keys(self, recorder):
        summary = recorder.summary()
        assert set(summary) == {
            "messages",
            "bytes",
            "ios",
            "answer_tuples",
            "terms_evaluated",
        }

    def test_repr(self, recorder):
        assert "M=0" in repr(recorder)


class TestEndToEndCounts:
    def test_eca_message_count_is_2k(self, view_w, two_rel_schemas):
        """Section 6.1: ECA sends exactly 2k messages for k updates."""
        from repro.core.eca import ECA
        from repro.simulation.driver import Simulation
        from repro.simulation.schedules import WorstCaseSchedule
        from repro.source.updates import insert

        source = MemorySource(two_rel_schemas)
        recorder = CostRecorder()
        k = 6
        workload = [insert("r1", (i, i)) for i in range(k)]
        Simulation(source, ECA(view_w), workload, recorder).run(WorstCaseSchedule())
        assert recorder.messages == 2 * k

    def test_rv_message_count_is_2_ceil_k_over_s(self, view_w, two_rel_schemas):
        from repro.core.recompute import RecomputeView
        from repro.simulation.driver import Simulation
        from repro.simulation.schedules import BestCaseSchedule
        from repro.source.updates import insert

        source = MemorySource(two_rel_schemas)
        recorder = CostRecorder()
        k, s = 6, 3
        workload = [insert("r1", (i, i)) for i in range(k)]
        Simulation(
            source, RecomputeView(view_w, period=s), workload, recorder
        ).run(BestCaseSchedule())
        assert recorder.messages == 2 * (k // s)
