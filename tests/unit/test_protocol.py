"""Unit tests for the WarehouseAlgorithm base protocol."""

import pytest

from repro.core.protocol import WarehouseAlgorithm
from repro.errors import ProtocolError
from repro.messaging.messages import QueryAnswer, UpdateNotification
from repro.relational.bag import SignedBag
from repro.source.updates import insert


class Probe(WarehouseAlgorithm):
    """Minimal concrete algorithm for protocol-level testing."""

    name = "probe"

    def handle_update(self, notification):
        return [self._make_request(self.view.as_query())]

    def handle_answer(self, answer):
        self._retire(answer)
        return []


class TestProtocol:
    def test_query_ids_are_sequential(self, view_w):
        probe = Probe(view_w)
        first = probe.handle_update(UpdateNotification(insert("r1", (1, 2)), 1))[0]
        second = probe.handle_update(UpdateNotification(insert("r1", (2, 2)), 2))[0]
        assert (first.query_id, second.query_id) == (1, 2)

    def test_uqs_tracks_pending(self, view_w):
        probe = Probe(view_w)
        request = probe.handle_update(UpdateNotification(insert("r1", (1, 2)), 1))[0]
        assert not probe.is_quiescent()
        assert probe.uqs_queries() == [request.query]
        probe.handle_answer(QueryAnswer(request.query_id, SignedBag()))
        assert probe.is_quiescent()

    def test_uqs_queries_in_send_order(self, view_w):
        probe = Probe(view_w)
        probe.handle_update(UpdateNotification(insert("r1", (1, 2)), 1))
        probe.handle_update(UpdateNotification(insert("r1", (2, 2)), 2))
        assert len(probe.uqs_queries()) == 2

    def test_answer_for_unknown_query_raises(self, view_w):
        probe = Probe(view_w)
        with pytest.raises(ProtocolError):
            probe.handle_answer(QueryAnswer(99, SignedBag()))

    def test_relevant_checks_view_relations(self, view_w):
        probe = Probe(view_w)
        assert probe.relevant(UpdateNotification(insert("r1", (1, 2)), 1))
        assert not probe.relevant(UpdateNotification(insert("other", (1,)), 1))

    def test_view_state_reflects_initial(self, view_w):
        probe = Probe(view_w, SignedBag.from_rows([(1,)]))
        assert probe.view_state() == SignedBag.from_rows([(1,)])

    def test_repr_names_view(self, view_w):
        assert "V" in repr(Probe(view_w))
