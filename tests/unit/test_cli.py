"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_param_arguments_flow_into_params(self):
        args = build_parser().parse_args(["tables", "-C", "50", "-J", "8"])
        assert args.cardinality == 50
        assert args.join_factor == 8

    def test_figure_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figures", "--figure", "9.9"])


class TestCommands:
    def test_tables(self, capsys):
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "M_ECA" in out

    def test_figures_single(self, capsys):
        assert main(["figures", "--figure", "6.4"]) == 0
        out = capsys.readouterr().out
        assert "figure-6.4" in out
        assert "figure-6.2" not in out

    def test_figures_all(self, capsys):
        assert main(["figures"]) == 0
        out = capsys.readouterr().out
        for name in ("figure-6.2", "figure-6.3", "figure-6.4", "figure-6.5"):
            assert name in out

    def test_figures_with_parameters(self, capsys):
        assert main(["figures", "--figure", "6.5", "-C", "40"]) == 0
        out = capsys.readouterr().out
        # I = ceil(40/20) = 2; I^3 = 8 for RVBest.
        assert " 8" in out

    def test_scenario_list(self, capsys):
        assert main(["scenario", "--list"]) == 0
        assert "example-2" in capsys.readouterr().out

    def test_scenario_bare_defaults_to_list(self, capsys):
        assert main(["scenario"]) == 0
        assert "example-1" in capsys.readouterr().out

    def test_scenario_replay(self, capsys):
        # Example 2's anomaly yields a final state matching no source
        # state at all; Example 3's is a pure convergence failure (the
        # stale view is consistent with ss_0, just never catches up).
        assert main(["scenario", "example-2"]) == 0
        out = capsys.readouterr().out
        assert "correctness:  incorrect" in out

        assert main(["scenario", "example-3"]) == 0
        out = capsys.readouterr().out
        assert "correctness:  consistent" in out
        assert "correct view: []" in out
        assert "final view:   [(1, 3)]" in out

    def test_scenario_with_algorithm_override(self, capsys):
        assert main(["scenario", "example-2", "--algorithm", "eca"]) == 0
        out = capsys.readouterr().out
        assert "strongly consistent" in out

    def test_scenario_unknown_name(self, capsys):
        assert main(["scenario", "example-99"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_crossovers(self, capsys):
        assert main(["crossovers"]) == 0
        out = capsys.readouterr().out
        assert "k = 100" in out
        assert "k = 30" in out

    def test_measure_bytes_small(self, capsys):
        assert main(["measure", "--metric", "bytes", "--k", "3", "-C", "20"]) == 0
        assert "Measured B" in capsys.readouterr().out

    def test_measure_io(self, capsys):
        assert main(["measure", "--metric", "io2", "--k", "2", "-C", "20"]) == 0
        assert "Scenario 2" in capsys.readouterr().out

    def test_report_quick_to_file(self, tmp_path, capsys):
        out_file = tmp_path / "report.txt"
        assert main(["report", "--quick", "-o", str(out_file)]) == 0
        text = out_file.read_text()
        assert "Table 1" in text
        assert "figure-6.5" in text
        assert "worked examples" in text
        assert "correctness audit" in text
        # Every worked example must match the paper in a fresh run.
        assert "False" not in text.split("worked examples")[1].split("E9")[0]

    def test_report_quick_to_stdout(self, capsys):
        assert main(["report", "--quick"]) == 0
        assert "Reproduction report" in capsys.readouterr().out

    def test_staleness(self, capsys):
        assert main(["staleness", "--updates", "6", "--periods", "1", "6",
                     "--batches", "3"]) == 0
        out = capsys.readouterr().out
        assert "ECA (immediate)" in out
        assert "RV s=6" in out
        assert "Batch b=3" in out

    def test_audit_small(self, capsys):
        assert main(["audit", "--workloads", "2", "--updates", "4"]) == 0
        out = capsys.readouterr().out
        assert "eca" in out
        assert "incorrect" not in out.split("basic")[0]  # header intact


class TestObservabilityCli:
    def test_runtime_exports_trace_and_metrics(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.jsonl"
        metrics_path = tmp_path / "metrics.json"
        prom_path = tmp_path / "metrics.prom"
        assert main([
            "runtime", "--sources", "1", "--updates", "4", "--seed", "7",
            "--trace-out", str(trace_path),
            "--metrics-out", str(metrics_path),
            "--prom-out", str(prom_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "trace:" in out
        assert "metrics:" in out
        assert trace_path.exists() and metrics_path.exists() and prom_path.exists()
        import json

        payload = json.loads(metrics_path.read_text())
        assert payload["meta"]["seed"] == 7
        assert "repro_warehouse_events_total" in payload["metrics"]
        assert "# TYPE repro_warehouse_events_total counter" in prom_path.read_text()

    def test_trace_renders_causal_timeline(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.jsonl"
        assert main([
            "runtime", "--sources", "1", "--updates", "4", "--seed", "7",
            "--trace-out", str(trace_path),
        ]) == 0
        capsys.readouterr()
        assert main(["trace", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "wh.query" in out
        assert "<- causes source.update" in out

    def test_trace_kind_filter_and_limit(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.jsonl"
        assert main([
            "runtime", "--sources", "1", "--updates", "4", "--seed", "7",
            "--trace-out", str(trace_path),
        ]) == 0
        capsys.readouterr()
        assert main(["trace", str(trace_path), "--kind", "query",
                     "--limit", "2"]) == 0
        out = capsys.readouterr().out
        assert "wh.query" in out
        assert "client.refresh" not in out

    def test_trace_missing_file_fails_cleanly(self, capsys):
        assert main(["trace", "/nonexistent/trace.jsonl"]) == 2
        assert "cannot read" in capsys.readouterr().err


class TestShardedRuntimeCli:
    def test_sharded_run_reports_placement_and_cut_verdict(self, capsys):
        assert main([
            "runtime", "--shards", "2", "--sources", "2", "--updates", "4",
            "--clients", "0", "--seed", "3", "--require-consistent",
        ]) == 0
        out = capsys.readouterr().out
        assert "sharding:           2 shard(s), hash partitioner" in out
        assert "V0->s" in out and "V1->s" in out
        assert "strongly consistent" in out
        assert "router" in out and "shard" in out

    def test_range_partitioner_and_crash_shard(self, capsys):
        assert main([
            "runtime", "--shards", "2", "--partitioner", "range",
            "--sources", "2", "--updates", "4", "--clients", "0",
            "--seed", "5", "--crash", "--crash-shard", "1",
            "--require-consistent",
        ]) == 0
        out = capsys.readouterr().out
        assert "range partitioner" in out

    def test_require_consistent_fails_non_consistent_runs(self, capsys):
        # The unsharded 2-view catalog trace is only convergent (mutual
        # consistency fails across views), so the gate must trip.
        assert main([
            "runtime", "--sources", "2", "--updates", "4", "--seed", "3",
            "--require-consistent",
        ]) == 1
        assert "--require-consistent" in capsys.readouterr().err

    def test_shards_reject_spanning_algorithms(self, capsys):
        assert main([
            "runtime", "--shards", "2", "--algorithm", "multi-stored-copies",
        ]) == 2
        assert "cannot be partitioned" in capsys.readouterr().err

    def test_sharded_prometheus_series_carry_the_shard_label(
        self, tmp_path, capsys
    ):
        prom_path = tmp_path / "metrics.prom"
        assert main([
            "runtime", "--shards", "2", "--sources", "2", "--updates", "4",
            "--clients", "0", "--seed", "3", "--prom-out", str(prom_path),
        ]) == 0
        capsys.readouterr()
        assert 'shard="0"' in prom_path.read_text()


class TestServingCli:
    def test_cache_run_prints_the_serving_report(self, capsys):
        assert main([
            "runtime", "--sources", "2", "--updates", "6", "--clients", "0",
            "--seed", "5", "--cache", "--staleness-bound", "2",
            "--read-workload", "zipf:1.2",
        ]) == 0
        out = capsys.readouterr().out
        assert "serving cache:" in out
        assert "hit rate" in out
        assert "max lag" in out
        assert "backend read(s)" in out

    def test_read_workload_without_cache_reads_direct(self, capsys):
        assert main([
            "runtime", "--sources", "1", "--updates", "4", "--clients", "0",
            "--seed", "2", "--read-workload", "zipf:0",
        ]) == 0
        out = capsys.readouterr().out
        assert "(cache off)" in out

    def test_cache_flags_flow_into_the_parser(self):
        args = build_parser().parse_args([
            "runtime", "--cache", "--staleness-bound", "3",
            "--cache-capacity", "16", "--cache-policy", "fifo",
            "--read-workload", "zipf:0.5",
        ])
        assert args.cache is True
        assert args.staleness_bound == 3
        assert args.cache_capacity == 16
        assert args.cache_policy == "fifo"
        assert args.read_workload == "zipf:0.5"

    def test_bad_read_workload_spec_is_rejected(self, capsys):
        assert main([
            "runtime", "--sources", "1", "--updates", "2", "--clients", "0",
            "--read-workload", "uniform",
        ]) == 2
        assert "zipf:THETA" in capsys.readouterr().err

    def test_negative_theta_is_rejected(self, capsys):
        assert main([
            "runtime", "--sources", "1", "--updates", "2", "--clients", "0",
            "--read-workload", "zipf:-1",
        ]) == 2
        assert "zipf:THETA" in capsys.readouterr().err

    def test_sharded_cache_run_stays_consistent(self, capsys):
        assert main([
            "runtime", "--shards", "2", "--sources", "2", "--updates", "4",
            "--clients", "0", "--seed", "3", "--cache",
            "--read-workload", "zipf:1", "--require-consistent",
        ]) == 0
        assert "serving cache:" in capsys.readouterr().out
