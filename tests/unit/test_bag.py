"""Unit tests for SignedBag — the paper's relations of signed tuples."""

import pytest

from repro.relational.bag import SignedBag
from repro.relational.tuples import MINUS, SignedTuple


class TestConstruction:
    def test_empty(self):
        bag = SignedBag()
        assert bag.is_empty()
        assert not bag
        assert len(bag) == 0

    def test_from_rows_keeps_duplicates(self):
        bag = SignedBag.from_rows([(1,), (1,), (2,)])
        assert bag.multiplicity((1,)) == 2
        assert bag.multiplicity((2,)) == 1
        assert bag.total_count() == 3

    def test_from_signed(self):
        bag = SignedBag.from_signed(
            [SignedTuple((1,)), SignedTuple((2,), MINUS), SignedTuple((1,))]
        )
        assert bag.multiplicity((1,)) == 2
        assert bag.multiplicity((2,)) == -1

    def test_singleton(self):
        assert SignedBag.singleton((1, 2)).multiplicity((1, 2)) == 1
        assert SignedBag.singleton((1, 2), MINUS).multiplicity((1, 2)) == -1

    def test_counts_constructor_cancels_zero(self):
        bag = SignedBag({(1,): 0, (2,): 3})
        assert (1,) not in bag
        assert bag.multiplicity((2,)) == 3

    def test_copy_is_independent(self):
        bag = SignedBag.from_rows([(1,)])
        clone = bag.copy()
        clone.add((1,), 5)
        assert bag.multiplicity((1,)) == 1


class TestPaperOperators:
    def test_plus_is_pointwise_addition(self):
        a = SignedBag({(1,): 2, (2,): -1})
        b = SignedBag({(1,): -1, (3,): 1})
        c = a + b
        assert c.multiplicity((1,)) == 1
        assert c.multiplicity((2,)) == -1
        assert c.multiplicity((3,)) == 1

    def test_minus_is_plus_of_negation(self):
        a = SignedBag({(1,): 2})
        b = SignedBag({(1,): 1, (2,): 1})
        assert a - b == a + (-b)
        assert (a - b).multiplicity((1,)) == 1
        assert (a - b).multiplicity((2,)) == -1

    def test_negation(self):
        a = SignedBag({(1,): 2, (2,): -3})
        assert (-a).multiplicity((1,)) == -2
        assert (-a).multiplicity((2,)) == 3
        assert -(-a) == a

    def test_pos_neg_decomposition(self):
        a = SignedBag({(1,): 2, (2,): -3})
        assert a.pos() == SignedBag({(1,): 2})
        assert a.neg() == SignedBag({(2,): 3})
        # r = pos(r) - neg(r), the paper's decomposition.
        assert a == a.pos() - a.neg()

    def test_example3_deletion_application(self):
        # MV = ([1,3]); answer A = (-[1,3]) should empty the view.
        mv = SignedBag.from_rows([(1, 3)])
        answer = SignedBag.singleton((1, 3), MINUS)
        assert (mv + answer).is_empty()

    def test_cancellation_removes_entries(self):
        a = SignedBag({(1,): 1})
        b = SignedBag({(1,): -1})
        result = a + b
        assert result.is_empty()
        assert result.distinct_count() == 0


class TestInspection:
    def test_counts(self):
        bag = SignedBag({(1,): 2, (2,): -1})
        assert bag.total_count() == 3
        assert bag.net_count() == 1
        assert bag.distinct_count() == 2

    def test_is_nonnegative(self):
        assert SignedBag({(1,): 2}).is_nonnegative()
        assert not SignedBag({(1,): -1}).is_nonnegative()
        assert SignedBag().is_nonnegative()

    def test_contains(self):
        bag = SignedBag({(1, 2): 1})
        assert (1, 2) in bag
        assert (9, 9) not in bag

    def test_expand_rows_orders_and_repeats(self):
        bag = SignedBag({(2,): 1, (1,): 2})
        assert bag.expand_rows() == [(1,), (1,), (2,)]

    def test_expand_rows_rejects_negative(self):
        with pytest.raises(ValueError):
            SignedBag({(1,): -1}).expand_rows()

    def test_signed_tuples_expansion(self):
        bag = SignedBag({(1,): 2, (2,): -1})
        tuples = sorted(repr(t) for t in bag.signed_tuples())
        assert tuples == ["+[1]", "+[1]", "-[2]"]

    def test_rows_iterates_distinct(self):
        bag = SignedBag({(1,): 5})
        assert list(bag.rows()) == [(1,)]

    def test_equality_and_hash(self):
        a = SignedBag({(1,): 1, (2,): 2})
        b = SignedBag({(2,): 2, (1,): 1})
        assert a == b
        assert hash(a) == hash(b)
        assert a != SignedBag({(1,): 1})


class TestMutation:
    def test_add_accumulates(self):
        bag = SignedBag()
        bag.add((1,), 2)
        bag.add((1,), -1)
        assert bag.multiplicity((1,)) == 1

    def test_add_zero_is_noop(self):
        bag = SignedBag()
        bag.add((1,), 0)
        assert bag.is_empty()

    def test_add_bag(self):
        bag = SignedBag({(1,): 1})
        bag.add_bag(SignedBag({(1,): 1, (2,): -1}))
        assert bag.multiplicity((1,)) == 2
        assert bag.multiplicity((2,)) == -1

    def test_discard_row_removes_all_occurrences(self):
        bag = SignedBag({(1,): 5})
        bag.discard_row((1,))
        assert bag.is_empty()

    def test_clear(self):
        bag = SignedBag({(1,): 5})
        bag.clear()
        assert bag.is_empty()


class TestRepr:
    def test_empty_repr(self):
        assert "empty" in repr(SignedBag())

    def test_repr_shows_signs_and_multiplicity(self):
        text = repr(SignedBag({(1,): 2, (2,): -1}))
        assert "+[1]x2" in text
        assert "-[2]" in text
