"""Unit tests for the staleness (freshness-lag) profile."""

import pytest

from repro.consistency import staleness_profile
from repro.core.batch import DeferredECA
from repro.core.eca import ECA
from repro.core.recompute import RecomputeView
from repro.core.stored_copies import StoredCopies
from repro.relational.engine import evaluate_view
from repro.simulation.driver import REFRESH, Simulation
from repro.simulation.schedules import BestCaseSchedule
from repro.source.memory import MemorySource
from repro.source.updates import insert


@pytest.fixture
def setup(two_rel_schemas, view_w):
    def build(factory, workload):
        source = MemorySource(two_rel_schemas, {"r1": [(1, 2)]})
        warehouse = factory(view_w, evaluate_view(view_w, source.snapshot()))
        if isinstance(warehouse, StoredCopies):
            warehouse.copies = {
                name: bag for name, bag in source.snapshot().items()
            }
        trace = Simulation(source, warehouse, workload).run(BestCaseSchedule())
        return staleness_profile(view_w, trace)

    return build


WORKLOAD = [insert("r2", (2, i)) for i in range(6)]


class TestProfiles:
    def test_stored_copies_is_nearly_always_fresh(self, setup):
        profile = setup(lambda v, iv: StoredCopies(v, iv), list(WORKLOAD))
        # Lag exists only between S_up and the W_up that applies it.
        assert profile.max_lag <= 1
        assert profile.unmatched == 0

    def test_eca_under_quiet_schedule_is_fresh(self, setup):
        profile = setup(lambda v, iv: ECA(v, iv), list(WORKLOAD))
        assert profile.max_lag <= 1
        assert profile.mean_lag < 1.0

    def test_infrequent_recompute_is_stale(self, setup):
        fresh = setup(
            lambda v, iv: RecomputeView(v, iv, period=1), list(WORKLOAD)
        )
        stale = setup(
            lambda v, iv: RecomputeView(v, iv, period=6), list(WORKLOAD)
        )
        assert stale.mean_lag > fresh.mean_lag
        assert stale.max_lag >= 5  # the whole batch of updates behind

    def test_deferred_staleness_tracks_refresh_period(self, setup):
        rare = setup(
            lambda v, iv: DeferredECA(v, iv), list(WORKLOAD) + [REFRESH]
        )
        frequent_workload = []
        for index, update in enumerate(WORKLOAD):
            frequent_workload.append(update)
            if (index + 1) % 2 == 0:
                frequent_workload.append(REFRESH)
        frequent = setup(lambda v, iv: DeferredECA(v, iv), frequent_workload)
        assert frequent.mean_lag < rare.mean_lag

    def test_in_sync_fraction_bounds(self, setup):
        profile = setup(lambda v, iv: ECA(v, iv), list(WORKLOAD))
        assert 0.0 <= profile.in_sync_fraction <= 1.0

    def test_empty_run(self, setup):
        profile = setup(lambda v, iv: ECA(v, iv), [])
        assert profile.in_sync_fraction == 1.0
        assert profile.mean_lag == 0.0
        assert profile.max_lag == 0

    def test_repr(self, setup):
        profile = setup(lambda v, iv: ECA(v, iv), list(WORKLOAD))
        assert "in_sync" in repr(profile)

    def test_anomalous_run_reports_unmatched(self, view_w, two_rel_schemas):
        from repro.core.basic import BasicAlgorithm
        from repro.simulation.schedules import WorstCaseSchedule

        source = MemorySource(two_rel_schemas, {"r1": [(1, 2)]})
        warehouse = BasicAlgorithm(view_w)
        workload = [insert("r2", (2, 3)), insert("r1", (4, 2))]
        trace = Simulation(source, warehouse, workload).run(WorstCaseSchedule())
        profile = staleness_profile(view_w, trace)
        assert profile.unmatched > 0  # the ([1],[4],[4]) state matches nothing
