"""Unit tests for workload generators and the canned paper scenarios."""

import pytest

from repro.costmodel.parameters import PaperParameters
from repro.relational.schema import RelationSchema
from repro.source.memory import MemorySource
from repro.workloads.example6 import (
    VALUE_DOMAIN,
    build_example6,
    example6_schemas,
    example6_view,
    selectivity_shift,
)
from repro.workloads.paper_examples import PAPER_EXAMPLES
from repro.workloads.random_gen import (
    ZipfSampler,
    random_rows,
    random_workload,
    zipf_read_workload,
)


class TestExample6Schemas:
    def test_chain_schema(self):
        schemas = example6_schemas()
        assert [s.name for s in schemas] == ["r1", "r2", "r3"]
        assert schemas[0].attributes == ("W", "X")
        assert schemas[2].attributes == ("Y", "Z")

    def test_view_projects_w_z(self):
        view = example6_view()
        assert view.output_columns() == ("W", "Z")


class TestSelectivityShift:
    def test_half_is_zero_shift(self):
        assert selectivity_shift(0.5) == 0

    def test_extremes(self):
        assert selectivity_shift(0.0) == -VALUE_DOMAIN
        assert selectivity_shift(1.0) == VALUE_DOMAIN

    def test_monotone(self):
        shifts = [selectivity_shift(s / 10) for s in range(11)]
        assert shifts == sorted(shifts)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            selectivity_shift(1.5)

    @pytest.mark.parametrize("sigma", [0.2, 0.5, 0.8])
    def test_empirical_selectivity(self, sigma):
        import random

        rng = random.Random(42)
        shift = selectivity_shift(sigma)
        n, hits = 20000, 0
        for _ in range(n):
            w = rng.randrange(VALUE_DOMAIN) + shift
            z = rng.randrange(VALUE_DOMAIN)
            if w > z:
                hits += 1
        assert abs(hits / n - sigma) < 0.03


class TestBuildExample6:
    def test_cardinalities_match_c(self):
        params = PaperParameters(cardinality=60)
        setup = build_example6(params, k=0)
        for name in ("r1", "r2", "r3"):
            assert len(setup.initial[name]) == 60

    def test_join_factor_honored(self):
        params = PaperParameters(cardinality=100, join_factor=4)
        setup = build_example6(params, k=0)
        from collections import Counter

        x_counts = Counter(row[0] for row in setup.initial["r2"])
        assert set(x_counts.values()) == {4}
        assert len(x_counts) == 25

    def test_workload_cycles_relations(self):
        setup = build_example6(PaperParameters(), k=6)
        relations = [u.relation for u in setup.workload]
        assert relations == ["r1", "r2", "r3", "r1", "r2", "r3"]
        assert all(u.is_insert for u in setup.workload)

    def test_workload_loads_into_source(self):
        setup = build_example6(PaperParameters(cardinality=20), k=3, seed=5)
        source = MemorySource(setup.schemas, setup.initial)
        for update in setup.workload:
            source.apply_update(update)
        assert source.cardinality("r1") == 21

    def test_reproducible_by_seed(self):
        a = build_example6(PaperParameters(), k=5, seed=9)
        b = build_example6(PaperParameters(), k=5, seed=9)
        assert a.initial == b.initial
        assert a.workload == b.workload

    def test_negative_k_rejected(self):
        with pytest.raises(ValueError):
            build_example6(PaperParameters(), k=-1)

    def test_empirical_selectivity_of_view(self):
        # sigma = 0.5 should yield roughly half of the joined tuples.
        from repro.relational.engine import evaluate_view

        params = PaperParameters(cardinality=100, selectivity=0.5)
        setup = build_example6(params, k=0, seed=3)
        source = MemorySource(setup.schemas, setup.initial)
        joined_all = evaluate_view(
            example6_view().__class__.natural_join(
                "Vall", example6_schemas(), ["W", "Z"]
            ),
            source.snapshot(),
        ).total_count()
        selected = evaluate_view(setup.view, source.snapshot()).total_count()
        assert joined_all > 0
        assert 0.3 < selected / joined_all < 0.7


class TestRandomWorkload:
    @pytest.fixture
    def schemas(self):
        return [
            RelationSchema("a", ("P", "Q"), key=("P",)),
            RelationSchema("b", ("Q", "R")),
        ]

    def test_length_and_validity(self, schemas):
        initial = {"a": [(0, 0)], "b": [(1, 1)]}
        workload = random_workload(schemas, 25, seed=3, initial=initial)
        source = MemorySource(schemas, initial)
        for update in workload:
            source.apply_update(update)  # must never raise
        assert len(workload) == 25

    def test_respect_keys_generates_unique_keys(self, schemas):
        workload = random_workload(
            schemas, 30, seed=1, delete_ratio=0.0, respect_keys=True, domain=40
        )
        keys = [u.values[0] for u in workload if u.relation == "a"]
        assert len(keys) == len(set(keys))

    def test_respect_keys_with_deletes_allows_reuse(self, schemas):
        initial = {"a": [(0, 0)], "b": []}
        workload = random_workload(
            schemas, 40, seed=2, initial=initial, respect_keys=True, domain=4
        )
        source = MemorySource(schemas, initial)
        live_keys = {(0,)}
        for update in workload:
            source.apply_update(update)
            if update.relation != "a":
                continue
            key = (update.values[0],)
            if update.is_insert:
                assert key not in live_keys
                live_keys.add(key)
            else:
                live_keys.discard(key)

    def test_delete_ratio_zero_means_inserts_only(self, schemas):
        workload = random_workload(schemas, 20, seed=4, delete_ratio=0.0)
        assert all(u.is_insert for u in workload)

    def test_invalid_delete_ratio(self, schemas):
        with pytest.raises(ValueError):
            random_workload(schemas, 5, delete_ratio=1.5)

    def test_reproducible(self, schemas):
        assert random_workload(schemas, 10, seed=6) == random_workload(
            schemas, 10, seed=6
        )

    def test_random_rows(self):
        schema = RelationSchema("a", ("P", "Q"), key=("P",))
        rows = random_rows(schema, 10, seed=0, domain=50, respect_keys=True)
        assert len(rows) == 10
        assert len({r[0] for r in rows}) == 10


class TestZipfSampler:
    def test_reproducible_by_seed(self):
        a = ZipfSampler(10, 1.0, seed=7)
        b = ZipfSampler(10, 1.0, seed=7)
        assert [a.sample() for _ in range(50)] == [b.sample() for _ in range(50)]

    def test_ranks_stay_in_range(self):
        sampler = ZipfSampler(5, 2.0, seed=1)
        ranks = [sampler.sample() for _ in range(200)]
        assert all(0 <= r < 5 for r in ranks)

    def test_theta_zero_matches_randrange_stream(self):
        # The uniform special case must consume the RNG exactly like the
        # legacy randrange-based code paths it replaces (RPR002 replays).
        import random

        sampler = ZipfSampler(8, 0.0, seed=3)
        rng = random.Random(3)
        assert [sampler.sample() for _ in range(40)] == [
            rng.randrange(8) for _ in range(40)
        ]

    def test_skew_concentrates_on_rank_zero(self):
        from collections import Counter

        sampler = ZipfSampler(6, 3.0, seed=0)
        counts = Counter(sampler.sample() for _ in range(2000))
        assert counts[0] > counts[1] > counts[5]
        assert counts[0] / 2000 > 0.5

    def test_large_theta_is_the_hot_key_regime(self):
        sampler = ZipfSampler(4, 50.0, seed=2)
        assert {sampler.sample() for _ in range(300)} == {0}

    def test_shared_rng_is_used(self):
        import random

        rng = random.Random(11)
        sampler = ZipfSampler(5, 1.0, rng=rng)
        before = rng.getstate()
        sampler.sample()
        assert rng.getstate() != before

    def test_choose_maps_rank_zero_to_first_item(self):
        sampler = ZipfSampler(3, 50.0, seed=0)
        assert sampler.choose(["hot", "warm", "cold"]) == "hot"

    def test_choose_rejects_wrong_length(self):
        with pytest.raises(ValueError):
            ZipfSampler(3, 1.0).choose(["a", "b"])

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            ZipfSampler(0, 1.0)
        with pytest.raises(ValueError):
            ZipfSampler(4, -0.5)


class TestZipfReadWorkload:
    KEYS = [("V0", (w,)) for w in range(6)]

    def test_deterministic(self):
        a = zipf_read_workload(self.KEYS, 30, theta=1.2, seed=4)
        b = zipf_read_workload(self.KEYS, 30, theta=1.2, seed=4)
        assert a == b

    def test_draws_only_given_keys(self):
        reads = zipf_read_workload(self.KEYS, 50, theta=0.8, seed=1)
        assert len(reads) == 50
        assert set(reads) <= set(self.KEYS)

    def test_hot_key_varies_with_seed(self):
        # Rank order is shuffled per seed, so the hottest key is not
        # pinned to the lexicographically-first one.
        hot = {
            max(set(r), key=r.count)
            for r in (
                zipf_read_workload(self.KEYS, 80, theta=5.0, seed=s)
                for s in range(6)
            )
        }
        assert len(hot) > 1

    def test_empty_universe_rejected(self):
        with pytest.raises(ValueError):
            zipf_read_workload([], 5)


class TestPaperScenarios:
    def test_all_eight_present(self):
        assert sorted(PAPER_EXAMPLES) == [
            "example-1",
            "example-2",
            "example-3",
            "example-4",
            "example-5",
            "example-7",
            "example-8",
            "example-9",
        ]

    def test_scenarios_are_well_formed(self):
        for scenario in PAPER_EXAMPLES.values():
            assert scenario.actions
            assert scenario.updates
            assert scenario.view.involves(scenario.updates[0].relation)
            assert scenario.paper_ref
            assert scenario.description

    def test_anomaly_examples_use_basic_algorithm(self):
        assert PAPER_EXAMPLES["example-2"].algorithm == "basic"
        assert PAPER_EXAMPLES["example-3"].algorithm == "basic"
        assert PAPER_EXAMPLES["example-5"].algorithm == "eca-key"
