"""Unit tests for ECA-Local and the Lazy Compensating Algorithm."""

import pytest

from repro.core.eca_local import ECALocal
from repro.core.lazy import LCA
from repro.messaging.messages import QueryAnswer, UpdateNotification
from repro.relational.bag import SignedBag
from repro.relational.schema import RelationSchema
from repro.relational.views import View
from repro.source.updates import delete, insert


def notify(update, serial=1):
    return UpdateNotification(update, serial)


@pytest.fixture
def half_keyed_view():
    """Only r1 declares a key — ECA-Key is inapplicable, ECA-Local isn't."""
    schemas = [
        RelationSchema("r1", ("W", "X"), key=("W",)),
        RelationSchema("r2", ("X", "Y")),
    ]
    return View.natural_join("V", schemas, ["W", "Y"])


class TestECALocal:
    def test_keyed_delete_with_empty_uqs_is_local(self, half_keyed_view):
        algo = ECALocal(half_keyed_view, SignedBag.from_rows([(1, 3)]))
        requests = algo.handle_update(notify(delete("r1", (1, 2))))
        assert requests == []
        assert algo.view_state().is_empty()
        assert algo.local_updates_handled == 1

    def test_unkeyed_delete_goes_to_source(self, half_keyed_view):
        algo = ECALocal(half_keyed_view, SignedBag.from_rows([(1, 3)]))
        requests = algo.handle_update(notify(delete("r2", (2, 3))))
        assert len(requests) == 1
        assert algo.local_updates_handled == 0

    def test_insert_is_never_local(self, half_keyed_view):
        algo = ECALocal(half_keyed_view)
        requests = algo.handle_update(notify(insert("r1", (1, 2))))
        assert len(requests) == 1

    def test_keyed_delete_with_pending_query_uses_compensation(
        self, half_keyed_view
    ):
        algo = ECALocal(half_keyed_view, SignedBag.from_rows([(1, 3)]))
        algo.handle_update(notify(insert("r2", (2, 5)), 1))
        requests = algo.handle_update(notify(delete("r1", (1, 2)), 2))
        assert len(requests) == 1
        # Compensated like plain ECA: V<U2> - Q1<U2>.  The compensation
        # term -pi(-[1,2] |x| [2,5]) is fully bound and evaluated locally
        # (contributing +[1,5] to COLLECT); only V<U2> goes to the source.
        assert requests[0].query.term_count() == 1
        assert algo.collect == SignedBag.from_rows([(1, 5)])
        assert algo.local_updates_handled == 0

    def test_is_local_candidate(self, half_keyed_view):
        algo = ECALocal(half_keyed_view)
        assert algo.is_local_candidate(delete("r1", (1, 2)))
        assert not algo.is_local_candidate(delete("r2", (2, 3)))
        assert not algo.is_local_candidate(insert("r1", (1, 2)))

    def test_view_without_any_keys_degenerates_to_eca(self, view_wy):
        algo = ECALocal(view_wy, SignedBag.from_rows([(1, 3)]))
        requests = algo.handle_update(notify(delete("r1", (1, 2))))
        assert len(requests) == 1


class TestLCASerialProcessing:
    def test_single_update_delta_applied_on_answer(self, view_w):
        algo = LCA(view_w)
        request = algo.handle_update(notify(insert("r2", (2, 3))))[0]
        assert algo.view_state().is_empty()
        algo.handle_answer(QueryAnswer(request.query_id, SignedBag.from_rows([(1,)])))
        assert algo.view_state() == SignedBag.from_rows([(1,)])
        assert algo.is_quiescent()

    def test_second_update_queued_and_compensates_inflight(self, view_w):
        algo = LCA(view_w)
        first = algo.handle_update(notify(insert("r2", (2, 3)), 1))
        assert len(first) == 1
        # U2 arrives while Q1 is in flight: the compensation -Q1<U2> is
        # fully bound, so no new message is sent; U2 itself is queued.
        second = algo.handle_update(notify(insert("r1", (4, 2)), 2))
        assert second == []
        assert not algo.is_quiescent()

    def test_view_steps_through_every_state(self, view_w):
        # Example 2's race, processed by LCA: the view must pass through
        # V[ss1] = ([1]) before reaching V[ss2] = ([1],[4]).
        algo = LCA(view_w)
        q1 = algo.handle_update(notify(insert("r2", (2, 3)), 1))[0]
        algo.handle_update(notify(insert("r1", (4, 2)), 2))
        # Source evaluates Q1 after both updates: A1 = ([1],[4]).
        follow_ups = algo.handle_answer(
            QueryAnswer(q1.query_id, SignedBag.from_rows([(1,), (4,)]))
        )
        # Delta for U1 = A1 - [4] (local compensation) = ([1]).
        assert algo.view_state() == SignedBag.from_rows([(1,)])
        # U2's query goes out next.
        assert len(follow_ups) == 1
        algo.handle_answer(
            QueryAnswer(follow_ups[0].query_id, SignedBag.from_rows([(4,)]))
        )
        assert algo.view_state() == SignedBag.from_rows([(1,), (4,)])
        assert algo.is_quiescent()

    def test_backdating_compensates_already_seen_updates(self, view_w3):
        """U1, U2, U3 all execute at the source before the warehouse
        finishes U1: the query later sent for U2 must be backdated against
        the already-seen U3 (Lemma B.2 expansion), or U2's delta would be
        computed against the wrong state.  Verified end to end: the view
        must step through V[ss_1] = ([4]) and V[ss_2] = ([4]) before
        reaching V[ss_3] = ([1],[4])."""
        from repro.consistency import check_trace
        from repro.simulation.driver import Simulation
        from repro.simulation.schedules import WorstCaseSchedule
        from repro.source.memory import MemorySource

        source = MemorySource(
            [s for s in view_w3.relations], {"r1": [(1, 2)], "r2": [], "r3": []}
        )
        algo = LCA(view_w3)
        workload = [
            insert("r1", (4, 2)),
            insert("r3", (5, 3)),
            insert("r2", (2, 5)),
        ]
        trace = Simulation(source, algo, workload).run(WorstCaseSchedule())
        report = check_trace(view_w3, trace)
        assert report.complete
        assert algo.view_state() == SignedBag.from_rows([(1,), (4,)])

    def test_irrelevant_update_ignored(self, view_w):
        algo = LCA(view_w)
        assert algo.handle_update(notify(insert("zzz", (1,)))) == []
        assert algo.is_quiescent()

    def test_fully_local_update_chain_completes(self, view_w):
        # Deletions whose compensations are all fully bound still finish.
        algo = LCA(view_w, SignedBag.from_rows([(1,)]))
        q1 = algo.handle_update(notify(delete("r1", (1, 2)), 1))[0]
        algo.handle_answer(QueryAnswer(q1.query_id, SignedBag({(1,): -1})))
        assert algo.view_state().is_empty()
        assert algo.is_quiescent()
