"""Unit tests for View definitions, V<U>, and key analysis."""

import pytest

from repro.errors import ExpressionError, SchemaError
from repro.relational.bag import SignedBag
from repro.relational.conditions import Attr, Comparison
from repro.relational.schema import RelationSchema
from repro.relational.tuples import MINUS, SignedTuple
from repro.relational.views import View


class TestNaturalJoin:
    def test_shared_attributes_become_equalities(self, two_rel_schemas):
        view = View.natural_join("V", two_rel_schemas, ["W"])
        state = {
            "r1": SignedBag.from_rows([(1, 2)]),
            "r2": SignedBag.from_rows([(2, 4), (9, 9)]),
        }
        assert view.evaluate(state) == SignedBag.from_rows([(1,)])

    def test_three_way_chain(self, three_rel_schemas):
        view = View.natural_join("V", three_rel_schemas, ["W"])
        state = {
            "r1": SignedBag.from_rows([(1, 2)]),
            "r2": SignedBag.from_rows([(2, 5)]),
            "r3": SignedBag.from_rows([(5, 3)]),
        }
        assert view.evaluate(state) == SignedBag.from_rows([(1,)])

    def test_extra_condition(self, two_rel_schemas):
        view = View.natural_join(
            "V", two_rel_schemas, ["W"], Comparison(Attr("W"), ">", Attr("Y"))
        )
        state = {
            "r1": SignedBag.from_rows([(1, 2), (9, 2)]),
            "r2": SignedBag.from_rows([(2, 4)]),
        }
        assert view.evaluate(state) == SignedBag.from_rows([(9,)])

    def test_duplicate_relations_rejected(self, r1_schema):
        with pytest.raises(SchemaError):
            View.natural_join("V", [r1_schema, r1_schema], ["W"])


class TestStructure:
    def test_relation_names_and_schema_for(self, view_w):
        assert view_w.relation_names == ("r1", "r2")
        assert view_w.schema_for("r1").name == "r1"
        with pytest.raises(SchemaError):
            view_w.schema_for("zzz")

    def test_involves(self, view_w):
        assert view_w.involves("r1")
        assert not view_w.involves("r9")

    def test_output_columns(self, view_wy):
        assert view_wy.output_columns() == ("W", "Y")

    def test_arity(self, view_wy):
        assert view_wy.arity == 2

    def test_bad_projection_rejected(self, two_rel_schemas):
        with pytest.raises(SchemaError):
            View("V", two_rel_schemas, ["Nope"])

    def test_ambiguous_projection_rejected(self, two_rel_schemas):
        with pytest.raises(SchemaError):
            View("V", two_rel_schemas, ["X"])  # X is in both r1 and r2

    def test_qualified_projection_allowed(self, two_rel_schemas):
        view = View("V", two_rel_schemas, ["r1.X"])
        assert view.output_columns() == ("r1.X",)

    def test_equality(self, two_rel_schemas):
        a = View.natural_join("V", two_rel_schemas, ["W"])
        b = View.natural_join("V", two_rel_schemas, ["W"])
        assert a == b
        assert hash(a) == hash(b)
        assert a != View.natural_join("V2", two_rel_schemas, ["W"])


class TestSubstitution:
    def test_v_of_u_binds_one_relation(self, view_w):
        query = view_w.substitute("r2", SignedTuple((2, 3)))
        assert query.term_count() == 1
        term = query.terms[0]
        assert term.free_relations() == ("r1",)

    def test_v_of_u_evaluates_like_paper_example_1(self, view_w):
        # Q1 = pi_W(r1 |x| [2,3]) over r1 = ([1,2]) gives A1 = ([1]).
        query = view_w.substitute("r2", SignedTuple((2, 3)))
        state = {"r1": SignedBag.from_rows([(1, 2)])}
        assert query.evaluate(state) == SignedBag.from_rows([(1,)])

    def test_substitute_uninvolved_relation_raises(self, view_w):
        with pytest.raises(ExpressionError):
            view_w.substitute("r9", SignedTuple((1,)))

    def test_deletion_substitution_carries_sign(self, view_wy):
        query = view_wy.substitute("r1", SignedTuple((1, 2), MINUS))
        state = {"r2": SignedBag.from_rows([(2, 3)])}
        assert query.evaluate(state) == SignedBag.singleton((1, 3), MINUS)


class TestKeyAnalysis:
    def test_contains_all_keys_true(self, keyed_view):
        assert keyed_view.contains_all_keys()

    def test_contains_all_keys_false_when_missing_key(self, keyed_schemas):
        view = View.natural_join("V", keyed_schemas, ["W"])  # drops r2's key Y
        assert not view.contains_all_keys()

    def test_contains_all_keys_false_without_declared_keys(self, view_wy):
        assert not view_wy.contains_all_keys()

    def test_key_output_positions(self, keyed_view):
        assert keyed_view.key_output_positions("r1") == (0,)
        assert keyed_view.key_output_positions("r2") == (1,)

    def test_key_output_positions_missing_raises(self, keyed_schemas):
        view = View.natural_join("V", keyed_schemas, ["W"])
        with pytest.raises(SchemaError):
            view.key_output_positions("r2")

    def test_composite_key_positions(self):
        schemas = [
            RelationSchema("a", ("P", "Q"), key=("P", "Q")),
            RelationSchema("b", ("Q", "R"), key=("R",)),
        ]
        view = View.natural_join("V", schemas, ["R", "P", "a.Q"])
        assert view.key_output_positions("a") == (1, 2)
        assert view.key_output_positions("b") == (0,)
        assert view.contains_all_keys()


class TestOracle:
    def test_evaluate_empty_state(self, view_w):
        state = {"r1": SignedBag(), "r2": SignedBag()}
        assert view_w.evaluate(state).is_empty()

    def test_evaluate_retains_duplicates(self, view_w):
        state = {
            "r1": SignedBag.from_rows([(1, 2)]),
            "r2": SignedBag.from_rows([(2, 3), (2, 4)]),
        }
        assert view_w.evaluate(state).multiplicity((1,)) == 2

    def test_as_query_roundtrip(self, view_w):
        state = {
            "r1": SignedBag.from_rows([(1, 2)]),
            "r2": SignedBag.from_rows([(2, 3)]),
        }
        assert view_w.as_query().evaluate(state) == view_w.evaluate(state)
