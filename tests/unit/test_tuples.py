"""Unit tests for signed tuples and the sign algebra of Section 4.1."""

import pytest

from repro.errors import SignError
from repro.relational.tuples import (
    MINUS,
    PLUS,
    SignedTuple,
    check_sign,
    combine_signs,
    sign_symbol,
)


class TestSigns:
    def test_check_sign_accepts_valid(self):
        assert check_sign(PLUS) == PLUS
        assert check_sign(MINUS) == MINUS

    @pytest.mark.parametrize("bad", [0, 2, -2, "plus", None, 1.0])
    def test_check_sign_rejects_invalid(self, bad):
        with pytest.raises(SignError):
            check_sign(bad)

    def test_combine_signs_matches_paper_table(self):
        # The paper's t1 x t2 sign table: ++ -> +, +- -> -, -- -> +, -+ -> -
        assert combine_signs(PLUS, PLUS) == PLUS
        assert combine_signs(PLUS, MINUS) == MINUS
        assert combine_signs(MINUS, MINUS) == PLUS
        assert combine_signs(MINUS, PLUS) == MINUS

    def test_combine_signs_n_ary(self):
        assert combine_signs(MINUS, MINUS, MINUS) == MINUS
        assert combine_signs() == PLUS

    def test_sign_symbol(self):
        assert sign_symbol(PLUS) == "+"
        assert sign_symbol(MINUS) == "-"


class TestSignedTuple:
    def test_default_sign_is_plus(self):
        t = SignedTuple((1, 2))
        assert t.sign == PLUS
        assert t.values == (1, 2)
        assert t.arity == 2

    def test_negate(self):
        t = SignedTuple((1, 2), MINUS)
        assert (-t).sign == PLUS
        assert (-t).values == (1, 2)
        assert t.negate() == -t

    def test_with_sign(self):
        t = SignedTuple((1,))
        assert t.with_sign(MINUS).sign == MINUS

    def test_invalid_sign_rejected(self):
        with pytest.raises(SignError):
            SignedTuple((1,), 0)

    def test_equality_considers_sign(self):
        assert SignedTuple((1, 2)) == SignedTuple((1, 2))
        assert SignedTuple((1, 2)) != SignedTuple((1, 2), MINUS)
        assert hash(SignedTuple((1, 2))) == hash(SignedTuple([1, 2]))

    def test_repr_matches_paper_notation(self):
        assert repr(SignedTuple((1, 2))) == "+[1,2]"
        assert repr(SignedTuple((4, 2), MINUS)) == "-[4,2]"

    def test_values_are_immutable_tuple(self):
        t = SignedTuple([1, 2])
        assert isinstance(t.values, tuple)
