"""Unit tests for terms, queries, and the substitution operator Q<U>."""

import pytest

from repro.errors import ExpressionError
from repro.relational.bag import SignedBag
from repro.relational.conditions import Attr, Comparison
from repro.relational.expressions import (
    BoundOperand,
    Query,
    RelationOperand,
    Term,
    empty_query,
)
from repro.relational.schema import RelationSchema
from repro.relational.tuples import MINUS, PLUS, SignedTuple


@pytest.fixture
def r1():
    return RelationSchema("r1", ("W", "X"))


@pytest.fixture
def r2():
    return RelationSchema("r2", ("X", "Y"))


def join_term(r1, r2, projection=("W",), coefficient=1):
    return Term(
        [RelationOperand(r1), RelationOperand(r2)],
        projection,
        Comparison(Attr("r1.X"), "=", Attr("r2.X")),
        coefficient,
    )


class TestOperands:
    def test_relation_operand(self, r1):
        op = RelationOperand(r1)
        assert op.name == "r1"
        assert not op.is_bound

    def test_bound_operand(self, r2):
        op = BoundOperand(r2, SignedTuple((2, 3)))
        assert op.name == "r2"
        assert op.is_bound
        assert op.tuple.values == (2, 3)

    def test_bound_operand_validates_arity(self, r2):
        from repro.errors import SchemaError

        with pytest.raises(SchemaError):
            BoundOperand(r2, SignedTuple((1,)))

    def test_operand_equality(self, r1):
        assert RelationOperand(r1) == RelationOperand(r1)
        assert BoundOperand(r1, SignedTuple((1, 2))) == BoundOperand(
            r1, SignedTuple((1, 2))
        )
        assert BoundOperand(r1, SignedTuple((1, 2))) != BoundOperand(
            r1, SignedTuple((1, 2), MINUS)
        )


class TestTermConstruction:
    def test_rejects_empty_operands(self):
        with pytest.raises(ExpressionError):
            Term([], ("W",))

    def test_rejects_empty_projection(self, r1):
        with pytest.raises(ExpressionError):
            Term([RelationOperand(r1)], ())

    def test_rejects_bad_coefficient(self, r1):
        with pytest.raises(ExpressionError):
            Term([RelationOperand(r1)], ("W",), coefficient=2)

    def test_rejects_unknown_projection(self, r1):
        from repro.errors import SchemaError

        with pytest.raises(SchemaError):
            Term([RelationOperand(r1)], ("Nope",))

    def test_structure_accessors(self, r1, r2):
        term = join_term(r1, r2)
        assert term.relation_names == ("r1", "r2")
        assert term.free_relations() == ("r1", "r2")
        assert not term.is_fully_bound()
        assert term.output_columns() == ("W",)

    def test_operand_for(self, r1, r2):
        term = join_term(r1, r2)
        assert term.operand_for("r1").name == "r1"
        with pytest.raises(ExpressionError):
            term.operand_for("r9")


class TestSubstitution:
    def test_substitute_binds_relation(self, r1, r2):
        term = join_term(r1, r2)
        bound = term.substitute("r2", SignedTuple((2, 3)))
        assert bound.free_relations() == ("r1",)
        assert bound.bound_operands()[0].tuple == SignedTuple((2, 3))

    def test_substitute_already_bound_vanishes(self, r1, r2):
        term = join_term(r1, r2).substitute("r2", SignedTuple((2, 3)))
        assert term.substitute("r2", SignedTuple((9, 9))) is None

    def test_substitute_uninvolved_relation_raises(self, r1, r2):
        with pytest.raises(ExpressionError):
            join_term(r1, r2).substitute("zzz", SignedTuple((1,)))

    def test_substitution_preserves_coefficient(self, r1, r2):
        term = join_term(r1, r2, coefficient=-1)
        assert term.substitute("r1", SignedTuple((1, 2))).coefficient == -1

    def test_query_substitute_all_same_relation_vanishes(self, r1, r2):
        query = Query([join_term(r1, r2)])
        result = query.substitute_all(
            [("r1", SignedTuple((1, 2))), ("r1", SignedTuple((3, 4)))]
        )
        assert result.is_empty()


class TestEvaluation:
    def test_join_evaluation(self, r1, r2):
        state = {
            "r1": SignedBag.from_rows([(1, 2), (4, 2)]),
            "r2": SignedBag.from_rows([(2, 3)]),
        }
        result = join_term(r1, r2).evaluate(state)
        assert result == SignedBag.from_rows([(1,), (4,)])

    def test_duplicates_retained(self, r1, r2):
        state = {
            "r1": SignedBag.from_rows([(1, 2)]),
            "r2": SignedBag.from_rows([(2, 3), (2, 4)]),
        }
        result = join_term(r1, r2).evaluate(state)
        assert result.multiplicity((1,)) == 2

    def test_bound_tuple_sign_propagates(self, r1, r2):
        # Q1 = pi_W(-[1,2] |x| r2): the paper's signed-query example.
        term = join_term(r1, r2).substitute("r1", SignedTuple((1, 2), MINUS))
        state = {"r2": SignedBag.from_rows([(2, 3)])}
        assert term.evaluate(state) == SignedBag.singleton((1,), MINUS)

    def test_two_minus_signs_cancel(self, r1, r2):
        term = join_term(r1, r2)
        term = term.substitute("r1", SignedTuple((1, 2), MINUS))
        term = term.substitute("r2", SignedTuple((2, 3), MINUS))
        assert term.is_fully_bound()
        assert term.evaluate({}) == SignedBag.singleton((1,), PLUS)

    def test_coefficient_negates(self, r1, r2):
        state = {
            "r1": SignedBag.from_rows([(1, 2)]),
            "r2": SignedBag.from_rows([(2, 3)]),
        }
        assert join_term(r1, r2, coefficient=-1).evaluate(state) == SignedBag.singleton(
            (1,), MINUS
        )

    def test_missing_relation_raises(self, r1, r2):
        with pytest.raises(ExpressionError):
            join_term(r1, r2).evaluate({"r1": SignedBag()})

    def test_selection_filters(self, r1, r2):
        term = Term(
            [RelationOperand(r1), RelationOperand(r2)],
            ("W",),
            Comparison(Attr("r1.X"), "=", Attr("r2.X"))
            & Comparison(Attr("W"), ">", Attr("Y")),
        )
        state = {
            "r1": SignedBag.from_rows([(1, 2), (9, 2)]),
            "r2": SignedBag.from_rows([(2, 5)]),
        }
        assert term.evaluate(state) == SignedBag.from_rows([(9,)])


class TestQueryAlgebra:
    def test_add_concatenates_terms(self, r1, r2):
        q = Query([join_term(r1, r2)]) + Query([join_term(r1, r2)])
        assert q.term_count() == 2

    def test_sub_negates_coefficients(self, r1, r2):
        q = Query([join_term(r1, r2)]) - Query([join_term(r1, r2)])
        assert [t.coefficient for t in q.terms] == [1, -1]

    def test_neg(self, r1, r2):
        q = -Query([join_term(r1, r2)])
        assert q.terms[0].coefficient == -1

    def test_empty_query(self):
        assert empty_query().is_empty()
        assert empty_query().evaluate({}) == SignedBag()

    def test_partitioning(self, r1, r2):
        full = join_term(r1, r2)
        bound = full.substitute("r1", SignedTuple((1, 2))).substitute(
            "r2", SignedTuple((2, 3))
        )
        q = Query([full, bound])
        assert q.source_terms().term_count() == 1
        assert q.fully_bound_terms().term_count() == 1

    def test_query_minus_cancels_on_evaluation(self, r1, r2):
        state = {
            "r1": SignedBag.from_rows([(1, 2)]),
            "r2": SignedBag.from_rows([(2, 3)]),
        }
        q = Query([join_term(r1, r2)]) - Query([join_term(r1, r2)])
        assert q.evaluate(state).is_empty()

    def test_equality_and_repr(self, r1, r2):
        a = Query([join_term(r1, r2)])
        assert a == Query([join_term(r1, r2)])
        assert a != empty_query()
        assert "pi" in repr(a)
        assert "empty" in repr(empty_query())
