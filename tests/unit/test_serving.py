"""Unit tests for ``repro.serving``: cache, policies, reader, keys.

The invalidation-side contracts (dirty-row tracking in
:class:`MaterializedView`, ``dirty_keys()`` on algorithms and catalogs)
are tested here too — the serving tier's correctness rests on them.
"""

import pytest

from repro.core.eca import ECA
from repro.errors import SimulationError
from repro.obs import Observability
from repro.relational.bag import SignedBag
from repro.relational.engine import evaluate_view
from repro.relational.schema import RelationSchema
from repro.relational.unions import UnionView
from repro.relational.views import View
from repro.serving import (
    FIFOPolicy,
    LRUPolicy,
    ServingCache,
    WarehouseReader,
    reader_for,
    row_key,
)
from repro.source.memory import MemorySource
from repro.warehouse.catalog import WarehouseCatalog
from repro.warehouse.state import MaterializedView


def make_view(prefix=""):
    schemas = [
        RelationSchema(f"{prefix}r1", ("W", "X"), key=("W",)),
        RelationSchema(f"{prefix}r2", ("X", "Y"), key=("Y",)),
    ]
    initial = {
        f"{prefix}r1": [(1, 2), (2, 3)],
        f"{prefix}r2": [(2, 5), (3, 6)],
    }
    view = View.natural_join(f"V{prefix or 0}", schemas, ["W", "Y"])
    return schemas, initial, view


def make_eca(prefix=""):
    schemas, initial, view = make_view(prefix)
    source = MemorySource(schemas, initial)
    return ECA(view, evaluate_view(view, source.snapshot()))


class TestRowKey:
    def test_projects_positions(self):
        assert row_key((7, 8, 9), (2, 0)) == (9, 7)

    def test_none_positions_means_whole_row(self):
        assert row_key((7, 8), None) == (7, 8)


class TestServingKeyPositions:
    def test_join_view_projects_first_keyed_relation(self):
        _, _, view = make_view()
        # r1's key (W) appears at output position 0 of (W, Y).
        assert view.serving_key_positions() == (0,)

    def test_view_without_projected_key_falls_back_to_none(self):
        schemas = [
            RelationSchema("a", ("P", "Q"), key=("P",)),
            RelationSchema("b", ("Q", "R")),
        ]
        view = View.natural_join("V", schemas, ["R"])  # drops every key
        assert view.serving_key_positions() is None

    def test_union_view_has_no_serving_key(self):
        _, _, view = make_view()
        union = UnionView("U", [view])
        assert union.serving_key_positions() is None


class TestDirtyTracking:
    def test_apply_delta_reports_changed_rows(self):
        _, _, view = make_view()
        mv = MaterializedView(view, SignedBag({(1, 5): 1}))
        assert mv.drain_dirty() == set()
        delta = SignedBag({(2, 6): 1, (1, 5): -1})
        mv.apply_delta(delta)
        assert mv.drain_dirty() == {(2, 6), (1, 5)}
        # Draining resets.
        assert mv.drain_dirty() == set()

    def test_replace_reports_only_differing_rows(self):
        _, _, view = make_view()
        mv = MaterializedView(view, SignedBag({(1, 5): 1, (2, 6): 1}))
        mv.drain_dirty()
        mv.replace(SignedBag({(1, 5): 1, (3, 7): 1}))
        assert mv.drain_dirty() == {(2, 6), (3, 7)}

    def test_key_delete_reports_doomed_rows(self):
        _, _, view = make_view()
        mv = MaterializedView(view, SignedBag({(1, 5): 1, (2, 6): 1}))
        mv.drain_dirty()
        removed = mv.key_delete("r1", (1, 2))
        assert removed == 1
        assert mv.drain_dirty() == {(1, 5)}

    def test_algorithm_dirty_keys_project_serving_keys(self):
        algorithm = make_eca()
        algorithm.mv.apply_delta(SignedBag({(4, 9): 1}))
        assert algorithm.dirty_keys() == {("V0", (4,))}
        assert algorithm.dirty_keys() == set()

    def test_catalog_dirty_keys_are_tagged_per_view(self):
        catalog = WarehouseCatalog(
            {"Va": make_eca("a"), "Vb": make_eca("b")}
        )
        catalog.algorithms["Va"].mv.apply_delta(SignedBag({(7, 7): 1}))
        assert catalog.dirty_keys() == {("Va", (7,))}


class TestServingCache:
    def test_rejects_bad_parameters(self):
        with pytest.raises(SimulationError):
            ServingCache(capacity=0)
        with pytest.raises(SimulationError):
            ServingCache(staleness_bound=-1)
        with pytest.raises(SimulationError):
            ServingCache(policy="clock")

    def test_miss_then_hit(self):
        cache = ServingCache(capacity=4)
        loads = []

        def loader():
            loads.append(1)
            return "answer"

        first = cache.read("V", (1,), loader)
        second = cache.read("V", (1,), loader)
        assert (first.status, second.status) == ("miss", "hit")
        assert second.value == "answer"
        assert len(loads) == 1

    def test_bound_zero_reloads_on_invalidation(self):
        cache = ServingCache(capacity=4, staleness_bound=0)
        values = iter(["old", "new"])
        cache.read("V", (1,), lambda: next(values))
        cache.invalidate([("V", (1,))])
        result = cache.read("V", (1,), lambda: next(values))
        assert result.status == "miss"
        assert result.value == "new"

    def test_within_bound_serves_stale_with_lag(self):
        cache = ServingCache(capacity=4, staleness_bound=2)
        cache.read("V", (1,), lambda: "old")
        cache.invalidate([("V", (1,))])
        cache.invalidate([("V", (1,))])
        result = cache.read("V", (1,), lambda: "new")
        assert result.status == "stale"
        assert result.value == "old"
        assert result.lag == 2
        assert cache.max_served_lag == 2

    def test_beyond_bound_forces_reload(self):
        cache = ServingCache(capacity=4, staleness_bound=1)
        cache.read("V", (1,), lambda: "old")
        cache.invalidate([("V", (1,)), ("V", (1,))])
        result = cache.read("V", (1,), lambda: "new")
        assert result.status == "miss"
        assert result.value == "new"
        # The reload reset the entry's debt: next read is a fresh hit.
        assert cache.read("V", (1,), lambda: "x").status == "hit"

    def test_invalidations_count_non_resident_keys(self):
        cache = ServingCache(capacity=4)
        cache.invalidate([("V", (1,)), ("V", (2,))])
        assert cache.invalidations == 2
        assert len(cache) == 0

    def test_lru_evicts_least_recent(self):
        cache = ServingCache(capacity=2, policy="lru")
        cache.read("V", (1,), lambda: "a")
        cache.read("V", (2,), lambda: "b")
        cache.read("V", (1,), lambda: "a")  # touch (1,)
        cache.read("V", (3,), lambda: "c")  # evicts (2,)
        assert cache.evictions == 1
        assert cache.read("V", (1,), lambda: "a").status == "hit"
        assert cache.read("V", (2,), lambda: "b").status == "miss"

    def test_fifo_ignores_touches(self):
        cache = ServingCache(capacity=2, policy="fifo")
        cache.read("V", (1,), lambda: "a")
        cache.read("V", (2,), lambda: "b")
        cache.read("V", (1,), lambda: "a")  # hit, but no recency refresh
        cache.read("V", (3,), lambda: "c")  # evicts (1,): insertion order
        assert cache.read("V", (1,), lambda: "a").status == "miss"

    def test_policy_classes_exported(self):
        assert LRUPolicy.name == "lru"
        assert FIFOPolicy.name == "fifo"

    def test_freshness_reports_per_view_lag(self):
        cache = ServingCache(capacity=4, staleness_bound=3)
        cache.read("Va", (1,), lambda: "a")
        cache.read("Vb", (2,), lambda: "b")
        cache.invalidate([("Va", (1,))])
        freshness = cache.freshness()
        assert freshness["Va"] == {
            "entries": 1, "stale_entries": 1, "max_updates_behind": 1
        }
        assert freshness["Vb"]["stale_entries"] == 0

    def test_report_summarizes_the_run(self):
        cache = ServingCache(capacity=4, staleness_bound=1)
        cache.read("V", (1,), lambda: "a")
        cache.read("V", (1,), lambda: "a")
        cache.invalidate([("V", (1,))])
        cache.read("V", (1,), lambda: "a")
        report = cache.report()
        assert report["reads"] == 3
        assert report["hits"] == 1
        assert report["stale_served"] == 1
        assert report["misses"] == 1
        assert report["hit_rate"] == pytest.approx(2 / 3)
        assert report["policy"] == "lru"

    def test_attach_lag_annotates_results(self):
        cache = ServingCache(capacity=4)
        cache.attach_lag(lambda: 5)
        result = cache.read("V", (1,), lambda: "a")
        assert result.backend_lag == 5

    def test_bind_obs_registers_cache_counters(self):
        obs = Observability()
        cache = ServingCache(capacity=4, staleness_bound=1)
        cache.bind_obs(obs)
        cache.read("V", (1,), lambda: "a")
        cache.read("V", (1,), lambda: "a")
        cache.invalidate([("V", (1,))])
        cache.read("V", (1,), lambda: "a")
        registry = obs.registry
        assert registry.get("repro_cache_hits").value(view="V") == 1
        assert registry.get("repro_cache_misses").value(view="V") == 1
        assert registry.get("repro_cache_stale_served").value(view="V") == 1
        assert registry.get("repro_cache_invalidations").value(view="V") == 1

    def test_bind_obs_none_is_a_no_op(self):
        cache = ServingCache()
        cache.bind_obs(None)
        assert cache.read("V", (1,), lambda: "a").status == "miss"


class TestWarehouseReader:
    def test_reads_one_view_by_serving_key(self):
        algorithm = make_eca()
        reader = reader_for(algorithm)
        bag = reader.read("V0", (1,))
        assert set(bag.rows()) == {(1, 5)}
        assert reader.reads == 1

    def test_unknown_view_is_a_key_error(self):
        reader = reader_for(make_eca())
        with pytest.raises(KeyError):
            reader.read("nope", (1,))

    def test_catalog_reader_filters_tagged_rows(self):
        catalog = WarehouseCatalog({"Va": make_eca("a"), "Vb": make_eca("b")})
        reader = reader_for(catalog)
        assert reader.view_names == ["Va", "Vb"]
        bag = reader.read("Va", (2,))
        assert set(bag.rows()) == {(2, 6)}

    def test_current_keys_enumerates_the_universe(self):
        reader = reader_for(make_eca())
        assert reader.current_keys() == [("V0", (1,)), ("V0", (2,))]

    def test_loader_closes_over_the_address(self):
        reader = reader_for(make_eca())
        loader = reader.loader("V0", (2,))
        assert set(loader().rows()) == {(2, 6)}

    def test_state_fn_override(self):
        algorithm = make_eca()
        fixed = SignedBag({(9, 9): 1})
        reader = reader_for(algorithm, state_fn=lambda: fixed)
        assert set(reader.read("V0", (9,)).rows()) == {(9, 9)}

    def test_whole_row_keys_without_serving_positions(self):
        state = SignedBag({(1, 2): 1, (3, 4): 1})
        reader = WarehouseReader(lambda: state, {"V": None})
        assert set(reader.read("V", (1, 2)).rows()) == {(1, 2)}
        assert reader.current_keys() == [("V", (1, 2)), ("V", (3, 4))]
