"""Unit tests for the materialized view store and key-delete."""

import pytest

from repro.errors import ViewStateError
from repro.relational.bag import SignedBag
from repro.relational.schema import RelationSchema
from repro.relational.views import View
from repro.warehouse.state import MaterializedView, key_delete


@pytest.fixture
def keyed_view():
    schemas = [
        RelationSchema("r1", ("W", "X"), key=("W",)),
        RelationSchema("r2", ("X", "Y"), key=("Y",)),
    ]
    return View.natural_join("V", schemas, ["W", "Y"])


class TestBasics:
    def test_starts_empty(self, view_w):
        mv = MaterializedView(view_w)
        assert mv.is_empty()
        assert mv.rows() == []
        assert mv.cardinality() == 0

    def test_initial_contents_copied(self, view_w):
        initial = SignedBag.from_rows([(1,)])
        mv = MaterializedView(view_w, initial)
        initial.add((9,), 1)
        assert mv.multiplicity((9,)) == 0

    def test_negative_initial_rejected(self, view_w):
        with pytest.raises(ViewStateError):
            MaterializedView(view_w, SignedBag({(1,): -1}))

    def test_rows_expand_duplicates(self, view_w):
        mv = MaterializedView(view_w, SignedBag({(1,): 2}))
        assert mv.rows() == [(1,), (1,)]

    def test_as_bag_detached(self, view_w):
        mv = MaterializedView(view_w, SignedBag({(1,): 1}))
        bag = mv.as_bag()
        bag.add((1,), 5)
        assert mv.multiplicity((1,)) == 1

    def test_equality(self, view_w):
        a = MaterializedView(view_w, SignedBag({(1,): 1}))
        b = MaterializedView(view_w, SignedBag({(1,): 1}))
        assert a == b


class TestApplyDelta:
    def test_additions_and_removals(self, view_w):
        mv = MaterializedView(view_w, SignedBag({(1,): 1}))
        mv.apply_delta(SignedBag({(1,): -1, (2,): 2}))
        assert mv.multiplicity((1,)) == 0
        assert mv.multiplicity((2,)) == 2

    def test_strict_rejects_negative_result(self, view_w):
        mv = MaterializedView(view_w)
        with pytest.raises(ViewStateError):
            mv.apply_delta(SignedBag({(1,): -1}))

    def test_non_strict_clamps(self, view_w):
        mv = MaterializedView(view_w, SignedBag({(1,): 1}))
        mv.apply_delta(SignedBag({(1,): -3, (2,): 1}), strict=False)
        assert mv.multiplicity((1,)) == 0
        assert mv.multiplicity((2,)) == 1

    def test_strict_failure_leaves_state_unchanged(self, view_w):
        mv = MaterializedView(view_w, SignedBag({(1,): 1}))
        with pytest.raises(ViewStateError):
            mv.apply_delta(SignedBag({(1,): -2}))
        assert mv.multiplicity((1,)) == 1


class TestReplace:
    def test_replace_installs_copy(self, view_w):
        mv = MaterializedView(view_w, SignedBag({(1,): 1}))
        fresh = SignedBag({(2,): 1})
        mv.replace(fresh)
        fresh.add((3,), 1)
        assert mv.multiplicity((2,)) == 1
        assert mv.multiplicity((3,)) == 0
        assert mv.multiplicity((1,)) == 0

    def test_replace_rejects_negative(self, view_w):
        mv = MaterializedView(view_w)
        with pytest.raises(ViewStateError):
            mv.replace(SignedBag({(1,): -1}))


class TestKeyDelete:
    def test_deletes_matching_key_tuples(self, keyed_view):
        mv = MaterializedView(
            keyed_view, SignedBag.from_rows([(1, 3), (1, 4), (2, 3)])
        )
        removed = mv.key_delete("r1", (1, 99))  # key of r1 is W=1
        assert removed == 2
        assert sorted(mv.rows()) == [(2, 3)]

    def test_deletes_by_second_relation_key(self, keyed_view):
        mv = MaterializedView(
            keyed_view, SignedBag.from_rows([(1, 3), (1, 4), (2, 3)])
        )
        removed = mv.key_delete("r2", (99, 3))  # key of r2 is Y=3
        assert removed == 2
        assert sorted(mv.rows()) == [(1, 4)]

    def test_no_match_removes_nothing(self, keyed_view):
        mv = MaterializedView(keyed_view, SignedBag.from_rows([(1, 3)]))
        assert mv.key_delete("r1", (7, 7)) == 0
        assert mv.rows() == [(1, 3)]

    def test_standalone_key_delete_on_bag(self, keyed_view):
        bag = SignedBag.from_rows([(1, 3), (2, 3)])
        removed = key_delete(bag, keyed_view, "r2", (0, 3))
        assert removed == 2
        assert bag.is_empty()

    def test_key_delete_requires_projected_key(self, keyed_view):
        from repro.errors import SchemaError

        schemas = [
            RelationSchema("r1", ("W", "X"), key=("W",)),
            RelationSchema("r2", ("X", "Y"), key=("Y",)),
        ]
        view = View.natural_join("V2", schemas, ["W"])  # Y not projected
        mv = MaterializedView(view)
        with pytest.raises(SchemaError):
            mv.key_delete("r2", (2, 3))
