"""Unit tests for the metrics registry (repro.obs.metrics + exporters)."""

import json

import pytest

from repro.costmodel.counters import CostRecorder
from repro.messaging.messages import QueryRequest
from repro.obs.export import write_metrics_json, write_prometheus
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricError,
    Registry,
    ingest_mapping,
)
from repro.relational.expressions import Query


class TestCounter:
    def test_inc_and_value_per_series(self):
        reg = Registry()
        sent = reg.counter("sent_total", "messages", ("actor",))
        sent.inc(actor="a")
        sent.inc(2, actor="a")
        sent.inc(actor="b")
        assert sent.value(actor="a") == 3
        assert sent.value(actor="b") == 1
        assert sent.value(actor="missing") == 0

    def test_counters_cannot_decrease(self):
        reg = Registry()
        with pytest.raises(MetricError):
            reg.counter("c_total").inc(-1)

    def test_wrong_labels_rejected(self):
        reg = Registry()
        sent = reg.counter("sent_total", "", ("actor",))
        with pytest.raises(MetricError):
            sent.inc(role="x")
        with pytest.raises(MetricError):
            sent.inc()


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Registry().gauge("uqs_size")
        gauge.set(4)
        gauge.inc()
        gauge.dec(2)
        assert gauge.value() == 3

    def test_gauges_may_go_negative(self):
        gauge = Registry().gauge("delta")
        gauge.dec(5)
        assert gauge.value() == -5


class TestHistogram:
    def test_observations_accumulate_cumulative_buckets(self):
        hist = Registry().histogram("sizes", buckets=(1, 5, 10))
        for value in (0, 1, 3, 7, 50):
            hist.observe(value)
        snap = hist.snapshot()
        assert snap["count"] == 5
        assert snap["sum"] == 61
        assert snap["buckets"] == {"1": 2, "5": 3, "10": 4, "+Inf": 5}

    def test_empty_series_snapshot(self):
        hist = Registry().histogram("sizes", buckets=(1,))
        assert hist.snapshot() == {"count": 0, "sum": 0.0, "buckets": {}}

    def test_needs_buckets(self):
        with pytest.raises(MetricError):
            Registry().histogram("sizes", buckets=())


class TestRegistry:
    def test_re_register_same_shape_returns_same_instrument(self):
        reg = Registry()
        a = reg.counter("c_total", "help", ("x",))
        b = reg.counter("c_total", "ignored", ("x",))
        assert a is b

    def test_re_register_different_shape_raises(self):
        reg = Registry()
        reg.counter("c_total", "", ("x",))
        with pytest.raises(MetricError):
            reg.counter("c_total", "", ("y",))
        with pytest.raises(MetricError):
            reg.gauge("c_total", "", ("x",))

    def test_as_json_shape(self):
        reg = Registry()
        reg.counter("c_total", "help text", ("actor",)).inc(2, actor="wh")
        dump = reg.as_json()
        assert dump["c_total"]["type"] == "counter"
        assert dump["c_total"]["help"] == "help text"
        assert dump["c_total"]["series"] == [
            {"labels": {"actor": "wh"}, "value": 2}
        ]

    def test_render_prometheus_text(self):
        reg = Registry()
        reg.counter("c_total", "a counter", ("actor",)).inc(2, actor="wh")
        reg.gauge("g").set(1.5)
        hist = reg.histogram("h", buckets=(1, 2))
        hist.observe(1)
        text = reg.render_prometheus()
        assert "# HELP c_total a counter" in text
        assert "# TYPE c_total counter" in text
        assert 'c_total{actor="wh"} 2' in text
        assert "g 1.5" in text
        assert 'h_bucket{le="1"} 1' in text
        assert 'h_bucket{le="+Inf"} 1' in text
        assert "h_sum 1" in text
        assert "h_count 1" in text

    def test_snapshot_diff_elides_unchanged(self):
        reg = Registry()
        counter = reg.counter("c_total", "", ("x",))
        counter.inc(x="a")
        counter.inc(x="b")
        before = reg.snapshot()
        counter.inc(3, x="a")
        delta = Registry.diff(before, reg.snapshot())
        assert delta == {"c_total": {("a",): 3}}

    def test_diff_counts_histogram_observations(self):
        reg = Registry()
        hist = reg.histogram("h", buckets=(1,))
        before = reg.snapshot()
        hist.observe(0.5)
        hist.observe(2)
        delta = Registry.diff(before, reg.snapshot())
        assert delta == {"h": {(): 2}}


class TestIngestMapping:
    def test_numeric_keys_become_counters(self):
        reg = Registry()
        ingest_mapping(
            reg,
            "repro_actor",
            {"sent": 4, "role": "client", "flag": True},
            labels={"actor": "c0"},
        )
        sent = reg.get("repro_actor_sent_total")
        assert sent is not None
        assert sent.value(actor="c0") == 4
        # Non-numeric and boolean values are skipped, not exported.
        assert reg.get("repro_actor_role_total") is None
        assert reg.get("repro_actor_flag_total") is None

    def test_cost_recorder_publish(self):
        recorder = CostRecorder()
        recorder.record_request(QueryRequest(1, Query([])))
        reg = Registry()
        recorder.publish(reg)
        assert reg.get("repro_cost_messages_total").value() == 1
        assert reg.get("repro_cost_bytes_total").value() == 0


class TestFileExports:
    def test_write_metrics_json(self, tmp_path):
        reg = Registry()
        reg.counter("c_total").inc(5)
        path = str(tmp_path / "metrics.json")
        write_metrics_json(reg, path, meta={"seed": 7})
        with open(path) as handle:
            payload = json.load(handle)
        assert payload["meta"] == {"seed": 7}
        assert payload["metrics"]["c_total"]["series"][0]["value"] == 5

    def test_write_prometheus(self, tmp_path):
        reg = Registry()
        reg.counter("c_total").inc()
        path = str(tmp_path / "metrics.prom")
        write_prometheus(reg, path)
        with open(path) as handle:
            assert "c_total 1" in handle.read()
