"""Unit tests for RV (recompute), SC (stored copies), and the registry."""

import pytest

from repro.core.recompute import RecomputeView
from repro.core.registry import ALGORITHMS, create_algorithm
from repro.core.stored_copies import StoredCopies
from repro.errors import UpdateError
from repro.messaging.messages import QueryAnswer, UpdateNotification
from repro.relational.bag import SignedBag
from repro.source.updates import delete, insert


def notify(update, serial=1):
    return UpdateNotification(update, serial)


class TestRecomputeView:
    def test_period_one_recomputes_every_update(self, view_w):
        algo = RecomputeView(view_w, period=1)
        assert len(algo.handle_update(notify(insert("r1", (1, 2))))) == 1
        assert len(algo.handle_update(notify(insert("r1", (2, 2))))) == 1

    def test_period_counts_relevant_updates_only(self, view_w):
        algo = RecomputeView(view_w, period=2)
        assert algo.handle_update(notify(insert("zzz", (1,)))) == []
        assert algo.handle_update(notify(insert("r1", (1, 2)))) == []
        assert len(algo.handle_update(notify(insert("r1", (2, 2))))) == 1

    def test_query_is_full_view(self, view_w):
        algo = RecomputeView(view_w, period=1)
        request = algo.handle_update(notify(insert("r1", (1, 2))))[0]
        assert request.query == view_w.as_query()
        term = request.query.terms[0]
        assert term.free_relations() == ("r1", "r2")

    def test_answer_replaces_view(self, view_w):
        algo = RecomputeView(view_w, SignedBag.from_rows([(9,)]), period=1)
        request = algo.handle_update(notify(insert("r1", (1, 2))))[0]
        algo.handle_answer(QueryAnswer(request.query_id, SignedBag.from_rows([(1,)])))
        assert algo.view_state() == SignedBag.from_rows([(1,)])

    def test_invalid_period_rejected(self, view_w):
        with pytest.raises(ValueError):
            RecomputeView(view_w, period=0)

    def test_counter_resets_after_recompute(self, view_w):
        algo = RecomputeView(view_w, period=2)
        algo.handle_update(notify(insert("r1", (1, 2))))
        algo.handle_update(notify(insert("r1", (2, 2))))
        assert algo.handle_update(notify(insert("r1", (3, 2)))) == []
        assert len(algo.handle_update(notify(insert("r1", (4, 2))))) == 1


class TestStoredCopies:
    def test_no_queries_ever(self, view_w):
        algo = StoredCopies(view_w)
        assert algo.handle_update(notify(insert("r1", (1, 2)))) == []
        assert algo.is_quiescent()

    def test_insert_updates_view_locally(self, view_w):
        algo = StoredCopies(view_w)
        algo.handle_update(notify(insert("r1", (1, 2)), 1))
        algo.handle_update(notify(insert("r2", (2, 3)), 2))
        assert algo.view_state() == SignedBag.from_rows([(1,)])

    def test_delete_updates_view_locally(self, view_w):
        copies = {
            "r1": SignedBag.from_rows([(1, 2)]),
            "r2": SignedBag.from_rows([(2, 3)]),
        }
        algo = StoredCopies(view_w, SignedBag.from_rows([(1,)]), copies)
        algo.handle_update(notify(delete("r2", (2, 3))))
        assert algo.view_state().is_empty()
        assert algo.copies["r2"].is_empty()

    def test_delete_of_missing_copy_tuple_raises(self, view_w):
        algo = StoredCopies(view_w)
        with pytest.raises(UpdateError):
            algo.handle_update(notify(delete("r1", (9, 9))))

    def test_storage_cost(self, view_w):
        copies = {
            "r1": SignedBag.from_rows([(1, 2), (3, 4)]),
            "r2": SignedBag.from_rows([(2, 3)]),
        }
        algo = StoredCopies(view_w, initial_copies=copies)
        assert algo.storage_cost() == 3

    def test_irrelevant_update_ignored(self, view_w):
        algo = StoredCopies(view_w)
        assert algo.handle_update(notify(insert("zzz", (1,)))) == []

    def test_irrelevant_initial_copies_dropped(self, view_w):
        algo = StoredCopies(
            view_w, initial_copies={"zzz": SignedBag.from_rows([(1,)])}
        )
        assert "zzz" not in algo.copies


class TestRegistry:
    def test_all_algorithms_registered(self):
        assert sorted(ALGORITHMS) == [
            "basic",
            "batch-eca",
            "deferred-eca",
            "eca",
            "eca-key",
            "eca-local",
            "fragmenting-incremental",
            "lca",
            "multi-stored-copies",
            "recompute",
            "stored-copies",
            "strobe",
            "sweep",
        ]

    def test_create_by_name(self, view_w):
        algo = create_algorithm("eca", view_w)
        assert algo.name == "eca"

    def test_options_forwarded(self, view_w):
        algo = create_algorithm("recompute", view_w, period=5)
        assert algo.period == 5

    def test_unknown_name_raises(self, view_w):
        with pytest.raises(KeyError):
            create_algorithm("magic", view_w)
