"""Unit tests for base-relation updates."""

import pytest

from repro.errors import UpdateError
from repro.relational.tuples import MINUS, PLUS
from repro.source.updates import DELETE, INSERT, Update, delete, insert, modify


class TestUpdate:
    def test_insert_properties(self):
        u = insert("r1", (1, 2))
        assert u.kind == INSERT
        assert u.is_insert and not u.is_delete
        assert u.relation == "r1"
        assert u.values == (1, 2)
        assert u.sign == PLUS

    def test_delete_properties(self):
        u = delete("r2", (2, 3))
        assert u.kind == DELETE
        assert u.is_delete and not u.is_insert
        assert u.sign == MINUS

    def test_signed_tuple(self):
        assert repr(insert("r", (1,)).signed_tuple()) == "+[1]"
        assert repr(delete("r", (1,)).signed_tuple()) == "-[1]"

    def test_invalid_kind_rejected(self):
        with pytest.raises(UpdateError):
            Update("upsert", "r", (1,))

    def test_inverse(self):
        u = insert("r", (1, 2))
        assert u.inverse() == delete("r", (1, 2))
        assert u.inverse().inverse() == u

    def test_equality_and_hash(self):
        assert insert("r", (1,)) == insert("r", [1])
        assert insert("r", (1,)) != delete("r", (1,))
        assert hash(insert("r", (1,))) == hash(insert("r", (1,)))

    def test_repr(self):
        assert repr(insert("r1", (4, 2))) == "insert(r1, [4,2])"
        assert repr(delete("r2", (2, 3))) == "delete(r2, [2,3])"

    def test_modify_is_delete_then_insert(self):
        ops = modify("r", (1, 2), (1, 3))
        assert ops == [delete("r", (1, 2)), insert("r", (1, 3))]
