"""Unit tests for the write-ahead log (``repro.durability.wal``)."""

import os

import pytest

from repro.durability import (
    EVENT,
    RECV,
    WriteAheadLog,
    read_latest_snapshot,
    read_records,
    recover,
)
from repro.durability.wal import (
    LOCK_FILENAME,
    SNAPSHOT_PREFIX,
    WAL_FILENAME,
    _snapshot_name,
)
from repro.errors import RecoveryError, WalCorruption, WalLocked
from repro.messaging.messages import UpdateNotification
from repro.relational.engine import evaluate_view
from repro.relational.schema import RelationSchema
from repro.relational.views import View
from repro.source.memory import MemorySource
from repro.source.updates import insert

SCHEMAS = [RelationSchema("r1", ("W", "X")), RelationSchema("r2", ("X", "Y"))]
INITIAL = {"r1": [(1, 2), (2, 3)], "r2": [(2, 5), (3, 6)]}


def fresh_eca():
    from repro.core.eca import ECA

    view = View.natural_join("V", SCHEMAS, ["W", "Y"])
    source = MemorySource(SCHEMAS, INITIAL)
    return source, ECA(view, evaluate_view(view, source.snapshot()))


def wal_path(directory):
    return os.path.join(str(directory), WAL_FILENAME)


class TestAppendAndRead:
    def test_lsns_advance_and_records_read_back(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path))
        assert wal.append(RECV, {"n": 1}) == 1
        assert wal.append(EVENT, {"n": 2}) == 2
        wal.close()
        records, torn = read_records(str(tmp_path))
        assert torn == 0
        assert [(r["lsn"], r["type"]) for r in records] == [(1, RECV), (2, EVENT)]
        assert records[0]["data"] == {"n": 1}

    def test_reopen_resumes_lsn_sequence(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path))
        wal.append(RECV, {})
        wal.close()
        wal = WriteAheadLog(str(tmp_path))
        assert wal.append(RECV, {}) == 2
        wal.close()

    def test_missing_file_reads_empty(self, tmp_path):
        assert read_records(str(tmp_path)) == ([], 0)


class TestCorruption:
    def write_two(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path))
        wal.append(RECV, {"n": 1})
        wal.append(RECV, {"n": 2})
        wal.close()

    def test_torn_tail_is_dropped_silently(self, tmp_path):
        self.write_two(tmp_path)
        with open(wal_path(tmp_path), "a", encoding="utf-8") as handle:
            handle.write('{"lsn":3,"type":"recv","da')  # crash mid-append
        records, torn = read_records(str(tmp_path))
        assert torn == 1
        assert [r["lsn"] for r in records] == [1, 2]

    def test_corruption_mid_file_raises(self, tmp_path):
        self.write_two(tmp_path)
        lines = open(wal_path(tmp_path), encoding="utf-8").readlines()
        lines[0] = lines[0][:20] + "\n"  # damage a non-final record
        with open(wal_path(tmp_path), "w", encoding="utf-8") as handle:
            handle.writelines(lines)
        with pytest.raises(WalCorruption):
            read_records(str(tmp_path))

    def test_crc_catches_bit_flips(self, tmp_path):
        self.write_two(tmp_path)
        text = open(wal_path(tmp_path), encoding="utf-8").read()
        with open(wal_path(tmp_path), "w", encoding="utf-8") as handle:
            handle.write(text.replace('"n":2', '"n":7'))
        records, torn = read_records(str(tmp_path))
        assert torn == 1  # the flipped record fails its CRC
        assert [r["data"]["n"] for r in records] == [1]

    def test_non_advancing_lsn_raises(self, tmp_path):
        self.write_two(tmp_path)
        lines = open(wal_path(tmp_path), encoding="utf-8").readlines()
        with open(wal_path(tmp_path), "w", encoding="utf-8") as handle:
            handle.writelines([lines[0], lines[0]])
        with pytest.raises(WalCorruption):
            read_records(str(tmp_path))

    def test_reopen_truncates_torn_tail(self, tmp_path):
        self.write_two(tmp_path)
        with open(wal_path(tmp_path), "a", encoding="utf-8") as handle:
            handle.write('{"half')
        wal = WriteAheadLog(str(tmp_path))
        wal.append(RECV, {"n": 3})  # must not weld onto the partial line
        wal.close()
        records, torn = read_records(str(tmp_path))
        assert torn == 0
        assert [r["lsn"] for r in records] == [1, 2, 3]


class TestSnapshots:
    def test_snapshot_compacts_log_and_is_readable(self, tmp_path):
        _, algorithm = fresh_eca()
        wal = WriteAheadLog(str(tmp_path))
        for n in range(5):
            wal.append(EVENT, {"n": n})
        lsn = wal.snapshot(algorithm)
        assert lsn == 5
        # Compaction removed records covered by the snapshot.
        assert read_records(str(tmp_path))[0] == []
        got_lsn, payload = read_latest_snapshot(str(tmp_path))
        assert got_lsn == 5 and payload["$"] == "algo"
        wal.close()

    def test_maybe_snapshot_honours_cadence(self, tmp_path):
        _, algorithm = fresh_eca()
        wal = WriteAheadLog(str(tmp_path), snapshot_every=3)
        for _ in range(2):
            wal.append(EVENT, {})
            assert wal.maybe_snapshot(algorithm) is None
        wal.append(EVENT, {})
        assert wal.maybe_snapshot(algorithm) == 3
        assert wal.snapshots_taken == 1
        wal.close()

    def test_old_snapshots_pruned(self, tmp_path):
        _, algorithm = fresh_eca()
        wal = WriteAheadLog(str(tmp_path), keep_snapshots=2)
        for _ in range(4):
            wal.append(EVENT, {})
            wal.snapshot(algorithm)
        names = [n for n in os.listdir(str(tmp_path)) if n.startswith(SNAPSHOT_PREFIX)]
        assert len(names) == 2
        wal.close()

    def test_corrupt_newest_snapshot_falls_back(self, tmp_path):
        _, algorithm = fresh_eca()
        wal = WriteAheadLog(str(tmp_path))
        wal.append(EVENT, {})
        wal.snapshot(algorithm)
        wal.append(EVENT, {})
        second = wal.snapshot(algorithm)
        wal.close()
        with open(
            os.path.join(str(tmp_path), _snapshot_name(second)), "w", encoding="utf-8"
        ) as handle:
            handle.write("garbage")
        lsn, _ = read_latest_snapshot(str(tmp_path))
        assert lsn == 1

    def test_no_snapshot_raises_recovery_error(self, tmp_path):
        with pytest.raises(RecoveryError):
            read_latest_snapshot(str(tmp_path))

    def test_all_snapshots_invalid_raises_corruption(self, tmp_path):
        _, algorithm = fresh_eca()
        wal = WriteAheadLog(str(tmp_path), keep_snapshots=1)
        wal.append(EVENT, {})
        lsn = wal.snapshot(algorithm)
        wal.close()
        with open(
            os.path.join(str(tmp_path), _snapshot_name(lsn)), "w", encoding="utf-8"
        ) as handle:
            handle.write("garbage")
        with pytest.raises(WalCorruption):
            read_latest_snapshot(str(tmp_path))

    def test_parameter_validation(self, tmp_path):
        with pytest.raises(ValueError):
            WriteAheadLog(str(tmp_path), snapshot_every=0)
        with pytest.raises(ValueError):
            WriteAheadLog(str(tmp_path), keep_snapshots=0)


class TestLocking:
    """One WAL directory, one writer: ``wal.lock`` enforces exclusivity."""

    def lock_path(self, tmp_path):
        return os.path.join(str(tmp_path), LOCK_FILENAME)

    def test_lock_file_holds_owner_pid(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path))
        with open(self.lock_path(tmp_path), encoding="utf-8") as handle:
            assert int(handle.read()) == os.getpid()
        wal.close()

    def test_second_writer_is_rejected(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path))
        with pytest.raises(WalLocked):
            WriteAheadLog(str(tmp_path))
        wal.close()

    def test_close_releases_the_lock(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path))
        wal.append(RECV, {"n": 1})
        wal.close()
        assert not os.path.exists(self.lock_path(tmp_path))
        second = WriteAheadLog(str(tmp_path))
        assert second.append(RECV, {"n": 2}) == 2
        second.close()

    def test_stale_lock_from_dead_process_is_stolen(self, tmp_path):
        # A pid far above any live process: the holder crashed without
        # releasing, so a new writer may steal the lock.
        with open(self.lock_path(tmp_path), "w", encoding="utf-8") as handle:
            handle.write("999999999")
        wal = WriteAheadLog(str(tmp_path))
        with open(self.lock_path(tmp_path), encoding="utf-8") as handle:
            assert int(handle.read()) == os.getpid()
        wal.close()

    def test_unreadable_lock_body_counts_as_stale(self, tmp_path):
        with open(self.lock_path(tmp_path), "w", encoding="utf-8") as handle:
            handle.write("not-a-pid")
        wal = WriteAheadLog(str(tmp_path))
        wal.append(RECV, {})
        wal.close()

    def test_wal_locked_is_a_durability_error(self):
        from repro.errors import DurabilityError

        assert issubclass(WalLocked, DurabilityError)

    def test_missing_parent_directories_are_created(self, tmp_path):
        nested = os.path.join(str(tmp_path), "a", "b", "shard-0")
        wal = WriteAheadLog(nested)
        wal.append(RECV, {"n": 1})
        wal.close()
        records, torn = read_records(nested)
        assert torn == 0 and [r["lsn"] for r in records] == [1]


class TestRecoverFromWal:
    def test_snapshot_plus_replay_rebuilds_pending_state(self, tmp_path):
        from repro.durability import encode_value

        source, algorithm = fresh_eca()
        wal = WriteAheadLog(str(tmp_path))
        wal.snapshot(algorithm)  # genesis
        update = insert("r1", (7, 2))
        source.apply_update(update)
        notification = UpdateNotification(update, 1)
        wal.append(
            RECV,
            {"channel": "source->wh", "origin": "source", "message": encode_value(notification)},
        )
        algorithm.handle_update(notification)
        wal.close()

        result = recover(str(tmp_path))
        assert result.replayed == 1
        assert result.snapshot_lsn == 0
        twin = result.algorithm
        assert twin.view_state() == algorithm.view_state()
        assert twin.pending_query_ids() == algorithm.pending_query_ids()
        assert [req for _, req in result.reissue] == [
            req for _, req in algorithm.pending_requests()
        ]
