"""Unit tests for Table 1 parameters and the Appendix D closed forms."""

import pytest

from repro.costmodel import analytic
from repro.costmodel.parameters import DEFAULTS, PaperParameters


class TestParameters:
    def test_table1_defaults(self):
        p = PaperParameters()
        assert (p.C, p.S, p.sigma, p.J, p.K) == (100, 4, 0.5, 4, 20)

    def test_derived_quantities(self):
        p = PaperParameters()
        assert p.I == 5          # ceil(100/20)
        assert p.I_prime == 3    # ceil(100/40)

    def test_derived_quantities_round_up(self):
        p = PaperParameters(cardinality=101)
        assert p.I == 6
        assert p.I_prime == 3

    def test_replace(self):
        p = PaperParameters().replace(cardinality=50)
        assert p.C == 50
        assert p.J == 4
        assert DEFAULTS.C == 100  # original untouched

    def test_replace_unknown_field_raises(self):
        with pytest.raises(TypeError):
            PaperParameters().replace(bogus=1)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"cardinality": 0},
            {"tuple_bytes": 0},
            {"selectivity": 1.5},
            {"selectivity": -0.1},
            {"join_factor": 0},
            {"block_factor": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            PaperParameters(**kwargs)

    def test_as_dict_and_equality(self):
        assert PaperParameters() == PaperParameters()
        assert PaperParameters().as_dict()["I"] == 5
        assert PaperParameters() != PaperParameters(cardinality=5)


class TestMessages:
    def test_rv_extremes(self):
        # 2 messages when recomputing once, 2k when recomputing always.
        assert analytic.messages_rv(10, 10) == 2
        assert analytic.messages_rv(10, 1) == 20

    def test_rv_partial_period_rounds_up(self):
        assert analytic.messages_rv(10, 3) == 8  # ceil(10/3)=4 recomputes

    def test_eca_always_2k(self):
        assert analytic.messages_eca(10) == 20
        assert analytic.messages_eca(0) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            analytic.messages_rv(-1, 1)
        with pytest.raises(ValueError):
            analytic.messages_rv(1, 0)
        with pytest.raises(ValueError):
            analytic.messages_eca(-1)


class TestBytesFormulas:
    """Spot-check against Table 1 defaults: S=4, sigma=.5, C=100, J=4."""

    def test_rv_best(self):
        assert analytic.bytes_rv_best(DEFAULTS) == 4 * 0.5 * 100 * 16  # 3200

    def test_rv_worst(self):
        assert analytic.bytes_rv_worst(DEFAULTS, 3) == 3 * 3200

    def test_eca_best(self):
        assert analytic.bytes_eca_best(DEFAULTS, 3) == 3 * 4 * 0.5 * 16  # 96

    def test_eca_worst_distinct3(self):
        # 3 S sigma J (J+1) = 3*4*0.5*4*5 = 120
        assert analytic.bytes_eca_worst_distinct3(DEFAULTS) == 120

    def test_eca_worst_k_form(self):
        # k S sigma J^2 + k(k-1) S sigma J / 3, k=3: 96 + 16 = 112
        assert analytic.bytes_eca_worst(DEFAULTS, 3) == pytest.approx(112)

    def test_eca_worst_reduces_to_best_at_k1(self):
        assert analytic.bytes_eca_worst(DEFAULTS, 1) == analytic.bytes_eca_best(
            DEFAULTS, 1
        )

    def test_figure_6_3_crossovers(self):
        # The paper's headline claims: crossover at k=100 (best) and ~30
        # (worst) against recomputing once.
        k_best = analytic.crossover_k(
            lambda p, k: analytic.bytes_eca_best(p, k),
            lambda p, k: analytic.bytes_rv_best(p),
            DEFAULTS,
        )
        k_worst = analytic.crossover_k(
            lambda p, k: analytic.bytes_eca_worst(p, k),
            lambda p, k: analytic.bytes_rv_best(p),
            DEFAULTS,
        )
        assert k_best == 100
        assert k_worst == 30

    def test_rv_worst_always_dominates_eca_worst(self):
        for k in (1, 10, 50, 120):
            assert analytic.bytes_rv_worst(DEFAULTS, k) > analytic.bytes_eca_worst(
                DEFAULTS, k
            )


class TestIOScenario1:
    def test_three_update_forms(self):
        # J=4 < I=5: best 3*4+3=15, worst 3*4+6=18.
        assert analytic.io1_eca_best_3(DEFAULTS) == 15
        assert analytic.io1_eca_worst_3(DEFAULTS) == 18

    def test_min_behavior_when_j_exceeds_i(self):
        p = DEFAULTS.replace(join_factor=50)  # J=50 > I=5
        assert analytic.io1_eca_best_3(p) == 3 * 5 + 3

    def test_rv_forms(self):
        assert analytic.io1_rv_best(DEFAULTS) == 15
        assert analytic.io1_rv_worst(DEFAULTS, 4) == 60

    def test_k_forms(self):
        assert analytic.io1_eca_best(DEFAULTS, 3) == 15
        assert analytic.io1_eca_worst(DEFAULTS, 3) == 15 + 2

    def test_figure_6_4_crossover_at_3(self):
        k = analytic.crossover_k(
            lambda p, kk: analytic.io1_eca_best(p, kk),
            lambda p, kk: analytic.io1_rv_best(p),
            DEFAULTS,
        )
        assert k == 3


class TestIOScenario2:
    def test_rv_best_is_i_cubed(self):
        assert analytic.io2_rv_best(DEFAULTS) == 125

    def test_rv_worst(self):
        assert analytic.io2_rv_worst(DEFAULTS, 2) == 250

    def test_eca_forms(self):
        assert analytic.io2_eca_best_3(DEFAULTS) == 45   # 3*5*3
        assert analytic.io2_eca_worst_3(DEFAULTS) == 60  # 3*5*4
        assert analytic.io2_eca_best(DEFAULTS, 3) == 45
        assert analytic.io2_eca_worst(DEFAULTS, 3) == 45 + 10

    def test_figure_6_5_crossovers(self):
        # The worst case crosses RVBest in the paper's 5 < k < 8 window;
        # the best case crosses at k = ceil(125/15) = 9 (~8.3 continuous).
        k_worst = analytic.crossover_k(
            lambda p, kk: analytic.io2_eca_worst(p, kk),
            lambda p, kk: analytic.io2_rv_best(p),
            DEFAULTS,
        )
        k_best = analytic.crossover_k(
            lambda p, kk: analytic.io2_eca_best(p, kk),
            lambda p, kk: analytic.io2_rv_best(p),
            DEFAULTS,
        )
        assert 5 < k_worst < 8
        assert k_best == 9


class TestCrossoverHelper:
    def test_no_crossover_raises(self):
        with pytest.raises(ValueError):
            analytic.crossover_k(
                lambda p, k: 0.0, lambda p, k: 1.0, DEFAULTS, k_max=10
            )
