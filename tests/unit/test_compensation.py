"""Unit tests for the shared compensation algebra."""

import pytest

from repro.core.compensation import (
    backdate,
    batch_delta_query,
    pending_compensation,
    staged_compensation,
)
from repro.relational.bag import SignedBag
from repro.relational.expressions import Query
from repro.source.updates import delete, insert


@pytest.fixture
def state():
    return {
        "r1": SignedBag.from_rows([(1, 2), (4, 2)]),
        "r2": SignedBag.from_rows([(2, 3)]),
    }


class TestBackdate:
    def test_empty_updates_is_identity(self, view_w):
        q = view_w.as_query()
        assert backdate(q, []) == q

    def test_single_update_is_lemma_b2_form(self, view_w, state):
        u = insert("r2", (2, 9))
        q = view_w.as_query()
        result = backdate(q, [u])
        # D(Q, [U]) = Q - Q<U>
        expected = q - q.substitute(u.relation, u.signed_tuple())
        assert result.evaluate(state) == expected.evaluate(state)

    def test_backdate_recovers_pre_update_value(self, view_w, state):
        u = insert("r1", (7, 2))
        q = view_w.as_query()
        before = q.evaluate(state)
        after = dict(state)
        after["r1"] = state["r1"] + SignedBag.singleton((7, 2))
        assert backdate(q, [u]).evaluate(after) == before

    def test_backdate_two_updates(self, view_w, state):
        u1, u2 = insert("r1", (7, 2)), delete("r2", (2, 3))
        q = view_w.as_query()
        before = q.evaluate(state)
        s1 = dict(state)
        s1["r1"] = state["r1"] + SignedBag.singleton((7, 2))
        s2 = dict(s1)
        s2["r2"] = s1["r2"] - SignedBag.singleton((2, 3))
        assert backdate(q, [u1, u2]).evaluate(s2) == before

    def test_empty_query_stays_empty(self):
        assert backdate(Query(), [insert("r1", (1, 2))]).is_empty()


class TestBatchDeltaQuery:
    def test_telescopes_to_full_delta(self, view_w, state):
        batch = [insert("r1", (7, 2)), insert("r2", (2, 8)), delete("r1", (1, 2))]
        post = {
            "r1": state["r1"]
            + SignedBag.singleton((7, 2))
            - SignedBag.singleton((1, 2)),
            "r2": state["r2"] + SignedBag.singleton((2, 8)),
        }
        delta = batch_delta_query(view_w, batch).evaluate(post)
        assert view_w.evaluate(state) + delta == view_w.evaluate(post)

    def test_irrelevant_updates_skipped(self, view_w, state):
        batch = [insert("zzz", (0,)), insert("r1", (7, 2))]
        post = {
            "r1": state["r1"] + SignedBag.singleton((7, 2)),
            "r2": state["r2"],
        }
        delta = batch_delta_query(view_w, batch).evaluate(post)
        assert view_w.evaluate(state) + delta == view_w.evaluate(post)

    def test_empty_batch_is_empty_query(self, view_w):
        assert batch_delta_query(view_w, []).is_empty()

    def test_same_relation_twice_in_batch(self, view_w, state):
        batch = [insert("r1", (7, 2)), insert("r1", (8, 2))]
        post = {
            "r1": state["r1"]
            + SignedBag.from_rows([(7, 2), (8, 2)]),
            "r2": state["r2"],
        }
        delta = batch_delta_query(view_w, batch).evaluate(post)
        assert view_w.evaluate(state) + delta == view_w.evaluate(post)


class TestPendingCompensation:
    def test_corrects_contaminated_answer(self, view_w, state):
        """A pending query evaluated post-batch, plus its compensation
        evaluated post-batch, equals the intended pre-batch answer."""
        pending = view_w.substitute("r2", insert("r2", (2, 3)).signed_tuple())
        batch = [insert("r1", (7, 2)), delete("r1", (4, 2))]
        post = {
            "r1": state["r1"]
            + SignedBag.singleton((7, 2))
            - SignedBag.singleton((4, 2)),
            "r2": state["r2"],
        }
        correction = pending_compensation(pending, batch)
        assert (
            pending.evaluate(post) + correction.evaluate(post)
            == pending.evaluate(state)
        )

    def test_untouched_query_needs_no_compensation(self, view_w):
        pending = view_w.as_query()
        assert pending_compensation(pending, [insert("zzz", (1,))]).is_empty()


class TestStagedCompensation:
    def test_full_stage_equals_pending_compensation(self, view_w, state):
        pending = view_w.substitute("r2", insert("r2", (2, 3)).signed_tuple())
        batch = [insert("r1", (7, 2)), delete("r1", (4, 2))]
        staged = staged_compensation(pending, batch, len(batch))
        full = pending_compensation(pending, batch)
        assert staged.evaluate(state) == full.evaluate(state)

    def test_partial_stage_corrects_prefix_only(self, view_w, state):
        """Query saw only batch[0]; its correction, evaluated post-batch,
        must bring the prefix-state answer back to the pre-batch one."""
        pending = view_w.substitute("r2", insert("r2", (2, 3)).signed_tuple())
        u1, u2 = insert("r1", (7, 2)), insert("r1", (9, 2))
        mid = {
            "r1": state["r1"] + SignedBag.singleton((7, 2)),
            "r2": state["r2"],
        }
        post = {
            "r1": mid["r1"] + SignedBag.singleton((9, 2)),
            "r2": state["r2"],
        }
        correction = staged_compensation(pending, [u1, u2], 1)
        assert (
            pending.evaluate(mid) + correction.evaluate(post)
            == pending.evaluate(state)
        )

    def test_zero_seen_is_empty(self, view_w):
        pending = view_w.as_query()
        assert staged_compensation(pending, [insert("r1", (1, 2))], 0).is_empty()
