"""Canonical term/query signatures: the shared-compensation contract.

The planner (:mod:`repro.warehouse.planner`) groups member views'
compensating queries by :func:`repro.relational.signature.query_signature`
and ships one request per group, so the entire soundness of sharing
rests on one implication, pinned here both by construction (alias
invariance, sensitivity to every semantic ingredient) and by a
Hypothesis property: **signature equality implies evaluation equality on
every state**.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.relational.bag import SignedBag
from repro.relational.conditions import And, Attr, Comparison, Const, Not, TrueCondition
from repro.relational.expressions import BoundOperand, Query, RelationOperand, Term
from repro.relational.schema import RelationSchema
from repro.relational.signature import query_signature, term_signature
from repro.relational.tuples import MINUS, PLUS, SignedTuple

R1 = RelationSchema("r1", ("W", "X"), key=("W",))
R2 = RelationSchema("r2", ("X", "Y"), key=("Y",))


def join_term(
    aliases=None,
    projection=("W", "Y"),
    condition=None,
    coefficient=1,
    bound=None,
):
    """``pi_projection(sigma_condition(r1 x r2))``, optionally aliased.

    ``bound`` replaces the r1 operand with a :class:`BoundOperand` over
    the given signed tuple — the shape compensating queries take.
    """
    s1 = R1.aliased(aliases[0]) if aliases else R1
    s2 = R2.aliased(aliases[1]) if aliases else R2
    first = BoundOperand(s1, bound) if bound is not None else RelationOperand(s1)
    return Term(
        [first, RelationOperand(s2)],
        projection,
        condition=condition,
        coefficient=coefficient,
    )


SAMPLE_STATE = {
    "r1": SignedBag({(1, 2): 1, (2, 3): 1, (4, 2): 2}),
    "r2": SignedBag({(2, 5): 1, (3, 6): 1, (2, 7): 1}),
}


class TestAliasInvariance:
    def test_renamed_operands_share_a_signature(self):
        plain = join_term()
        renamed = join_term(aliases=("left", "right"))
        assert term_signature(plain) == term_signature(renamed)
        assert plain.evaluate(SAMPLE_STATE) == renamed.evaluate(SAMPLE_STATE)

    def test_qualified_condition_names_resolve_before_comparison(self):
        plain = join_term(condition=Comparison(Attr("r1.W"), "<", Const(3)))
        renamed = join_term(
            aliases=("a", "b"),
            condition=Comparison(Attr("a.W"), "<", Const(3)),
        )
        assert term_signature(plain) == term_signature(renamed)
        assert plain.evaluate(SAMPLE_STATE) == renamed.evaluate(SAMPLE_STATE)

    def test_bound_operand_survives_renaming(self):
        update = SignedTuple((9, 2), PLUS)
        plain = join_term(bound=update)
        renamed = join_term(aliases=("a", "b"), bound=update)
        assert term_signature(plain) == term_signature(renamed)


class TestSensitivity:
    def test_different_constant_differs(self):
        one = join_term(condition=Comparison(Attr("W"), "<", Const(3)))
        two = join_term(condition=Comparison(Attr("W"), "<", Const(4)))
        assert term_signature(one) != term_signature(two)

    def test_different_projection_differs(self):
        assert term_signature(join_term(projection=("W", "Y"))) != term_signature(
            join_term(projection=("Y", "W"))
        )

    def test_coefficient_differs(self):
        assert term_signature(join_term()) != term_signature(
            join_term(coefficient=-1)
        )

    def test_bound_tuple_value_and_sign_differ(self):
        plus = join_term(bound=SignedTuple((9, 2), PLUS))
        minus = join_term(bound=SignedTuple((9, 2), MINUS))
        other = join_term(bound=SignedTuple((8, 2), PLUS))
        signatures = {term_signature(t) for t in (plus, minus, other)}
        assert len(signatures) == 3

    def test_condition_structure_differs(self):
        cmp_ = Comparison(Attr("W"), "<", Const(3))
        assert term_signature(join_term(condition=cmp_)) != term_signature(
            join_term(condition=Not(cmp_))
        )
        assert term_signature(join_term(condition=And(cmp_, TrueCondition()))) != (
            term_signature(join_term(condition=cmp_))
        )

    def test_different_base_relation_differs(self):
        other = RelationSchema("r3", ("W", "X"), key=("W",))
        one = Term([RelationOperand(R1)], ("W",))
        two = Term([RelationOperand(other)], ("W",))
        assert term_signature(one) != term_signature(two)


class TestQuerySignature:
    def test_term_order_is_a_multiset(self):
        a = join_term(coefficient=1)
        b = join_term(coefficient=-1)
        assert query_signature(Query([a, b])) == query_signature(Query([b, a]))

    def test_duplicate_terms_are_counted(self):
        a = join_term()
        assert query_signature(Query([a])) != query_signature(Query([a, a]))

    def test_signatures_are_hashable_dict_keys(self):
        groups = {}
        groups[query_signature(Query([join_term()]))] = "first"
        groups[query_signature(Query([join_term(aliases=("a", "b"))]))] = "second"
        assert list(groups.values()) == ["second"]


# --------------------------------------------------------------------- #
# The load-bearing property: signature equality => evaluation equality.
# Queries are drawn from a deliberately small space so collisions (the
# interesting case) are common, and the second query is built over
# renamed operands so the invariance is exercised, not assumed.
# --------------------------------------------------------------------- #

_values = st.integers(min_value=0, max_value=3)

_conditions = st.one_of(
    st.none(),
    st.builds(
        lambda col, op, value: Comparison(Attr(col), op, Const(value)),
        st.sampled_from(["W", "Y"]),
        st.sampled_from(["=", "<", ">="]),
        _values,
    ),
)

_terms = st.builds(
    lambda projection, condition, coefficient, bound: {
        "projection": projection,
        "condition": condition,
        "coefficient": coefficient,
        "bound": bound,
    },
    st.sampled_from([("W", "Y"), ("W",), ("Y", "W")]),
    _conditions,
    st.sampled_from([1, -1]),
    st.one_of(
        st.none(),
        st.builds(
            lambda w, x, sign: SignedTuple((w, x), sign),
            _values,
            _values,
            st.sampled_from([PLUS, MINUS]),
        ),
    ),
)


def _rows(pairs):
    bag = SignedBag()
    for row in pairs:
        bag.add(tuple(row))
    return bag


_states = st.builds(
    lambda r1, r2: {"r1": _rows(r1), "r2": _rows(r2)},
    st.lists(st.tuples(_values, _values), max_size=6),
    st.lists(st.tuples(_values, _values), max_size=6),
)


@settings(max_examples=200, deadline=None)
@given(
    specs_one=st.lists(_terms, min_size=1, max_size=2),
    specs_two=st.lists(_terms, min_size=1, max_size=2),
    aliased=st.booleans(),
    state=_states,
)
def test_signature_equality_implies_evaluation_equality(
    specs_one, specs_two, aliased, state
):
    def build(spec, aliases):
        return join_term(aliases=aliases, **spec)

    one = Query([build(spec, None) for spec in specs_one])
    two = Query(
        [build(spec, ("a", "b") if aliased else None) for spec in specs_two]
    )
    if query_signature(one) == query_signature(two):
        assert one.evaluate(state) == two.evaluate(state)
    else:
        # Not required by the planner (it only needs the implication
        # above), but drawing from this small space the distinct-signature
        # case should dominate; evaluating both keeps it exercised.
        one.evaluate(state)
        two.evaluate(state)
