"""Unit tests for the hash-join evaluation engine."""

import pytest

from repro.errors import ExpressionError
from repro.relational.bag import SignedBag
from repro.relational.conditions import Attr, Comparison, Const, Not, Or
from repro.relational.engine import evaluate_query, evaluate_term, evaluate_view
from repro.relational.expressions import Query, RelationOperand, Term
from repro.relational.schema import RelationSchema
from repro.relational.tuples import MINUS, SignedTuple
from repro.relational.views import View


@pytest.fixture
def schemas():
    return [
        RelationSchema("r1", ("W", "X")),
        RelationSchema("r2", ("X", "Y")),
        RelationSchema("r3", ("Y", "Z")),
    ]


@pytest.fixture
def state():
    return {
        "r1": SignedBag.from_rows([(1, 2), (4, 2), (7, 9)]),
        "r2": SignedBag.from_rows([(2, 5), (2, 6), (9, 5)]),
        "r3": SignedBag.from_rows([(5, 0), (6, 8)]),
    }


def chain_view(schemas, projection=("W", "Z")):
    return View.natural_join("V", schemas, projection)


class TestEquivalenceWithReference:
    def test_chain_join_matches_reference(self, schemas, state):
        view = chain_view(schemas)
        term = view.as_query().terms[0]
        assert evaluate_term(term, state) == term.evaluate(state)

    def test_bound_operand(self, schemas, state):
        view = chain_view(schemas)
        query = view.substitute("r2", SignedTuple((2, 5)))
        assert evaluate_query(query, state) == query.evaluate(state)

    def test_negative_bound_tuple(self, schemas, state):
        view = chain_view(schemas)
        query = view.substitute("r1", SignedTuple((1, 2), MINUS))
        assert evaluate_query(query, state) == query.evaluate(state)

    def test_duplicates_and_multiplicities(self, schemas):
        state = {
            "r1": SignedBag({(1, 2): 3}),
            "r2": SignedBag({(2, 5): 2}),
            "r3": SignedBag({(5, 0): 1}),
        }
        view = chain_view(schemas)
        term = view.as_query().terms[0]
        result = evaluate_term(term, state)
        assert result.multiplicity((1, 0)) == 6
        assert result == term.evaluate(state)

    def test_negative_multiplicities_multiply(self, schemas):
        state = {
            "r1": SignedBag({(1, 2): -1}),
            "r2": SignedBag({(2, 5): 2}),
            "r3": SignedBag({(5, 0): 1}),
        }
        term = chain_view(schemas).as_query().terms[0]
        result = evaluate_term(term, state)
        assert result.multiplicity((1, 0)) == -2
        assert result == term.evaluate(state)


class TestConditionHandling:
    def test_non_equality_residual_applied(self, schemas, state):
        view = View.natural_join(
            "V", schemas, ["W", "Z"], Comparison(Attr("W"), ">", Attr("Z"))
        )
        term = view.as_query().terms[0]
        assert evaluate_term(term, state) == term.evaluate(state)

    def test_disjunctive_condition_not_decomposed(self, schemas, state):
        condition = Or(
            Comparison(Attr("r1.X"), "=", Attr("r2.X")),
            Comparison(Attr("W"), "=", Const(7)),
        )
        term = Term(
            [RelationOperand(s) for s in schemas[:2]], ("W",), condition
        )
        small = {"r1": state["r1"], "r2": state["r2"]}
        assert evaluate_term(term, small) == term.evaluate(small)

    def test_negated_equality_is_filter_not_join(self, schemas, state):
        condition = Not(Comparison(Attr("r1.X"), "=", Attr("r2.X")))
        term = Term([RelationOperand(s) for s in schemas[:2]], ("W",), condition)
        small = {"r1": state["r1"], "r2": state["r2"]}
        assert evaluate_term(term, small) == term.evaluate(small)

    def test_single_operand_constant_filter(self, schemas, state):
        term = Term(
            [RelationOperand(schemas[0])],
            ("W",),
            Comparison(Attr("W"), ">", Const(3)),
        )
        result = evaluate_term(term, state)
        assert result == SignedBag.from_rows([(4,), (7,)])

    def test_same_relation_attribute_equality(self, schemas):
        # W = X within r1 is a filter, not a join edge.
        term = Term(
            [RelationOperand(schemas[0])],
            ("W",),
            Comparison(Attr("W"), "=", Attr("X")),
        )
        state = {"r1": SignedBag.from_rows([(2, 2), (1, 3)])}
        assert evaluate_term(term, state) == SignedBag.from_rows([(2,)])

    def test_cartesian_when_no_join_edge(self, schemas):
        term = Term([RelationOperand(schemas[0]), RelationOperand(schemas[2])], ("W", "Z"))
        state = {
            "r1": SignedBag.from_rows([(1, 2)]),
            "r3": SignedBag.from_rows([(5, 0), (6, 8)]),
        }
        result = evaluate_term(term, state)
        assert result == SignedBag.from_rows([(1, 0), (1, 8)])


class TestErrors:
    def test_missing_relation(self, schemas):
        term = chain_view(schemas).as_query().terms[0]
        with pytest.raises(ExpressionError):
            evaluate_term(term, {})


class TestQueryAndView:
    def test_query_sums_terms(self, schemas, state):
        view = chain_view(schemas)
        q = view.as_query() - view.as_query()
        assert evaluate_query(q, state).is_empty()

    def test_evaluate_view_equals_reference(self, schemas, state):
        view = chain_view(schemas)
        assert evaluate_view(view, state) == view.evaluate(state)

    def test_empty_join_short_circuits(self, schemas):
        state = {
            "r1": SignedBag(),
            "r2": SignedBag.from_rows([(2, 5)]),
            "r3": SignedBag.from_rows([(5, 0)]),
        }
        assert evaluate_view(chain_view(schemas), state).is_empty()
