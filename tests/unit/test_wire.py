"""Unit tests for wire codecs and the kernel-level k-update batch.

Three surfaces under test:

- :mod:`repro.messaging.wire` — frame layout, round trips, compression,
  tag/length validation, the registry, and the ``zstd`` import gate;
- :class:`repro.messaging.messages.UpdateBatch` — the protocol carrier
  for coalesced runs, including its codec-v3 persistence tag;
- :class:`repro.kernel.sync.SyncKernel` — ``batch_k`` coalescing and the
  ``warehouse:<name>@<n>`` replay action that pins a logged run's exact
  batching decisions.
"""

import pytest

from repro.core.eca import ECA
from repro.durability.codec import decode_value, encode_value
from repro.errors import ProtocolError, SimulationError
from repro.kernel.sync import REFRESH, SyncKernel
from repro.messaging.channel import FifoChannel
from repro.messaging.messages import (
    QueryAnswer,
    QueryRequest,
    RefreshRequest,
    UpdateBatch,
    UpdateNotification,
)
from repro.messaging.wire import WIRE_CODECS, WireCodec, create_codec
from repro.relational.bag import SignedBag
from repro.relational.schema import RelationSchema
from repro.relational.views import View
from repro.source.memory import MemorySource
from repro.source.updates import insert

SCHEMA = RelationSchema("r", ("A", "B"))


def sample_messages():
    view = View.natural_join("v", [SCHEMA], projection=("A",))
    return [
        UpdateNotification(insert("r", (1, 2)), 1),
        QueryRequest(7, view.as_query()),
        QueryAnswer(7, SignedBag.from_rows([(1,), (1,), (2,)])),
        RefreshRequest(3),
        UpdateBatch(
            (
                UpdateNotification(insert("r", (1, 2)), 1),
                UpdateNotification(insert("r", (3, 4)), 2),
            )
        ),
    ]


class TestWireCodecs:
    @pytest.mark.parametrize("name", ["frame", "zlib"])
    def test_round_trip_every_message_type(self, name):
        codec = create_codec(name)
        for message in sample_messages():
            assert codec.decode(codec.encode(message)) == message

    def test_size_is_the_framed_length(self):
        codec = create_codec("frame")
        for message in sample_messages():
            assert codec.size(message) == len(codec.encode(message))

    def test_zlib_beats_frame_on_redundant_payloads(self):
        answer = QueryAnswer(1, SignedBag.from_rows([(0, 0)] * 200))
        assert create_codec("zlib").size(answer) < create_codec("frame").size(
            answer
        )

    def test_tag_mismatch_is_rejected(self):
        frame = create_codec("frame")
        zlib_codec = create_codec("zlib")
        encoded = frame.encode(RefreshRequest(1))
        with pytest.raises(ProtocolError, match="tag"):
            zlib_codec.decode(encoded)

    def test_truncated_frame_is_rejected(self):
        codec = create_codec("frame")
        with pytest.raises(ProtocolError, match="truncated"):
            codec.decode(b"\x00\x00")

    def test_length_mismatch_is_rejected(self):
        codec = create_codec("frame")
        encoded = codec.encode(RefreshRequest(1))
        with pytest.raises(ProtocolError, match="length mismatch"):
            codec.decode(encoded + b"extra")

    def test_registry_names(self):
        assert WIRE_CODECS == sorted(WIRE_CODECS)
        assert set(WIRE_CODECS) == {"none", "frame", "zlib", "zstd"}

    def test_none_means_no_codec(self):
        assert create_codec("none") is None

    def test_unknown_codec_is_a_protocol_error(self):
        with pytest.raises(ProtocolError, match="unknown wire codec"):
            create_codec("gzip")

    def test_zstd_gate(self):
        try:
            import zstandard  # noqa: F401
        except ImportError:
            with pytest.raises(ProtocolError, match="zstandard"):
                create_codec("zstd")
        else:
            codec = create_codec("zstd")
            message = RefreshRequest(1)
            assert codec.decode(codec.encode(message)) == message

    def test_channel_charges_framed_bytes_and_codec_wins_over_sizer(self):
        message = UpdateNotification(insert("r", (1, 2)), 1)
        codec = create_codec("frame")
        channel = FifoChannel(
            "test", sizer=lambda m: 10_000, codec=codec
        )
        channel.send(message)
        assert channel.sent_bytes == codec.size(message)
        assert isinstance(codec, WireCodec)


class TestUpdateBatch:
    def batch(self):
        return UpdateBatch(
            (
                UpdateNotification(insert("r", (1, 2)), 4),
                UpdateNotification(insert("r", (3, 4)), 5),
                UpdateNotification(insert("r", (5, 6)), 6),
            )
        )

    def test_empty_batch_is_rejected(self):
        with pytest.raises(ValueError):
            UpdateBatch(())

    def test_serial_identity_and_length(self):
        batch = self.batch()
        assert batch.first_serial == 4
        assert batch.serial == 6  # causal identity = last member
        assert len(batch) == 3
        assert batch.updates() == tuple(n.update for n in batch.notifications)

    def test_repr_names_the_serial_span(self):
        assert repr(self.batch()) == "UpdateBatch(#4..#6, k=3)"

    def test_codec_v3_round_trip(self):
        batch = self.batch()
        assert decode_value(encode_value(batch)) == batch


def make_kernel(batch_k=1, n_updates=4):
    schema = RelationSchema("r", ("A", "B"))
    source = MemorySource([schema], {"r": [(1, 2)]})
    view = View.natural_join("v", [schema], projection=("A",))
    workload = [insert("r", (10 + i, i)) for i in range(n_updates)]
    return SyncKernel({"src": source}, ECA(view), workload, batch_k=batch_k)


class TestSyncKernelBatching:
    def test_batch_k_must_be_positive(self):
        with pytest.raises(SimulationError, match="batch_k"):
            make_kernel(batch_k=0)

    def test_batch_k1_never_constructs_a_batch(self):
        kernel = make_kernel(batch_k=1)
        for _ in range(4):
            kernel.step("update")
        kernel.step("warehouse:src")
        details = [e.detail for e in kernel.trace.events]
        assert not any("k=" in d for d in details)

    def test_coalesces_up_to_batch_k(self):
        kernel = make_kernel(batch_k=3)
        for _ in range(4):
            kernel.step("update")
        kernel.step("warehouse:src")  # drains 3 of the 4 notifications
        kernel.step("warehouse:src")  # the leftover single
        details = [e.detail for e in kernel.trace.events]
        assert any("(k=3)" in d for d in details)
        # the fourth notification dispatched alone, no batch marker
        batched = [d for d in details if "(k=" in d]
        assert len(batched) == 1

    def test_replay_action_batches_exactly_n(self):
        kernel = make_kernel(batch_k=1)  # default kernel, explicit @n wins
        for _ in range(3):
            kernel.step("update")
        kernel.step("warehouse:src@2")
        details = [e.detail for e in kernel.trace.events]
        assert any("(k=2)" in d for d in details)

    def test_replay_action_fails_when_the_run_is_short(self):
        kernel = make_kernel(batch_k=1)
        kernel.step("update")
        with pytest.raises(SimulationError, match="only 1"):
            kernel.step("warehouse:src@3")

    def test_replay_action_fails_on_a_non_update_head(self):
        schema = RelationSchema("r", ("A", "B"))
        source = MemorySource([schema], {"r": [(1, 2)]})
        view = View.natural_join("v", [schema], projection=("A",))
        kernel = SyncKernel(
            {"src": source}, ECA(view), [REFRESH, insert("r", (3, 4))]
        )
        kernel.step("update")  # enqueues a RefreshRequest on src's channel
        with pytest.raises(SimulationError, match="channel head"):
            kernel.step("warehouse:src@2")

    def test_batched_run_converges_to_the_unbatched_view(self):
        def drain(kernel):
            while not kernel.is_done():
                kernel.step(kernel.available_actions()[0])
            return kernel.algorithm.view_state()

        assert drain(make_kernel(batch_k=1)) == drain(make_kernel(batch_k=4))
