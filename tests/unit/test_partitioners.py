"""Unit tests for ``repro.sharding`` placement: partitioners and plans."""

import zlib

import pytest

from repro.core.eca import ECA
from repro.errors import SimulationError
from repro.relational.engine import evaluate_view
from repro.relational.schema import RelationSchema
from repro.relational.views import View
from repro.sharding import (
    ExplicitPartitioner,
    HashPartitioner,
    Partitioner,
    RangePartitioner,
    make_partitioner,
    plan_shards,
)
from repro.source.memory import MemorySource
from repro.warehouse.catalog import WarehouseCatalog

KEYS = [(f"V{i}",) for i in range(8)]


def build_catalog(n_views):
    """``n_views`` independent two-relation join views, one source each."""
    sources = {}
    algorithms = {}
    for index in range(n_views):
        prefix = f"s{index}"
        schemas = [
            RelationSchema(f"{prefix}r1", ("W", "X")),
            RelationSchema(f"{prefix}r2", ("X", "Y")),
        ]
        source = MemorySource(
            schemas,
            {f"{prefix}r1": [(1, 2)], f"{prefix}r2": [(2, 5)]},
        )
        sources[prefix] = source
        view = View.natural_join(f"V{index}", schemas, ["W", "Y"])
        algorithms[f"V{index}"] = ECA(
            view, evaluate_view(view, source.snapshot())
        )
    owners = {
        relation: name
        for name, source in sources.items()
        for relation in source.snapshot()
    }
    return WarehouseCatalog(algorithms), owners


class TestHashPartitioner:
    def test_total_and_in_range(self):
        p = HashPartitioner(3)
        for key in KEYS:
            assert 0 <= p.shard_of(key) < 3

    def test_matches_crc32_of_canonical_encoding(self):
        p = HashPartitioner(5)
        assert p.shard_of(("V1",)) == zlib.crc32(b"('V1',)") % 5

    def test_stable_across_instances(self):
        assert [HashPartitioner(4).shard_of(k) for k in KEYS] == [
            HashPartitioner(4).shard_of(k) for k in KEYS
        ]

    def test_rejects_zero_shards(self):
        with pytest.raises(SimulationError):
            HashPartitioner(0)


class TestRangePartitioner:
    def test_boundaries_split_the_key_space(self):
        p = RangePartitioner([("V3",), ("V6",)])
        assert p.shards == 3
        assert p.shard_of(("V0",)) == 0
        assert p.shard_of(("V3",)) == 1  # boundary key opens its shard
        assert p.shard_of(("V5",)) == 1
        assert p.shard_of(("V6",)) == 2
        assert p.shard_of(("V9",)) == 2

    def test_empty_boundaries_is_one_shard(self):
        p = RangePartitioner(())
        assert p.shards == 1
        assert all(p.shard_of(k) == 0 for k in KEYS)

    def test_non_increasing_boundaries_rejected(self):
        with pytest.raises(SimulationError):
            RangePartitioner([("V6",), ("V3",)])
        with pytest.raises(SimulationError):
            RangePartitioner([("V3",), ("V3",)])


class TestExplicitPartitioner:
    def test_literal_table_and_inferred_shard_count(self):
        p = ExplicitPartitioner({("V0",): 0, ("V1",): 2})
        assert p.shards == 3
        assert p.shard_of(("V1",)) == 2

    def test_unknown_key_is_an_error_not_a_default(self):
        p = ExplicitPartitioner({("V0",): 0})
        with pytest.raises(SimulationError):
            p.shard_of(("stray",))

    def test_assignment_outside_declared_shards_rejected(self):
        with pytest.raises(SimulationError):
            ExplicitPartitioner({("V0",): 5}, shards=2)

    def test_empty_table_rejected(self):
        with pytest.raises(SimulationError):
            ExplicitPartitioner({})


class TestMakePartitioner:
    def test_instance_passes_through_after_count_check(self):
        p = HashPartitioner(2)
        assert make_partitioner(p, 2) is p
        with pytest.raises(SimulationError):
            make_partitioner(p, 3)

    def test_hash_spec(self):
        p = make_partitioner("hash", 4)
        assert isinstance(p, HashPartitioner) and p.shards == 4

    def test_range_spec_derives_boundaries_from_keys(self):
        p = make_partitioner("range", 2, KEYS)
        assert isinstance(p, RangePartitioner)
        # Near-equal split: half the sorted key universe per shard.
        assert sorted(p.shard_of(k) for k in KEYS) == [0] * 4 + [1] * 4

    def test_range_spec_single_shard_needs_no_keys(self):
        assert make_partitioner("range", 1).shard_of(("V0",)) == 0

    def test_range_spec_needs_one_view_per_shard(self):
        with pytest.raises(SimulationError):
            make_partitioner("range", 4, KEYS[:3])

    def test_unknown_spec_rejected(self):
        with pytest.raises(SimulationError):
            make_partitioner("round-robin", 2)


class TestPlanShards:
    def test_assignment_covers_every_member_view(self):
        catalog, owners = build_catalog(4)
        plan = plan_shards(catalog, 2, "hash", owners)
        assert sorted(plan.assignment) == [f"V{i}" for i in range(4)]
        assert set(plan.assignment.values()) <= {0, 1}
        # Per-shard catalogs reuse the original member objects.
        for name, shard in plan.assignment.items():
            assert plan.algorithms[shard].algorithms[name] is catalog.algorithms[name]

    def test_interest_maps_each_relation_to_its_owning_shard(self):
        catalog, owners = build_catalog(4)
        plan = plan_shards(catalog, 2, "hash", owners)
        assert sorted(plan.interest) == sorted(owners)
        for index in range(4):
            shard = plan.assignment[f"V{index}"]
            assert plan.interest[f"s{index}r1"] == (shard,)
            assert plan.interest[f"s{index}r2"] == (shard,)

    def test_empty_shards_get_no_catalog(self):
        catalog, owners = build_catalog(2)
        plan = plan_shards(catalog, 8, ExplicitPartitioner(
            {("V0",): 0, ("V1",): 7}, shards=8
        ), owners)
        assert plan.shard_ids == (0, 7)

    def test_bare_single_view_algorithm_is_wrapped(self):
        catalog, owners = build_catalog(1)
        member = catalog.algorithms["V0"]
        plan = plan_shards(member, 1, "hash", owners)
        assert plan.shard_ids == (0,)
        assert plan.algorithms[0].algorithms == {"V0": member}

    def test_partitioner_out_of_range_is_caught(self):
        catalog, owners = build_catalog(2)

        class Escapee(Partitioner):
            kind = "escapee"

            def shard_of(self, key):
                return self.shards  # one past the end

        with pytest.raises(SimulationError):
            plan_shards(catalog, 2, Escapee(2), owners)

    def test_spanning_algorithm_cannot_be_sharded(self):
        from repro.core.registry import create_algorithm

        schemas = [
            RelationSchema("ar", ("A", "B"), key=("A",)),
            RelationSchema("br", ("B", "C"), key=("C",)),
        ]
        sources = {
            "a": MemorySource([schemas[0]], {"ar": [(1, 2)]}),
            "b": MemorySource([schemas[1]], {"br": [(2, 3)]}),
        }
        view = View.natural_join("S", schemas, ["A", "C"])
        snapshot = {}
        for source in sources.values():
            snapshot.update(source.snapshot())
        spanning = create_algorithm(
            "multi-stored-copies",
            view,
            evaluate_view(view, snapshot),
            owners={"ar": "a", "br": "b"},
            initial_copies=snapshot,
        )
        with pytest.raises(SimulationError):
            plan_shards(spanning, 2, "hash", {"ar": "a", "br": "b"})

    def test_non_algorithm_rejected(self):
        with pytest.raises(SimulationError):
            plan_shards(object(), 2, "hash", {})
