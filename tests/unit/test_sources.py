"""Unit tests for the source substrates (in-memory and SQLite).

Both implementations are exercised through the same parametrized suite —
they must be observably identical — plus a few SQLite-specific tests for
SQL rendering details.
"""

import pytest

from repro.errors import SchemaError, UpdateError
from repro.relational.bag import SignedBag
from repro.relational.schema import RelationSchema
from repro.relational.tuples import MINUS, SignedTuple
from repro.relational.views import View
from repro.source.memory import MemorySource
from repro.source.sqlite import SQLiteSource
from repro.source.updates import delete, insert


@pytest.fixture
def schemas():
    return [RelationSchema("r1", ("W", "X")), RelationSchema("r2", ("X", "Y"))]


@pytest.fixture(params=["memory", "sqlite"])
def source(request, schemas):
    if request.param == "memory":
        src = MemorySource(schemas)
        yield src
    else:
        src = SQLiteSource(schemas)
        yield src
        src.close()


@pytest.fixture
def view(schemas):
    return View.natural_join("V", schemas, ["W"])


class TestUpdates:
    def test_insert_then_cardinality(self, source):
        source.apply_update(insert("r1", (1, 2)))
        source.apply_update(insert("r1", (1, 2)))
        assert source.cardinality("r1") == 2
        assert source.cardinality("r2") == 0

    def test_delete_removes_single_occurrence(self, source):
        source.apply_update(insert("r1", (1, 2)))
        source.apply_update(insert("r1", (1, 2)))
        source.apply_update(delete("r1", (1, 2)))
        assert source.cardinality("r1") == 1

    def test_delete_missing_tuple_raises(self, source):
        with pytest.raises(UpdateError):
            source.apply_update(delete("r1", (9, 9)))

    def test_unknown_relation_raises(self, source):
        with pytest.raises(SchemaError):
            source.apply_update(insert("zzz", (1,)))

    def test_arity_mismatch_raises(self, source):
        with pytest.raises(SchemaError):
            source.apply_update(insert("r1", (1,)))

    def test_load_bulk(self, source):
        source.load("r2", [(2, 3), (2, 4)])
        assert source.cardinality("r2") == 2

    def test_total_cardinality(self, source):
        source.load("r1", [(1, 2)])
        source.load("r2", [(2, 3)])
        assert source.total_cardinality() == 2


class TestSnapshot:
    def test_snapshot_contents(self, source):
        source.load("r1", [(1, 2), (1, 2)])
        snap = source.snapshot()
        assert snap["r1"].multiplicity((1, 2)) == 2
        assert snap["r2"].is_empty()

    def test_snapshot_is_detached(self, source):
        source.load("r1", [(1, 2)])
        snap = source.snapshot()
        source.apply_update(insert("r1", (9, 9)))
        assert snap["r1"].multiplicity((9, 9)) == 0


class TestEvaluation:
    def test_view_query(self, source, view):
        source.load("r1", [(1, 2), (4, 2)])
        source.load("r2", [(2, 3)])
        assert source.evaluate(view.as_query()) == SignedBag.from_rows([(1,), (4,)])

    def test_bound_tuple_query(self, source, view):
        source.load("r1", [(1, 2)])
        query = view.substitute("r2", SignedTuple((2, 3)))
        assert source.evaluate(query) == SignedBag.from_rows([(1,)])

    def test_negative_bound_tuple_sign_flows(self, source, view):
        source.load("r2", [(2, 3)])
        query = view.substitute("r1", SignedTuple((1, 2), MINUS))
        assert source.evaluate(query) == SignedBag.singleton((1,), MINUS)

    def test_multi_term_signed_query(self, source, view):
        # Q = V<U> - V<U> must cancel to the empty relation.
        source.load("r1", [(1, 2)])
        q = view.substitute("r2", SignedTuple((2, 3)))
        assert source.evaluate(q - q).is_empty()

    def test_duplicates_preserved_in_answers(self, source, view):
        source.load("r1", [(1, 2)])
        source.load("r2", [(2, 3), (2, 4)])
        answer = source.evaluate(view.as_query())
        assert answer.multiplicity((1,)) == 2

    def test_empty_query(self, source):
        from repro.relational.expressions import empty_query

        assert source.evaluate(empty_query()).is_empty()


class TestCatalog:
    def test_duplicate_relation_names_rejected(self, schemas):
        with pytest.raises(SchemaError):
            MemorySource(schemas + [RelationSchema("r1", ("A",))])

    def test_schema_for(self, source):
        assert source.schema_for("r1").attributes == ("W", "X")
        with pytest.raises(SchemaError):
            source.schema_for("nope")

    def test_initial_data_constructor(self, schemas):
        src = MemorySource(schemas, {"r1": [(1, 2)]})
        assert src.cardinality("r1") == 1
        sq = SQLiteSource(schemas, {"r1": [(1, 2)]})
        assert sq.cardinality("r1") == 1
        sq.close()

    def test_repr(self, source):
        assert "r1" in repr(source)


class TestMemorySpecific:
    def test_relation_accessor_copies(self, schemas):
        src = MemorySource(schemas, {"r1": [(1, 2)]})
        bag = src.relation("r1")
        bag.add((9, 9), 1)
        assert src.cardinality("r1") == 1

    def test_relation_unknown_raises(self, schemas):
        with pytest.raises(SchemaError):
            MemorySource(schemas).relation("zzz")


class TestSQLiteSpecific:
    def test_context_manager_closes(self, schemas):
        with SQLiteSource(schemas) as src:
            src.load("r1", [(1, 2)])
            assert src.cardinality("r1") == 1

    def test_string_values_roundtrip(self):
        schema = RelationSchema("items", ("name", "qty"))
        with SQLiteSource([schema]) as src:
            src.load("items", [("widget", 3), ("gadget", 1)])
            snap = src.snapshot()
            assert snap["items"].multiplicity(("widget", 3)) == 1

    def test_quoted_identifiers(self):
        # Attribute names that collide with SQL keywords must be quoted.
        schema = RelationSchema("t", ("select_", "from_"))
        with SQLiteSource([schema]) as src:
            src.load("t", [(1, 2)])
            assert src.cardinality("t") == 1

    def test_fully_bound_term_evaluates(self, schemas, view):
        # The source can evaluate a fully bound term (constant subqueries
        # only), even though the warehouse normally never ships one.
        q = view.substitute("r1", SignedTuple((1, 2))).substitute(
            "r2", SignedTuple((2, 3))
        )
        with SQLiteSource(schemas) as src:
            assert src.evaluate(q) == SignedBag.from_rows([(1,)])
