"""Unit tests for schedules, the simulation driver, and traces."""

import pytest

from repro.core.eca import ECA
from repro.errors import SimulationError
from repro.relational.bag import SignedBag
from repro.simulation.driver import Simulation
from repro.simulation.schedules import (
    ANSWER,
    BestCaseSchedule,
    EagerSourceSchedule,
    RandomSchedule,
    ScriptedSchedule,
    UPDATE,
    WAREHOUSE,
    WorstCaseSchedule,
)
from repro.simulation.trace import S_QU, S_UP, W_ANS, W_UP
from repro.source.memory import MemorySource
from repro.source.updates import insert


class TestSchedules:
    def test_best_case_priority(self):
        schedule = BestCaseSchedule()
        assert schedule.choose([UPDATE, ANSWER, WAREHOUSE]) == WAREHOUSE
        assert schedule.choose([UPDATE, ANSWER]) == ANSWER
        assert schedule.choose([UPDATE]) == UPDATE

    def test_worst_case_priority(self):
        schedule = WorstCaseSchedule()
        assert schedule.choose([UPDATE, ANSWER, WAREHOUSE]) == UPDATE
        assert schedule.choose([ANSWER, WAREHOUSE]) == WAREHOUSE

    def test_eager_source_priority(self):
        schedule = EagerSourceSchedule()
        assert schedule.choose([UPDATE, ANSWER, WAREHOUSE]) == ANSWER

    def test_priority_with_nothing_available_raises(self):
        with pytest.raises(SimulationError):
            BestCaseSchedule().choose([])

    def test_random_schedule_is_reproducible(self):
        a = [RandomSchedule(7).choose([UPDATE, ANSWER, WAREHOUSE]) for _ in range(10)]
        b = [RandomSchedule(7).choose([UPDATE, ANSWER, WAREHOUSE]) for _ in range(10)]
        assert a == b

    def test_random_schedule_weights(self):
        schedule = RandomSchedule(0, weights={UPDATE: 0.0, ANSWER: 0.0, WAREHOUSE: 1.0})
        picks = {schedule.choose([UPDATE, ANSWER, WAREHOUSE]) for _ in range(20)}
        assert picks == {WAREHOUSE}

    def test_scripted_follows_actions(self):
        schedule = ScriptedSchedule([UPDATE, WAREHOUSE])
        assert schedule.choose([UPDATE]) == UPDATE
        assert schedule.choose([WAREHOUSE, ANSWER]) == WAREHOUSE
        assert schedule.exhausted()

    def test_scripted_unavailable_action_raises(self):
        schedule = ScriptedSchedule([ANSWER])
        with pytest.raises(SimulationError):
            schedule.choose([UPDATE])

    def test_scripted_exhaustion_raises(self):
        schedule = ScriptedSchedule([])
        with pytest.raises(SimulationError):
            schedule.choose([UPDATE])

    def test_scripted_rejects_unknown_actions(self):
        with pytest.raises(SimulationError):
            ScriptedSchedule(["fly"])


@pytest.fixture
def small_sim(view_w, two_rel_schemas):
    source = MemorySource(two_rel_schemas, {"r1": [(1, 2)]})
    algo = ECA(view_w)
    return Simulation(source, algo, [insert("r2", (2, 3))])


class TestDriver:
    def test_initial_states_recorded(self, small_sim):
        assert len(small_sim.trace.source_states) == 1
        assert len(small_sim.trace.view_states) == 1

    def test_available_actions_initially(self, small_sim):
        assert small_sim.available_actions() == [UPDATE]
        assert not small_sim.is_done()

    def test_full_run_event_sequence(self, small_sim):
        trace = small_sim.run(BestCaseSchedule())
        kinds = [e.kind for e in trace.events]
        assert kinds == [S_UP, W_UP, S_QU, W_ANS]
        assert small_sim.is_done()
        assert small_sim.algorithm.is_quiescent()

    def test_final_view_correct(self, small_sim):
        small_sim.run(BestCaseSchedule())
        assert small_sim.algorithm.view_state() == SignedBag.from_rows([(1,)])

    def test_unknown_action_raises(self, small_sim):
        with pytest.raises(SimulationError):
            small_sim.step("fly")

    def test_update_action_with_empty_workload_raises(self, small_sim):
        small_sim.run(BestCaseSchedule())
        with pytest.raises(SimulationError):
            small_sim.step(UPDATE)

    def test_max_steps_guard(self, view_w, two_rel_schemas):
        source = MemorySource(two_rel_schemas)
        sim = Simulation(source, ECA(view_w), [insert("r1", (i, 0)) for i in range(5)])
        with pytest.raises(SimulationError):
            sim.run(BestCaseSchedule(), max_steps=2)

    def test_source_state_snapshot_per_update(self, view_w, two_rel_schemas):
        source = MemorySource(two_rel_schemas)
        workload = [insert("r1", (i, 0)) for i in range(3)]
        sim = Simulation(source, ECA(view_w), workload)
        trace = sim.run(WorstCaseSchedule())
        # ss_0 .. ss_3
        assert len(trace.source_states) == 4
        assert trace.source_states[0]["r1"].is_empty()
        assert trace.source_states[3]["r1"].total_count() == 3

    def test_view_state_recorded_per_warehouse_event(self, small_sim):
        trace = small_sim.run(BestCaseSchedule())
        # initial + W_up + W_ans
        assert len(trace.view_states) == 3


class TestTrace:
    def test_events_of_kind(self, small_sim):
        trace = small_sim.run(BestCaseSchedule())
        assert len(trace.events_of_kind(S_UP)) == 1
        assert trace.update_count() == 1

    def test_final_state_accessors(self, small_sim):
        trace = small_sim.run(BestCaseSchedule())
        assert trace.final_view_state == SignedBag.from_rows([(1,)])
        assert trace.final_source_state["r2"].multiplicity((2, 3)) == 1

    def test_describe_limits_output(self, small_sim):
        trace = small_sim.run(BestCaseSchedule())
        text = trace.describe(max_events=2)
        assert "more events" in text
        assert trace.describe().count("\n") == 3

    def test_repr(self, small_sim):
        assert "events=0" in repr(small_sim.trace)
