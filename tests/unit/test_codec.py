"""Unit tests for the durability codec (``repro.durability.codec``).

The load-bearing property: equal states produce byte-identical canonical
encodings, and every encoding decodes back to an equal live object — for
plain values, messages, and whole algorithms mid-protocol.
"""

import pytest

from repro.core.registry import ALGORITHMS, create_algorithm
from repro.core.stored_copies import StoredCopies
from repro.durability import (
    CODEC_VERSION,
    decode_value,
    dumps,
    dumps_algorithm,
    encode_value,
    loads,
    loads_algorithm,
)
from repro.errors import CodecError
from repro.messaging.messages import (
    QueryAnswer,
    QueryRequest,
    RefreshRequest,
    UpdateNotification,
)
from repro.relational.bag import SignedBag
from repro.relational.engine import evaluate_view
from repro.relational.schema import RelationSchema
from repro.relational.views import View
from repro.source.memory import MemorySource
from repro.source.updates import insert

SCHEMAS = [
    RelationSchema("r1", ("W", "X"), key=("W",)),
    RelationSchema("r2", ("X", "Y"), key=("Y",)),
]
INITIAL = {"r1": [(1, 2), (2, 3)], "r2": [(2, 5), (3, 6)]}


def make_view():
    return View.natural_join("V", SCHEMAS, ["W", "Y"])


def roundtrip(value):
    return loads(dumps(value, validate=True))


class TestValueRoundTrips:
    @pytest.mark.parametrize(
        "value",
        [
            None,
            True,
            False,
            0,
            -3,
            2.5,
            "text",
            (1, 2, "a"),
            [1, (2, 3), "x"],
            {"k": (1,), (1, 2): [3]},
            SignedBag.from_rows([(1, 2), (1, 2), (3, 4)]),
        ],
    )
    def test_roundtrip_equal(self, value):
        assert roundtrip(value) == value

    def test_bool_does_not_collapse_to_int(self):
        # bool is an int subclass; the codec must keep them distinct
        # because tuple equality would otherwise silently change rows.
        assert roundtrip(True) is True
        assert roundtrip(1) == 1 and roundtrip(1) is not True

    def test_tuple_list_distinction_survives(self):
        assert roundtrip((1, 2)) == (1, 2)
        assert roundtrip([1, 2]) == [1, 2]
        assert not isinstance(roundtrip((1, 2)), list)

    def test_canonical_bytes_for_equal_bags(self):
        a = SignedBag.from_rows([(1,), (2,), (2,)])
        b = SignedBag.from_rows([(2,), (1,), (2,)])
        assert dumps(a) == dumps(b)

    def test_view_and_query_roundtrip(self):
        view = make_view()
        again = roundtrip(view)
        state = {
            "r1": SignedBag.from_rows(INITIAL["r1"]),
            "r2": SignedBag.from_rows(INITIAL["r2"]),
        }
        assert again.name == view.name
        assert again.evaluate(state) == view.evaluate(state)

    def test_message_roundtrips(self):
        _, request = algorithm_mid_protocol("eca").pending_requests()[0]
        messages = [
            UpdateNotification(insert("r1", (9, 9)), 4),
            QueryRequest(7, request.query),
            QueryAnswer(7, SignedBag.from_rows([(9, 5)])),
            RefreshRequest(2),
        ]
        for message in messages:
            assert roundtrip(message) == message

    def test_unencodable_value_raises(self):
        with pytest.raises(CodecError):
            dumps(object())

    def test_unknown_tag_raises(self):
        with pytest.raises(CodecError):
            decode_value({"$": "no-such-tag"})

    def test_version_mismatch_refused(self):
        text = dumps((1, 2)).replace(f'"v":{CODEC_VERSION}', '"v":999')
        with pytest.raises(CodecError, match="version"):
            loads(text)

    def test_malformed_payload_raises_codec_error(self):
        with pytest.raises(CodecError):
            decode_value({"$": "bag", "pairs": [["not-a-pair"]]})


def algorithm_mid_protocol(name):
    """An algorithm of the given registry name with a query in flight."""
    source = MemorySource(SCHEMAS, INITIAL)
    view = make_view()
    initial_view = evaluate_view(view, source.snapshot())
    if name == "stored-copies":
        algorithm = StoredCopies(view, initial_view, source.snapshot())
    elif getattr(ALGORITHMS[name], "multi_source", False):
        algorithm = create_algorithm(
            name, view, initial_view, owners={"r1": "source", "r2": "source"}
        )
    else:
        algorithm = create_algorithm(name, view, initial_view)
    update = insert("r1", (7, 2))
    source.apply_update(update)
    algorithm.on_update("source", UpdateNotification(update, 1))
    return algorithm


class TestAlgorithmRoundTrips:
    @pytest.mark.parametrize("name", sorted(ALGORITHMS))
    def test_registry_algorithms_roundtrip_byte_identical(self, name):
        algorithm = algorithm_mid_protocol(name)
        text = dumps_algorithm(algorithm)
        twin = loads_algorithm(text)
        assert dumps_algorithm(twin) == text
        assert twin.view_state() == algorithm.view_state()
        assert twin.pending_query_ids() == algorithm.pending_query_ids()

    def test_pending_requests_survive(self):
        algorithm = algorithm_mid_protocol("eca")
        assert algorithm.pending_query_ids()  # mid-UQS by construction
        twin = loads_algorithm(dumps_algorithm(algorithm))
        assert list(twin.pending_requests()) == list(algorithm.pending_requests())

    def test_twin_is_independent(self):
        algorithm = algorithm_mid_protocol("eca")
        twin = loads_algorithm(dumps_algorithm(algorithm))
        qid = algorithm.pending_query_ids()[0]
        algorithm.on_answer("source", QueryAnswer(qid, SignedBag()))
        # Draining the original leaves the twin's UQS untouched.
        assert qid in twin.pending_query_ids()
        assert qid not in algorithm.pending_query_ids()

    def test_unknown_algorithm_payload_refused(self):
        with pytest.raises(CodecError):
            loads_algorithm(
                dumps_algorithm(algorithm_mid_protocol("eca")).replace(
                    '"name":"eca"', '"name":"nope"'
                )
            )


class TestBagPairs:
    """SignedBag.to_pairs/from_pairs — the codec's shared bag form."""

    def test_roundtrip(self):
        bag = SignedBag.from_rows([(1, 2), (1, 2)])
        bag.add((5, 6), -1)  # signed bags carry negative counts
        assert SignedBag.from_pairs(bag.to_pairs()) == bag

    def test_pairs_are_sorted_and_stable(self):
        a = SignedBag.from_rows([(2,), (1,)])
        b = SignedBag.from_rows([(1,), (2,)])
        assert a.to_pairs() == b.to_pairs()

    def test_from_pairs_rejects_zero_count(self):
        with pytest.raises(ValueError):
            SignedBag.from_pairs([((1,), 0)])

    def test_from_pairs_rejects_duplicates(self):
        with pytest.raises(ValueError):
            SignedBag.from_pairs([((1,), 1), ((1,), 2)])

    def test_from_pairs_rejects_bool_count(self):
        with pytest.raises(TypeError):
            SignedBag.from_pairs([((1,), True)])

    def test_nonnegative_mode(self):
        with pytest.raises(ValueError):
            SignedBag.from_pairs([((1,), -1)], nonnegative=True)
        assert SignedBag.from_pairs([((1,), -1)]).multiplicity((1,)) == -1
