"""Unit tests for the per-term I/O estimators.

The key assertions replicate Appendix D's per-query counts for Example 6
with the default parameters (C=100, J=4, K=20, so I=5, I'=3).
"""

import pytest

from repro.costmodel.io_scenarios import (
    IndexCatalog,
    Scenario1Estimator,
    Scenario2Estimator,
    example6_catalog,
)
from repro.costmodel.parameters import PaperParameters
from repro.relational.tuples import SignedTuple
from repro.source.memory import MemorySource
from repro.workloads.example6 import example6_schemas, example6_view


@pytest.fixture
def params():
    return PaperParameters()


@pytest.fixture
def source(params):
    """A source whose relations have exactly C=100 tuples each."""
    schemas = example6_schemas()
    src = MemorySource(schemas)
    for schema in schemas:
        src.load(schema.name, [(i, i) for i in range(params.C)])
    return src


@pytest.fixture
def view():
    return example6_view()


class TestIndexCatalog:
    def test_example6_catalog_contents(self):
        catalog = example6_catalog()
        assert catalog.kind("r1", "X") == "clustered"
        assert catalog.kind("r2", "Y") == "unclustered"
        assert catalog.kind("r3", "Z") is None

    def test_invalid_kind_rejected(self):
        with pytest.raises(ValueError):
            IndexCatalog({("r", "a"): "bitmap"})


class TestScenario1PerQuery:
    """Appendix D.3.1: IO(Q1)=1+J, IO(Q2)=2, IO(Q3)=2J for J < I."""

    def test_q1_update_on_r1(self, params, source, view):
        estimator = Scenario1Estimator(params)
        q1 = view.substitute("r1", SignedTuple((1, 2)))
        assert estimator.estimate_query(q1, source) == 1 + params.J  # 5

    def test_q2_update_on_r2(self, params, source, view):
        estimator = Scenario1Estimator(params)
        q2 = view.substitute("r2", SignedTuple((2, 3)))
        assert estimator.estimate_query(q2, source) == 2

    def test_q3_update_on_r3(self, params, source, view):
        estimator = Scenario1Estimator(params)
        q3 = view.substitute("r3", SignedTuple((3, 4)))
        assert estimator.estimate_query(q3, source) == 2 * params.J  # 8

    def test_three_updates_total_matches_paper(self, params, source, view):
        estimator = Scenario1Estimator(params)
        total = sum(
            estimator.estimate_query(view.substitute(rel, SignedTuple((1, 2))), source)
            for rel in ("r1", "r2", "r3")
        )
        assert total == 3 * min(params.I, params.J) + 3  # 15

    def test_large_join_factor_falls_back_to_scans(self, source, view):
        # I < J <= K (the regime of the paper's min(J, I) formula, which
        # assumes J <= K so a probe group fits one block): with J=10 the
        # optimizer scans instead of probing and total = 3I + 3 = 18.
        params = PaperParameters(join_factor=10)
        estimator = Scenario1Estimator(params)
        total = sum(
            estimator.estimate_query(view.substitute(rel, SignedTuple((1, 2))), source)
            for rel in ("r1", "r2", "r3")
        )
        assert total == 3 * params.I + 3

    def test_two_bound_compensation_terms(self, params, source, view):
        # pi(t1 |x| t2 |x| r3): one clustered probe = 1 I/O.
        estimator = Scenario1Estimator(params)
        q = view.substitute("r1", SignedTuple((1, 2))).substitute(
            "r2", SignedTuple((2, 3))
        )
        assert estimator.estimate_query(q, source) == 1

    def test_fully_bound_terms_cost_nothing(self, params, source, view):
        estimator = Scenario1Estimator(params)
        q = (
            view.substitute("r1", SignedTuple((1, 2)))
            .substitute("r2", SignedTuple((2, 3)))
            .substitute("r3", SignedTuple((3, 4)))
        )
        assert estimator.estimate_query(q, source) == 0

    def test_full_recompute_reads_all_relations(self, params, source, view):
        estimator = Scenario1Estimator(params)
        assert estimator.estimate_query(view.as_query(), source) == 3 * params.I

    def test_cardinality_sensitivity(self, params, view):
        # Smaller relations -> fewer blocks for the full recompute.
        schemas = example6_schemas()
        src = MemorySource(schemas)
        for schema in schemas:
            src.load(schema.name, [(i, i) for i in range(10)])
        estimator = Scenario1Estimator(params)
        assert estimator.estimate_query(view.as_query(), src) == 3  # ceil(10/20)=1 each


class TestScenario2PerQuery:
    def test_full_recompute_is_i_cubed(self, params, source, view):
        estimator = Scenario2Estimator(params)
        assert estimator.estimate_query(view.as_query(), source) == params.I**3

    def test_one_bound_two_free(self, params, source, view):
        estimator = Scenario2Estimator(params)
        q = view.substitute("r1", SignedTuple((1, 2)))
        assert estimator.estimate_query(q, source) == params.I * params.I_prime

    def test_two_bound_one_free(self, params, source, view):
        estimator = Scenario2Estimator(params)
        q = view.substitute("r1", SignedTuple((1, 2))).substitute(
            "r3", SignedTuple((3, 4))
        )
        assert estimator.estimate_query(q, source) == params.I

    def test_fully_bound_costs_nothing(self, params, source, view):
        estimator = Scenario2Estimator(params)
        q = (
            view.substitute("r1", SignedTuple((1, 2)))
            .substitute("r2", SignedTuple((2, 3)))
            .substitute("r3", SignedTuple((3, 4)))
        )
        assert estimator.estimate_query(q, source) == 0

    def test_three_update_total_matches_paper(self, params, source, view):
        estimator = Scenario2Estimator(params)
        total = sum(
            estimator.estimate_query(view.substitute(rel, SignedTuple((1, 2))), source)
            for rel in ("r1", "r2", "r3")
        )
        assert total == 3 * params.I * params.I_prime  # 45
