"""Edge-case and failure-injection tests across modules."""

import pytest

from repro.errors import ProtocolError, SimulationError
from repro.relational.bag import SignedBag
from repro.relational.conditions import (
    And,
    Attr,
    Comparison,
    Const,
    Not,
    Or,
    TrueCondition,
    equality_pairs,
    flatten_conjuncts,
)
from repro.relational.schema import RelationSchema
from repro.relational.views import View
from repro.source.memory import MemorySource
from repro.source.updates import insert, modify


class TestConditionHelpers:
    def test_flatten_nested_ands(self):
        a = Comparison(Attr("A"), "=", Const(1))
        b = Comparison(Attr("B"), "=", Const(2))
        c = Comparison(Attr("C"), "=", Const(3))
        assert flatten_conjuncts(And(And(a, b), c)) == [a, b, c]

    def test_flatten_keeps_or_whole(self):
        a = Comparison(Attr("A"), "=", Const(1))
        disjunction = Or(a, a)
        assert flatten_conjuncts(And(disjunction, a)) == [disjunction, a]

    def test_flatten_true_is_empty(self):
        assert flatten_conjuncts(TrueCondition()) == []

    def test_equality_pairs_extraction(self):
        cond = And(
            Comparison(Attr("r1.X"), "=", Attr("r2.X")),
            Comparison(Attr("W"), ">", Attr("Z")),
            Comparison(Attr("W"), "=", Const(5)),
        )
        assert equality_pairs(cond) == [("r1.X", "r2.X")]

    def test_equality_under_not_ignored(self):
        cond = Not(Comparison(Attr("A"), "=", Attr("B")))
        assert equality_pairs(cond) == []


class TestApplyDeltaPolicies:
    def test_unknown_policy_rejected(self, view_w):
        from repro.warehouse.state import MaterializedView

        mv = MaterializedView(view_w)
        with pytest.raises(ValueError):
            mv.apply_delta(SignedBag(), on_negative="explode")

    def test_allow_policy_stores_negative(self, view_w):
        from repro.warehouse.state import MaterializedView

        mv = MaterializedView(view_w)
        mv.apply_delta(SignedBag({(1,): -2}), on_negative="allow")
        assert mv.multiplicity((1,)) == -2
        # rows() cannot expand a negative view — that is the point of the
        # 'invalid intermediate state'.
        with pytest.raises(ValueError):
            mv.rows()


class TestDriverErrorPaths:
    def test_warehouse_action_with_empty_inbox(self, view_w, two_rel_schemas):
        from repro.core.eca import ECA
        from repro.simulation.driver import Simulation

        sim = Simulation(MemorySource(two_rel_schemas), ECA(view_w), [])
        with pytest.raises(ProtocolError):
            sim.step("warehouse")

    def test_answer_action_with_no_pending_query(self, view_w, two_rel_schemas):
        from repro.core.eca import ECA
        from repro.simulation.driver import Simulation

        sim = Simulation(MemorySource(two_rel_schemas), ECA(view_w), [])
        with pytest.raises(ProtocolError):
            sim.step("answer")

    def test_refresh_marker_repr(self):
        from repro.simulation.driver import REFRESH

        assert repr(REFRESH) == "REFRESH"

    def test_refresh_does_not_touch_source(self, view_w, two_rel_schemas):
        from repro.core.batch import DeferredECA
        from repro.simulation.driver import REFRESH, Simulation
        from repro.simulation.schedules import BestCaseSchedule

        source = MemorySource(two_rel_schemas, {"r1": [(1, 2)]})
        sim = Simulation(source, DeferredECA(view_w), [REFRESH])
        trace = sim.run(BestCaseSchedule())
        # Only the initial source state: REFRESH never reaches the source.
        assert len(trace.source_states) == 1


class TestMultiSourceErrorPaths:
    def test_duplicate_relation_ownership_rejected(self):
        from repro.multisource import FragmentingIncremental, MultiSourceSimulation

        r1 = RelationSchema("r1", ("W", "X"))
        view = View("V", [r1], ["W"])
        a = MemorySource([r1])
        b = MemorySource([RelationSchema("r1", ("W", "X"))])
        algo = FragmentingIncremental(view, {"r1": "A"})
        with pytest.raises(SimulationError):
            MultiSourceSimulation({"A": a, "B": b}, algo, [])

    def test_update_to_unowned_relation_rejected(self):
        from repro.multisource import FragmentingIncremental, MultiSourceSimulation

        r1 = RelationSchema("r1", ("W", "X"))
        view = View("V", [r1], ["W"])
        a = MemorySource([r1])
        algo = FragmentingIncremental(view, {"r1": "A"})
        sim = MultiSourceSimulation({"A": a}, algo, [insert("zzz", (1,))])
        with pytest.raises(SimulationError):
            sim.step("update")

    def test_sc_rejects_answers(self):
        from repro.messaging.messages import QueryAnswer
        from repro.multisource import MultiSourceStoredCopies

        r1 = RelationSchema("r1", ("W", "X"))
        view = View("V", [r1], ["W"])
        algo = MultiSourceStoredCopies(view, {"r1": "A"})
        with pytest.raises(ProtocolError):
            algo.on_answer("A", QueryAnswer(1, SignedBag()))


class TestModificationUpdates:
    def test_modify_end_to_end_under_eca(self, view_wy, two_rel_schemas):
        """Section 4.1: a modification is a deletion followed by an
        insertion — run one through the full ECA stack."""
        from repro.consistency import check_trace
        from repro.core.eca import ECA
        from repro.relational.engine import evaluate_view
        from repro.simulation.driver import Simulation
        from repro.simulation.schedules import WorstCaseSchedule

        source = MemorySource(
            two_rel_schemas, {"r1": [(1, 2)], "r2": [(2, 3)]}
        )
        warehouse = ECA(view_wy, evaluate_view(view_wy, source.snapshot()))
        workload = modify("r2", (2, 3), (2, 7))
        trace = Simulation(source, warehouse, workload).run(WorstCaseSchedule())
        assert sorted(warehouse.mv.rows()) == [(1, 7)]
        assert check_trace(view_wy, trace).strongly_consistent

    def test_modify_under_eca_key(self, keyed_view, keyed_schemas):
        from repro.consistency import check_trace
        from repro.core.eca_key import ECAKey
        from repro.relational.engine import evaluate_view
        from repro.simulation.driver import Simulation
        from repro.simulation.schedules import WorstCaseSchedule

        source = MemorySource(keyed_schemas, {"r1": [(1, 2)], "r2": [(2, 3)]})
        warehouse = ECAKey(keyed_view, evaluate_view(keyed_view, source.snapshot()))
        workload = modify("r2", (2, 3), (2, 7))
        trace = Simulation(source, warehouse, workload).run(WorstCaseSchedule())
        assert sorted(warehouse.mv.rows()) == [(1, 7)]
        assert check_trace(keyed_view, trace).strongly_consistent


class TestMeasuredHarnessValidation:
    def test_unknown_algorithm_rejected(self):
        from repro.costmodel.parameters import PaperParameters
        from repro.experiments.measured import run_example6_once
        from repro.simulation.schedules import BestCaseSchedule

        with pytest.raises(ValueError):
            run_example6_once(
                PaperParameters(cardinality=8), 1, "magic", BestCaseSchedule()
            )

    def test_unknown_io_scenario_rejected(self):
        from repro.costmodel.parameters import PaperParameters
        from repro.experiments.measured import run_example6_once
        from repro.simulation.schedules import BestCaseSchedule

        with pytest.raises(ValueError):
            run_example6_once(
                PaperParameters(cardinality=8), 1, "eca", BestCaseSchedule(),
                io_scenario=7,
            )

    def test_unknown_source_kind_rejected(self):
        from repro.costmodel.parameters import PaperParameters
        from repro.experiments.measured import run_example6_once
        from repro.simulation.schedules import BestCaseSchedule

        with pytest.raises(ValueError):
            run_example6_once(
                PaperParameters(cardinality=8), 1, "eca", BestCaseSchedule(),
                source_kind="oracle",
            )
