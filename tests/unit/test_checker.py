"""Unit tests for the correctness-hierarchy checker.

These build traces *by hand* so each level of the hierarchy is exercised
in isolation, independent of any algorithm.
"""

import pytest

from repro.consistency.checker import check_trace
from repro.relational.bag import SignedBag
from repro.simulation.trace import Trace


def bag(*rows):
    return SignedBag.from_rows(rows)


def make_trace(view, source_relations_sequence, view_bags):
    """source_relations_sequence: list of {rel: [rows]} dicts."""
    trace = Trace()
    for state in source_relations_sequence:
        trace.record_source_state(
            {name: SignedBag.from_rows(rows) for name, rows in state.items()}
        )
    for vb in view_bags:
        trace.record_view_state(vb)
    return trace


@pytest.fixture
def states(view_w):
    """Four source states for V = pi_W(r1 |x| r2):
    ss0: empty view; ss1: ([1]); ss2: ([1],[4]); ss3: ([1])."""
    return [
        {"r1": [(1, 2)], "r2": []},
        {"r1": [(1, 2)], "r2": [(2, 3)]},
        {"r1": [(1, 2), (4, 2)], "r2": [(2, 3)]},
        {"r1": [(1, 2)], "r2": [(2, 3)]},
    ]


class TestLevels:
    def test_complete_trace(self, view_w, states):
        trace = make_trace(
            view_w, states, [bag(), bag((1,)), bag((1,), (4,)), bag((1,))]
        )
        report = check_trace(view_w, trace)
        assert report.complete
        assert report.level() == "complete"

    def test_strongly_consistent_but_not_complete(self, view_w, states):
        # Skips ss1 and ss2 entirely: converges, order preserved.
        trace = make_trace(view_w, states, [bag(), bag((1,))])
        report = check_trace(view_w, trace)
        assert report.strongly_consistent
        assert not report.complete
        assert report.level() == "strongly consistent"

    def test_consistent_but_not_convergent(self, view_w, states):
        # Stops at ss2's view value; never reaches the final state.
        trace = make_trace(view_w, states, [bag(), bag((1,)), bag((1,), (4,))])
        report = check_trace(view_w, trace)
        assert report.consistent
        assert not report.convergent
        assert report.level() == "consistent"

    def test_weakly_consistent_but_out_of_order(self, view_w, states):
        # Visits valid states in the wrong order; still converges.
        trace = make_trace(
            view_w,
            states,
            [bag(), bag((1,), (4,)), bag((1,))],
        )
        report = check_trace(view_w, trace)
        assert report.weakly_consistent
        # ([1],[4]) = V[ss2] then ([1]) = V[ss3]: order IS preserved here,
        # so pick a genuinely reversed pair instead.
        trace2 = make_trace(
            view_w,
            states,
            [bag((1,), (4,)), bag(), bag((1,))],
        )
        report2 = check_trace(view_w, trace2)
        assert report2.weakly_consistent
        assert not report2.consistent
        assert report2.convergent
        assert report2.level() == "weakly consistent"

    def test_convergent_only(self, view_w, states):
        # Passes through an invalid intermediate state but ends right.
        trace = make_trace(view_w, states, [bag(), bag((9,)), bag((1,))])
        report = check_trace(view_w, trace)
        assert report.convergent
        assert not report.weakly_consistent
        assert report.level() == "convergent"

    def test_incorrect(self, view_w, states):
        trace = make_trace(view_w, states, [bag(), bag((9,))])
        report = check_trace(view_w, trace)
        assert report.level() == "incorrect"
        assert not report.convergent
        assert report.detail

    def test_example2_final_state_is_incorrect(self, view_w):
        # The paper's anomaly: ([1],[4],[4]) matches no source state.
        source_states = [
            {"r1": [(1, 2)], "r2": []},
            {"r1": [(1, 2)], "r2": [(2, 3)]},
            {"r1": [(1, 2), (4, 2)], "r2": [(2, 3)]},
        ]
        trace = make_trace(
            view_w, source_states, [bag(), bag((1,), (4,)), bag((1,), (4,), (4,))]
        )
        report = check_trace(view_w, trace)
        assert not report.weakly_consistent
        assert not report.convergent


class TestReportObject:
    def test_repr_shows_level(self, view_w, states):
        trace = make_trace(view_w, states, [bag(), bag((1,))])
        assert "strongly consistent" in repr(check_trace(view_w, trace))

    def test_duplicate_source_values_matched_greedily(self, view_w, states):
        # V[ss1] == V[ss3] == ([1]); the view visiting ([1]) twice in a
        # row must still be consistent.
        trace = make_trace(view_w, states, [bag(), bag((1,)), bag((1,))])
        assert check_trace(view_w, trace).consistent
