"""Unit tests for channels and message types."""

import pytest

from repro.errors import ProtocolError
from repro.messaging.channel import FifoChannel
from repro.messaging.messages import QueryAnswer, QueryRequest, UpdateNotification
from repro.relational.bag import SignedBag
from repro.relational.expressions import empty_query
from repro.source.updates import insert


class TestFifoChannel:
    def test_fifo_order(self):
        channel = FifoChannel("test")
        for i in range(3):
            channel.send(UpdateNotification(insert("r", (i,)), i + 1))
        serials = [channel.receive().serial for _ in range(3)]
        assert serials == [1, 2, 3]

    def test_receive_empty_raises(self):
        with pytest.raises(ProtocolError):
            FifoChannel("test").receive()

    def test_peek_does_not_consume(self):
        channel = FifoChannel("test")
        message = UpdateNotification(insert("r", (1,)), 1)
        channel.send(message)
        assert channel.peek() is message
        assert channel.pending() == 1
        assert channel.receive() is message

    def test_peek_empty_returns_none(self):
        assert FifoChannel("test").peek() is None

    def test_counters(self):
        channel = FifoChannel("test")
        channel.send(UpdateNotification(insert("r", (1,)), 1))
        channel.send(UpdateNotification(insert("r", (2,)), 2))
        channel.receive()
        assert channel.sent_count == 2
        assert channel.delivered_count == 1
        assert len(channel) == 1
        assert not channel.is_empty()

    def test_drain(self):
        channel = FifoChannel("test")
        for i in range(4):
            channel.send(UpdateNotification(insert("r", (i,)), i))
        assert len(list(channel.drain())) == 4
        assert channel.is_empty()

    def test_snapshot_is_non_destructive(self):
        channel = FifoChannel("test")
        channel.send(UpdateNotification(insert("r", (1,)), 1))
        assert len(channel.snapshot()) == 1
        assert channel.pending() == 1

    def test_repr(self):
        assert "pending=0" in repr(FifoChannel("x"))


class TestMessages:
    def test_update_notification(self):
        u = insert("r1", (1, 2))
        msg = UpdateNotification(u, 7)
        assert msg.update is u
        assert msg.serial == 7
        assert "#7" in repr(msg)

    def test_query_request(self):
        msg = QueryRequest(3, empty_query())
        assert msg.query_id == 3
        assert "Q3" in repr(msg)

    def test_query_answer(self):
        msg = QueryAnswer(3, SignedBag.from_rows([(1,)]))
        assert msg.query_id == 3
        assert msg.answer.multiplicity((1,)) == 1
        assert "Q3" in repr(msg)
