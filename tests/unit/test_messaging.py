"""Unit tests for channels and message types."""

import pytest

from repro.errors import ChannelEmpty, ProtocolError
from repro.messaging.channel import FifoChannel
from repro.messaging.messages import QueryAnswer, QueryRequest, UpdateNotification
from repro.relational.bag import SignedBag
from repro.relational.expressions import empty_query
from repro.source.updates import insert


class TestFifoChannel:
    def test_fifo_order(self):
        channel = FifoChannel("test")
        for i in range(3):
            channel.send(UpdateNotification(insert("r", (i,)), i + 1))
        serials = [channel.receive().serial for _ in range(3)]
        assert serials == [1, 2, 3]

    def test_receive_empty_raises(self):
        with pytest.raises(ProtocolError):
            FifoChannel("test").receive()

    def test_receive_empty_raises_dedicated_subclass(self):
        # ChannelEmpty lets pollers distinguish "nothing yet" from genuine
        # protocol violations while old ProtocolError handlers keep working.
        with pytest.raises(ChannelEmpty):
            FifoChannel("test").receive()

    def test_sizer_counts_bytes(self):
        def sizer(message):
            if isinstance(message, QueryAnswer):
                return message.answer.total_count() * 4
            return 0

        channel = FifoChannel("test", sizer=sizer)
        channel.send(UpdateNotification(insert("r", (1,)), 1))
        channel.send(QueryAnswer(1, SignedBag.from_rows([(1,), (2,), (2,)])))
        assert channel.sent_bytes == 12
        assert channel.sent_count == 2

    def test_no_sizer_means_zero_bytes(self):
        channel = FifoChannel("test")
        channel.send(QueryAnswer(1, SignedBag.from_rows([(1,)])))
        assert channel.sent_bytes == 0

    def test_channel_bytes_match_cost_recorder(self):
        # The driver wires CostRecorder.message_size into its channels, so
        # the wire-level byte count reproduces the recorder's B metric.
        from repro.core.eca import ECA
        from repro.costmodel.counters import CostRecorder
        from repro.relational.engine import evaluate_view
        from repro.relational.schema import RelationSchema
        from repro.relational.views import View
        from repro.simulation.driver import Simulation
        from repro.simulation.schedules import WorstCaseSchedule
        from repro.source.memory import MemorySource

        schemas = [RelationSchema("r1", ("W", "X")), RelationSchema("r2", ("X", "Y"))]
        initial = {"r1": [(1, 2)], "r2": [(2, 4)]}
        view = View.natural_join("V", schemas, ["W"])
        source = MemorySource(schemas, initial)
        warehouse = ECA(view, evaluate_view(view, source.snapshot()))
        recorder = CostRecorder()
        workload = [insert("r2", (2, 3)), insert("r1", (4, 2))]
        simulation = Simulation(source, warehouse, workload, recorder)
        simulation.run(WorstCaseSchedule())
        assert recorder.bytes > 0
        assert simulation.to_warehouse.sent_bytes == recorder.bytes
        assert simulation.to_source.sent_bytes == 0  # requests are size 0

    def test_peek_does_not_consume(self):
        channel = FifoChannel("test")
        message = UpdateNotification(insert("r", (1,)), 1)
        channel.send(message)
        assert channel.peek() is message
        assert channel.pending() == 1
        assert channel.receive() is message

    def test_peek_empty_returns_none(self):
        assert FifoChannel("test").peek() is None

    def test_counters(self):
        channel = FifoChannel("test")
        channel.send(UpdateNotification(insert("r", (1,)), 1))
        channel.send(UpdateNotification(insert("r", (2,)), 2))
        channel.receive()
        assert channel.sent_count == 2
        assert channel.delivered_count == 1
        assert len(channel) == 1
        assert not channel.is_empty()

    def test_drain(self):
        channel = FifoChannel("test")
        for i in range(4):
            channel.send(UpdateNotification(insert("r", (i,)), i))
        assert len(list(channel.drain())) == 4
        assert channel.is_empty()

    def test_snapshot_is_non_destructive(self):
        channel = FifoChannel("test")
        channel.send(UpdateNotification(insert("r", (1,)), 1))
        assert len(channel.snapshot()) == 1
        assert channel.pending() == 1

    def test_repr(self):
        assert "pending=0" in repr(FifoChannel("x"))


class TestMessages:
    def test_update_notification(self):
        u = insert("r1", (1, 2))
        msg = UpdateNotification(u, 7)
        assert msg.update is u
        assert msg.serial == 7
        assert "#7" in repr(msg)

    def test_query_request(self):
        msg = QueryRequest(3, empty_query())
        assert msg.query_id == 3
        assert "Q3" in repr(msg)

    def test_query_answer(self):
        msg = QueryAnswer(3, SignedBag.from_rows([(1,)]))
        assert msg.query_id == 3
        assert msg.answer.multiplicity((1,)) == 1
        assert "Q3" in repr(msg)


class TestMessageEquality:
    """Structural __eq__/__hash__: what WAL-replay dedup relies on."""

    def test_update_notifications_equal_by_value(self):
        a = UpdateNotification(insert("r1", (1, 2)), 7)
        b = UpdateNotification(insert("r1", (1, 2)), 7)
        assert a == b
        assert hash(a) == hash(b)

    def test_update_notifications_differ_on_serial(self):
        a = UpdateNotification(insert("r1", (1, 2)), 7)
        b = UpdateNotification(insert("r1", (1, 2)), 8)
        assert a != b

    def test_query_answers_equal_by_contents(self):
        a = QueryAnswer(3, SignedBag.from_rows([(1,), (2,)]))
        b = QueryAnswer(3, SignedBag.from_rows([(2,), (1,)]))
        assert a == b

    def test_query_answers_differ_on_answer(self):
        a = QueryAnswer(3, SignedBag.from_rows([(1,)]))
        b = QueryAnswer(3, SignedBag.from_rows([(2,)]))
        assert a != b

    def test_different_types_never_equal(self):
        from repro.messaging.messages import RefreshRequest

        assert QueryRequest(1, empty_query()) != RefreshRequest(1)
        assert RefreshRequest(1) != 1

    def test_refresh_requests_hashable_and_equal(self):
        from repro.messaging.messages import RefreshRequest

        assert RefreshRequest(2) == RefreshRequest(2)
        assert len({RefreshRequest(2), RefreshRequest(2), RefreshRequest(3)}) == 2
