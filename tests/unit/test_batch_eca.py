"""Unit tests for BatchECA and DeferredECA."""

import pytest

from repro.core.batch import BatchECA, DeferredECA
from repro.messaging.messages import QueryAnswer, UpdateNotification
from repro.relational.bag import SignedBag
from repro.source.updates import insert


def notify(update, serial=1):
    return UpdateNotification(update, serial)


class TestBatching:
    def test_buffers_until_batch_size(self, view_w):
        algo = BatchECA(view_w, batch_size=3)
        assert algo.handle_update(notify(insert("r1", (1, 2)), 1)) == []
        assert algo.handle_update(notify(insert("r1", (2, 2)), 2)) == []
        assert algo.buffered_updates() == 2
        requests = algo.handle_update(notify(insert("r2", (2, 3)), 3))
        assert len(requests) == 1
        assert algo.buffered_updates() == 0

    def test_one_message_per_batch(self, view_w):
        algo = BatchECA(view_w, batch_size=2)
        sent = []
        for i in range(6):
            sent.extend(algo.handle_update(notify(insert("r1", (i, 0)), i + 1)))
        # 6 updates, batch_size 2 -> 3 query messages (ECA would send 6).
        assert len(sent) == 3

    def test_batch_size_one_sends_per_update(self, view_w):
        algo = BatchECA(view_w, batch_size=1)
        assert len(algo.handle_update(notify(insert("r1", (1, 2))))) == 1

    def test_invalid_batch_size(self, view_w):
        with pytest.raises(ValueError):
            BatchECA(view_w, batch_size=0)

    def test_irrelevant_updates_not_buffered(self, view_w):
        algo = BatchECA(view_w, batch_size=2)
        assert algo.handle_update(notify(insert("zzz", (1,)))) == []
        assert algo.buffered_updates() == 0

    def test_manual_flush(self, view_w):
        algo = BatchECA(view_w, batch_size=10)
        algo.handle_update(notify(insert("r1", (1, 2))))
        requests = algo.flush()
        assert len(requests) == 1
        assert algo.buffered_updates() == 0

    def test_flush_empty_buffer_is_noop(self, view_w):
        assert BatchECA(view_w).flush() == []

    def test_batch_query_backdates_within_batch(self, view_w):
        algo = BatchECA(view_w, batch_size=2)
        algo.handle_update(notify(insert("r2", (2, 3)), 1))
        requests = algo.handle_update(notify(insert("r1", (4, 2)), 2))
        # sum_j D(V<U_j>, rest): V<U1> - V<U1,U2> + V<U2>; the fully
        # bound V<U1,U2> term evaluates locally, leaving 2 remote terms
        # and +/- bookkeeping in COLLECT.
        assert requests[0].query.term_count() == 2
        assert algo.collect == SignedBag({(4,): -1})

    def test_install_waits_for_flush_of_contamination(self, view_w):
        algo = BatchECA(view_w, batch_size=2)
        # Batch 1 (non-joining tuples) flushes; its query is answered only
        # after one update of batch 2 arrived -> the answer is
        # contaminated and the view must not install until batch 2's
        # flush compensates it.
        algo.handle_update(notify(insert("r1", (1, 9)), 1))
        first = algo.handle_update(notify(insert("r2", (5, 5)), 2))[0]
        algo.handle_update(notify(insert("r2", (2, 3)), 3))  # batch 2 begins
        algo.handle_answer(QueryAnswer(first.query_id, SignedBag()))
        assert algo.view_state().is_empty()  # blocked: contamination
        second = algo.handle_update(notify(insert("r1", (4, 2)), 4))[0]
        # Source answer for batch 2's flush: pi(r1 |x| [2,3]) = [4] and
        # pi([4,2] |x| r2) = [4]; the doubly-bound -pi([4,2]|x|[2,3])
        # term was evaluated locally as -[4].
        algo.handle_answer(
            QueryAnswer(second.query_id, SignedBag.from_rows([(4,), (4,)]))
        )
        assert algo.view_state() == SignedBag.from_rows([(4,)])

    def test_quiescence(self, view_w):
        algo = BatchECA(view_w, batch_size=2)
        assert algo.is_quiescent()
        algo.handle_update(notify(insert("r1", (1, 2))))
        assert not algo.is_quiescent()  # buffered update
        request = algo.flush()[0]
        assert not algo.is_quiescent()  # pending query
        algo.handle_answer(QueryAnswer(request.query_id, SignedBag()))
        assert algo.is_quiescent()


class TestDeferred:
    def test_never_flushes_on_updates(self, view_w):
        algo = DeferredECA(view_w)
        for i in range(20):
            assert algo.handle_update(notify(insert("r1", (i, 0)), i + 1)) == []
        assert algo.buffered_updates() == 20

    def test_refresh_flushes(self, view_w):
        algo = DeferredECA(view_w)
        algo.handle_update(notify(insert("r1", (1, 2)), 1))
        requests = algo.handle_refresh()
        assert len(requests) == 1
        assert algo.buffered_updates() == 0

    def test_refresh_with_empty_buffer(self, view_w):
        assert DeferredECA(view_w).handle_refresh() == []

    def test_registry_entries(self, view_w):
        from repro.core.registry import create_algorithm

        assert create_algorithm("batch-eca", view_w, batch_size=3).batch_size == 3
        assert create_algorithm("deferred-eca", view_w).batch_size is None


class TestImmediateAlgorithmsIgnoreRefresh(object):
    def test_default_on_refresh_is_noop(self, view_w):
        from repro.core.eca import ECA

        algo = ECA(view_w)
        assert algo.handle_refresh() == []
