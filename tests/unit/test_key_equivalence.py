"""Unit tests for key detection through join-equality equivalence.

A natural join forces ``r1.X = r2.X`` for every view tuple, so a
projection of either column makes the other's key 'present' for ECA-Key
purposes.  These tests pin the equivalence-class analysis in
``View.key_output_positions``.
"""

import pytest

from repro.errors import SchemaError
from repro.relational.bag import SignedBag
from repro.relational.conditions import Attr, Comparison, Or
from repro.relational.schema import RelationSchema
from repro.relational.views import View


@pytest.fixture
def schemas():
    return [
        RelationSchema("a", ("K", "X"), key=("K",)),
        RelationSchema("b", ("K2", "X"), key=("K2",)),
    ]


class TestEquivalenceThroughJoin:
    def test_twin_column_satisfies_key(self):
        customers = RelationSchema("customers", ("cust_id", "region"), key=("cust_id",))
        orders = RelationSchema(
            "orders", ("order_id", "cust_id", "amount"), key=("order_id",)
        )
        view = View.natural_join(
            "sales", [customers, orders], ["order_id", "orders.cust_id", "region"]
        )
        # customers.cust_id is not projected, but orders.cust_id is and
        # the join makes them equal.
        assert view.key_output_positions("customers") == (1,)
        assert view.contains_all_keys()

    def test_direct_projection_preferred(self):
        customers = RelationSchema("customers", ("cust_id", "region"), key=("cust_id",))
        orders = RelationSchema(
            "orders", ("order_id", "cust_id", "amount"), key=("order_id",)
        )
        view = View.natural_join(
            "sales",
            [customers, orders],
            ["customers.cust_id", "orders.cust_id", "order_id"],
        )
        assert view.key_output_positions("customers") == (0,)

    def test_transitive_equality_chain(self):
        a = RelationSchema("a", ("K", "P"), key=("K",))
        b = RelationSchema("b", ("P", "Q"))
        c = RelationSchema("c", ("Q", "R"))
        # K = nothing directly, but a.P = b.P and b.Q = c.Q chains exist;
        # the key K itself is only available via direct projection.
        view = View.natural_join("V", [a, b, c], ["K", "R"])
        assert view.key_output_positions("a") == (0,)

    def test_equality_under_or_does_not_count(self, schemas):
        a, b = schemas
        condition = Or(
            Comparison(Attr("a.K"), "=", Attr("b.K2")),
            Comparison(Attr("a.X"), "=", Attr("b.X")),
        )
        view = View("V", [a, b], ["b.K2", "a.X"], condition)
        # a.K = b.K2 only holds on one Or branch: not an equivalence.
        with pytest.raises(SchemaError):
            view.key_output_positions("a")

    def test_missing_key_still_rejected(self, schemas):
        a, b = schemas
        view = View.natural_join("V", [a, b], ["a.K"])  # b's key absent
        assert not view.contains_all_keys()
        with pytest.raises(SchemaError):
            view.key_output_positions("b")


class TestECAKeyWithTwinProjection:
    def test_key_delete_via_twin_column(self):
        """key-delete driven by a twin-projected key removes the right rows."""
        from repro.warehouse.state import key_delete

        customers = RelationSchema("customers", ("cust_id", "region"), key=("cust_id",))
        orders = RelationSchema(
            "orders", ("order_id", "cust_id", "amount"), key=("order_id",)
        )
        view = View.natural_join(
            "sales", [customers, orders], ["order_id", "orders.cust_id", "region"]
        )
        contents = SignedBag.from_rows(
            [(100, 1, "west"), (101, 1, "west"), (102, 2, "east")]
        )
        removed = key_delete(contents, view, "customers", (1, "west"))
        assert removed == 2
        assert sorted(contents.expand_rows()) == [(102, 2, "east")]

    def test_eca_key_accepts_twin_view(self):
        from repro.core.eca_key import ECAKey

        customers = RelationSchema("customers", ("cust_id", "region"), key=("cust_id",))
        orders = RelationSchema(
            "orders", ("order_id", "cust_id", "amount"), key=("order_id",)
        )
        view = View.natural_join(
            "sales", [customers, orders], ["order_id", "orders.cust_id", "region"]
        )
        ECAKey(view)  # must not raise

    def test_eca_key_end_to_end_with_twin_view(self):
        """Random runs on the twin-projected view stay strongly consistent."""
        from repro.consistency import check_trace
        from repro.core.eca_key import ECAKey
        from repro.relational.engine import evaluate_view
        from repro.simulation.driver import Simulation
        from repro.simulation.schedules import RandomSchedule
        from repro.source.memory import MemorySource
        from repro.workloads.random_gen import random_workload

        customers = RelationSchema("customers", ("cust_id", "region"), key=("cust_id",))
        orders = RelationSchema(
            "orders", ("order_id", "cust_id", "amount"), key=("order_id",)
        )
        view = View.natural_join(
            "sales", [customers, orders], ["order_id", "orders.cust_id", "region"]
        )
        initial = {"customers": [(1, 0), (2, 1)], "orders": [(9, 1, 5)]}
        for seed in range(10):
            workload = random_workload(
                [customers, orders], 10, seed=seed, initial=initial,
                respect_keys=True, domain=8,
            )
            source = MemorySource([customers, orders], initial)
            warehouse = ECAKey(view, evaluate_view(view, source.snapshot()))
            trace = Simulation(source, warehouse, workload).run(RandomSchedule(seed))
            report = check_trace(view, trace)
            assert report.strongly_consistent, (seed, report.detail)
