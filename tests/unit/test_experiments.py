"""Unit tests for the experiment harness (figures, tables, reports)."""

from repro.costmodel.parameters import PaperParameters
from repro.experiments.figures import (
    ALL_FIGURES,
    figure_6_2,
    figure_6_3,
    figure_6_4,
    figure_6_5,
)
from repro.experiments.report import render_series, render_table
from repro.experiments.tables import messages_table, parameter_table


class TestFigure62:
    def test_default_sweep(self):
        series = figure_6_2()
        assert series["C"] == [float(c) for c in range(1, 21)]
        assert set(series) == {"C", "BRVBest", "BRVWorst", "BECABest", "BECAWorst"}

    def test_eca_curves_flat_in_c(self):
        series = figure_6_2()
        assert len(set(series["BECABest"])) == 1
        assert len(set(series["BECAWorst"])) == 1

    def test_rv_curves_linear_in_c(self):
        series = figure_6_2()
        # BRVBest = S sigma J^2 * C: slope 32 per unit C.
        diffs = {
            series["BRVBest"][i + 1] - series["BRVBest"][i]
            for i in range(len(series["C"]) - 1)
        }
        assert diffs == {32.0}

    def test_eca_wins_beyond_about_five_tuples(self):
        series = figure_6_2()
        for c, rv, eca in zip(series["C"], series["BRVBest"], series["BECAWorst"]):
            if c >= 5:
                assert eca <= rv


class TestFigure63:
    def test_rv_best_constant(self):
        series = figure_6_3()
        assert len(set(series["BRVBest"])) == 1

    def test_eca_best_linear_eca_worst_quadratic(self):
        series = figure_6_3(k_values=range(1, 61))
        best = series["BECABest"]
        worst = series["BECAWorst"]
        first_diffs_best = {round(best[i + 1] - best[i], 6) for i in range(59)}
        assert len(first_diffs_best) == 1  # linear
        second_diffs = {
            round((worst[i + 2] - worst[i + 1]) - (worst[i + 1] - worst[i]), 6)
            for i in range(58)
        }
        assert len(second_diffs) == 1 and 0 not in second_diffs  # quadratic

    def test_crossovers_visible_in_series(self):
        series = figure_6_3()
        k = series["k"]
        # ECAWorst crosses RVBest by k=30, ECABest by k=100.
        assert series["BECAWorst"][k.index(29.0)] < series["BRVBest"][0]
        assert series["BECAWorst"][k.index(30.0)] >= series["BRVBest"][0]
        assert series["BECABest"][k.index(99.0)] < series["BRVBest"][0]
        assert series["BECABest"][k.index(100.0)] >= series["BRVBest"][0]


class TestIOFigures:
    def test_figure_6_4_crossover_at_k3(self):
        series = figure_6_4()
        k = series["k"]
        assert series["IOECABest"][k.index(2.0)] < series["IORVBest"][0]
        assert series["IOECABest"][k.index(3.0)] >= series["IORVBest"][0]

    def test_figure_6_5_rv_best_is_125(self):
        series = figure_6_5()
        assert set(series["IORVBest"]) == {125.0}

    def test_figure_6_5_worst_crossover_in_paper_window(self):
        series = figure_6_5()
        k = series["k"]
        crossed = [
            kk
            for kk, eca in zip(k, series["IOECAWorst"])
            if eca >= series["IORVBest"][0]
        ]
        assert 5 < crossed[0] < 8

    def test_custom_params_flow_through(self):
        params = PaperParameters(cardinality=200)
        series = figure_6_5(params, k_values=[1])
        assert series["IORVBest"][0] == params.I**3

    def test_all_figures_registry(self):
        assert set(ALL_FIGURES) == {
            "figure-6.2",
            "figure-6.3",
            "figure-6.4",
            "figure-6.5",
        }
        for fn in ALL_FIGURES.values():
            assert fn()  # runs with defaults


class TestTables:
    def test_parameter_table_matches_table1(self):
        rows = {row["name"]: row["value"] for row in parameter_table()}
        assert rows["C"] == 100
        assert rows["S"] == 4
        assert rows["sigma"] == 0.5
        assert rows["J"] == 4
        assert rows["K"] == 20
        assert rows["I"] == 5
        assert rows["I'"] == 3

    def test_messages_table_extremes(self):
        rows = messages_table(k_values=(10,), periods=(1,))
        by_s = {(row["k"], row["s"]): row for row in rows}
        assert by_s[(10, 1)]["M_RV"] == 20
        assert by_s[(10, 10)]["M_RV"] == 2
        assert all(row["M_ECA"] == 20 for row in rows)

    def test_messages_table_skips_s_greater_than_k(self):
        rows = messages_table(k_values=(2,), periods=(5,))
        assert all(row["s"] <= row["k"] for row in rows)


class TestRendering:
    def test_render_series_alignment(self):
        text = render_series("T", {"k": [1.0, 2.0], "A": [10.0, 20.5]}, x_key="k")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "A" in lines[2]
        assert "20.50" in text

    def test_render_table(self):
        text = render_table("T", [{"a": 1, "b": "x"}, {"a": 22, "b": "y"}])
        assert "a" in text and "22" in text

    def test_render_table_empty(self):
        assert "empty" in render_table("T", [])
