"""Unit tests for the basic (anomalous) algorithm and ECA.

These drive the algorithms directly (no simulation driver) so the tests
can inspect UQS contents, COLLECT buffering, compensation structure, and
the local evaluation of fully-bound terms.
"""

import pytest

from repro.core.basic import BasicAlgorithm
from repro.core.eca import ECA
from repro.messaging.messages import QueryAnswer, UpdateNotification
from repro.relational.bag import SignedBag
from repro.source.updates import delete, insert


def notify(update, serial=1):
    return UpdateNotification(update, serial)


class TestBasicAlgorithm:
    def test_update_emits_incremental_query(self, view_w):
        algo = BasicAlgorithm(view_w)
        requests = algo.handle_update(notify(insert("r2", (2, 3))))
        assert len(requests) == 1
        term = requests[0].query.terms[0]
        assert term.free_relations() == ("r1",)

    def test_irrelevant_update_ignored(self, view_w):
        algo = BasicAlgorithm(view_w)
        assert algo.handle_update(notify(insert("zzz", (1,)))) == []

    def test_answer_applied_immediately(self, view_w):
        algo = BasicAlgorithm(view_w)
        request = algo.handle_update(notify(insert("r2", (2, 3))))[0]
        algo.handle_answer(QueryAnswer(request.query_id, SignedBag.from_rows([(1,)])))
        assert algo.view_state() == SignedBag.from_rows([(1,)])

    def test_negative_overshoot_clamped_not_raised(self, view_w):
        # The anomalous baseline may double-delete; it must not crash.
        algo = BasicAlgorithm(view_w, SignedBag.from_rows([(1,)]))
        request = algo.handle_update(notify(delete("r1", (1, 2))))[0]
        algo.handle_answer(
            QueryAnswer(request.query_id, SignedBag({(1,): -2}))
        )
        assert algo.view_state().is_empty()


class TestECACompensation:
    def test_no_compensation_when_uqs_empty(self, view_w):
        algo = ECA(view_w)
        request = algo.handle_update(notify(insert("r2", (2, 3))))[0]
        assert request.query.term_count() == 1

    def test_compensation_added_per_pending_query(self, view_w3):
        algo = ECA(view_w3)
        algo.handle_update(notify(insert("r1", (4, 2)), 1))
        second = algo.handle_update(notify(insert("r3", (5, 3)), 2))[0]
        # Q2 = V<U2> - Q1<U2>: two source terms (paper, Example 4 step 2).
        assert second.query.term_count() == 2
        assert [t.coefficient for t in second.query.terms] == [1, -1]

    def test_example4_third_query_shape(self, view_w3):
        algo = ECA(view_w3)
        algo.handle_update(notify(insert("r1", (4, 2)), 1))
        algo.handle_update(notify(insert("r3", (5, 3)), 2))
        third = algo.handle_update(notify(insert("r2", (2, 5)), 3))[0]
        # V<U3> - Q1<U3> - Q2<U3>; the doubly-bound part of Q2<U3> is
        # fully bound and evaluated locally, leaving 3 source terms.
        assert third.query.term_count() == 3
        # The local fully-bound term contributed +[4] to COLLECT.
        assert algo.collect == SignedBag.from_rows([(4,)])

    def test_collect_buffers_until_uqs_drains(self, view_w):
        # Example 2 replayed by hand: Q1's answer sees U2's tuple; the
        # fully-bound compensation term -pi([4,2]|x|[2,3]) was evaluated
        # locally at W_up2 time, and Q2's remote part answers [4].
        algo = ECA(view_w)
        first = algo.handle_update(notify(insert("r2", (2, 3)), 1))[0]
        second = algo.handle_update(notify(insert("r1", (4, 2)), 2))[0]
        assert algo.collect == SignedBag({(4,): -1})  # local compensation
        algo.handle_answer(QueryAnswer(first.query_id, SignedBag.from_rows([(1,), (4,)])))
        assert algo.view_state().is_empty()  # still buffered
        algo.handle_answer(QueryAnswer(second.query_id, SignedBag.from_rows([(4,)])))
        assert algo.view_state() == SignedBag.from_rows([(1,), (4,)])

    def test_collect_reset_after_install(self, view_w):
        algo = ECA(view_w)
        request = algo.handle_update(notify(insert("r2", (2, 3))))[0]
        algo.handle_answer(QueryAnswer(request.query_id, SignedBag.from_rows([(1,)])))
        assert algo.collect.is_empty()
        assert algo.is_quiescent()

    def test_unbuffered_variant_applies_immediately(self, view_w):
        # The Section 5.2 strawman: answers (and local compensations) hit
        # the view as they arrive, passing through invalid intermediate
        # states — here a negative replication count — before converging.
        algo = ECA(view_w, buffer_answers=False)
        first = algo.handle_update(notify(insert("r2", (2, 3)), 1))[0]
        second = algo.handle_update(notify(insert("r1", (4, 2)), 2))[0]
        assert algo.view_state() == SignedBag({(4,): -1})  # local compensation
        algo.handle_answer(
            QueryAnswer(first.query_id, SignedBag.from_rows([(1,), (4,)]))
        )
        assert algo.view_state() == SignedBag.from_rows([(1,)])
        algo.handle_answer(QueryAnswer(second.query_id, SignedBag.from_rows([(4,)])))
        assert algo.view_state() == SignedBag.from_rows([(1,), (4,)])

    def test_irrelevant_update_no_compensation_state(self, view_w):
        algo = ECA(view_w)
        assert algo.handle_update(notify(insert("zzz", (1,)))) == []
        assert algo.is_quiescent()

    def test_strictness_of_final_install(self, view_w):
        # ECA installs strictly: a bogus answer that drives the view
        # negative must raise, not clamp.
        from repro.errors import ViewStateError

        algo = ECA(view_w)
        request = algo.handle_update(notify(delete("r1", (1, 2))))[0]
        with pytest.raises(ViewStateError):
            algo.handle_answer(
                QueryAnswer(request.query_id, SignedBag({(9,): -1}))
            )
