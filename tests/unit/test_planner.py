"""Unit contract of :class:`repro.warehouse.planner.CompensationPlanner`."""

from __future__ import annotations

import pytest

from repro.errors import ProtocolError
from repro.messaging.messages import QueryRequest
from repro.relational.expressions import Query, RelationOperand, Term
from repro.relational.schema import RelationSchema
from repro.warehouse.planner import CompensationPlanner

R1 = RelationSchema("r1", ("W", "X"), key=("W",))
R2 = RelationSchema("r2", ("X", "Y"), key=("Y",))


def join_query(aliases=None):
    s1 = R1.aliased(aliases[0]) if aliases else R1
    s2 = R2.aliased(aliases[1]) if aliases else R2
    return Query([Term([RelationOperand(s1), RelationOperand(s2)], ("W", "Y"))])


def member(view, local_id, query, destination="src"):
    return (view, destination, QueryRequest(local_id, query))


class TestIndependentMode:
    def test_every_member_gets_its_own_global_id_in_order(self):
        planner = CompensationPlanner(share=False)
        out = planner.plan(
            [member("V0", 1, join_query()), member("V1", 1, join_query())]
        )
        assert [(dest, req.query_id) for dest, req in out] == [
            ("src", 1),
            ("src", 2),
        ]
        assert planner.subscribers(1) == (("V0", 1),)
        assert planner.subscribers(2) == (("V1", 1),)
        assert (planner.issued, planner.saved) == (2, 0)

    def test_identical_queries_are_not_grouped(self):
        planner = CompensationPlanner(share=False)
        out = planner.plan([member("V0", 1, join_query())] * 3)
        assert len(out) == 3


class TestSharedMode:
    def test_signature_equal_requests_collapse_to_one_wire_query(self):
        planner = CompensationPlanner(share=True)
        out = planner.plan(
            [
                member("V0", 4, join_query()),
                member("V1", 7, join_query(aliases=("a", "b"))),
            ]
        )
        assert len(out) == 1
        assert out[0][1].query_id == 1
        assert planner.subscribers(1) == (("V0", 4), ("V1", 7))
        assert (planner.issued, planner.saved) == (1, 1)

    def test_different_destinations_never_share(self):
        planner = CompensationPlanner(share=True)
        out = planner.plan(
            [
                member("V0", 1, join_query(), destination="alpha"),
                member("V1", 1, join_query(), destination="beta"),
            ]
        )
        assert len(out) == 2

    def test_grouping_never_crosses_plan_calls(self):
        planner = CompensationPlanner(share=True)
        first = planner.plan([member("V0", 1, join_query())])
        second = planner.plan([member("V1", 1, join_query())])
        assert [req.query_id for _, req in first + second] == [1, 2]
        assert planner.saved == 0

    def test_retire_pops_the_route(self):
        planner = CompensationPlanner(share=True)
        planner.plan(
            [member("V0", 1, join_query()), member("V1", 2, join_query())]
        )
        assert planner.retire(1) == (("V0", 1), ("V1", 2))
        assert planner.is_quiescent()
        with pytest.raises(ProtocolError):
            planner.retire(1)


class TestDurability:
    def test_state_round_trips_through_a_fresh_planner(self):
        planner = CompensationPlanner(share=True)
        planner.plan(
            [member("V0", 1, join_query()), member("V1", 2, join_query())]
        )
        planner.plan([member("V0", 3, join_query(), destination="other")])
        twin = CompensationPlanner(share=True)
        twin.restore(planner.state())
        assert twin.pending_ids() == planner.pending_ids()
        for global_id in planner.pending_ids():
            assert twin.subscribers(global_id) == planner.subscribers(global_id)
        # The restored counter continues where the original would.
        follow = twin.plan([member("V1", 9, join_query())])
        assert follow[0][1].query_id == 3
