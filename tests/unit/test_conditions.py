"""Unit tests for the condition language."""

import pytest

from repro.errors import ExpressionError
from repro.relational.conditions import (
    And,
    Attr,
    Comparison,
    Const,
    Not,
    Or,
    TrueCondition,
    compare,
    conjunction,
)
from repro.relational.schema import ProductSchema, RelationSchema


@pytest.fixture
def product():
    return ProductSchema(
        [RelationSchema("r1", ("W", "X")), RelationSchema("r2", ("X", "Y"))]
    )


class TestComparison:
    @pytest.mark.parametrize(
        "op,row,expected",
        [
            ("=", (1, 2, 2, 3), True),
            ("=", (1, 2, 5, 3), False),
            ("!=", (1, 2, 5, 3), True),
            ("<", (1, 2, 3, 3), True),
            ("<=", (1, 3, 3, 3), True),
            (">", (1, 5, 3, 3), True),
            (">=", (1, 3, 3, 3), True),
        ],
    )
    def test_operators(self, product, op, row, expected):
        cond = Comparison(Attr("r1.X"), op, Attr("r2.X"))
        assert cond.bind(product)(row) is expected

    def test_constant_comparison(self, product):
        cond = Comparison(Attr("W"), ">", Const(10))
        predicate = cond.bind(product)
        assert predicate((11, 0, 0, 0))
        assert not predicate((10, 0, 0, 0))

    def test_unknown_operator_rejected(self):
        with pytest.raises(ExpressionError):
            Comparison(Attr("A"), "~", Attr("B"))

    def test_attributes_listed(self):
        cond = Comparison(Attr("W"), ">", Const(10))
        assert cond.attributes() == ("W",)
        both = Comparison(Attr("W"), "=", Attr("Y"))
        assert both.attributes() == ("W", "Y")


class TestBooleans:
    def test_true_condition(self, product):
        assert TrueCondition().bind(product)((0, 0, 0, 0))
        assert TrueCondition().attributes() == ()

    def test_and(self, product):
        cond = And(
            Comparison(Attr("W"), ">", Const(0)),
            Comparison(Attr("Y"), "<", Const(5)),
        )
        predicate = cond.bind(product)
        assert predicate((1, 0, 0, 4))
        assert not predicate((0, 0, 0, 4))
        assert not predicate((1, 0, 0, 5))

    def test_or(self, product):
        cond = Or(
            Comparison(Attr("W"), "=", Const(1)),
            Comparison(Attr("Y"), "=", Const(1)),
        )
        predicate = cond.bind(product)
        assert predicate((1, 0, 0, 0))
        assert predicate((0, 0, 0, 1))
        assert not predicate((0, 0, 0, 0))

    def test_not(self, product):
        cond = Not(Comparison(Attr("W"), "=", Const(1)))
        predicate = cond.bind(product)
        assert predicate((0, 0, 0, 0))
        assert not predicate((1, 0, 0, 0))

    def test_empty_and_or_rejected(self):
        with pytest.raises(ExpressionError):
            And()
        with pytest.raises(ExpressionError):
            Or()

    def test_operator_overloads(self, product):
        a = Comparison(Attr("W"), "=", Const(1))
        b = Comparison(Attr("Y"), "=", Const(2))
        assert isinstance(a & b, And)
        assert isinstance(a | b, Or)
        assert isinstance(~a, Not)

    def test_nested_attributes(self):
        cond = And(
            Or(Comparison(Attr("A"), "=", Const(1)), Comparison(Attr("B"), "=", Const(2))),
            Not(Comparison(Attr("C"), "=", Attr("D"))),
        )
        assert cond.attributes() == ("A", "B", "C", "D")


class TestSqlRendering:
    def _render(self, cond):
        params = []
        sql = cond.to_sql(lambda name: f'"{name}"', params)
        return sql, params

    def test_comparison_with_constant(self):
        sql, params = self._render(Comparison(Attr("W"), ">", Const(10)))
        assert sql == '("W" > ?)'
        assert params == [10]

    def test_not_equal_renders_sql_style(self):
        sql, _ = self._render(Comparison(Attr("A"), "!=", Attr("B")))
        assert "<>" in sql

    def test_boolean_composition(self):
        cond = And(
            Comparison(Attr("A"), "=", Const(1)),
            Or(Comparison(Attr("B"), "<", Const(2)), Not(TrueCondition())),
        )
        sql, params = self._render(cond)
        assert "AND" in sql and "OR" in sql and "NOT" in sql
        assert params == [1, 2]

    def test_true_condition_sql(self):
        sql, params = self._render(TrueCondition())
        assert sql == "1=1"
        assert params == []


class TestHelpers:
    def test_compare_wraps_strings_as_attrs(self):
        cond = compare("r1.X", "=", "r2.X")
        assert cond == Comparison(Attr("r1.X"), "=", Attr("r2.X"))

    def test_compare_wraps_values_as_consts(self):
        cond = compare("W", ">", 3)
        assert cond == Comparison(Attr("W"), ">", Const(3))

    def test_conjunction_empty_is_true(self):
        assert conjunction([]) == TrueCondition()

    def test_conjunction_single_passthrough(self):
        c = Comparison(Attr("A"), "=", Const(1))
        assert conjunction([c]) is c

    def test_conjunction_drops_true(self):
        c = Comparison(Attr("A"), "=", Const(1))
        assert conjunction([TrueCondition(), c]) is c

    def test_conjunction_multiple(self):
        a = Comparison(Attr("A"), "=", Const(1))
        b = Comparison(Attr("B"), "=", Const(2))
        assert conjunction([a, b]) == And(a, b)


class TestEqualityAndRepr:
    def test_condition_equality(self):
        a = Comparison(Attr("A"), "=", Const(1))
        assert a == Comparison(Attr("A"), "=", Const(1))
        assert a != Comparison(Attr("A"), "=", Const(2))
        assert And(a) == And(a)
        assert Or(a) != And(a)
        assert Not(a) == Not(a)

    def test_reprs_render(self):
        cond = And(Comparison(Attr("A"), "=", Const(1)), Not(TrueCondition()))
        text = repr(cond)
        assert "A" in text and "TRUE" in text
