"""Unit tests for union views and schema aliases at the module level."""

import pytest

from repro.errors import SchemaError
from repro.relational.bag import SignedBag
from repro.relational.conditions import Attr, Comparison
from repro.relational.engine import evaluate_query
from repro.relational.schema import RelationSchema
from repro.relational.unions import UnionView
from repro.relational.views import View
from repro.source.memory import MemorySource
from repro.source.updates import insert


class TestAliasedSchemas:
    def test_aliased_copy_fields(self):
        emp = RelationSchema("emp", ("name", "dept"), key=("name",))
        alias = emp.aliased("e2")
        assert alias.base == "emp"
        assert alias.name == "e2"
        assert alias.key == ("name",)
        assert alias.is_alias
        assert "AS e2" in repr(alias)

    def test_alias_of_alias_keeps_original_base(self):
        emp = RelationSchema("emp", ("name",))
        twice = emp.aliased("a").aliased("b")
        assert twice.base == "emp"
        assert twice.name == "b"

    def test_alias_changes_equality(self):
        emp = RelationSchema("emp", ("name",))
        assert emp.aliased("a") != emp
        assert emp.aliased("a") == emp.aliased("a")

    def test_invalid_alias_rejected(self):
        emp = RelationSchema("emp", ("name",))
        with pytest.raises(SchemaError):
            emp.aliased("not a name")

    def test_term_source_relation_names(self):
        emp = RelationSchema("emp", ("name", "dept"))
        view = View(
            "pairs",
            [emp.aliased("a"), emp.aliased("b")],
            ["a.name", "b.name"],
            Comparison(Attr("a.dept"), "=", Attr("b.dept")),
        )
        term = view.as_query().terms[0]
        assert term.relation_names == ("a", "b")
        assert term.source_relation_names == ("emp", "emp")

    def test_memory_source_serves_aliases(self):
        emp = RelationSchema("emp", ("name", "dept"))
        view = View(
            "pairs",
            [emp.aliased("a"), emp.aliased("b")],
            ["a.name", "b.name"],
            Comparison(Attr("a.dept"), "=", Attr("b.dept")),
        )
        source = MemorySource([emp], {"emp": [(1, 10), (2, 10)]})
        answer = source.evaluate(view.as_query())
        assert answer.multiplicity((1, 2)) == 1
        assert answer.multiplicity((2, 1)) == 1
        assert answer.multiplicity((1, 1)) == 1


class TestUnionViewUnits:
    @pytest.fixture
    def branches(self):
        a = RelationSchema("a", ("item", "qty"))
        b = RelationSchema("b", ("item", "qty"))
        view_a = View("va", [a], ["item", "qty"])
        view_b = View("vb", [b], ["item", "qty"])
        return a, b, view_a, view_b

    def test_as_query_concatenates_terms(self, branches):
        _, _, view_a, view_b = branches
        union = UnionView("u", [view_a, view_b])
        assert union.as_query().term_count() == 2
        assert [t.coefficient for t in union.as_query().terms] == [1, 1]

    def test_difference_negates_second_branch(self, branches):
        _, _, view_a, view_b = branches
        diff = UnionView("d", [(1, view_a), (-1, view_b)])
        assert [t.coefficient for t in diff.as_query().terms] == [1, -1]

    def test_output_columns_from_first_branch(self, branches):
        _, _, view_a, view_b = branches
        union = UnionView("u", [view_a, view_b])
        assert union.output_columns() == ("item", "qty")
        assert union.arity == 2

    def test_engine_evaluates_union(self, branches):
        _, _, view_a, view_b = branches
        union = UnionView("u", [view_a, view_b])
        state = {
            "a": SignedBag.from_rows([(1, 5)]),
            "b": SignedBag.from_rows([(1, 5), (2, 1)]),
        }
        direct = union.evaluate(state)
        assert direct.multiplicity((1, 5)) == 2
        assert direct == evaluate_query(union.as_query(), state)

    def test_substitute_routes_to_owning_branch(self, branches):
        _, _, view_a, view_b = branches
        union = UnionView("u", [view_a, view_b])
        query = union.substitute("b", insert("b", (3, 3)).signed_tuple())
        assert query.term_count() == 1
        assert query.terms[0].is_fully_bound()

    def test_union_of_self_join_branch(self):
        emp = RelationSchema("emp", ("name", "dept"))
        pairs = View(
            "pairs",
            [emp.aliased("a"), emp.aliased("b")],
            ["a.name", "b.name"],
            Comparison(Attr("a.dept"), "=", Attr("b.dept")),
        )
        solo = RelationSchema("solo", ("x", "y"))
        singles = View("singles", [solo], ["x", "y"])
        union = UnionView("mix", [pairs, singles])
        # An update to emp expands the self-join branch by
        # inclusion-exclusion (3 terms) and skips the other branch.
        query = union.substitute("emp", insert("emp", (9, 1)).signed_tuple())
        assert query.term_count() == 3

    def test_repr_single_branch(self, branches):
        _, _, view_a, _ = branches
        assert "va" in repr(UnionView("u", [view_a]))
