"""Unit tests for the ECA-Key algorithm."""

import pytest

from repro.core.eca_key import ECAKey
from repro.errors import SchemaError
from repro.messaging.messages import QueryAnswer, UpdateNotification
from repro.relational.bag import SignedBag
from repro.relational.views import View
from repro.source.updates import delete, insert


def notify(update, serial=1):
    return UpdateNotification(update, serial)


class TestApplicability:
    def test_requires_all_keys_projected(self, keyed_schemas):
        view = View.natural_join("V", keyed_schemas, ["W"])  # misses r2's key
        with pytest.raises(SchemaError):
            ECAKey(view)

    def test_requires_declared_keys(self, view_wy):
        with pytest.raises(SchemaError):
            ECAKey(view_wy)

    def test_accepts_key_complete_view(self, keyed_view):
        ECAKey(keyed_view)  # does not raise


class TestDeletes:
    def test_delete_handled_locally_no_query(self, keyed_view):
        algo = ECAKey(keyed_view, SignedBag.from_rows([(1, 3)]))
        requests = algo.handle_update(notify(delete("r1", (1, 2))))
        assert requests == []
        # UQS was empty, so the view is installed immediately.
        assert algo.view_state().is_empty()

    def test_delete_by_second_relation_key(self, keyed_view):
        algo = ECAKey(keyed_view, SignedBag.from_rows([(1, 3), (2, 4)]))
        algo.handle_update(notify(delete("r2", (9, 3))))
        assert algo.view_state() == SignedBag.from_rows([(2, 4)])

    def test_delete_while_queries_pending_defers_install(self, keyed_view):
        algo = ECAKey(keyed_view, SignedBag.from_rows([(1, 3)]))
        algo.handle_update(notify(insert("r2", (2, 4)), 1))
        algo.handle_update(notify(delete("r1", (1, 2)), 2))
        # COLLECT updated, but MV not replaced while UQS is non-empty.
        assert algo.collect.is_empty()
        assert algo.view_state() == SignedBag.from_rows([(1, 3)])


class TestInserts:
    def test_insert_sends_uncompensated_query(self, keyed_view):
        algo = ECAKey(keyed_view)
        algo.handle_update(notify(insert("r2", (2, 4)), 1))
        second = algo.handle_update(notify(insert("r1", (3, 2)), 2))
        # No compensating terms even with a pending query.
        assert second[0].query.term_count() == 1

    def test_duplicate_answer_tuples_dropped(self, keyed_view):
        algo = ECAKey(keyed_view, SignedBag.from_rows([(1, 3)]))
        q1 = algo.handle_update(notify(insert("r2", (2, 4)), 1))[0]
        q2 = algo.handle_update(notify(insert("r1", (3, 2)), 2))[0]
        algo.handle_answer(QueryAnswer(q1.query_id, SignedBag.from_rows([(3, 4)])))
        # A2 repeats [3,4]; the duplicate must be ignored (paper step 5).
        algo.handle_answer(
            QueryAnswer(q2.query_id, SignedBag.from_rows([(3, 3), (3, 4)]))
        )
        assert sorted(algo.view_state().expand_rows()) == [(1, 3), (3, 3), (3, 4)]

    def test_negative_answer_tuple_rejected(self, keyed_view):
        algo = ECAKey(keyed_view)
        q1 = algo.handle_update(notify(insert("r2", (2, 4))))[0]
        with pytest.raises(ValueError):
            algo.handle_answer(QueryAnswer(q1.query_id, SignedBag({(1, 4): -1})))


class TestDeleteInsertRace:
    def test_late_answer_does_not_resurrect_deleted_key(self, keyed_view):
        """The Appendix C gap: delete of the very tuple whose insert query
        is in flight.  The answer still carries the key (it is bound into
        the query), and must be filtered out."""
        algo = ECAKey(keyed_view)
        q1 = algo.handle_update(notify(insert("r2", (2, 4)), 1))[0]
        algo.handle_update(notify(delete("r2", (2, 4)), 2))
        # Source evaluated Q1 after the delete; r1 = ([1,2]) say:
        algo.handle_answer(QueryAnswer(q1.query_id, SignedBag.from_rows([(1, 4)])))
        assert algo.view_state().is_empty()

    def test_filter_does_not_outlive_its_query(self, keyed_view):
        algo = ECAKey(keyed_view)
        q1 = algo.handle_update(notify(insert("r2", (2, 4)), 1))[0]
        algo.handle_update(notify(delete("r2", (2, 4)), 2))
        algo.handle_answer(QueryAnswer(q1.query_id, SignedBag.from_rows([(1, 4)])))
        # Re-insert the same key: its own query's answer must NOT be
        # filtered by the stale delete.
        q3 = algo.handle_update(notify(insert("r2", (2, 4)), 3))[0]
        algo.handle_answer(QueryAnswer(q3.query_id, SignedBag.from_rows([(1, 4)])))
        assert algo.view_state() == SignedBag.from_rows([(1, 4)])

    def test_other_relation_delete_filters_pending_answer(self, keyed_view):
        algo = ECAKey(keyed_view, SignedBag())
        q1 = algo.handle_update(notify(insert("r2", (2, 4)), 1))[0]
        algo.handle_update(notify(delete("r1", (1, 2)), 2))
        # Answer evaluated before the r1 delete would normally have
        # arrived first (FIFO); if it does arrive after, dropping the
        # deleted key is exactly what key-delete would have done.
        algo.handle_answer(QueryAnswer(q1.query_id, SignedBag.from_rows([(1, 4)])))
        assert algo.view_state().is_empty()


class TestInstallSemantics:
    def test_collect_is_working_copy_not_reset(self, keyed_view):
        algo = ECAKey(keyed_view, SignedBag.from_rows([(1, 3)]))
        q1 = algo.handle_update(notify(insert("r1", (5, 2))))[0]
        algo.handle_answer(QueryAnswer(q1.query_id, SignedBag.from_rows([(5, 3)])))
        assert algo.collect == SignedBag.from_rows([(1, 3), (5, 3)])
        assert algo.view_state() == algo.collect

    def test_quiescence(self, keyed_view):
        algo = ECAKey(keyed_view)
        assert algo.is_quiescent()
        q1 = algo.handle_update(notify(insert("r1", (5, 2))))[0]
        assert not algo.is_quiescent()
        algo.handle_answer(QueryAnswer(q1.query_id, SignedBag()))
        assert algo.is_quiescent()

    def test_irrelevant_update_ignored(self, keyed_view):
        algo = ECAKey(keyed_view)
        assert algo.handle_update(notify(insert("zzz", (1,)))) == []
