"""Unit tests for the runtime's async transports."""

import asyncio

import pytest

from repro.errors import ChannelEmpty, TransportClosed
from repro.messaging.messages import QueryAnswer, UpdateNotification
from repro.relational.bag import SignedBag
from repro.runtime.transport import (
    FaultPlan,
    FaultyTransport,
    InMemoryTransport,
)
from repro.source.updates import insert


def note(serial: int) -> UpdateNotification:
    return UpdateNotification(insert("r", (serial,)), serial)


def run(coro):
    return asyncio.run(coro)


class TestInMemoryTransport:
    def test_fifo_per_channel(self):
        async def scenario():
            t = InMemoryTransport()
            for i in range(1, 4):
                await t.send("a", note(i))
            return [(await t.recv("a")).serial for _ in range(3)]

        assert run(scenario()) == [1, 2, 3]

    def test_recv_any_merges_in_send_order(self):
        async def scenario():
            t = InMemoryTransport()
            await t.send("a", note(1))
            await t.send("b", note(2))
            await t.send("a", note(3))
            out = []
            for _ in range(3):
                channel, message = await t.recv_any(("a", "b"))
                out.append((channel, message.serial))
            return out

        assert run(scenario()) == [("a", 1), ("b", 2), ("a", 3)]

    def test_recv_blocks_until_send(self):
        async def scenario():
            t = InMemoryTransport()

            async def producer():
                await asyncio.sleep(0)
                await t.send("a", note(7))

            task = asyncio.ensure_future(producer())
            message = await t.recv("a")
            await task
            return message.serial

        assert run(scenario()) == 7

    def test_receive_nowait_raises_channel_empty(self):
        t = InMemoryTransport()
        with pytest.raises(ChannelEmpty):
            t.receive_nowait("a")

    def test_close_unblocks_waiters(self):
        async def scenario():
            t = InMemoryTransport()

            async def closer():
                await asyncio.sleep(0)
                t.close()

            task = asyncio.ensure_future(closer())
            with pytest.raises(TransportClosed):
                await t.recv("a")
            await task

        run(scenario())

    def test_close_drains_before_raising(self):
        async def scenario():
            t = InMemoryTransport()
            await t.send("a", note(1))
            t.close()
            message = await t.recv("a")  # still deliverable
            with pytest.raises(TransportClosed):
                await t.recv("a")
            return message.serial

        assert run(scenario()) == 1

    def test_send_after_close_raises(self):
        async def scenario():
            t = InMemoryTransport()
            t.close()
            with pytest.raises(TransportClosed):
                await t.send("a", note(1))

        run(scenario())

    def test_stats_and_sizer(self):
        async def scenario():
            t = InMemoryTransport(
                sizer=lambda m: m.answer.total_count() * 4
                if isinstance(m, QueryAnswer)
                else 0
            )
            await t.send("a", note(1))
            await t.send("a", QueryAnswer(1, SignedBag.from_rows([(1,), (2,)])))
            await t.recv("a")
            return t.stats()["a"]

        stats = run(scenario())
        assert stats.sent == 2
        assert stats.delivered == 1
        assert stats.sent_bytes == 8
        assert stats.max_pending == 2


class TestFaultyTransport:
    def test_jitter_reorders_across_channels_not_within(self):
        async def scenario():
            t = FaultyTransport(plan=FaultPlan(latency=1.0, jitter=10.0), seed=3)
            for i in range(1, 5):
                await t.send("a" if i % 2 else "b", note(i))
            out = []
            for _ in range(4):
                channel, message = await t.recv_any(("a", "b"))
                out.append((channel, message.serial))
            return out

        out = run(scenario())
        # Per-channel FIFO always holds ...
        assert [s for c, s in out if c == "a"] == sorted(
            s for c, s in out if c == "a"
        )
        assert [s for c, s in out if c == "b"] == sorted(
            s for c, s in out if c == "b"
        )

    def test_non_fifo_plan_can_reorder_within_channel(self):
        async def scenario(seed):
            plan = FaultPlan(latency=1.0, jitter=50.0, fifo_per_channel=False)
            t = FaultyTransport(plan=plan, seed=seed)
            for i in range(1, 9):
                await t.send("a", note(i))
            return [(await t.recv("a")).serial for _ in range(8)]

        reordered = [run(scenario(seed)) for seed in range(8)]
        assert any(serials != sorted(serials) for serials in reordered)

    def test_drops_add_delay_and_are_counted(self):
        async def scenario():
            plan = FaultPlan(latency=1.0, drop_rate=0.7, retry_timeout=5.0)
            t = FaultyTransport(plan=plan, seed=1)
            for i in range(1, 21):
                await t.send("a", note(i))
            for _ in range(20):
                await t.recv("a")
            return t.stats()["a"], t.now()

        stats, now = run(scenario())
        assert stats.dropped > 0
        assert stats.retries == stats.dropped
        assert stats.delivered == 20
        assert now > 20 * 1.0  # retries pushed the virtual clock out

    def test_deterministic_schedule_under_fixed_seed(self):
        async def scenario():
            plan = FaultPlan(latency=1.0, jitter=4.0, drop_rate=0.4)
            t = FaultyTransport(plan=plan, seed=9)
            for i in range(1, 13):
                await t.send("a" if i % 3 else "b", note(i))
            out = []
            for _ in range(12):
                channel, message = await t.recv_any(("a", "b"))
                out.append((channel, message.serial, t.now()))
            return out

        assert run(scenario()) == run(scenario())

    def test_virtual_clock_is_monotone(self):
        async def scenario():
            t = FaultyTransport(plan=FaultPlan(latency=2.0, jitter=7.0), seed=5)
            times = []
            for i in range(1, 10):
                await t.send("a" if i % 2 else "b", note(i))
            for _ in range(9):
                await t.recv_any(("a", "b"))
                times.append(t.now())
            return times

        times = run(scenario())
        assert times == sorted(times)

    def test_plan_validation(self):
        with pytest.raises(ValueError):
            FaultPlan(drop_rate=1.0)
        with pytest.raises(ValueError):
            FaultPlan(latency=-1)
        with pytest.raises(ValueError):
            FaultPlan(max_retries=-2)
