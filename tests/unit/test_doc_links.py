"""The documentation must not rot: links resolve, anchors exist.

Runs the same checker CI's docs job runs (``tools/check_doc_links.py``)
over the real repository, plus unit coverage of the slug/extraction
rules on synthetic trees.
"""

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
sys.path.insert(0, str(REPO_ROOT / "tools"))

from check_doc_links import (  # noqa: E402
    ANALYSIS_CLI,
    ANALYSIS_DOC,
    RUNTIME_CLI,
    RUNTIME_FLAG_DOCS,
    SERVING_DOC,
    anchors_of,
    check_file,
    check_lint_flags,
    check_runtime_flags,
    check_subcommands,
    check_tree,
    lint_cli_flags,
    lint_flag_references,
    runtime_cli_flags,
    runtime_cli_subcommands,
    runtime_flag_references,
    slugify,
    subcommand_references,
)


class TestSlugify:
    def test_github_rules(self):
        assert slugify("Overhead") == "overhead"
        assert slugify("1. Schemas, views, sources") == "1-schemas-views-sources"
        assert slugify("The trace model") == "the-trace-model"
        assert slugify("`repro.obs` internals") == "reproobs-internals"

    def test_duplicate_headings_get_suffixes(self, tmp_path):
        doc = tmp_path / "d.md"
        doc.write_text("# Setup\n\n## Setup\n")
        assert anchors_of(doc) == {"setup", "setup-1"}


class TestCheckFile:
    def test_valid_relative_link_and_anchor(self, tmp_path):
        (tmp_path / "other.md").write_text("# Target Heading\n")
        doc = tmp_path / "doc.md"
        doc.write_text("[ok](other.md) [ok2](other.md#target-heading) [self](#intro)\n\n# Intro\n")
        assert check_file(doc, tmp_path) == []

    def test_missing_file_reported_with_line(self, tmp_path):
        doc = tmp_path / "doc.md"
        doc.write_text("line one\n[bad](missing.md)\n")
        (broken,) = check_file(doc, tmp_path)
        assert broken.line == 2
        assert broken.target == "missing.md"
        assert broken.reason == "no such file"

    def test_missing_anchor_reported(self, tmp_path):
        (tmp_path / "other.md").write_text("# Only Heading\n")
        doc = tmp_path / "doc.md"
        doc.write_text("[bad](other.md#nope)\n")
        (broken,) = check_file(doc, tmp_path)
        assert "#nope" in broken.reason

    def test_external_links_and_code_are_skipped(self, tmp_path):
        doc = tmp_path / "doc.md"
        doc.write_text(
            "[web](https://example.com) [mail](mailto:x@y.z)\n"
            "`[not a link](nowhere.md)`\n"
            "```\n[also not](nowhere.md)\n```\n"
        )
        assert check_file(doc, tmp_path) == []

    def test_link_escaping_the_repo_is_rejected(self, tmp_path):
        doc = tmp_path / "doc.md"
        doc.write_text("[out](../../etc/passwd)\n")
        (broken,) = check_file(doc, tmp_path)
        assert broken.reason == "escapes the repository"


class TestLintFlags:
    """docs/ANALYSIS.md's `repro lint` flag references must resolve."""

    def _tree(self, tmp_path, doc_text):
        (tmp_path / "docs").mkdir()
        (tmp_path / "docs" / Path(ANALYSIS_DOC).name).write_text(doc_text)
        cli = tmp_path / ANALYSIS_CLI
        cli.parent.mkdir(parents=True)
        cli.write_text((REPO_ROOT / ANALYSIS_CLI).read_text(encoding="utf-8"))
        return tmp_path

    def test_parser_flags_read_without_import(self):
        assert lint_cli_flags(REPO_ROOT) == {
            "--format",
            "--list-rules",
            "--sarif",
            "--changed",
            "--jobs",
            "--cache-dir",
        }

    def test_references_extracted_from_spans_and_fences(self):
        refs = list(
            lint_flag_references(
                "Run `python -m repro.analysis --list-rules` or pass\n"
                "`--format json`.\n"
                "```bash\n"
                "python -m repro.analysis src --format text\n"
                "ruff check --fix src  # unrelated tool: not scanned\n"
                "```\n"
            )
        )
        assert refs == [(1, "--list-rules"), (2, "--format"), (4, "--format")]

    def test_dangling_flag_is_reported(self, tmp_path):
        root = self._tree(
            tmp_path, "Pass `--frobnicate` to `repro lint` for extra frob.\n"
        )
        (broken,) = check_lint_flags(root)
        assert broken.target == "--frobnicate"
        assert "no such repro lint flag" in broken.reason

    def test_real_analysis_doc_references_are_live_and_nonempty(self):
        doc = (REPO_ROOT / ANALYSIS_DOC).read_text(encoding="utf-8")
        refs = list(lint_flag_references(doc))
        assert refs, "ANALYSIS.md documents no CLI flags — scan is vacuous"
        assert check_lint_flags(REPO_ROOT) == []


class TestRuntimeFlags:
    """docs/SERVING.md's `repro runtime` flag references must resolve."""

    def _tree(self, tmp_path, doc_text, extra=None, extra_text=None):
        (tmp_path / "docs").mkdir()
        (tmp_path / "docs" / Path(SERVING_DOC).name).write_text(doc_text)
        if extra is not None:
            (tmp_path / extra).write_text(
                extra_text
                or "Pass `--hyper-batch` to `repro runtime` to batch harder.\n"
            )
        cli = tmp_path / RUNTIME_CLI
        cli.parent.mkdir(parents=True)
        cli.write_text((REPO_ROOT / RUNTIME_CLI).read_text(encoding="utf-8"))
        return tmp_path

    def test_parser_defines_the_serving_flags(self):
        flags = runtime_cli_flags(REPO_ROOT)
        assert {
            "--cache",
            "--staleness-bound",
            "--cache-capacity",
            "--cache-policy",
            "--read-workload",
        } <= flags

    def test_references_keyed_on_runtime_invocations(self):
        refs = list(
            runtime_flag_references(
                "Run `python -m repro runtime --cache` with\n"
                "`--staleness-bound 2`.\n"
                "```bash\n"
                "python -m repro runtime --cache --read-workload zipf:1.2\n"
                "python -m repro.analysis src --format text  # lint, not scanned\n"
                "```\n"
            )
        )
        assert refs == [
            (1, "--cache"),
            (2, "--staleness-bound"),
            (4, "--cache"),
            (4, "--read-workload"),
        ]

    def test_dangling_flag_is_reported(self, tmp_path):
        root = self._tree(
            tmp_path, "Pass `--turbo-cache` to `repro runtime` to go fast.\n"
        )
        (broken,) = check_runtime_flags(root)
        assert broken.target == "--turbo-cache"
        assert "no such repro runtime flag" in broken.reason

    def test_real_serving_doc_references_are_live_and_nonempty(self):
        doc = (REPO_ROOT / SERVING_DOC).read_text(encoding="utf-8")
        refs = list(runtime_flag_references(doc))
        assert refs, "SERVING.md documents no CLI flags — scan is vacuous"
        assert check_runtime_flags(REPO_ROOT) == []

    def test_parser_defines_the_batching_flags(self):
        assert {"--batch-k", "--wire-codec"} <= runtime_cli_flags(REPO_ROOT)

    def test_relational_and_performance_docs_are_scanned(self):
        # The k-update docs must be in the validated set, reference the
        # batching flags, and resolve cleanly against the parser.
        assert "docs/RELATIONAL.md" in RUNTIME_FLAG_DOCS
        assert "docs/PERFORMANCE.md" in RUNTIME_FLAG_DOCS
        for relpath in ("docs/RELATIONAL.md", "docs/PERFORMANCE.md"):
            doc = (REPO_ROOT / relpath).read_text(encoding="utf-8")
            flags = {flag for _, flag in runtime_flag_references(doc)}
            assert {"--batch-k", "--wire-codec"} <= flags, relpath
        assert check_runtime_flags(REPO_ROOT) == []

    def test_dangling_flag_in_a_new_runtime_doc_is_reported(self, tmp_path):
        root = self._tree(
            tmp_path, "# serving\n", extra="docs/RELATIONAL.md"
        )
        (broken,) = check_runtime_flags(root)
        assert broken.target == "--hyper-batch"
        assert broken.file.name == "RELATIONAL.md"


class TestSubcommands:
    """Every ``repro <sub>`` a doc shows must be a registered subparser."""

    def test_parser_registers_the_documented_subcommands(self):
        subs = runtime_cli_subcommands(REPO_ROOT)
        assert {"runtime", "freshness", "trace", "lint", "scenario"} <= subs

    def test_references_come_from_code_positions_only(self):
        refs = list(
            subcommand_references(
                "Prose about the repro warehouse is not scanned.\n"
                "Run `repro freshness --reads 8` or `python -m repro trace t`.\n"
                "```bash\n"
                "python -m repro runtime --seed 7\n"
                "```\n"
                "```python\n"
                "from repro import Simulation  # import, not an invocation\n"
                "```\n"
            )
        )
        assert refs == [(2, "freshness"), (2, "trace"), (4, "runtime")]

    def test_dangling_subcommand_is_reported(self, tmp_path):
        (tmp_path / "README.md").write_text("See `repro frobnicate --all`.\n")
        cli = tmp_path / RUNTIME_CLI
        cli.parent.mkdir(parents=True)
        cli.write_text((REPO_ROOT / RUNTIME_CLI).read_text(encoding="utf-8"))
        (broken,) = check_subcommands(tmp_path)
        assert broken.target == "repro frobnicate"
        assert "no such repro subcommand" in broken.reason

    def test_multiview_doc_is_flag_checked_and_references_are_live(self):
        assert "docs/MULTIVIEW.md" in RUNTIME_FLAG_DOCS
        doc = (REPO_ROOT / "docs" / "MULTIVIEW.md").read_text(encoding="utf-8")
        flags = {flag for _, flag in runtime_flag_references(doc)}
        assert "--share-compensation" in flags
        subs = {sub for _, sub in subcommand_references(doc)}
        assert {"runtime", "freshness"} <= subs
        assert check_runtime_flags(REPO_ROOT) == []
        assert check_subcommands(REPO_ROOT) == []


class TestRealRepository:
    def test_readme_and_docs_have_no_dead_links(self):
        broken = check_tree(REPO_ROOT)
        assert broken == [], "\n".join(
            f"{b.file.relative_to(REPO_ROOT)}:{b.line}: {b.target} — {b.reason}"
            for b in broken
        )

    def test_documentation_index_covers_every_docs_file(self):
        # Every docs/*.md must be reachable from the README's index.
        readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
        for path in sorted((REPO_ROOT / "docs").glob("*.md")):
            assert f"docs/{path.name}" in readme, f"README does not link docs/{path.name}"


class TestTutorialDoctest:
    def test_tutorial_examples_execute(self):
        import doctest

        failures, tested = doctest.testfile(
            str(REPO_ROOT / "docs" / "TUTORIAL.md"), module_relative=False
        )
        assert tested > 0
        assert failures == 0
