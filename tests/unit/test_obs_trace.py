"""Unit tests for the causal tracer (repro.obs.trace + export helpers)."""

import pytest

from repro.obs.export import (
    read_trace_jsonl,
    render_timeline,
    write_trace_jsonl,
)
from repro.obs.trace import CAUSES, COMPENSATES, Span, Tracer


class TestSpan:
    def test_links_and_linked(self):
        span = Span(1, "wh.query", "query", 0.0)
        span.link(CAUSES, 7)
        span.link(COMPENSATES, 3)
        span.link(COMPENSATES, 4)
        assert span.linked(CAUSES) == [7]
        assert span.linked(COMPENSATES) == [3, 4]

    def test_as_dict_round_trips_fields(self):
        span = Span(2, "a", "k", 1.5, parent_id=1, links=((CAUSES, 1),), attrs={"x": 9})
        d = span.as_dict()
        assert d["span_id"] == 2
        assert d["parent"] == 1
        assert d["links"] == [["causes", 1]]
        assert d["attrs"] == {"x": 9}
        assert d["end"] is None


class TestTracer:
    def test_default_clock_is_monotone(self):
        tracer = Tracer()
        a = tracer.start("a", "k")
        b = tracer.start("b", "k")
        assert b.start > a.start

    def test_injected_clock_is_used(self):
        times = iter([5.0, 9.0])
        tracer = Tracer(clock=lambda: next(times))
        span = tracer.start("a", "k")
        tracer.end(span)
        assert span.start == 5.0
        assert span.end == 9.0

    def test_none_link_targets_are_skipped(self):
        tracer = Tracer()
        span = tracer.start("a", "k", links=((CAUSES, None), (CAUSES, 4)))
        assert span.links == ((CAUSES, 4),)

    def test_instant_has_zero_duration(self):
        tracer = Tracer()
        span = tracer.instant("a", "k")
        assert span.end == span.start

    def test_ring_buffer_evicts_and_counts(self):
        tracer = Tracer(capacity=3)
        for index in range(5):
            tracer.instant(f"s{index}", "k")
        assert len(tracer) == 3
        assert tracer.dropped == 2
        assert [s.name for s in tracer.spans()] == ["s2", "s3", "s4"]

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)

    def test_bindings_resolve_message_identity(self):
        tracer = Tracer()
        update = tracer.instant("source.update", "update", serial=3)
        tracer.bind(("U", 3), update)
        assert tracer.lookup(("U", 3)) == update.span_id
        assert tracer.lookup(("U", 99)) is None

    def test_end_merges_final_attrs(self):
        tracer = Tracer()
        span = tracer.start("a", "k", x=1)
        tracer.end(span, y=2)
        assert span.attrs == {"x": 1, "y": 2}


class TestExport:
    def test_jsonl_round_trip(self, tmp_path):
        tracer = Tracer()
        parent = tracer.instant("wh.update", "wh_event", serial=1)
        tracer.instant("wh.query", "query", parent=parent, links=((CAUSES, parent.span_id),))
        path = str(tmp_path / "trace.jsonl")
        assert write_trace_jsonl(tracer, path) == 2
        rows = read_trace_jsonl(path)
        assert len(rows) == 2
        assert rows[1]["parent"] == parent.span_id
        assert rows[1]["links"] == [["causes", parent.span_id]]

    def test_timeline_renders_links_and_indentation(self):
        tracer = Tracer()
        update = tracer.instant("source.update", "update", serial=2)
        event = tracer.instant("wh.update", "wh_event", links=((CAUSES, update.span_id),))
        tracer.instant("wh.query", "query", parent=event, query_id=1)
        text = render_timeline([s.as_dict() for s in tracer.spans()])
        assert "<- causes source.update[serial=2]" in text
        assert "  wh.query" in text  # indented under its parent

    def test_timeline_limit_reports_remainder(self):
        tracer = Tracer()
        for index in range(4):
            tracer.instant(f"s{index}", "k")
        text = render_timeline([s.as_dict() for s in tracer.spans()], limit=2)
        assert "2 more span(s)" in text

    def test_timeline_unresolvable_link_prints_id(self):
        tracer = Tracer()
        tracer.instant("a", "k", links=((CAUSES, 999),))
        text = render_timeline([s.as_dict() for s in tracer.spans()])
        assert "<- causes #999" in text
