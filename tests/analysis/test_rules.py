"""Golden self-tests: each rule vs its deliberately broken fixture.

The fixtures under ``tests/analysis/fixtures/`` are skipped by directory
walks (so ``repro lint src tests benchmarks`` stays clean) but analyzed
in full when named explicitly — which is what these tests do.  Each test
pins the exact ``(line, rule_id)`` set a fixture must produce: a rule
that stops firing *or* starts over-firing fails the golden comparison.
"""

from __future__ import annotations

import os

import pytest

from repro.analysis import run_analysis

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures", "repro")
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))
REGISTRY = os.path.join(REPO_ROOT, "src", "repro", "core", "registry.py")


def findings_for(relpath):
    return run_analysis([os.path.join(FIXTURES, relpath)])


def golden(findings):
    return sorted((f.line, f.rule_id) for f in findings)


class TestRoutedProtocolRule:
    def test_fixture_produces_exactly_the_expected_findings(self):
        findings = findings_for("core/rpr001_routed.py")
        assert golden(findings) == [
            (26, "RPR001"),  # bare QueryRequest returned from on_update
            (34, "RPR001"),  # bare request appended to a routed result
            (44, "RPR001"),  # routed pair returned from handle_update
            (55, "RPR001"),  # handle_update shadowed by a non-delegating on_update
        ]

    def test_messages_name_the_class_and_method(self):
        findings = findings_for("core/rpr001_routed.py")
        messages = {f.line: f.message for f in findings}
        assert "BareReturn.on_update" in messages[26]
        assert "RoutedHook.handle_update" in messages[44]
        assert "shadowed" in messages[55]


class TestDeterminismRule:
    def test_fixture_produces_exactly_the_expected_findings(self):
        findings = findings_for("runtime/rpr002_determinism.py")
        assert golden(findings) == [
            (10, "RPR002"),  # time.time()
            (14, "RPR002"),  # datetime.now()
            (18, "RPR002"),  # unseeded random.random()
            (22, "RPR002"),  # os.urandom()
        ]

    def test_seeded_rng_and_perf_counter_are_allowed(self):
        findings = findings_for("runtime/rpr002_determinism.py")
        flagged = {f.line for f in findings}
        assert not flagged & {28, 29, 30}  # the legal_seeded body

    def test_pragma_suppresses_the_final_violation(self):
        findings = findings_for("runtime/rpr002_determinism.py")
        assert 34 not in {f.line for f in findings}


class TestAsyncSafetyRule:
    def test_fixture_produces_exactly_the_expected_findings(self):
        findings = findings_for("runtime/rpr003_async.py")
        assert golden(findings) == [
            (9, "RPR003"),  # time.sleep in a coroutine
            (10, "RPR003"),  # open().read() in a coroutine
            (11, "RPR003"),  # subprocess.run in a coroutine
        ]

    def test_sync_helpers_may_block(self):
        findings = findings_for("runtime/rpr003_async.py")
        assert all(f.line <= 11 for f in findings)


class TestDispatchBypassRule:
    def test_fixture_produces_exactly_the_expected_findings(self):
        findings = findings_for("core/rpr004_bypass.py")
        assert golden(findings) == [
            (16, "RPR004"),  # FifoChannel(...) construction
            (19, "RPR004"),  # .send(...) channel I/O
            (19, "RPR008"),  # explicit fixture paths run every rule
        ]


class TestObsGuardRule:
    def test_fixture_produces_exactly_the_expected_findings(self):
        findings = findings_for("runtime/rpr005_obs.py")
        assert golden(findings) == [
            (9, "RPR005"),  # unguarded self._obs deref
            (13, "RPR005"),  # unguarded alias deref
        ]

    def test_guarded_idioms_are_clean(self):
        findings = findings_for("runtime/rpr005_obs.py")
        assert all(f.line <= 13 for f in findings)


class TestRegistryCompletenessRule:
    """RPR006 inspects the live registry, so it is exercised directly."""

    def test_live_registry_is_complete(self):
        findings = [
            f
            for f in run_analysis([REGISTRY])
            if f.rule_id == "RPR006"
        ]
        assert findings == []

    def test_broken_entry_is_reported(self, monkeypatch):
        import repro.core.registry as registry_module

        class Broken:
            name = "mismatched"
            multi_source = "yes"

            def pending_state(self, extra):
                return {}

        monkeypatch.setattr(
            registry_module, "ALGORITHMS", {"broken": Broken}
        )
        findings = [
            f
            for f in run_analysis([REGISTRY])
            if f.rule_id == "RPR006"
        ]
        messages = "\n".join(f.message for f in findings)
        assert "whose .name is 'mismatched'" in messages
        assert "multi_source must be a plain bool" in messages
        assert "pending_state() takes 1 required argument" in messages
        assert "missing the codec-v3 hook durable_config()" in messages
        assert "missing restore_pending_state" in messages


class TestPartitionerPurityRule:
    def test_fixture_produces_exactly_the_expected_findings(self):
        findings = findings_for("sharding/rpr007_partitioner.py")
        assert golden(findings) == [
            (9, "RPR007"),  # builtin hash() (process-salted)
            (14, "RPR002"),  # time.time() also trips determinism
            (14, "RPR007"),  # wall clock in shard_of
            (22, "RPR002"),  # module-level random.* also trips determinism
            (22, "RPR007"),  # randomness in shard_of
            (30, "RPR007"),  # self-attribute mutation
            (39, "RPR007"),  # global mutable state
        ]

    def test_pure_content_hash_is_allowed(self):
        findings = findings_for("sharding/rpr007_partitioner.py")
        flagged = {f.line for f in findings if f.rule_id == "RPR007"}
        assert not flagged & {45, 46, 47, 48}  # the LegalPartitioner body

    def test_pragma_suppresses_the_final_violation(self):
        findings = findings_for("sharding/rpr007_partitioner.py")
        assert 53 not in {f.line for f in findings}

    def test_messages_name_the_class_and_method(self):
        findings = findings_for("sharding/rpr007_partitioner.py")
        messages = {
            f.line: f.message for f in findings if f.rule_id == "RPR007"
        }
        assert "SaltedPartitioner.shard_of" in messages[9]
        assert "StickyPartitioner.shard_of" in messages[30]

    def test_shipped_partitioners_are_clean(self):
        path = os.path.join(
            REPO_ROOT, "src", "repro", "sharding", "partition.py"
        )
        assert [f for f in run_analysis([path]) if f.rule_id == "RPR007"] == []


class TestServingReadOnlyRule:
    def test_fixture_produces_exactly_the_expected_findings(self):
        findings = findings_for("serving/rpr008_readonly.py")
        assert golden(findings) == [
            (10, "RPR008"),  # .apply_delta() view write
            (13, "RPR008"),  # .key_delete() view write
            (16, "RPR008"),  # .replace() whole-state install
            (19, "RPR004"),  # .send() also trips dispatch-bypass
            (19, "RPR008"),  # .send() channel egress
            (22, "RPR008"),  # .algorithms structure rebind
        ]

    def test_snapshot_reads_and_str_replace_are_clean(self):
        findings = findings_for("serving/rpr008_readonly.py")
        flagged = {f.line for f in findings if f.rule_id == "RPR008"}
        assert not flagged & {31, 32, 35, 36}  # the LegalFrontend body

    def test_pragma_suppresses_the_final_violation(self):
        findings = findings_for("serving/rpr008_readonly.py")
        assert 41 not in {f.line for f in findings}

    def test_shipped_serving_package_is_clean(self):
        path = os.path.join(REPO_ROOT, "src", "repro", "serving")
        assert [f for f in run_analysis([path]) if f.rule_id == "RPR008"] == []


class TestHotPathRule:
    def test_fixture_produces_exactly_the_expected_findings(self):
        findings = findings_for("relational/engine.py")
        assert golden(findings) == [
            (28, "RPR009"),  # SignedTuple per row in a for body
            (36, "RPR009"),  # BoundOperand per row in a while body
            (42, "RPR009"),  # Term per row in a comprehension
        ]

    def test_planning_time_construction_is_clean(self):
        findings = findings_for("relational/engine.py")
        assert 47 not in {f.line for f in findings}

    def test_shipped_hot_path_modules_are_clean(self):
        paths = [
            os.path.join(REPO_ROOT, "src", "repro", "relational", name)
            for name in ("engine.py", "columns.py", "batch_ops.py")
        ]
        assert [f for f in run_analysis(paths) if f.rule_id == "RPR009"] == []

    def test_rule_does_not_apply_outside_hot_path_modules(self):
        # bag.py iterates signed tuples by design; the rule must not fire.
        path = os.path.join(REPO_ROOT, "src", "repro", "relational", "bag.py")
        assert [f for f in run_analysis([path]) if f.rule_id == "RPR009"] == []


class TestPlannerPurityRule:
    def test_fixture_produces_exactly_the_expected_findings(self):
        findings = findings_for("warehouse/rpr010_planner.py")
        assert golden(findings) == [
            (9, "RPR010"),  # builtin hash() (process-salted) on a signature
            (14, "RPR002"),  # time.time() also trips determinism
            (14, "RPR010"),  # wall clock in plan()
            (19, "RPR002"),  # module-level random.* also trips determinism
            (19, "RPR010"),  # randomness in plan()
            (27, "RPR004"),  # .send() also trips dispatch-bypass
            (27, "RPR008"),  # ...and serving-readonly's egress check
            (27, "RPR010"),  # channel I/O from the planner
            (35, "RPR004"),  # FifoChannel() also trips dispatch-bypass
            (35, "RPR010"),  # channel construction in plan()
        ]

    def test_stateful_bookkeeping_is_allowed(self):
        # Unlike RPR007: the planner legitimately mutates its route table.
        findings = findings_for("warehouse/rpr010_planner.py")
        flagged = {f.line for f in findings if f.rule_id == "RPR010"}
        assert not flagged & {41, 42, 44, 45, 46}  # the LegalPlanner body

    def test_pragma_suppresses_the_final_violation(self):
        findings = findings_for("warehouse/rpr010_planner.py")
        assert 51 not in {f.line for f in findings}

    def test_messages_name_the_planner_class(self):
        findings = findings_for("warehouse/rpr010_planner.py")
        messages = {
            f.line: f.message for f in findings if f.rule_id == "RPR010"
        }
        assert "SaltedPlanner" in messages[9]
        assert "ChattyPlanner" in messages[27]

    def test_shipped_planner_and_signature_modules_are_clean(self):
        paths = [
            os.path.join(REPO_ROOT, "src", "repro", "warehouse", "planner.py"),
            os.path.join(
                REPO_ROOT, "src", "repro", "relational", "signature.py"
            ),
        ]
        assert [f for f in run_analysis(paths) if f.rule_id == "RPR010"] == []


class TestSeverityAndOrdering:
    def test_findings_are_sorted_and_error_severity(self):
        findings = findings_for("runtime/rpr002_determinism.py")
        assert findings == sorted(findings)
        assert all(f.severity == "error" for f in findings)


@pytest.mark.parametrize("tree", ["src", "tests", "benchmarks", "tools"])
def test_repository_lints_clean(tree):
    """The acceptance bar: the final tree carries zero violations."""
    assert run_analysis([os.path.join(REPO_ROOT, tree)]) == []


class TestInterproceduralRewires:
    """RPR004/RPR007/RPR010 now consult the whole-program effect pass
    and catch violations the per-file syntactic pass provably misses."""

    def test_planner_clock_two_hops_down(self):
        findings = findings_for("warehouse/rpr010_transitive.py")
        assert golden(findings) == [
            (11, "RPR002"),  # the helper's direct time.time()
            (21, "RPR010"),  # plan -> _delay -> _jitter -> clock
        ]
        messages = {f.rule_id: f.message for f in findings}
        assert "_jitter -> time.time (line 11)" in messages["RPR010"]

    def test_partitioner_randomness_behind_a_helper(self):
        findings = findings_for("sharding/rpr007_transitive.py")
        assert golden(findings) == [
            (11, "RPR002"),  # the helper's direct random.random()
            (21, "RPR007"),  # shard_of -> _bucket -> _salt
        ]

    def test_dispatch_bypass_laundered_through_a_helper(self):
        findings = findings_for("core/rpr004_transitive.py")
        assert golden(findings) == [
            (10, "RPR004"),  # the helper's direct send (file pass)
            (10, "RPR008"),  # same site, serving-readonly's syntactic net
            (19, "RPR004"),  # on_update -> _ship -> send (effect pass)
        ]

    def test_per_file_pass_provably_misses_the_transitive_planner(self):
        """The acceptance-criteria diff: the same fixture, the same rule,
        zero findings without the whole-program pass and the transitive
        hit with it."""
        path = os.path.join(FIXTURES, "warehouse", "rpr010_transitive.py")
        select = frozenset({"RPR010"})
        flat = run_analysis([path], select=select, interprocedural=False)
        deep = run_analysis([path], select=select, interprocedural=True)
        assert golden(flat) == []
        assert golden(deep) == [(21, "RPR010")]


class TestAwaitAtomicityRule:
    def test_fixture_produces_exactly_the_expected_findings(self):
        findings = findings_for("runtime/rpr011_await.py")
        assert golden(findings) == [
            (9, "RPR011"),  # await between direct mutation and append
            (23, "RPR011"),  # mutation hidden inside self._apply()
        ]

    def test_messages_cite_both_endpoints_of_the_window(self):
        findings = findings_for("runtime/rpr011_await.py")
        messages = {f.line: f.message for f in findings}
        assert "state mutation at line 8" in messages[9]
        assert "WAL append at line 10" in messages[9]
        assert "self._apply" in messages[23]

    def test_append_before_await_and_unlogged_actors_are_legal(self):
        findings = findings_for("runtime/rpr011_await.py")
        flagged = {f.line for f in findings}
        assert not flagged & set(range(13, 19))  # AtomicActor
        assert not flagged & set(range(33, 38))  # UnloggedActor


class TestExceptionSafetyRule:
    def test_fixture_produces_exactly_the_expected_findings(self):
        findings = findings_for("core/rpr012_exception.py")
        assert golden(findings) == [
            (8, "RPR012"),  # raise after the handler's own pop
            (34, "RPR012"),  # raise after the mutation inside _retire()
        ]

    def test_messages_cite_the_mutation_site(self):
        findings = findings_for("core/rpr012_exception.py")
        messages = {f.line: f.message for f in findings}
        assert "self._pending.pop() at line 6" in messages[8]
        assert "self._retire() at line 33" in messages[34]

    def test_validate_first_and_reraise_idiom_are_legal(self):
        findings = findings_for("core/rpr012_exception.py")
        flagged = {f.line for f in findings}
        assert not flagged & set(range(12, 18))  # ValidatingAlgorithm
        assert not flagged & set(range(20, 29))  # HandlerAlgorithm
