"""Engine, pragma, and reporter self-tests for ``repro.analysis``."""

from __future__ import annotations

import json
import os
import subprocess
import sys

import pytest

from repro.analysis import (
    Finding,
    lint_paths,
    render_json,
    render_text,
    run_analysis,
)
from repro.analysis.engine import all_rules, iter_python_files, repro_module
from repro.analysis.pragmas import collect_pragmas, suppressed

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))
FIXTURES = os.path.join(
    os.path.dirname(__file__), "fixtures", "repro"
)


class TestPragmas:
    def test_rule_scoped_pragma(self):
        pragmas = collect_pragmas("x = 1  # repro: ignore[RPR002]\n")
        assert suppressed(pragmas, 1, "RPR002")
        assert not suppressed(pragmas, 1, "RPR005")
        assert not suppressed(pragmas, 2, "RPR002")

    def test_bare_pragma_suppresses_all_rules(self):
        pragmas = collect_pragmas("x = 1  # repro: ignore\n")
        assert suppressed(pragmas, 1, "RPR001")
        assert suppressed(pragmas, 1, "RPR006")

    def test_multiple_rules_in_one_pragma(self):
        pragmas = collect_pragmas("x = 1  # repro: ignore[RPR001, RPR004]\n")
        assert suppressed(pragmas, 1, "RPR001")
        assert suppressed(pragmas, 1, "RPR004")
        assert not suppressed(pragmas, 1, "RPR002")

    def test_pragma_inside_string_literal_is_ignored(self):
        pragmas = collect_pragmas('x = "# repro: ignore[RPR002]"\n')
        assert not suppressed(pragmas, 1, "RPR002")


class TestEngine:
    def test_directory_walks_skip_fixture_dirs(self):
        walked = list(iter_python_files([os.path.join(REPO_ROOT, "tests")]))
        assert walked
        assert not any(
            "fixtures" in os.path.dirname(display) for _path, display in walked
        )

    def test_explicitly_named_fixture_files_are_analyzed(self):
        path = os.path.join(FIXTURES, "runtime", "rpr002_determinism.py")
        assert [display for _path, display in iter_python_files([path])] == [path]
        assert run_analysis([path])

    def test_unparsable_file_yields_rpr000(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def broken(:\n")
        findings = run_analysis([str(bad)])
        assert [f.rule_id for f in findings] == ["RPR000"]

    def test_select_restricts_rules(self):
        path = os.path.join(FIXTURES, "runtime", "rpr003_async.py")
        findings = run_analysis([path], select={"RPR002"})
        assert findings == []

    def test_rule_catalog_is_complete_and_ordered(self):
        ids = [rule.rule_id for rule in all_rules()]
        assert ids == sorted(ids)
        assert ids == [f"RPR00{n}" for n in range(1, 10)] + [
            "RPR010",
            "RPR011",
            "RPR012",
        ]

    def test_repro_module_resolution(self):
        assert repro_module("src/repro/runtime/actors.py") == (
            "repro",
            "runtime",
            "actors",
        )
        assert repro_module("tools/check_doc_links.py") is None


class TestReporters:
    FINDINGS = [
        Finding(
            path="src/x.py",
            line=3,
            col=7,
            rule_id="RPR002",
            message="time.time() is nondeterministic",
        )
    ]

    def test_text_report(self):
        text = render_text(self.FINDINGS)
        assert "src/x.py:3:7: RPR002 error: time.time()" in text
        assert "1 error(s), 0 warning(s)" in text
        assert render_text([]) == "no findings"

    def test_json_report_shape(self):
        payload = json.loads(render_json(self.FINDINGS))
        assert payload["summary"] == {
            "total": 1,
            "errors": 1,
            "warnings": 0,
            "by_rule": {"RPR002": 1},
        }
        entry = payload["findings"][0]
        assert entry["path"] == "src/x.py"
        assert entry["line"] == 3
        assert entry["rule"] == "RPR002"
        assert entry["severity"] == "error"

    def test_lint_paths_exit_status(self):
        _, clean = lint_paths(
            [os.path.join(REPO_ROOT, "src", "repro", "errors.py")], render_text
        )
        assert clean == 0
        _, dirty = lint_paths(
            [os.path.join(FIXTURES, "runtime", "rpr003_async.py")], render_text
        )
        assert dirty == 1


class TestEntryPoints:
    """``python -m repro.analysis`` and ``repro lint`` drive the engine."""

    @pytest.mark.parametrize("fmt", ["text", "json"])
    def test_module_entry_point(self, fmt):
        result = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro.analysis",
                os.path.join(FIXTURES, "core", "rpr004_bypass.py"),
                "--format",
                fmt,
            ],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
            env={**os.environ, "PYTHONPATH": os.path.join(REPO_ROOT, "src")},
        )
        assert result.returncode == 1
        assert "RPR004" in result.stdout

    def test_cli_lint_subcommand(self, capsys):
        from repro.cli import main

        status = main(
            ["lint", os.path.join(FIXTURES, "runtime", "rpr005_obs.py")]
        )
        out = capsys.readouterr().out
        assert status == 1
        assert "RPR005" in out

    def test_list_rules(self):
        from repro.analysis.__main__ import main

        assert main(["--list-rules"]) == 0
