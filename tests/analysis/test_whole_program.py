"""Engine-level tests for the whole-program pipeline: input dedup,
process fan-out, SARIF output, and the incremental (``--changed``) mode.
"""

from __future__ import annotations

import json
import os
import time

from repro.analysis import run_analysis
from repro.analysis.cache import incremental_analysis, load_cache, store_result
from repro.analysis.engine import execute_analysis
from repro.analysis.report import render_sarif

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures", "repro")
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))
SRC_REPRO = os.path.join(REPO_ROOT, "src", "repro")

_CLOCKED = "import time\n\n\ndef stamp():\n    return time.time()\n"


def _write_tree(root, files):
    for relpath, source in files.items():
        path = root / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source, encoding="utf-8")
    return str(root)


class TestInputDedup:
    def test_file_reached_via_walk_and_explicit_arg_reports_once(self, tmp_path):
        tree = _write_tree(tmp_path, {"repro/runtime/bad.py": _CLOCKED})
        explicit = str(tmp_path / "repro" / "runtime" / "bad.py")
        findings = run_analysis([tree, explicit])
        assert [(f.rule_id, f.line) for f in findings] == [("RPR002", 5)]

    def test_same_file_named_twice_reports_once(self, tmp_path):
        tree = _write_tree(tmp_path, {"repro/runtime/bad.py": _CLOCKED})
        explicit = os.path.join(tree, "repro", "runtime", "bad.py")
        findings = run_analysis([explicit, explicit])
        assert len(findings) == 1


class TestParallelJobs:
    def test_jobs_fanout_matches_serial_findings(self):
        serial = run_analysis([FIXTURES])
        fanned = run_analysis([FIXTURES], jobs=2)
        assert serial == fanned
        assert serial  # the fixture tree is not accidentally empty


class TestSarifReport:
    def test_sarif_document_shape(self):
        findings = run_analysis(
            [os.path.join(FIXTURES, "runtime", "rpr002_determinism.py")]
        )
        document = json.loads(render_sarif(findings))
        assert document["version"] == "2.1.0"
        assert document["$schema"].endswith("sarif-2.1.0.json")
        (run,) = document["runs"]
        driver = run["tool"]["driver"]
        assert driver["name"] == "repro-lint"
        rule_ids = [rule["id"] for rule in driver["rules"]]
        assert "RPR000" in rule_ids  # the synthetic parse-error entry
        assert {"RPR011", "RPR012"} <= set(rule_ids)
        for result in run["results"]:
            assert rule_ids[result["ruleIndex"]] == result["ruleId"]
            location = result["locations"][0]["physicalLocation"]
            assert location["artifactLocation"]["uri"]
            assert location["region"]["startLine"] >= 1
        assert len(run["results"]) == len(findings)

    def test_empty_run_is_still_a_valid_document(self):
        document = json.loads(render_sarif([]))
        assert document["runs"][0]["results"] == []


class TestIncrementalMode:
    TREE = {
        "repro/warehouse/helper.py": (
            "def scale(value):\n    return value * 2\n"
        ),
        "repro/warehouse/grouping.py": (
            "from repro.warehouse.helper import scale\n"
            "\n"
            "\n"
            "class GroupPlanner:\n"
            "    def plan(self, members):\n"
            "        return sorted(members)[: scale(1)]\n"
        ),
    }

    def test_warm_run_is_a_full_hit_with_identical_findings(self, tmp_path):
        tree = _write_tree(tmp_path / "proj", self.TREE)
        cache_dir = str(tmp_path / "cache")
        cold, cold_stats = incremental_analysis([tree], cache_dir=cache_dir)
        warm, warm_stats = incremental_analysis([tree], cache_dir=cache_dir)
        assert warm == cold
        assert not cold_stats["full_hit"]
        assert warm_stats["full_hit"]
        assert warm_stats["reanalyzed"] == []

    def test_editing_a_helper_dirties_its_callers(self, tmp_path):
        tree = _write_tree(tmp_path / "proj", self.TREE)
        cache_dir = str(tmp_path / "cache")
        clean, _ = incremental_analysis([tree], cache_dir=cache_dir)
        assert clean == []
        helper = tmp_path / "proj" / "repro" / "warehouse" / "helper.py"
        helper.write_text(
            "import time\n"
            "\n"
            "\n"
            "def scale(value):\n"
            "    return value * int(time.time())\n",
            encoding="utf-8",
        )
        findings, stats = incremental_analysis([tree], cache_dir=cache_dir)
        assert not stats["full_hit"]
        # The unchanged caller is re-analyzed because its dependency moved.
        assert sorted(os.path.basename(p) for p in stats["reanalyzed"]) == [
            "grouping.py",
            "helper.py",
        ]
        by_rule = {f.rule_id: f for f in findings}
        assert by_rule["RPR002"].path.endswith("helper.py")
        assert by_rule["RPR010"].path.endswith("grouping.py")
        assert "time.time" in by_rule["RPR010"].message

    def test_cold_plain_run_primes_the_cache(self, tmp_path):
        tree = _write_tree(tmp_path / "proj", self.TREE)
        cache_dir = str(tmp_path / "cache")
        result = execute_analysis([tree], None, None)
        store_result(result, cache_dir=cache_dir)
        payload = load_cache(cache_dir)
        assert payload is not None
        assert len(payload["files"]) == 2
        _, stats = incremental_analysis([tree], cache_dir=cache_dir)
        assert stats["full_hit"]

    def test_warm_run_over_unchanged_tree_is_5x_faster(self, tmp_path):
        """The acceptance bar: a full cache hit skips parsing entirely."""
        cache_dir = str(tmp_path / "cache")
        started = time.perf_counter()
        cold, _ = incremental_analysis([SRC_REPRO], cache_dir=cache_dir)
        cold_elapsed = time.perf_counter() - started
        started = time.perf_counter()
        warm, stats = incremental_analysis([SRC_REPRO], cache_dir=cache_dir)
        warm_elapsed = time.perf_counter() - started
        assert stats["full_hit"]
        assert warm == cold == []
        assert warm_elapsed * 5 <= cold_elapsed, (
            f"warm {warm_elapsed:.3f}s not 5x faster than cold "
            f"{cold_elapsed:.3f}s"
        )


class TestInterproceduralToggle:
    def test_flat_mode_runs_no_effect_pass(self, tmp_path):
        tree = _write_tree(
            tmp_path,
            {
                "repro/warehouse/planner_mod.py": (
                    "from repro.warehouse.helper import scale\n"
                    "\n"
                    "\n"
                    "class LatePlanner:\n"
                    "    def plan(self, members):\n"
                    "        return members[: scale(1)]\n"
                ),
                "repro/warehouse/helper.py": (
                    "import time\n"
                    "\n"
                    "\n"
                    "def scale(value):\n"
                    "    return value * int(time.time())\n"
                ),
            },
        )
        flat = run_analysis([tree], interprocedural=False)
        deep = run_analysis([tree], interprocedural=True)
        assert {f.rule_id for f in flat} == {"RPR002"}
        assert {f.rule_id for f in deep} == {"RPR002", "RPR010"}
