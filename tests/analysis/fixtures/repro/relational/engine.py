"""RPR009 fixture: per-tuple wrappers allocated inside operator loops.

Named ``engine.py`` under a ``repro/relational/`` directory so the rule's
module scoping (``repro.relational.engine``) applies; the directory is a
fixture, so normal lint walks skip it.
"""


class SignedTuple:
    def __init__(self, values, sign):
        self.values = values
        self.sign = sign


class BoundOperand:
    def __init__(self, tuple_):
        self.tuple = tuple_


class Term:
    def __init__(self, operands):
        self.operands = operands


def per_row_wrapper_in_for_loop(rows):
    out = []
    for row in rows:
        out.append(SignedTuple(row, 1))  # RPR009: one allocation per row
    return out


def wrapper_in_while_loop(rows):
    out = []
    index = 0
    while index < len(rows):
        out.append(BoundOperand(rows[index]))  # RPR009
        index += 1
    return out


def wrapper_in_comprehension(rows):
    return [Term((row,)) for row in rows]  # RPR009


def wrapper_outside_loops(rows):
    # Legal: built once per call (planning-time), not once per row.
    first = SignedTuple(rows[0], 1) if rows else None
    columns = [list(column) for column in zip(*rows)]  # plain lists are fine
    return first, columns
