"""Fixture: RPR010 planner-purity violations (deliberately broken)."""

import random
import time


class SaltedPlanner:
    def plan(self, members):
        return {hash(request.query): view for view, _, request in members}


class ClockPlanner:
    def plan(self, members):
        return {time.time(): tuple(members)}


class LotteryPlanner:
    def plan(self, members):
        return members[random.randrange(len(members))]


class ChattyPlanner:
    def __init__(self, channel):
        self.channel = channel

    def plan(self, members):
        self.channel.send(members[0])
        return []


class EagerPlanner:
    def plan(self, members):
        from repro.messaging.channels import FifoChannel

        return FifoChannel()


class LegalPlanner:
    # Stateful bookkeeping is fine (unlike RPR007): what must be pure is
    # the query-to-group mapping, not the route table around it.
    def __init__(self):
        self.routes = {}

    def plan(self, members):
        self.routes[len(self.routes)] = tuple(members)
        return sorted(self.routes)


class SuppressedPlanner:
    def plan(self, members):
        return hash(members)  # repro: ignore[RPR010] -- fixture demonstrates pragmas
