"""Fixture: RPR010 transitive planner impurity (deliberately broken).

The planner itself calls only a local helper; the wall clock sits two
hops down the call chain, where the per-file pass cannot see it.
"""

import time


def _jitter():
    return time.time() % 1.0  # RPR002: the only *direct* violation here


def _delay(base):
    return base + _jitter()


class BackoffPlanner:
    def plan(self, members):
        # RPR010 (interprocedural only): plan -> _delay -> _jitter -> clock
        return sorted(members)[: int(_delay(1.0))]


class LegalPlanner:
    def plan(self, members):
        return sorted(members)
