"""Fixture: RPR002 determinism violations (deliberately broken)."""

import os
import random
import time
from datetime import datetime


def wall_clock_stamp():
    return time.time()  # RPR002: wall clock


def wall_clock_now():
    return datetime.now()  # RPR002: wall clock


def shared_rng():
    return random.random()  # RPR002: unseeded module-level RNG


def entropy():
    return os.urandom(8)  # RPR002: OS entropy


def legal_seeded(seed):
    # Seeded private RNG and the wall-metric counter are both allowed.
    rng = random.Random(seed)
    started = time.perf_counter()
    return rng.randint(0, 10), started


def suppressed():
    return time.time()  # repro: ignore[RPR002] -- fixture demonstrates pragmas
