"""Fixture: RPR005 obs-guard violations (deliberately broken)."""


class Actor:
    def __init__(self, obs=None):
        self._obs = obs

    def unguarded(self, serial):
        self._obs.source_update(serial)  # RPR005: no dominating check

    def unguarded_alias(self, serial):
        obs = self._obs
        obs.source_update(serial)  # RPR005: alias still unproven

    def guarded(self, serial):
        if self._obs is not None:
            self._obs.source_update(serial)

    def guarded_alias(self, serial):
        obs = self._obs
        if obs is not None:
            obs.source_update(serial)

    def early_exit(self, serial):
        if self._obs is None:
            return
        self._obs.source_update(serial)

    def short_circuit(self, serial):
        return self._obs is not None and self._obs.enabled
