"""Fixture: RPR011 await-atomicity violations (deliberately broken)."""

import asyncio


class LeakyActor:
    async def handle(self, event):
        self.algorithm.apply_update(event)
        await asyncio.sleep(0)  # RPR011: yield before the event is logged
        self.wal.append("event", event)


class AtomicActor:
    async def handle(self, event):
        self.algorithm.apply_update(event)
        self.wal.append("event", event)
        await asyncio.sleep(0)  # legal: the log already holds the event


class TransitiveActor:
    async def handle(self, event):
        self._apply(event)
        await self._flush()  # RPR011: the mutation hides inside _apply
        self.wal.append("event", event)

    def _apply(self, event):
        self.algorithm.apply_update(event)

    async def _flush(self):
        await asyncio.sleep(0)


class UnloggedActor:
    async def handle(self, event):
        # No WAL append at all: nothing for RPR011 to pair the await with.
        self.algorithm.apply_update(event)
        await asyncio.sleep(0)
