"""Fixture: RPR003 async-safety violations (deliberately broken)."""

import asyncio
import subprocess
import time


async def blocking_actor(path):
    time.sleep(0.1)  # RPR003: blocks the event loop
    data = open(path).read()  # RPR003: sync file I/O in a coroutine
    subprocess.run(["true"])  # RPR003: process spawn in a coroutine
    await asyncio.sleep(0)
    return data


async def well_behaved():
    await asyncio.sleep(0)


def sync_helper(path):
    # Synchronous helpers may do blocking I/O; only coroutines may not.
    with open(path) as handle:
        return handle.read()
