"""Fixture: RPR004 dispatch-bypass violations (deliberately broken)."""


class FifoChannel:
    def __init__(self, name):
        self.name = name

    def send(self, message):
        pass


class ChannelGrabber:
    """Algorithm code that owns and drives a channel directly."""

    def __init__(self):
        self.channel = FifoChannel("rogue")  # RPR004: constructs a channel

    def push(self, message):
        self.channel.send(message)  # RPR004: direct channel I/O

    def legal(self, notification):
        # Returning routed pairs is the sanctioned way to emit messages.
        return [(None, notification)]
