"""Fixture: RPR001 routed-protocol violations (deliberately broken).

Lives under a ``fixtures/`` directory, which the engine skips during
directory walks — it is only analyzed when named explicitly by the
self-tests, and then every rule applies regardless of its scope.
"""


class QueryRequest:
    def __init__(self, query_id, query):
        self.query_id = query_id
        self.query = query


class WarehouseAlgorithm:
    def handle_update(self, notification):
        return []


class BareReturn(WarehouseAlgorithm):
    """on_update returns bare requests instead of routed pairs."""

    name = "bare-return"

    def on_update(self, source, notification):
        return [QueryRequest(1, None)]  # RPR001: bare request


class BareAppend(WarehouseAlgorithm):
    name = "bare-append"

    def on_answer(self, source, answer):
        requests = []
        requests.append(self._make_request(None))  # RPR001: bare append
        return requests


class RoutedHook(WarehouseAlgorithm):
    """handle_* hooks are unrouted; pairs belong in on_* methods."""

    name = "routed-hook"

    def handle_update(self, notification):
        return [("source", QueryRequest(2, None))]  # RPR001: routed pair


class ShadowedHook(WarehouseAlgorithm):
    """Overrides on_update without delegating to its handle_update."""

    name = "shadowed-hook"

    def on_update(self, source, notification):
        return []  # RPR001: handle_update below is silently dead

    def handle_update(self, notification):
        return [QueryRequest(3, None)]


class WellBehaved(WarehouseAlgorithm):
    """Correct on both counts — must produce no findings."""

    name = "well-behaved"

    def on_update(self, source, notification):
        return [(None, request) for request in self.handle_update(notification)]

    def handle_update(self, notification):
        return [QueryRequest(4, None)]
