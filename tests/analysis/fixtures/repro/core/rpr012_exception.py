"""Fixture: RPR012 exception-safety violations (deliberately broken)."""


class LeakyAlgorithm:
    def on_answer(self, source, answer):
        pending = self._pending.pop(answer.query_id)
        if pending != source:
            raise ValueError("wrong source")  # RPR012: pop already happened
        return []


class ValidatingAlgorithm:
    def on_answer(self, source, answer):
        if answer.source != source:
            raise ValueError("wrong source")  # legal: nothing mutated yet
        self._pending.pop(answer.query_id, None)
        return []


class HandlerAlgorithm:
    def on_answer(self, source, answer):
        try:
            self._pending.pop(answer.query_id)
        except KeyError:
            # legal: the translate-and-reraise idiom — the failed pop
            # did not mutate anything.
            raise ValueError("unknown query") from None
        return []


class TransitiveAlgorithm:
    def handle_refresh(self, event):
        self._retire(event)
        raise ValueError("late validation")  # RPR012: _retire mutates

    def _retire(self, event):
        self._pending.pop(event.query_id, None)
