"""Fixture: RPR004 transitive dispatch bypass (deliberately broken).

The handler never touches a channel; it calls a helper that does.  The
per-file pass flags the helper's direct send, the effect pass flags the
handler's call site as well.
"""


def _ship(channel, message):
    channel.send(message)  # RPR004: direct channel I/O (file pass)


class LaunderingAlgorithm:
    def __init__(self, channel):
        self._channel = channel

    def on_update(self, source, notification):
        # RPR004 (interprocedural only): on_update -> _ship -> send
        _ship(self._channel, notification)
        return []


class LegalAlgorithm:
    def on_update(self, source, notification):
        return [(None, notification)]
