"""Fixture: RPR007 transitive partitioner impurity (deliberately broken).

``shard_of`` contains no banned name itself; the randomness hides one
call away in a module-level helper.
"""

import random


def _salt():
    return random.random()  # RPR002: the only *direct* violation here


def _bucket(key, width):
    return (len(repr(key)) + int(_salt() * width)) % width


class JitterPartitioner:
    def shard_of(self, key):
        # RPR007 (interprocedural only): shard_of -> _bucket -> _salt
        return _bucket(key, 4)


class LegalPartitioner:
    def shard_of(self, key):
        return len(repr(key)) % 4
