"""Fixture: RPR007 partitioner-purity violations (deliberately broken)."""

import random
import time


class SaltedPartitioner:
    def shard_of(self, key):
        return hash(key) % 4  # RPR007: process-salted builtin hash


class ClockPartitioner:
    def shard_of(self, key):
        return int(time.time()) % 4  # RPR007: wall clock


class LotteryPartitioner:
    def __init__(self):
        self.rng = random.Random(7)

    def shard_of(self, key):
        return random.randrange(4)  # RPR007: randomness, call-order dependent


class StickyPartitioner:
    def __init__(self):
        self.last = 0

    def shard_of(self, key):
        self.last = (self.last + 1) % 4  # RPR007: mutates captured state
        return self.last


_COUNTER = 0


class GlobalPartitioner:
    def shard_of(self, key):
        global _COUNTER  # RPR007: global mutable state
        _COUNTER += 1
        return _COUNTER % 4


class LegalPartitioner:
    # A pure content hash of the key: stable across processes and runs.
    def shard_of(self, key):
        import zlib

        return zlib.crc32(repr(tuple(key)).encode("utf-8")) % 4


class SuppressedPartitioner:
    def shard_of(self, key):
        return hash(key) % 4  # repro: ignore[RPR007] -- fixture demonstrates pragmas
