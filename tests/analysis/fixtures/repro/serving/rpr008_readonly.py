"""Fixture: RPR008 serving-readonly violations (deliberately broken)."""


class LeakyFrontend:
    def __init__(self, catalog, channel):
        self.catalog = catalog
        self.channel = channel

    def refresh(self, delta):
        self.catalog.algorithms["V"].mv.apply_delta(delta)  # RPR008: view write

    def purge(self, relation, values):
        self.catalog.key_delete(relation, values)  # RPR008: view write

    def install(self, mv, bag):
        mv.replace(bag)  # RPR008: whole-state install

    def announce(self, message):
        self.channel.send(message)  # RPR008: channel egress

    def hijack(self, algorithms):
        self.catalog.algorithms = algorithms  # RPR008: structure rebind


class LegalFrontend:
    def __init__(self, catalog):
        self.catalog = catalog
        self.label = "serving"

    def snapshot(self):
        # Reading a view_state() copy is the whole point of the tier.
        return self.catalog.view_state()

    def pretty(self, text):
        # str.replace must not trip the .replace() write check.
        return text.replace("_", " ")


class SuppressedFrontend:
    def force(self, mv, bag):
        mv.replace(bag)  # repro: ignore[RPR008] -- fixture demonstrates pragmas
