"""Shared fixtures: the paper's recurring schemas, views, and sources."""

from __future__ import annotations

import pytest

from repro.relational.schema import RelationSchema
from repro.relational.views import View


@pytest.fixture
def r1_schema() -> RelationSchema:
    return RelationSchema("r1", ("W", "X"))


@pytest.fixture
def r2_schema() -> RelationSchema:
    return RelationSchema("r2", ("X", "Y"))


@pytest.fixture
def r3_schema() -> RelationSchema:
    return RelationSchema("r3", ("Y", "Z"))


@pytest.fixture
def two_rel_schemas(r1_schema, r2_schema):
    return [r1_schema, r2_schema]


@pytest.fixture
def three_rel_schemas(r1_schema, r2_schema, r3_schema):
    return [r1_schema, r2_schema, r3_schema]


@pytest.fixture
def keyed_schemas():
    """The Example 5 schemas: W keys r1, Y keys r2."""
    return [
        RelationSchema("r1", ("W", "X"), key=("W",)),
        RelationSchema("r2", ("X", "Y"), key=("Y",)),
    ]


@pytest.fixture
def view_w(two_rel_schemas) -> View:
    """``V = pi_W(r1 |x| r2)`` — the view of Examples 1 and 2."""
    return View.natural_join("V", two_rel_schemas, ["W"])


@pytest.fixture
def view_wy(two_rel_schemas) -> View:
    """``V = pi_{W,Y}(r1 |x| r2)`` — the view of Example 3."""
    return View.natural_join("V", two_rel_schemas, ["W", "Y"])


@pytest.fixture
def keyed_view(keyed_schemas) -> View:
    """The Example 5 view: projects both keys."""
    return View.natural_join("V", keyed_schemas, ["W", "Y"])


@pytest.fixture
def view_w3(three_rel_schemas) -> View:
    """``V = pi_W(r1 |x| r2 |x| r3)`` — the view of Example 4."""
    return View.natural_join("V", three_rel_schemas, ["W"])
