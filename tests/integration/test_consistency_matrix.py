"""Integration: the Section 3.1 correctness matrix, validated empirically.

For every algorithm and a battery of workloads x interleavings, the
observed correctness level must be at least what the paper claims (and,
for the basic algorithm, the anomaly must actually be observable on
adversarial interleavings).
"""

import pytest

from repro.consistency import check_trace
from repro.core.registry import create_algorithm
from repro.core.stored_copies import StoredCopies
from repro.relational.engine import evaluate_view
from repro.relational.schema import RelationSchema
from repro.relational.views import View
from repro.simulation.driver import Simulation
from repro.simulation.schedules import (
    BestCaseSchedule,
    EagerSourceSchedule,
    RandomSchedule,
    WorstCaseSchedule,
)
from repro.source.memory import MemorySource
from repro.workloads.random_gen import random_workload

SCHEMAS = [
    RelationSchema("r1", ("W", "X"), key=("W",)),
    RelationSchema("r2", ("X", "Y"), key=("Y",)),
]
INITIAL = {"r1": [(1, 2), (2, 3)], "r2": [(2, 5), (3, 6)]}


def build_view():
    return View.natural_join("V", SCHEMAS, ["W", "Y"])


def run_one(algorithm, workload, schedule):
    view = build_view()
    source = MemorySource(SCHEMAS, INITIAL)
    initial_view = evaluate_view(view, source.snapshot())
    if algorithm == "stored-copies":
        warehouse = StoredCopies(view, initial_view, initial_copies=source.snapshot())
    else:
        warehouse = create_algorithm(algorithm, view, initial_view)
    trace = Simulation(source, warehouse, workload).run(schedule)
    return check_trace(view, trace)


def workloads(count=8, k=10):
    return [
        random_workload(SCHEMAS, k, seed=seed, initial=INITIAL, respect_keys=True)
        for seed in range(count)
    ]


def schedules(seed):
    return [
        BestCaseSchedule(),
        WorstCaseSchedule(),
        EagerSourceSchedule(),
        RandomSchedule(seed),
        RandomSchedule(seed + 1000),
    ]


STRONG = ("eca", "eca-key", "eca-local", "lca", "stored-copies")


@pytest.mark.parametrize("algorithm", STRONG)
def test_strongly_consistent_under_all_interleavings(algorithm):
    for i, workload in enumerate(workloads()):
        for schedule in schedules(i):
            report = run_one(algorithm, workload, schedule)
            assert report.strongly_consistent, (
                f"{algorithm} violated strong consistency "
                f"(workload {i}): {report.detail}"
            )


@pytest.mark.parametrize("algorithm", ("lca", "stored-copies"))
def test_complete_algorithms(algorithm):
    for i, workload in enumerate(workloads(count=6)):
        for schedule in schedules(i):
            report = run_one(algorithm, workload, schedule)
            assert report.complete, (
                f"{algorithm} missed a source state (workload {i}): "
                f"{report.detail}"
            )


def test_basic_algorithm_is_anomalous_somewhere():
    """Examples 2/3 generalized: some workload x interleaving must break
    the naive algorithm — otherwise our anomaly machinery is vacuous."""
    broken = 0
    for i, workload in enumerate(workloads(count=10)):
        for schedule in schedules(i):
            report = run_one("basic", workload, schedule)
            if not report.weakly_consistent or not report.convergent:
                broken += 1
    assert broken > 0


def test_basic_algorithm_correct_when_updates_are_spaced():
    """Section 5.6 property 3: with each query answered before the next
    update, even the basic algorithm behaves (and ECA degenerates to it)."""
    for i, workload in enumerate(workloads(count=6)):
        report = run_one("basic", workload, BestCaseSchedule())
        assert report.strongly_consistent


def test_eca_sends_no_compensation_in_best_case():
    """Section 5.6 property 3, on the wire: under the best-case schedule
    every ECA query has a single term (no compensation)."""
    from repro.costmodel.counters import CostRecorder

    view = build_view()
    source = MemorySource(SCHEMAS, INITIAL)
    warehouse = create_algorithm("eca", view, evaluate_view(view, source.snapshot()))
    workload = random_workload(SCHEMAS, 10, seed=3, initial=INITIAL, respect_keys=True)
    recorder = CostRecorder()
    Simulation(source, warehouse, workload, recorder).run(BestCaseSchedule())
    assert recorder.terms_evaluated == recorder.answer_messages


def test_recompute_with_dividing_period_is_strongly_consistent():
    for period in (1, 2, 5, 10):
        workload = random_workload(
            SCHEMAS, 10, seed=11, initial=INITIAL, respect_keys=True
        )
        report = run_one_recompute(workload, period)
        assert report.strongly_consistent, f"period={period}: {report.detail}"


def run_one_recompute(workload, period):
    view = build_view()
    source = MemorySource(SCHEMAS, INITIAL)
    warehouse = create_algorithm(
        "recompute", view, evaluate_view(view, source.snapshot()), period=period
    )
    trace = Simulation(source, warehouse, workload).run(BestCaseSchedule())
    return check_trace(view, trace)


def test_unbuffered_eca_is_convergent_but_can_be_inconsistent():
    """Section 5.2's warning: applying answers as they arrive (instead of
    buffering in COLLECT) stays convergent but loses consistency."""
    from repro.core.eca import ECA

    view = build_view()
    saw_inconsistent = False
    for seed in range(30):
        workload = random_workload(
            SCHEMAS, 10, seed=seed, initial=INITIAL, respect_keys=True
        )
        for schedule in (WorstCaseSchedule(), RandomSchedule(seed)):
            source = MemorySource(SCHEMAS, INITIAL)
            warehouse = ECA(
                view, evaluate_view(view, source.snapshot()), buffer_answers=False
            )
            trace = Simulation(source, warehouse, workload).run(schedule)
            report = check_trace(view, trace)
            assert report.convergent, report.detail
            if not report.consistent:
                saw_inconsistent = True
    assert saw_inconsistent
