"""Integration: the SWEEP-style multi-source algorithm.

No keys, duplicates retained, three autonomous sources: the sequential
sweep with locally computed corrections must be cut-consistent and
convergent on every interleaving.
"""

import pytest

from repro.errors import ProtocolError, SchemaError
from repro.messaging.messages import QueryAnswer
from repro.multisource import (
    MultiSourceSimulation,
    check_cut_consistency,
    check_cut_convergence,
)
from repro.multisource.sweep import SweepStyle
from repro.relational.bag import SignedBag
from repro.relational.engine import evaluate_view
from repro.relational.schema import RelationSchema
from repro.relational.views import View
from repro.simulation.schedules import RandomSchedule
from repro.source.memory import MemorySource
from repro.source.updates import delete, insert
from repro.workloads.random_gen import random_workload

R1 = RelationSchema("r1", ("W", "X"))
R2 = RelationSchema("r2", ("X", "Y"))
R3 = RelationSchema("r3", ("Y", "Z"))
OWNERS = {"r1": "A", "r2": "B", "r3": "C"}
INITIAL = {"r1": [(1, 2), (4, 2)], "r2": [(2, 5)], "r3": [(5, 3), (5, 9)]}


def build():
    view = View.natural_join("V", [R1, R2, R3], ["W", "Z"])
    a = MemorySource([R1], {"r1": INITIAL["r1"]})
    b = MemorySource([R2], {"r2": INITIAL["r2"]})
    c = MemorySource([R3], {"r3": INITIAL["r3"]})
    merged = {**a.snapshot(), **b.snapshot(), **c.snapshot()}
    algorithm = SweepStyle(view, OWNERS, evaluate_view(view, merged))
    return view, {"A": a, "B": b, "C": c}, algorithm


class TestApplicability:
    def test_no_keys_needed(self):
        view, _, algorithm = build()
        assert not view.contains_all_keys()
        assert algorithm.name == "sweep"

    def test_self_joins_rejected(self):
        emp = RelationSchema("emp", ("name", "dept"))
        view = View.natural_join(
            "pairs", [emp.aliased("a"), emp.aliased("b")], ["a.name", "b.name"]
        )
        with pytest.raises(SchemaError):
            SweepStyle(view, {"emp": "A"})

    def test_unexpected_answer_rejected(self):
        _, _, algorithm = build()
        with pytest.raises(ProtocolError):
            algorithm.on_answer("A", QueryAnswer(99, SignedBag()))


class TestCorrectness:
    @pytest.mark.parametrize("seed", range(12))
    def test_cut_consistent_and_convergent(self, seed):
        workload = random_workload([R1, R2, R3], 10, seed=seed, initial=INITIAL)
        view, sources, algorithm = build()
        sim = MultiSourceSimulation(sources, algorithm, workload)
        trace = sim.run(RandomSchedule(seed * 17 + 3))
        assert check_cut_consistency(view, sim.per_source_states, trace.view_states)
        assert check_cut_convergence(
            view, sim.per_source_states, trace.final_view_state
        )
        assert algorithm.is_quiescent()

    def test_duplicates_maintained(self):
        """The keyless regime Strobe cannot handle: duplicate base rows
        and duplicate view tuples."""
        view, sources, algorithm = build()
        workload = [
            insert("r2", (2, 5)),   # second copy of the same row
            insert("r1", (1, 2)),   # second copy -> view multiplicities 2x
        ]
        sim = MultiSourceSimulation(sources, algorithm, workload)
        sim.run(RandomSchedule(3))
        merged = {}
        for source in sources.values():
            merged.update(source.snapshot())
        assert algorithm.view_state() == evaluate_view(view, merged)
        assert max(
            count for _, count in algorithm.view_state().items()
        ) >= 4  # duplicated both sides of the join

    def test_interference_correction_on_hop_relation(self):
        """A delete on the hop's relation lands while the hop is in
        flight; the locally computed correction must cancel the miss."""
        view, sources, algorithm = build()
        workload = [
            insert("r1", (7, 2)),   # sweep hops to r2@B then r3@C
            delete("r2", (2, 5)),   # interferes with the r2 hop
        ]
        sim = MultiSourceSimulation(sources, algorithm, workload)
        for action in [
            "update", "warehouse:A",   # U1 processed, hop to B in flight
            "update", "warehouse:B",   # delete received & queued
            "answer:B",                # hop evaluated AFTER the delete
            "warehouse:B",             # answer + correction
        ]:
            sim.step(action)
        while sim.available_actions():
            sim.step(sim.available_actions()[0])
        merged = {}
        for source in sources.values():
            merged.update(source.snapshot())
        assert algorithm.view_state() == evaluate_view(view, merged)
        assert check_cut_consistency(
            view, sim.per_source_states, sim.trace.view_states
        )

    def test_message_count_is_free_relations_per_update(self):
        """Each insert/delete costs one query per remaining free relation
        (two hops for this 3-relation view)."""
        view, sources, algorithm = build()
        # Both updates join existing data, so no hop short-circuits.
        workload = [insert("r1", (7, 2)), insert("r2", (2, 5))]
        sim = MultiSourceSimulation(sources, algorithm, workload)
        sim.run(RandomSchedule(1))
        queries = len(sim.trace.events_of_kind("S_qu"))
        assert queries == 4  # 2 updates x 2 hops

    def test_empty_bindings_short_circuit(self):
        """A hop with no surviving bindings skips the remaining sources."""
        view, sources, algorithm = build()
        # (9,9) joins nothing: the r2 hop returns empty, so no r3 hop.
        workload = [insert("r1", (9, 99))]
        sim = MultiSourceSimulation(sources, algorithm, workload)
        sim.run(RandomSchedule(1))
        assert len(sim.trace.events_of_kind("S_qu")) == 1
        assert algorithm.view_state() == evaluate_view(
            view,
            {
                **sources["A"].snapshot(),
                **sources["B"].snapshot(),
                **sources["C"].snapshot(),
            },
        )
