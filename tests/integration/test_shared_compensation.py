"""Shared-compensation conformance: sharing changes cost, never state.

The acceptance bar for ``--share-compensation on``
(``docs/MULTIVIEW.md``): across the conformance matrix — synchronous
kernel under deterministic schedules, the asyncio runtime, WAL/codec
recovery, and the sharded warehouse — every member view walks a state
sequence byte-identical to the independent catalog's, while overlapping
views cost a fraction of the source round trips.

The fan-in topology here is the sharing-heavy extreme: N views with the
same structure (distinct names) over one source, so every update makes
all N members emit signature-equal compensating queries and the planner
collapses each event's fan-out to a single wire query.
"""

from __future__ import annotations

import pytest

from repro.consistency import check_trace
from repro.core.registry import create_algorithm
from repro.durability import dumps_algorithm, loads_algorithm
from repro.durability.codec import dumps
from repro.kernel import replay_concurrent
from repro.messaging.messages import QueryAnswer, UpdateNotification
from repro.relational.engine import evaluate_view
from repro.relational.schema import RelationSchema
from repro.relational.views import View
from repro.runtime import CrashPolicy, run_concurrent
from repro.simulation.driver import Simulation
from repro.simulation.schedules import (
    BestCaseSchedule,
    EagerSourceSchedule,
    WorstCaseSchedule,
)
from repro.source.memory import MemorySource
from repro.source.updates import insert
from repro.warehouse.catalog import WarehouseCatalog

SCHEMAS = [
    RelationSchema("r1", ("W", "X"), key=("W",)),
    RelationSchema("r2", ("X", "Y"), key=("Y",)),
]
INITIAL = {"r1": [(1, 2), (2, 3)], "r2": [(2, 5), (3, 6)]}

WORKLOAD = [
    insert("r1", (10, 2)),
    insert("r2", (2, 20)),
    insert("r1", (11, 3)),
    insert("r1", (12, 2)),
    insert("r2", (3, 21)),
    insert("r1", (13, 9)),
    insert("r2", (9, 22)),
    insert("r1", (14, 2)),
]


def fanin_setup(n_views=4, share=False):
    """One source, ``n_views`` structurally identical join views."""
    source = MemorySource(SCHEMAS, INITIAL)
    algorithms = {}
    for index in range(n_views):
        view = View.natural_join(f"V{index}", SCHEMAS, ["W", "Y"])
        algorithms[f"V{index}"] = create_algorithm(
            "eca", view, evaluate_view(view, source.snapshot())
        )
    return {"source": source}, WarehouseCatalog(
        algorithms, share_compensation=share
    )


def dedup(states):
    """Collapse consecutive duplicates: a view's *own* event timeline."""
    out = []
    for state in states:
        if not out or state != out[-1]:
            out.append(state)
    return out


SCHEDULES = {
    "best-case": BestCaseSchedule,
    "worst-case": WorstCaseSchedule,
    "eager-source": EagerSourceSchedule,
}


class TestSyncKernelByteIdentity:
    @pytest.mark.parametrize("schedule", sorted(SCHEDULES))
    @pytest.mark.parametrize("n_views", [1, 2, 4])
    def test_per_view_state_sequences_are_byte_equal(self, schedule, n_views):
        histories = {}
        for share in (False, True):
            sources, catalog = fanin_setup(n_views, share=share)
            Simulation(sources["source"], catalog, list(WORKLOAD)).run(
                SCHEDULES[schedule]()
            )
            assert catalog.is_quiescent()
            histories[share] = {
                name: dedup(catalog.view_history(name))
                for name in catalog.algorithms
            }
        assert histories[False].keys() == histories[True].keys()
        for name in histories[False]:
            independent, shared = histories[False][name], histories[True][name]
            assert independent == shared, name
            # Byte-equal, not merely bag-equal: the canonical codec
            # encodings of every state in the sequence match.
            assert [dumps(s) for s in independent] == [
                dumps(s) for s in shared
            ], name

    def test_sharing_cuts_kernel_round_trips(self):
        sent = {}
        for share in (False, True):
            sources, catalog = fanin_setup(4, share=share)
            kernel = Simulation(sources["source"], catalog, list(WORKLOAD))
            kernel.run(BestCaseSchedule())
            sent[share] = catalog.shared_query_stats()[0]
        assert sent[False] >= 2 * sent[True]


class TestRuntimeConformance:
    @pytest.mark.parametrize("seed", range(3))
    def test_async_runs_converge_to_the_independent_state(self, seed):
        finals = {}
        for share in (False, True):
            sources, catalog = fanin_setup(4, share=share)
            result = run_concurrent(
                sources, catalog, {"source": list(WORKLOAD)}, seed=seed,
                max_burst=4,
            )
            finals[share] = {
                name: catalog.state_of(name) for name in catalog.algorithms
            }
            # Every member is strongly consistent on its own timeline,
            # sharing or not.
            for name, algorithm in catalog.algorithms.items():
                solo = catalog.per_view_trace(name, result.trace)
                report = check_trace(algorithm.view, solo)
                assert report.strongly_consistent, (share, name, report.detail)
        assert finals[False] == finals[True]

    @pytest.mark.parametrize("seed", range(3))
    def test_shared_action_log_replays_on_the_sync_kernel(self, seed):
        sources, catalog = fanin_setup(4, share=True)
        result = run_concurrent(
            sources, catalog, {"source": list(WORKLOAD)}, seed=seed,
            max_burst=4,
        )
        twin_sources, twin = fanin_setup(4, share=True)
        kernel = replay_concurrent(
            result.action_log, twin_sources, twin, {"source": list(WORKLOAD)}
        )
        assert [(e.kind, e.detail) for e in result.trace.events] == [
            (e.kind, e.detail) for e in kernel.trace.events
        ]
        assert result.trace.view_states == kernel.trace.view_states
        assert result.final_view == kernel.algorithm.view_state()

    def test_sharing_at_least_halves_source_round_trips(self):
        sent = {}
        saved = {}
        for share in (False, True):
            sources, catalog = fanin_setup(4, share=share)
            result = run_concurrent(
                sources, catalog, {"source": list(WORKLOAD)}, seed=1,
                max_burst=4,
            )
            sent[share] = result.metrics["warehouse"].sent
            saved[share] = catalog.shared_query_stats()[1]
        assert saved[False] == 0
        assert saved[True] > 0
        assert sent[False] >= 2 * sent[True]

    def test_final_states_match_the_source_oracle(self):
        sources, catalog = fanin_setup(3, share=True)
        run_concurrent(sources, catalog, {"source": list(WORKLOAD)}, seed=5)
        final = sources["source"].snapshot()
        for name, algorithm in catalog.algorithms.items():
            assert catalog.state_of(name) == evaluate_view(
                algorithm.view, final
            ), name


class TestDisjointViewsUnaffected:
    """Sharing is a no-op when member queries never coincide."""

    def build(self, share):
        sources = {}
        algorithms = {}
        workloads = {}
        for index in range(2):
            prefix = f"s{index}"
            schemas = [
                RelationSchema(f"{prefix}r1", ("W", "X"), key=("W",)),
                RelationSchema(f"{prefix}r2", ("X", "Y"), key=("Y",)),
            ]
            initial = {
                f"{prefix}r1": [(1, 2), (2, 3)],
                f"{prefix}r2": [(2, 5), (3, 6)],
            }
            sources[prefix] = MemorySource(schemas, initial)
            view = View.natural_join(f"V{index}", schemas, ["W", "Y"])
            algorithms[f"V{index}"] = create_algorithm(
                "eca", view, evaluate_view(view, sources[prefix].snapshot())
            )
            workloads[prefix] = [
                insert(f"{prefix}r1", (10 + index, 2)),
                insert(f"{prefix}r2", (2, 20 + index)),
                insert(f"{prefix}r1", (12 + index, 3)),
            ]
        return sources, WarehouseCatalog(algorithms, share_compensation=share), workloads

    @pytest.mark.parametrize("seed", range(2))
    def test_share_on_is_byte_identical_to_share_off(self, seed):
        runs = {}
        catalogs = {}
        for share in (False, True):
            sources, catalog, workloads = self.build(share)
            runs[share] = run_concurrent(
                sources, catalog, workloads, seed=seed, max_burst=4
            )
            catalogs[share] = catalog
        assert runs[False].action_log == runs[True].action_log
        assert [(e.kind, e.detail) for e in runs[False].trace.events] == [
            (e.kind, e.detail) for e in runs[True].trace.events
        ]
        assert runs[False].trace.view_states == runs[True].trace.view_states
        assert runs[False].final_view == runs[True].final_view
        # No coincident queries, so nothing was (or could be) absorbed.
        assert catalogs[True].shared_query_stats()[1] == 0


class TestDurability:
    def mid_protocol_catalog(self):
        sources, catalog = fanin_setup(3, share=True)
        catalog.bind_owners({"r1": "source", "r2": "source"})
        update = insert("r1", (7, 2))
        sources["source"].apply_update(update)
        routed = catalog.on_update("source", UpdateNotification(update, 1))
        assert len(routed) == 1  # three members, one shared wire query
        return sources, catalog, routed

    def test_codec_round_trip_preserves_shared_routes(self):
        sources, catalog, routed = self.mid_protocol_catalog()
        text = dumps_algorithm(catalog)
        twin = loads_algorithm(text)
        assert dumps_algorithm(twin) == text
        assert twin.share_compensation
        assert twin.pending_query_ids() == catalog.pending_query_ids()
        assert list(twin.pending_requests()) == list(catalog.pending_requests())
        # The restored route table fans the late answer to every member.
        global_id = routed[0][1].query_id
        answer = routed[0][1].query.evaluate(sources["source"].snapshot())
        twin.on_answer("source", QueryAnswer(global_id, answer))
        states = {name: twin.state_of(name) for name in twin.algorithms}
        assert len(set(map(dumps, states.values()))) == 1

    @pytest.mark.parametrize("share", [False, True])
    def test_crash_recovery_converges_like_a_crash_free_run(
        self, share, tmp_path
    ):
        sources, catalog = fanin_setup(3, share=share)
        result = run_concurrent(
            sources,
            catalog,
            {"source": list(WORKLOAD)},
            seed=4,
            wal_dir=str(tmp_path),
            snapshot_every=4,
            crash=CrashPolicy(mode="mid-uqs", seed=4),
        )
        assert result.crashes, "the crash policy must actually fire"
        clean_sources, clean = fanin_setup(3, share=False)
        clean_run = run_concurrent(
            clean_sources, clean, {"source": list(WORKLOAD)}, seed=4
        )
        assert result.final_view == clean_run.final_view


class TestSharded:
    @pytest.mark.parametrize("share", [False, True])
    def test_sharded_run_matches_the_unsharded_catalog(self, share):
        sources, catalog = fanin_setup(4, share=share)
        sharded = run_concurrent(
            sources,
            catalog,
            {"source": list(WORKLOAD)},
            seed=2,
            shards=2,
        )
        twin_sources, twin = fanin_setup(4, share=share)
        unsharded = run_concurrent(
            twin_sources, twin, {"source": list(WORKLOAD)}, seed=2
        )
        assert sharded.final_view == unsharded.final_view
        # Per-view timelines agree between each shard's catalog and the
        # unsharded twin.
        shard_catalogs = sharded.shard_info["algorithms"]
        for name, shard in sharded.shard_info["assignment"].items():
            assert dedup(shard_catalogs[shard].view_history(name)) == dedup(
                twin.view_history(name)
            ), name

    def test_sharing_is_scoped_per_shard(self):
        sources, catalog = fanin_setup(4, share=True)
        result = run_concurrent(
            sources, catalog, {"source": list(WORKLOAD)}, seed=3, shards=2
        )
        shard_catalogs = result.shard_info["algorithms"]
        assert all(c.share_compensation for c in shard_catalogs.values())
        total_saved = sum(
            c.shared_query_stats()[1] for c in shard_catalogs.values()
        )
        assert total_saved > 0
