"""Integration: batched and deferred maintenance, end to end.

Validates the Section 7 extension against the correctness hierarchy and
its promised message economics (2*ceil(k/batch_size) instead of 2k).
"""

import pytest

from repro.consistency import check_trace
from repro.core.batch import BatchECA, DeferredECA
from repro.core.eca import ECA
from repro.costmodel.counters import CostRecorder
from repro.relational.engine import evaluate_view
from repro.relational.schema import RelationSchema
from repro.relational.views import View
from repro.simulation.driver import REFRESH, Simulation
from repro.simulation.schedules import (
    BestCaseSchedule,
    RandomSchedule,
    WorstCaseSchedule,
)
from repro.source.memory import MemorySource
from repro.workloads.random_gen import random_workload

SCHEMAS = [RelationSchema("r1", ("W", "X")), RelationSchema("r2", ("X", "Y"))]
INITIAL = {"r1": [(1, 2), (2, 3)], "r2": [(2, 5), (3, 6)]}


def build(algorithm_factory):
    view = View.natural_join("V", SCHEMAS, ["W", "Y"])
    source = MemorySource(SCHEMAS, INITIAL)
    warehouse = algorithm_factory(view, evaluate_view(view, source.snapshot()))
    return view, source, warehouse


class TestBatchECA:
    @pytest.mark.parametrize("batch_size", [1, 2, 3, 4, 6, 12])
    def test_strongly_consistent_across_interleavings(self, batch_size):
        for seed in range(6):
            view, source, warehouse = build(
                lambda v, iv: BatchECA(v, iv, batch_size=batch_size)
            )
            workload = random_workload(SCHEMAS, 12, seed=seed, initial=INITIAL)
            trace = Simulation(source, warehouse, workload).run(
                RandomSchedule(seed * 31 + batch_size)
            )
            report = check_trace(view, trace)
            assert report.strongly_consistent, (batch_size, seed, report.detail)

    def test_message_economics(self):
        """k=12 updates: 2*ceil(12/b) messages for batch size b."""
        for batch_size, expected in ((1, 24), (2, 12), (3, 8), (4, 6), (6, 4), (12, 2)):
            view, source, warehouse = build(
                lambda v, iv: BatchECA(v, iv, batch_size=batch_size)
            )
            recorder = CostRecorder()
            workload = random_workload(SCHEMAS, 12, seed=5, initial=INITIAL)
            Simulation(source, warehouse, workload, recorder).run(
                WorstCaseSchedule()
            )
            assert recorder.messages == expected, batch_size

    def test_matches_eca_final_state(self):
        workload = random_workload(SCHEMAS, 12, seed=7, initial=INITIAL)
        finals = []
        for factory in (
            lambda v, iv: ECA(v, iv),
            lambda v, iv: BatchECA(v, iv, batch_size=3),
        ):
            _, source, warehouse = build(factory)
            Simulation(source, warehouse, list(workload)).run(WorstCaseSchedule())
            finals.append(warehouse.view_state())
        assert finals[0] == finals[1]

    def test_non_dividing_batch_needs_final_flush(self):
        view, source, warehouse = build(lambda v, iv: BatchECA(v, iv, batch_size=5))
        workload = random_workload(SCHEMAS, 7, seed=1, initial=INITIAL)
        trace = Simulation(source, warehouse, workload).run(BestCaseSchedule())
        # Two updates still buffered: not convergent yet...
        assert warehouse.buffered_updates() == 2
        assert not check_trace(view, trace).convergent
        # ...until a refresh flushes the tail.
        sim2_view, sim2_source, sim2_warehouse = build(
            lambda v, iv: BatchECA(v, iv, batch_size=5)
        )
        trace2 = Simulation(
            sim2_source, sim2_warehouse, list(workload) + [REFRESH]
        ).run(BestCaseSchedule())
        assert check_trace(sim2_view, trace2).strongly_consistent


class TestDeferredECA:
    def test_view_is_stale_between_refreshes(self):
        view, source, warehouse = build(DeferredECA)
        before = warehouse.view_state()
        workload = random_workload(SCHEMAS, 6, seed=3, initial=INITIAL)
        Simulation(source, warehouse, workload).run(BestCaseSchedule())
        assert warehouse.view_state() == before
        assert warehouse.buffered_updates() == 6

    def test_periodic_refresh_is_strongly_consistent(self):
        for seed in range(6):
            view, source, warehouse = build(DeferredECA)
            updates = random_workload(SCHEMAS, 12, seed=seed, initial=INITIAL)
            workload = []
            for index, update in enumerate(updates):
                workload.append(update)
                if (index + 1) % 4 == 0:
                    workload.append(REFRESH)
            trace = Simulation(source, warehouse, workload).run(
                RandomSchedule(seed + 42)
            )
            report = check_trace(view, trace)
            assert report.strongly_consistent, (seed, report.detail)

    def test_single_refresh_at_end_converges(self):
        view, source, warehouse = build(DeferredECA)
        recorder = CostRecorder()
        workload = random_workload(SCHEMAS, 10, seed=2, initial=INITIAL) + [REFRESH]
        trace = Simulation(source, warehouse, workload, recorder).run(
            BestCaseSchedule()
        )
        assert check_trace(view, trace).strongly_consistent
        # One flush -> one query + one answer for ten updates.
        assert recorder.messages == 2

    def test_refresh_event_recorded_in_trace(self):
        view, source, warehouse = build(DeferredECA)
        workload = random_workload(SCHEMAS, 3, seed=1, initial=INITIAL) + [REFRESH]
        trace = Simulation(source, warehouse, workload).run(BestCaseSchedule())
        assert len(trace.events_of_kind("C_ref")) == 1
        assert len(trace.events_of_kind("W_ref")) == 1
