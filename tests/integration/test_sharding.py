"""End-to-end sharding: a partitioned warehouse equals its unsharded twin.

The cross-shard consistency proofs for ``repro.sharding``:

- **Equivalence** — the merged final view of an N-shard run equals the
  unsharded catalog's, for every partitioner and shard count.
- **Conformance** — a 2-shard run's merged action log replays on the
  single-shard :class:`~repro.kernel.sync.SyncKernel`, and every member
  view walks the identical (deduplicated) state sequence.
- **Cut consistency** — the merged trace follows a monotone path of
  consistent cuts (sources here are per-view disjoint, so the tagged
  union is exactly cut-consistent), and each member view is strongly
  consistent on its own shard's timeline.
- **Recovery** — one shard crashes and replays its own WAL while the
  others keep serving; the merged final view is unchanged.
"""

from __future__ import annotations

import os

import pytest

from repro.core.eca import ECA
from repro.durability.crash import CrashPolicy
from repro.errors import SimulationError, WalLocked
from repro.kernel import replay_concurrent
from repro.multisource.consistency import check_cut_consistency, cut_report
from repro.obs import Observability
from repro.relational.engine import evaluate_view
from repro.relational.schema import RelationSchema
from repro.relational.views import View
from repro.runtime import run_concurrent
from repro.sharding import ExplicitPartitioner
from repro.warehouse.catalog import WarehouseCatalog
from repro.workloads.random_gen import random_workload


def build(n_views, updates=6, seed=0):
    """N per-view-disjoint sources, a catalog over their join views."""
    sources = {}
    algorithms = {}
    workloads = {}
    for index in range(n_views):
        prefix = f"s{index}"
        schemas = [
            RelationSchema(f"{prefix}r1", ("W", "X"), key=("W",)),
            RelationSchema(f"{prefix}r2", ("X", "Y"), key=("Y",)),
        ]
        initial = {
            f"{prefix}r1": [(1, 2), (2, 3)],
            f"{prefix}r2": [(2, 5), (3, 6)],
        }
        from repro.source.memory import MemorySource

        source = MemorySource(schemas, initial)
        sources[prefix] = source
        view = View.natural_join(f"V{index}", schemas, ["W", "Y"])
        algorithms[f"V{index}"] = ECA(
            view, evaluate_view(view, source.snapshot())
        )
        workloads[prefix] = random_workload(
            schemas, updates, seed=seed + index, initial=initial,
            respect_keys=True,
        )
    return sources, WarehouseCatalog(algorithms), workloads


def dedup(states):
    """Collapse consecutive duplicates: a view's *own* event timeline."""
    out = []
    for state in states:
        if not out or state != out[-1]:
            out.append(state)
    return out


class TestShardedMatchesUnsharded:
    @pytest.mark.parametrize("partitioner", ["hash", "range"])
    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_merged_final_view_equals_the_unsharded_catalog(
        self, shards, partitioner
    ):
        sources, catalog, workloads = build(4, seed=7)
        baseline_sources, baseline_catalog, _ = build(4, seed=7)
        sharded = run_concurrent(
            sources, catalog, workloads, clients=0, seed=7,
            shards=shards, partitioner=partitioner,
        )
        unsharded = run_concurrent(
            baseline_sources, baseline_catalog, workloads, clients=0, seed=7
        )
        assert sharded.final_view == unsharded.final_view
        assert sharded.updates == unsharded.updates
        info = sharded.shard_info
        assert info["shards"] == shards and info["partitioner"] == partitioner
        assert sorted(info["assignment"]) == [f"V{i}" for i in range(4)]
        assert unsharded.shard_info is None

    def test_explicit_partitioner_instance_is_honored(self):
        sources, catalog, workloads = build(3, seed=2)
        placement = {("V0",): 1, ("V1",): 0, ("V2",): 1}
        result = run_concurrent(
            sources, catalog, workloads, clients=0, seed=2,
            shards=2, partitioner=ExplicitPartitioner(placement, shards=2),
        )
        assert result.shard_info["assignment"] == {
            "V0": 1, "V1": 0, "V2": 1
        }
        assert result.shard_info["partitioner"] == "explicit"

    def test_router_and_shard_rows_appear_in_metrics(self):
        sources, catalog, workloads = build(2, seed=3)
        result = run_concurrent(
            sources, catalog, workloads, clients=0, seed=3, shards=2
        )
        table = {row["actor"]: row for row in result.metrics_table()}
        assert table["router"]["updates_routed"] == result.updates
        for shard in result.shard_info["shard_ids"]:
            row = table[f"shard{shard}"]
            assert row["shard"] == str(shard)
            assert row["received"] > 0
        # Unsharded runs keep exactly the old columns: no shard anywhere.
        fresh_sources, fresh_catalog, _ = build(2, seed=3)
        baseline = run_concurrent(fresh_sources, fresh_catalog, workloads, clients=0)
        assert all("shard" not in row for row in baseline.metrics_table())


class TestShardedConformance:
    """The merged 2-shard log replays on the single-shard sync kernel."""

    def test_merged_log_replays_to_the_same_views(self):
        sources, catalog, workloads = build(4, seed=11)
        result = run_concurrent(
            sources, catalog, workloads, clients=0, seed=11, shards=2
        )
        twin_sources, twin_catalog, _ = build(4, seed=11)
        kernel = replay_concurrent(
            result.action_log, twin_sources, twin_catalog, workloads
        )
        assert result.final_view == kernel.algorithm.view_state()
        assert result.per_source_states == kernel.per_source_states
        # Per-view proof: each member walks the identical state sequence
        # on its shard as it does on the unsharded kernel (query ids and
        # cross-shard interleaving may differ; per-view timelines do not).
        shard_catalogs = result.shard_info["algorithms"]
        assignment = result.shard_info["assignment"]
        for name, shard in assignment.items():
            sharded_history = shard_catalogs[shard].view_history(name)
            baseline_history = twin_catalog.view_history(name)
            assert dedup(sharded_history) == dedup(baseline_history)

    @pytest.mark.parametrize("seed", range(3))
    def test_replay_is_seed_robust(self, seed):
        sources, catalog, workloads = build(3, updates=5, seed=seed)
        result = run_concurrent(
            sources, catalog, workloads, clients=0, seed=seed, shards=3
        )
        twin_sources, twin_catalog, _ = build(3, updates=5, seed=seed)
        kernel = replay_concurrent(
            result.action_log, twin_sources, twin_catalog, workloads
        )
        assert result.final_view == kernel.algorithm.view_state()


class TestCrossShardCutConsistency:
    @pytest.mark.parametrize("faults", [False, True])
    def test_merged_trace_is_cut_consistent(self, faults):
        from repro.runtime import FaultPlan

        sources, catalog, workloads = build(4, seed=13)
        plan = FaultPlan(latency=1.0, jitter=2.0, drop_rate=0.15) if faults else None
        result = run_concurrent(
            sources, catalog, workloads, clients=0, seed=13, shards=2,
            faults=plan,
        )
        report = cut_report(
            catalog,
            result.per_source_states,
            result.trace.view_states,
            result.final_view,
        )
        assert report.consistent and report.convergent, report.detail

    def test_each_member_view_is_cut_consistent_on_its_shard(self):
        sources, catalog, workloads = build(4, seed=17)
        result = run_concurrent(
            sources, catalog, workloads, clients=0, seed=17, shards=2
        )
        shard_catalogs = result.shard_info["algorithms"]
        for name, shard in result.shard_info["assignment"].items():
            member = shard_catalogs[shard].algorithms[name]
            prefix = name.replace("V", "s")
            assert check_cut_consistency(
                member.view,
                {prefix: result.per_source_states[prefix]},
                shard_catalogs[shard].view_history(name),
            ), f"{name} on shard {shard} left its source-state prefix path"


class TestShardCrashRecovery:
    @pytest.mark.parametrize("crash_shard", [0, 1])
    def test_one_shard_recovers_to_the_same_merged_view(
        self, tmp_path, crash_shard
    ):
        sources, catalog, workloads = build(4, seed=5)
        baseline_sources, baseline_catalog, _ = build(4, seed=5)
        crash = CrashPolicy(mode="mid-uqs", max_crashes=1, seed=5)
        result = run_concurrent(
            sources, catalog, workloads, clients=0, seed=5, shards=2,
            wal_dir=str(tmp_path), crash=crash, crash_shard=crash_shard,
        )
        baseline = run_concurrent(
            baseline_sources, baseline_catalog, workloads, clients=0, seed=5,
            shards=2,
        )
        assert result.crashes, "crash policy never fired; pick another seed"
        assert all(info["shard"] == crash_shard for info in result.crashes)
        assert result.final_view == baseline.final_view
        # One WAL directory per shard, each with its own log + snapshots.
        assert sorted(os.listdir(str(tmp_path))) == ["shard-0", "shard-1"]
        table = {row["actor"]: row for row in result.metrics_table()}
        assert table[f"shard{crash_shard}"]["crashes"] == len(result.crashes)
        other = 1 - crash_shard
        assert table[f"shard{other}"]["crashes"] == 0

    def test_crash_requires_a_wal_and_a_populated_shard(self, tmp_path):
        sources, catalog, workloads = build(2, seed=1)
        crash = CrashPolicy(mode="mid-uqs", max_crashes=1, seed=1)
        with pytest.raises(SimulationError, match="wal_dir"):
            run_concurrent(
                sources, catalog, workloads, clients=0, shards=2, crash=crash
            )
        with pytest.raises(SimulationError, match="not a populated shard"):
            run_concurrent(
                sources, catalog, workloads, clients=0, shards=2, crash=crash,
                wal_dir=str(tmp_path), crash_shard=9,
            )


class TestShardWalExclusivity:
    def test_two_runs_cannot_share_a_shard_wal_directory(self, tmp_path):
        from repro.durability import WriteAheadLog

        holder = WriteAheadLog(os.path.join(str(tmp_path), "shard-0"))
        sources, catalog, workloads = build(2, seed=0)
        with pytest.raises(WalLocked):
            run_concurrent(
                sources, catalog, workloads, clients=0, shards=2,
                wal_dir=str(tmp_path),
            )
        holder.close()
        result = run_concurrent(
            sources, catalog, workloads, clients=0, shards=2,
            wal_dir=str(tmp_path),
        )
        assert result.wal_stats is not None


class TestShardedObservability:
    def test_sharded_series_carry_the_shard_label(self, tmp_path):
        sources, catalog, workloads = build(2, seed=9)
        obs = Observability(sharded=True)
        run_concurrent(
            sources, catalog, workloads, clients=0, seed=9, shards=2, obs=obs
        )
        rendered = obs.registry.render_prometheus()
        assert 'shard="0"' in rendered and 'shard="1"' in rendered

    def test_unsharded_obs_is_rejected_for_sharded_runs(self):
        sources, catalog, workloads = build(2, seed=9)
        with pytest.raises(SimulationError, match="sharded=True"):
            run_concurrent(
                sources, catalog, workloads, clients=0, shards=2,
                obs=Observability(),
            )

    def test_shard_view_requires_the_sharded_flag(self):
        with pytest.raises(ValueError):
            Observability().shard_view(0)
