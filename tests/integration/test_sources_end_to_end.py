"""Integration: SQLite and in-memory sources are interchangeable.

The two substrates must produce identical traces, costs, and final views
for identical workloads — the warehouse cannot tell them apart.
"""

import pytest

from repro.consistency import check_trace
from repro.core.registry import create_algorithm
from repro.costmodel.counters import CostRecorder
from repro.relational.engine import evaluate_view
from repro.relational.schema import RelationSchema
from repro.relational.views import View
from repro.simulation.driver import Simulation
from repro.simulation.schedules import RandomSchedule, WorstCaseSchedule
from repro.source.memory import MemorySource
from repro.source.sqlite import SQLiteSource
from repro.workloads.random_gen import random_workload

SCHEMAS = [
    RelationSchema("r1", ("W", "X")),
    RelationSchema("r2", ("X", "Y")),
    RelationSchema("r3", ("Y", "Z")),
]
INITIAL = {
    "r1": [(1, 2), (4, 2), (7, 0)],
    "r2": [(2, 5), (0, 5)],
    "r3": [(5, 3), (5, 9)],
}


def chain_view():
    return View.natural_join("V", SCHEMAS, ["W", "Z"])


def run(source_cls, algorithm, workload, schedule_seed):
    view = chain_view()
    source = source_cls(SCHEMAS, INITIAL)
    warehouse = create_algorithm(
        algorithm, view, evaluate_view(view, source.snapshot())
    )
    recorder = CostRecorder()
    trace = Simulation(source, warehouse, workload, recorder).run(
        RandomSchedule(schedule_seed)
    )
    final = warehouse.view_state()
    if hasattr(source, "close"):
        source.close()
    return trace, final, recorder


@pytest.mark.parametrize("algorithm", ["eca", "lca", "basic"])
def test_memory_and_sqlite_agree(algorithm):
    for seed in range(4):
        workload = random_workload(SCHEMAS, 8, seed=seed, initial=INITIAL)
        mem_trace, mem_final, mem_costs = run(MemorySource, algorithm, workload, seed)
        sql_trace, sql_final, sql_costs = run(SQLiteSource, algorithm, workload, seed)
        assert mem_final == sql_final
        assert mem_costs.summary() == sql_costs.summary()
        assert mem_trace.view_states == sql_trace.view_states


def test_three_relation_eca_on_sqlite_is_strongly_consistent():
    view = chain_view()
    for seed in range(4):
        workload = random_workload(SCHEMAS, 10, seed=seed, initial=INITIAL)
        source = SQLiteSource(SCHEMAS, INITIAL)
        warehouse = create_algorithm(
            "eca", view, evaluate_view(view, source.snapshot())
        )
        trace = Simulation(source, warehouse, workload).run(WorstCaseSchedule())
        source.close()
        report = check_trace(view, trace)
        assert report.strongly_consistent, report.detail


def test_sqlite_on_disk_database(tmp_path):
    """A file-backed SQLite source behaves like the in-memory one."""
    path = str(tmp_path / "source.db")
    view = chain_view()
    workload = random_workload(SCHEMAS, 6, seed=2, initial=INITIAL)
    source = SQLiteSource(SCHEMAS, INITIAL, path=path)
    warehouse = create_algorithm("eca", view, evaluate_view(view, source.snapshot()))
    trace = Simulation(source, warehouse, workload).run(WorstCaseSchedule())
    source.close()
    assert check_trace(view, trace).strongly_consistent
