"""Integration: multiple views over one source, maintained independently.

Section 7: "in a warehouse consisting of multiple views where each view is
over data from a single source, ECA is simply applied to each view
separately."  We run several warehouses (one algorithm instance per view)
against the same source stream and check each converges independently.
"""

from repro.consistency import check_trace
from repro.core.eca import ECA
from repro.relational.conditions import Attr, Comparison, Const
from repro.relational.engine import evaluate_view
from repro.relational.schema import RelationSchema
from repro.relational.views import View
from repro.simulation.driver import Simulation
from repro.simulation.schedules import RandomSchedule, WorstCaseSchedule
from repro.source.memory import MemorySource
from repro.workloads.random_gen import random_workload

SCHEMAS = [
    RelationSchema("orders", ("oid", "cust")),
    RelationSchema("lines", ("oid", "amount")),
]
INITIAL = {
    "orders": [(1, 10), (2, 20)],
    "lines": [(1, 100), (1, 150), (2, 50)],
}


def test_shared_attribute_projection_stays_qualified():
    # 'oid' lives in both relations, so the output column keeps its
    # qualified name to stay unambiguous.
    view = View.natural_join(
        "big",
        SCHEMAS,
        ["orders.oid", "amount"],
        Comparison(Attr("amount"), ">", Const(80)),
    )
    assert view.output_columns() == ("orders.oid", "amount")


def test_multiple_views_maintained_independently():
    joined = View.natural_join("joined", SCHEMAS, ["cust", "amount"])
    big = View.natural_join(
        "big",
        SCHEMAS,
        ["orders.oid", "amount"],
        Comparison(Attr("amount"), ">", Const(80)),
    )
    for seed in range(5):
        workload = random_workload(
            SCHEMAS, 12, seed=seed, initial=INITIAL, domain=5
        )
        for view in (joined, big):
            source = MemorySource(SCHEMAS, INITIAL)
            warehouse = ECA(view, evaluate_view(view, source.snapshot()))
            trace = Simulation(source, warehouse, workload).run(
                RandomSchedule(seed)
            )
            report = check_trace(view, trace)
            assert report.strongly_consistent, (view.name, seed, report.detail)


def test_same_stream_fans_out_to_both_views():
    """One source stream, two warehouse algorithm instances: simulate by
    replaying the identical workload into two simulations and checking
    both final views against the same final source state."""
    joined = View.natural_join("joined", SCHEMAS, ["cust", "amount"])
    big = View.natural_join(
        "big",
        SCHEMAS,
        ["orders.oid", "amount"],
        Comparison(Attr("amount"), ">", Const(80)),
    )
    workload = random_workload(SCHEMAS, 15, seed=9, initial=INITIAL, domain=5)
    finals = {}
    final_sources = {}
    for view in (joined, big):
        source = MemorySource(SCHEMAS, INITIAL)
        warehouse = ECA(view, evaluate_view(view, source.snapshot()))
        trace = Simulation(source, warehouse, workload).run(WorstCaseSchedule())
        finals[view.name] = warehouse.view_state()
        final_sources[view.name] = trace.final_source_state
    assert final_sources["joined"] == final_sources["big"]
    state = final_sources["joined"]
    assert finals["joined"] == evaluate_view(joined, state)
    assert finals["big"] == evaluate_view(big, state)


def test_update_touching_no_view_relation_is_ignored_by_that_view():
    """A warehouse maintaining a view over other relations ignores the
    notification entirely (no query, no state change)."""
    other = RelationSchema("audit", ("who", "what"))
    schemas = SCHEMAS + [other]
    view = View.natural_join("joined", SCHEMAS, ["cust", "amount"])
    source = MemorySource(schemas, INITIAL)
    warehouse = ECA(view, evaluate_view(view, source.snapshot()))
    from repro.source.updates import insert

    before = warehouse.view_state()
    trace = Simulation(
        source, warehouse, [insert("audit", (1, 2))]
    ).run(WorstCaseSchedule())
    assert warehouse.view_state() == before
    assert len(trace.events_of_kind("S_qu")) == 0
