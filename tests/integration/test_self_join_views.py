"""Integration: self-join views (multiple occurrences of one relation).

Section 4: "Our algorithms can be extended to allow multiple occurrences
of the same relation (e.g., by handling updates to such relations once
for each appearance of the relation)."  We implement the extension with
relation aliases and inclusion-exclusion substitution
(``Term.substitute_update``), which provably preserves Lemma B.2 — so ECA
and friends work unchanged.  These tests drive a 'colleagues' view (pairs
of employees sharing a department) through the full stack.
"""

import pytest

from repro.consistency import check_trace
from repro.core.registry import create_algorithm
from repro.relational.bag import SignedBag
from repro.relational.conditions import Attr, Comparison
from repro.relational.engine import evaluate_view
from repro.relational.schema import RelationSchema
from repro.relational.views import View
from repro.simulation.driver import Simulation
from repro.simulation.schedules import BestCaseSchedule, RandomSchedule, WorstCaseSchedule
from repro.source.memory import MemorySource
from repro.source.sqlite import SQLiteSource
from repro.source.updates import delete, insert
from repro.workloads.random_gen import random_workload

EMP = RelationSchema("emp", ("name", "dept"))
INITIAL = {"emp": [(1, 10), (2, 10), (3, 20)]}


def colleagues_view() -> View:
    """pairs (a, b) of employees in the same department, a < b."""
    e1, e2 = EMP.aliased("e1"), EMP.aliased("e2")
    condition = Comparison(Attr("e1.dept"), "=", Attr("e2.dept")) & Comparison(
        Attr("e1.name"), "<", Attr("e2.name")
    )
    return View("colleagues", [e1, e2], ["e1.name", "e2.name"], condition)


class TestAliasing:
    def test_aliased_schema_keeps_base(self):
        alias = EMP.aliased("e1")
        assert alias.name == "e1"
        assert alias.base == "emp"
        assert alias.is_alias
        assert not EMP.is_alias
        assert alias.attributes == EMP.attributes

    def test_view_involves_base_relation(self):
        view = colleagues_view()
        assert view.involves("emp")
        assert view.involves("e1")  # by occurrence name too
        assert not view.involves("zzz")

    def test_oracle_evaluation(self):
        view = colleagues_view()
        state = {"emp": SignedBag.from_rows(INITIAL["emp"])}
        assert sorted(evaluate_view(view, state).expand_rows()) == [(1, 2)]

    def test_sqlite_evaluates_aliased_view(self):
        view = colleagues_view()
        with SQLiteSource([EMP], INITIAL) as source:
            answer = source.evaluate(view.as_query())
        assert sorted(answer.expand_rows()) == [(1, 2)]


class TestSubstitutionExpansion:
    def test_insert_expands_to_three_terms(self):
        view = colleagues_view()
        query = view.substitute("emp", insert("emp", (4, 10)).signed_tuple())
        assert query.term_count() == 3
        assert sorted(t.coefficient for t in query.terms) == [-1, 1, 1]

    def test_insert_delta_is_exact(self):
        view = colleagues_view()
        before = {"emp": SignedBag.from_rows(INITIAL["emp"])}
        after = {"emp": before["emp"] + SignedBag.singleton((4, 10))}
        delta = view.substitute(
            "emp", insert("emp", (4, 10)).signed_tuple()
        ).evaluate(after)
        assert evaluate_view(view, before) + delta == evaluate_view(view, after)

    def test_delete_delta_is_exact(self):
        view = colleagues_view()
        before = {"emp": SignedBag.from_rows(INITIAL["emp"])}
        after = {"emp": before["emp"] - SignedBag.singleton((2, 10))}
        delta = view.substitute(
            "emp", delete("emp", (2, 10)).signed_tuple()
        ).evaluate(after)
        assert evaluate_view(view, before) + delta == evaluate_view(view, after)

    def test_single_occurrence_substitute_still_rejects_self_join(self):
        from repro.errors import ExpressionError

        view = colleagues_view()
        term = view.as_query().terms[0]
        with pytest.raises(ExpressionError):
            term.substitute("emp", insert("emp", (4, 10)).signed_tuple())

    def test_fully_bound_occurrences_vanish(self):
        view = colleagues_view()
        term = view.as_query().terms[0]
        expansion = term.substitute_update(
            "emp", insert("emp", (4, 10)).signed_tuple()
        )
        # The doubly-bound term is fully bound; substituting again on the
        # same relation yields the empty expansion.
        doubly = [t for t in expansion if t.is_fully_bound()]
        assert len(doubly) == 1
        assert doubly[0].substitute_update(
            "emp", insert("emp", (5, 10)).signed_tuple()
        ) == []


class TestAlgorithmsOnSelfJoins:
    @pytest.mark.parametrize("algorithm", ["eca", "eca-local", "lca"])
    def test_strongly_consistent_under_random_interleavings(self, algorithm):
        view = colleagues_view()
        for seed in range(8):
            workload = random_workload([EMP], 8, seed=seed, initial=INITIAL, domain=4)
            source = MemorySource([EMP], INITIAL)
            warehouse = create_algorithm(
                algorithm, view, evaluate_view(view, source.snapshot())
            )
            trace = Simulation(source, warehouse, workload).run(RandomSchedule(seed))
            report = check_trace(view, trace)
            assert report.strongly_consistent, (algorithm, seed, report.detail)

    def test_lca_complete_on_self_join(self):
        view = colleagues_view()
        workload = random_workload([EMP], 8, seed=5, initial=INITIAL, domain=4)
        source = MemorySource([EMP], INITIAL)
        warehouse = create_algorithm("lca", view, evaluate_view(view, source.snapshot()))
        trace = Simulation(source, warehouse, workload).run(WorstCaseSchedule())
        assert check_trace(view, trace).complete

    def test_basic_anomalous_on_self_join_somewhere(self):
        view = colleagues_view()
        broken = 0
        for seed in range(20):
            workload = random_workload([EMP], 8, seed=seed, initial=INITIAL, domain=4)
            source = MemorySource([EMP], INITIAL)
            warehouse = create_algorithm(
                "basic", view, evaluate_view(view, source.snapshot())
            )
            trace = Simulation(source, warehouse, workload).run(
                RandomSchedule(seed + 7)
            )
            if not check_trace(view, trace).convergent:
                broken += 1
        assert broken > 0

    def test_sqlite_source_end_to_end(self):
        view = colleagues_view()
        workload = random_workload([EMP], 6, seed=2, initial=INITIAL, domain=4)
        source = SQLiteSource([EMP], INITIAL)
        warehouse = create_algorithm("eca", view, evaluate_view(view, source.snapshot()))
        trace = Simulation(source, warehouse, workload).run(WorstCaseSchedule())
        source.close()
        assert check_trace(view, trace).strongly_consistent

    def test_recompute_on_self_join(self):
        view = colleagues_view()
        workload = random_workload([EMP], 6, seed=3, initial=INITIAL, domain=4)
        source = MemorySource([EMP], INITIAL)
        warehouse = create_algorithm(
            "recompute", view, evaluate_view(view, source.snapshot()), period=1
        )
        trace = Simulation(source, warehouse, workload).run(BestCaseSchedule())
        assert check_trace(view, trace).strongly_consistent


class TestMixedSelfJoinAndOtherRelation:
    def test_three_way_with_double_occurrence(self):
        """V over dept |x| emp AS e1 |x| emp AS e2 mixes single- and
        multi-occurrence substitution in one view."""
        dept = RelationSchema("dept", ("dept", "city"))
        e1, e2 = EMP.aliased("e1"), EMP.aliased("e2")
        condition = (
            Comparison(Attr("e1.dept"), "=", Attr("dept.dept"))
            & Comparison(Attr("e2.dept"), "=", Attr("dept.dept"))
            & Comparison(Attr("e1.name"), "<", Attr("e2.name"))
        )
        view = View("pairs_with_city", [dept, e1, e2], ["e1.name", "e2.name", "city"], condition)
        initial = {"emp": INITIAL["emp"], "dept": [(10, 0), (20, 1)]}
        for seed in range(6):
            workload = random_workload(
                [EMP, dept], 8, seed=seed, initial=initial, domain=4
            )
            source = MemorySource([EMP, dept], initial)
            warehouse = create_algorithm(
                "eca", view, evaluate_view(view, source.snapshot())
            )
            trace = Simulation(source, warehouse, workload).run(RandomSchedule(seed))
            report = check_trace(view, trace)
            assert report.strongly_consistent, (seed, report.detail)
