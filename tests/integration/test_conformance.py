"""Cross-kernel conformance: concurrent runs replay exactly on the sync kernel.

The tentpole guarantee of the routed-protocol unification: the asyncio
runtime and the synchronous :class:`~repro.kernel.sync.SyncKernel` are
the *same* execution semantics, differing only in who chooses the next
action.  For every registered algorithm we run ``run_concurrent``, then
replay its recorded ``action_log`` on a fresh kernel over twin sources,
and require the two executions to agree event-for-event: identical
``(kind, detail)`` trace events, identical source/view state sequences,
identical per-source histories, and the identical checker verdict.
"""

from __future__ import annotations

import pytest

from repro.consistency import check_trace
from repro.core.registry import ALGORITHMS, create_algorithm
from repro.core.stored_copies import StoredCopies
from repro.errors import ProtocolError, SimulationError
from repro.kernel import replay_concurrent
from repro.kernel.dispatch import dispatch_event
from repro.kernel.sync import SyncKernel
from repro.messaging.messages import UpdateNotification
from repro.multisource.consistency import cut_report
from repro.relational.engine import evaluate_view
from repro.relational.schema import RelationSchema
from repro.relational.views import View
from repro.runtime import run_concurrent
from repro.source.memory import MemorySource
from repro.workloads.paper_examples import PAPER_EXAMPLES
from repro.workloads.random_gen import random_workload

#: Single-source families exercised on the paper's Example 2/3 workloads
#: (keyless schemas — eca-key joins the keyed suite below instead).
SINGLE_SOURCE = ["basic", "eca", "eca-local", "lca", "stored-copies"]

#: Multi-source families exercised on the two-source spanning view.
MULTI_SOURCE = ["strobe", "sweep", "fragmenting-incremental", "multi-stored-copies"]

KEYED_SCHEMAS = [
    RelationSchema("r1", ("W", "X"), key=("W",)),
    RelationSchema("r2", ("X", "Y"), key=("Y",)),
]
KEYED_INITIAL = {"r1": [(1, 2), (2, 3)], "r2": [(2, 5), (3, 6)]}


def assert_conforms(result, kernel):
    """The concurrent run and its synchronous replay agree exactly."""
    assert [(e.kind, e.detail) for e in result.trace.events] == [
        (e.kind, e.detail) for e in kernel.trace.events
    ]
    assert result.trace.source_states == kernel.trace.source_states
    assert result.trace.view_states == kernel.trace.view_states
    assert result.per_source_states == kernel.per_source_states
    assert result.final_view == kernel.algorithm.view_state()


def build_single(name, view, snapshot, initial_view, updates):
    if name == "stored-copies":
        return StoredCopies(view, initial_view, snapshot)
    if name == "batch-eca":
        return create_algorithm(name, view, initial_view, batch_size=len(updates))
    return create_algorithm(name, view, initial_view)


class TestSingleSourceConformance:
    @pytest.mark.parametrize("scenario_name", ["example-2", "example-3"])
    @pytest.mark.parametrize("name", SINGLE_SOURCE + ["batch-eca", "recompute"])
    @pytest.mark.parametrize("seed", range(4))
    def test_paper_examples_replay_identically(self, scenario_name, name, seed):
        scenario = PAPER_EXAMPLES[scenario_name]

        def setup():
            source = MemorySource(scenario.schemas, scenario.initial)
            initial_view = evaluate_view(scenario.view, source.snapshot())
            if name == "recompute":
                algo = create_algorithm(
                    name, scenario.view, initial_view, period=1
                )
            else:
                algo = build_single(
                    name,
                    scenario.view,
                    source.snapshot(),
                    initial_view,
                    scenario.updates,
                )
            return source, algo

        source, algo = setup()
        result = run_concurrent(
            source, algo, scenario.updates, clients=0, seed=seed
        )
        twin_source, twin_algo = setup()
        kernel = replay_concurrent(
            result.action_log,
            {"source": twin_source},
            twin_algo,
            {"source": scenario.updates},
        )
        assert_conforms(result, kernel)
        assert check_trace(scenario.view, result.trace).level() == check_trace(
            scenario.view, kernel.trace
        ).level()

    @pytest.mark.parametrize("scenario_name", ["example-2", "example-3"])
    @pytest.mark.parametrize("seed", range(4))
    def test_deferred_eca_with_client_refreshes(self, scenario_name, seed):
        # Client refreshes flush the deferred buffer; the replayed kernel
        # re-enacts them through its per-client channels.
        scenario = PAPER_EXAMPLES[scenario_name]

        def setup():
            source = MemorySource(scenario.schemas, scenario.initial)
            return source, create_algorithm(
                "deferred-eca",
                scenario.view,
                evaluate_view(scenario.view, source.snapshot()),
            )

        source, algo = setup()
        result = run_concurrent(
            source, algo, scenario.updates, clients=2, client_reads=3, seed=seed
        )
        twin_source, twin_algo = setup()
        kernel = replay_concurrent(
            result.action_log,
            {"source": twin_source},
            twin_algo,
            {"source": scenario.updates},
        )
        assert_conforms(result, kernel)

    @pytest.mark.parametrize("seed", range(4))
    def test_eca_key_on_keyed_workload(self, seed):
        view = View.natural_join("V", KEYED_SCHEMAS, ["W", "Y"])
        workload = random_workload(
            KEYED_SCHEMAS, 8, seed=seed, initial=KEYED_INITIAL, respect_keys=True
        )

        def setup():
            source = MemorySource(KEYED_SCHEMAS, KEYED_INITIAL)
            return source, create_algorithm(
                "eca-key", view, evaluate_view(view, source.snapshot())
            )

        source, algo = setup()
        result = run_concurrent(source, algo, workload, clients=2, seed=seed)
        twin_source, twin_algo = setup()
        kernel = replay_concurrent(
            result.action_log, {"source": twin_source}, twin_algo,
            {"source": workload},
        )
        assert_conforms(result, kernel)
        assert check_trace(view, result.trace).strongly_consistent


def two_source_setup():
    """Source A owns r1, source B owns r2; V spans both (keys projected)."""
    a_schema = [KEYED_SCHEMAS[0]]
    b_schema = [KEYED_SCHEMAS[1]]
    sources = {
        "A": MemorySource(a_schema, {"r1": KEYED_INITIAL["r1"]}),
        "B": MemorySource(b_schema, {"r2": KEYED_INITIAL["r2"]}),
    }
    view = View.natural_join("V", KEYED_SCHEMAS, ["W", "Y"])
    return sources, view


def build_multi(name, view, sources):
    snapshot = {}
    for source in sources.values():
        snapshot.update(source.snapshot())
    owners = {"r1": "A", "r2": "B"}
    options = {"owners": owners}
    if name == "multi-stored-copies":
        options["initial_copies"] = snapshot
    return create_algorithm(
        name, view, evaluate_view(view, snapshot), **options
    )


class TestMultiSourceConformance:
    @pytest.mark.parametrize("name", MULTI_SOURCE)
    @pytest.mark.parametrize("seed", range(4))
    def test_spanning_view_replays_identically(self, name, seed):
        workloads = {
            "A": random_workload(
                [KEYED_SCHEMAS[0]], 5, seed=seed,
                initial={"r1": KEYED_INITIAL["r1"]}, respect_keys=True,
            ),
            "B": random_workload(
                [KEYED_SCHEMAS[1]], 5, seed=seed + 50,
                initial={"r2": KEYED_INITIAL["r2"]}, respect_keys=True,
            ),
        }
        sources, view = two_source_setup()
        algo = build_multi(name, view, sources)
        result = run_concurrent(sources, algo, workloads, clients=2, seed=seed)
        twin_sources, twin_view = two_source_setup()
        twin_algo = build_multi(name, twin_view, twin_sources)
        kernel = replay_concurrent(
            result.action_log, twin_sources, twin_algo, workloads
        )
        assert_conforms(result, kernel)
        # Identical executions classify identically under cut consistency.
        live = cut_report(
            view, result.per_source_states, result.trace.view_states,
            result.final_view,
        )
        replayed = cut_report(
            twin_view, kernel.per_source_states, kernel.trace.view_states,
            kernel.algorithm.view_state(),
        )
        assert live.level() == replayed.level()
        if name in ("strobe", "sweep", "multi-stored-copies"):
            assert live.strongly_consistent, live.detail

    @pytest.mark.parametrize("name", MULTI_SOURCE)
    def test_every_multi_family_is_registered(self, name):
        assert getattr(ALGORITHMS[name], "multi_source", False)


class NonRoutedAlgorithm(ALGORITHMS["basic"]):
    """Deliberate protocol violation: returns bare QueryRequests.

    The pre-unification single-source protocol returned plain request
    lists from ``on_update``; the routed protocol wraps each request in a
    ``(destination, request)`` pair.  The kernel must reject the legacy
    shape with an error naming the algorithm and the fix, not an
    unpacking ``TypeError`` deep inside the channel loop.
    """

    name = "non-routed"

    def on_update(self, source, notification):
        return [
            request
            for _destination, request in super().on_update(source, notification)
        ]


class TestProtocolRejection:
    def test_bare_query_requests_are_rejected_with_a_clear_error(self):
        scenario = PAPER_EXAMPLES["example-2"]
        source = MemorySource(scenario.schemas, scenario.initial)
        algo = NonRoutedAlgorithm(
            scenario.view, evaluate_view(scenario.view, source.snapshot())
        )
        kernel = SyncKernel({"source": source}, algo, scenario.updates)
        kernel.step("update")
        with pytest.raises(ProtocolError) as excinfo:
            kernel.step("warehouse:source")
        message = str(excinfo.value)
        assert "non-routed" in message
        assert "on_update" in message
        assert "bare QueryRequest" in message
        assert "(destination, request)" in message

    def test_dispatch_event_rejects_non_pair_items(self):
        scenario = PAPER_EXAMPLES["example-2"]
        source = MemorySource(scenario.schemas, scenario.initial)

        class WrongShape(ALGORITHMS["basic"]):
            name = "wrong-shape"

            def on_update(self, origin, notification):
                return ["not a pair"]

        algo = WrongShape(
            scenario.view, evaluate_view(scenario.view, source.snapshot())
        )
        algo.bind_owners({schema.name: "source" for schema in scenario.schemas})
        with pytest.raises(ProtocolError, match="routed protocol requires"):
            dispatch_event(
                algo,
                "source",
                UpdateNotification(scenario.updates[0], 1),
            )


class TestReplayRefusals:
    def test_crash_markers_are_refused(self):
        sources, view = two_source_setup()
        algo = build_multi("strobe", view, sources)
        with pytest.raises(SimulationError, match="crash"):
            replay_concurrent(["update:A", "crash"], sources, algo, {"A": []})

    def test_overrunning_workload_is_refused(self):
        sources, view = two_source_setup()
        algo = build_multi("strobe", view, sources)
        with pytest.raises(SimulationError, match="beyond its workload"):
            replay_concurrent(
                ["update:A"], sources, algo, {"A": [], "B": []}
            )
