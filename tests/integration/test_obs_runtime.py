"""Integration tests for observability over the concurrent runtime.

The acceptance bar from the issue: on Example 2, every compensating
query span must link back (``causes``) to the update span that caused it
and (``compensates``) to the UQS entries it offsets; and the exported
metrics must reconcile exactly with ``RuntimeResult.metrics_table()``.
"""

from __future__ import annotations

from repro.core.eca import ECA
from repro.durability.crash import CrashPolicy
from repro.relational.engine import evaluate_view
from repro.runtime import FaultPlan, Observability, run_concurrent
from repro.source.memory import MemorySource
from repro.workloads.paper_examples import PAPER_EXAMPLES


def example2_run(obs, seed=7, **kwargs):
    scenario = PAPER_EXAMPLES["example-2"]
    source = MemorySource(scenario.schemas, scenario.initial)
    warehouse = ECA(scenario.view, evaluate_view(scenario.view, source.snapshot()))
    result = run_concurrent(
        source,
        warehouse,
        scenario.updates,
        clients=2,
        seed=seed,
        obs=obs,
        **kwargs,
    )
    return scenario, result


def spans_by_id(obs):
    return {span.span_id: span for span in obs.tracer.spans()}


class TestCausalTrace:
    def test_every_query_links_to_its_update(self):
        obs = Observability()
        example2_run(obs)
        spans = spans_by_id(obs)
        queries = [s for s in spans.values() if s.name == "wh.query"]
        assert queries, "expected at least one compensating query"
        for query in queries:
            causes = query.linked("causes")
            assert causes, f"query span {query!r} has no causes link"
            for target in causes:
                assert spans[target].name == "source.update"
            # The parent event processes the same update the query maintains.
            parent = spans[query.parent_id]
            assert parent.name == "wh.update"
            assert parent.linked("causes") == causes

    def test_second_update_compensates_against_first_query(self):
        # Example 2: U2 arrives while Q1 is unanswered, so Q2 carries a
        # compensates edge to Q1's span (the -r1[4,2]><Q1 term of 5.2).
        obs = Observability()
        example2_run(obs)
        spans = spans_by_id(obs)
        compensating = [
            s for s in spans.values() if s.name == "wh.query" and s.linked("compensates")
        ]
        assert compensating
        for query in compensating:
            for target in query.linked("compensates"):
                assert spans[target].name == "wh.query"
                assert spans[target].start <= query.start

    def test_answers_link_back_to_queries_and_install_closes_the_chain(self):
        obs = Observability()
        example2_run(obs)
        spans = spans_by_id(obs)
        answers = [s for s in spans.values() if s.name == "source.answer"]
        assert answers
        for answer in answers:
            (target,) = answer.linked("causes")
            assert spans[target].name == "wh.query"
            assert spans[target].attrs["query_id"] == answer.attrs["query_id"]
        installs = [s for s in spans.values() if s.name == "wh.install"]
        assert installs, "ECA must install COLLECT when the UQS drains"
        for install in installs:
            targets = install.linked("installs")
            assert targets
            for target in targets:
                assert spans[target].name == "source.answer"

    def test_timestamps_use_the_virtual_clock(self):
        obs = Observability()
        example2_run(obs, faults=FaultPlan(latency=1.0, jitter=2.0, drop_rate=0.0))
        starts = [span.start for span in obs.tracer.spans()]
        assert starts == sorted(starts)
        assert starts[-1] > 0.0  # virtual latency advanced the clock

    def test_trace_disabled_keeps_metrics_only(self):
        obs = Observability(trace=False)
        example2_run(obs)
        assert len(obs.tracer) == 0
        assert obs.registry.get("repro_warehouse_events_total").value(kind="W_up") == 2


class TestMetricsReconciliation:
    def test_registry_matches_metrics_table(self):
        obs = Observability()
        _, result = example2_run(obs)
        table = {row["actor"]: row for row in result.metrics_table()}
        sent = obs.registry.get("repro_actor_sent_total")
        received = obs.registry.get("repro_actor_received_total")
        for name, metrics in result.metrics.items():
            role = metrics.role
            assert sent.value(actor=name, role=role) == table[name]["sent"]
            assert received.value(actor=name, role=role) == table[name]["received"]
        ch_sent = obs.registry.get("repro_channel_sent_total")
        ch_bytes = obs.registry.get("repro_channel_bytes_total")
        for name, stats in result.channel_stats.items():
            assert ch_sent.value(channel=name) == stats.sent
            assert ch_bytes.value(channel=name) == stats.sent_bytes
            assert table[f"ch:{name}"]["sent"] == stats.sent

    def test_live_counters_match_final_accounting(self):
        obs = Observability()
        _, result = example2_run(obs)
        events = obs.registry.get("repro_warehouse_events_total")
        processed = sum(
            events.value(kind=kind) for kind in ("W_up", "W_ans", "W_ref")
        )
        warehouse_received = result.metrics["warehouse"].received
        assert processed == warehouse_received
        updates = obs.registry.get("repro_source_updates_total")
        assert updates.value(source="source") == result.updates

    def test_staleness_gauge_settles_to_zero(self):
        obs = Observability()
        example2_run(obs)
        assert obs.registry.get("repro_staleness_lag_updates").value() == 0
        assert obs.registry.get("repro_uqs_size").value() == 0

    def test_algorithm_gauges_exported(self):
        obs = Observability()
        example2_run(obs)
        gauge = obs.registry.get("repro_algorithm_gauge")
        assert gauge.value(gauge="uqs") == 0
        assert gauge.value(gauge="collect_tuples") == 0

    def test_client_with_zero_reads_still_reports_a_row(self):
        # Regression: role counters now pre-declare, so an idle client's
        # ``reads`` column is an explicit 0 instead of a missing key.
        obs = Observability()
        _, result = example2_run(obs, client_reads=0)
        table = {row["actor"]: row for row in result.metrics_table()}
        assert table["client-0"]["reads"] == 0
        assert "reads" in result.metrics["client-0"].as_dict()
        reads = obs.registry.get("repro_actor_reads_total")
        assert reads.value(actor="client-0", role="client") == 0


class TestDurabilityObservability:
    def test_crash_and_recovery_emit_linked_spans(self, tmp_path):
        obs = Observability()
        _, result = example2_run(
            obs,
            wal_dir=str(tmp_path / "wal"),
            snapshot_every=2,
            crash=CrashPolicy(mode="mid-uqs", seed=7),
        )
        assert result.crashes, "crash policy must fire on this workload"
        spans = spans_by_id(obs)
        crashes = [s for s in spans.values() if s.name == "wh.crash"]
        recoveries = [s for s in spans.values() if s.name == "wh.recovery"]
        assert len(crashes) == len(result.crashes)
        assert len(recoveries) == len(result.crashes)
        for recovery in recoveries:
            (target,) = recovery.linked("recovers")
            assert spans[target].name == "wh.crash"
        registry = obs.registry
        assert registry.get("repro_warehouse_recoveries_total").value() == len(
            result.crashes
        )
        assert registry.get("repro_wal_append_total").value(type="recv") > 0
        assert registry.get("repro_wal_snapshot_total").value() > 0
        assert registry.get("repro_wal_records").value() == result.wal_stats["records"]

    def test_obs_does_not_change_the_run(self, tmp_path):
        # Determinism: the same seed with and without observability must
        # produce the identical event trace and final view.
        _, bare = example2_run(None)
        _, observed = example2_run(Observability())
        assert [e.kind for e in bare.trace.events] == [
            e.kind for e in observed.trace.events
        ]
        assert bare.final_view == observed.final_view
