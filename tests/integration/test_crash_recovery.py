"""Integration: crash-fault injection + WAL recovery in the runtime.

The acceptance bar for the durability subsystem: a seeded
``run_concurrent`` run that kills and restarts the warehouse mid-UQS
under ECA on the paper's Example 2/3 workloads must recover via
snapshot + WAL replay and remain strongly consistent, and the same seed
must reproduce the identical crash point and trace.
"""

from __future__ import annotations

import pytest

from repro.consistency import check_trace
from repro.core.eca import ECA
from repro.errors import SimulationError
from repro.relational.engine import evaluate_view
from repro.relational.schema import RelationSchema
from repro.relational.views import View
from repro.runtime import CrashPolicy, run_concurrent
from repro.simulation.trace import W_CRASH, W_REC
from repro.source.memory import MemorySource
from repro.warehouse.catalog import WarehouseCatalog
from repro.workloads.paper_examples import PAPER_EXAMPLES
from repro.workloads.random_gen import random_workload


def build_eca(scenario_name):
    scenario = PAPER_EXAMPLES[scenario_name]
    source = MemorySource(scenario.schemas, scenario.initial)
    warehouse = ECA(scenario.view, evaluate_view(scenario.view, source.snapshot()))
    return scenario, source, warehouse


def crash_run(scenario_name, seed, tmp_path, **crash_kwargs):
    scenario, source, warehouse = build_eca(scenario_name)
    crash_kwargs.setdefault("mode", "mid-uqs")
    crash_kwargs.setdefault("seed", seed)
    result = run_concurrent(
        source,
        warehouse,
        scenario.updates,
        clients=2,
        seed=seed,
        wal_dir=str(tmp_path),
        snapshot_every=4,
        crash=CrashPolicy(**crash_kwargs),
    )
    return scenario, result


class TestAcceptance:
    """Mid-UQS crash on the paper examples: recover + stay strong."""

    @pytest.mark.parametrize("scenario_name", ["example-2", "example-3"])
    @pytest.mark.parametrize("seed", range(4))
    def test_eca_survives_mid_uqs_crash(self, scenario_name, seed, tmp_path):
        scenario, result = crash_run(scenario_name, seed, tmp_path)
        assert len(result.crashes) == 1, "crash policy never fired"
        report = check_trace(scenario.view, result.trace)
        assert report.strongly_consistent, report.detail
        correct = evaluate_view(scenario.view, result.trace.final_source_state)
        assert result.final_view == correct

    def test_trace_records_crash_and_recovery(self, tmp_path):
        _, result = crash_run("example-2", 0, tmp_path)
        kinds = [event.kind for event in result.trace.events]
        assert kinds.count(W_CRASH) == 1
        assert kinds.count(W_REC) == 1
        assert kinds.index(W_CRASH) < kinds.index(W_REC)

    @pytest.mark.parametrize("scenario_name", ["example-2", "example-3"])
    def test_drop_sends_crash_reissues_lost_queries(
        self, scenario_name, tmp_path
    ):
        scenario, result = crash_run(
            scenario_name, 2, tmp_path, drop_sends=True
        )
        assert len(result.crashes) == 1
        assert result.crashes[0]["reissued"] >= 1
        report = check_trace(scenario.view, result.trace)
        assert report.strongly_consistent, report.detail

    def test_multiple_crashes_in_one_run(self, tmp_path):
        scenario, result = crash_run(
            "example-2", 1, tmp_path, max_crashes=2, skip=0
        )
        assert len(result.crashes) == 2
        report = check_trace(scenario.view, result.trace)
        assert report.strongly_consistent, report.detail

    def test_event_mode_pins_exact_boundary(self, tmp_path):
        scenario, result = crash_run(
            "example-2", 0, tmp_path, mode="event", at=2
        )
        assert [c["event_index"] for c in result.crashes] == [2]
        assert check_trace(scenario.view, result.trace).strongly_consistent


class TestDeterminism:
    def test_same_seed_same_crash_point_and_trace(self, tmp_path):
        runs = []
        for sub in ("a", "b"):
            directory = tmp_path / sub
            directory.mkdir()
            runs.append(crash_run("example-2", 3, directory)[1])
        first, second = runs
        assert first.crashes == second.crashes
        assert [repr(e) for e in first.trace.events] == [
            repr(e) for e in second.trace.events
        ]
        assert first.trace.view_states == second.trace.view_states

    def test_different_seeds_pick_different_points(self, tmp_path):
        points = set()
        for seed in range(4):
            directory = tmp_path / str(seed)
            directory.mkdir()
            _, result = crash_run("example-2", seed, directory)
            points.add(result.crashes[0]["event_index"])
        assert len(points) > 1


class TestWiderTopologies:
    def test_catalog_over_two_sources_recovers(self, tmp_path):
        a = [RelationSchema("a1", ("W", "X")), RelationSchema("a2", ("X", "Y"))]
        b = [RelationSchema("b1", ("P", "Q")), RelationSchema("b2", ("Q", "R"))]
        ia = {"a1": [(1, 2)], "a2": [(2, 4)]}
        ib = {"b1": [(7, 8)], "b2": [(8, 9)]}
        va = View.natural_join("VA", a, ["W"])
        vb = View.natural_join("VB", b, ["P"])
        sa, sb = MemorySource(a, ia), MemorySource(b, ib)
        catalog = WarehouseCatalog(
            {
                "VA": ECA(va, evaluate_view(va, sa.snapshot())),
                "VB": ECA(vb, evaluate_view(vb, sb.snapshot())),
            }
        )
        workload = random_workload(a, 5, seed=1, initial=ia) + random_workload(
            b, 5, seed=2, initial=ib
        )
        result = run_concurrent(
            {"alpha": sa, "beta": sb},
            catalog,
            workload,
            clients=2,
            seed=6,
            wal_dir=str(tmp_path),
            snapshot_every=4,
            crash=CrashPolicy(mode="mid-uqs", seed=6),
        )
        assert len(result.crashes) == 1
        assert check_trace(catalog, result.trace).convergent

    def test_wal_without_crash_changes_nothing(self, tmp_path):
        scenario, source, warehouse = build_eca("example-2")
        logged = run_concurrent(
            source,
            warehouse,
            scenario.updates,
            clients=2,
            seed=5,
            wal_dir=str(tmp_path),
        )
        scenario, source, warehouse = build_eca("example-2")
        plain = run_concurrent(
            source, warehouse, scenario.updates, clients=2, seed=5
        )
        assert [repr(e) for e in logged.trace.events] == [
            repr(e) for e in plain.trace.events
        ]
        assert logged.final_view == plain.final_view
        assert logged.wal_stats is not None
        assert logged.wal_stats["records"] > 0
        assert plain.wal_stats is None

    def test_crash_without_wal_dir_is_refused(self):
        scenario, source, warehouse = build_eca("example-2")
        with pytest.raises(SimulationError, match="wal_dir"):
            run_concurrent(
                source,
                warehouse,
                scenario.updates,
                seed=0,
                crash=CrashPolicy(),
            )

    def test_fault_counters_surface_in_metrics_table(self, tmp_path):
        from repro.runtime import FaultPlan

        scenario, source, warehouse = build_eca("example-2")
        result = run_concurrent(
            source,
            warehouse,
            scenario.updates,
            clients=1,
            faults=FaultPlan(latency=1.0, jitter=4.0, drop_rate=0.4),
            seed=3,
        )
        rows = {row["actor"]: row for row in result.metrics_table()}
        channel_rows = [r for r in rows.values() if r["role"] == "channel"]
        assert channel_rows, "metrics_table must include channel rows"
        assert any(r["dropped"] > 0 for r in channel_rows)
        for row in channel_rows:
            assert {"dropped", "retries", "reordered"} <= set(row)
