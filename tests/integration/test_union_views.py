"""Integration: union and difference views (Section 7 future work).

A UnionView is a signed combination of SPJ branches; the existing query
algebra maintains it with no algorithm changes.  These tests run
union-all and difference views through the full stack under adversarial
interleavings.
"""

import pytest

from repro.consistency import check_trace
from repro.core.registry import create_algorithm
from repro.core.stored_copies import StoredCopies
from repro.errors import ExpressionError, SchemaError
from repro.relational.bag import SignedBag
from repro.relational.conditions import Const
from repro.relational.engine import evaluate_view
from repro.relational.schema import RelationSchema
from repro.relational.unions import UnionView
from repro.relational.views import View
from repro.simulation.driver import Simulation
from repro.simulation.schedules import RandomSchedule, WorstCaseSchedule
from repro.source.memory import MemorySource
from repro.source.updates import insert
from repro.workloads.random_gen import random_workload

ORDERS = RelationSchema("orders", ("item", "qty"))
RETURNS = RelationSchema("rets", ("item", "qty"))
CATALOG = RelationSchema("cat", ("item", "price"))

INITIAL = {
    "orders": [(1, 5), (2, 3)],
    "rets": [(1, 5)],
    "cat": [(1, 100), (2, 50), (3, 10)],
}


def union_view() -> UnionView:
    """All movements: orders UNION ALL returns, priced via the catalog."""
    ordered = View.natural_join("ordered", [ORDERS, CATALOG], ["orders.item", "qty"])
    returned = View.natural_join("returned", [RETURNS, CATALOG], ["rets.item", "qty"])
    return UnionView("movements", [ordered, returned])


def difference_view() -> UnionView:
    """Net orders: orders MINUS returns (signed difference)."""
    ordered = View.natural_join("ordered", [ORDERS, CATALOG], ["orders.item", "qty"])
    returned = View.natural_join("returned", [RETURNS, CATALOG], ["rets.item", "qty"])
    return UnionView("net", [(1, ordered), (-1, returned)])


class TestConstruction:
    def test_branch_arity_must_match(self):
        a = View.natural_join("a", [ORDERS, CATALOG], ["orders.item"])
        b = View.natural_join("b", [RETURNS, CATALOG], ["rets.item", "qty"])
        with pytest.raises(SchemaError):
            UnionView("bad", [a, b])

    def test_empty_branches_rejected(self):
        with pytest.raises(ExpressionError):
            UnionView("empty", [])

    def test_invalid_sign_rejected(self):
        a = View.natural_join("a", [ORDERS, CATALOG], ["orders.item"])
        with pytest.raises(ExpressionError):
            UnionView("bad", [(2, a)])

    def test_relation_names_deduplicated(self):
        assert union_view().relation_names == ("orders", "cat", "rets")

    def test_involves_any_branch_relation(self):
        view = union_view()
        assert view.involves("rets")
        assert view.involves("cat")
        assert not view.involves("zzz")

    def test_no_keys_for_eca_key(self):
        view = union_view()
        assert not view.contains_all_keys()
        with pytest.raises(SchemaError):
            view.key_output_positions("orders")
        from repro.core.eca_key import ECAKey

        with pytest.raises(SchemaError):
            ECAKey(view)

    def test_repr(self):
        assert "ordered + returned" in repr(union_view())
        assert "ordered - returned" in repr(difference_view())


class TestSemantics:
    def test_union_all_adds_multiplicities(self):
        view = union_view()
        state = {name: SignedBag.from_rows(rows) for name, rows in INITIAL.items()}
        result = view.evaluate(state)
        # (1,5) appears in both orders and returns -> multiplicity 2.
        assert result.multiplicity((1, 5)) == 2
        assert result.multiplicity((2, 3)) == 1

    def test_difference_subtracts(self):
        view = difference_view()
        state = {name: SignedBag.from_rows(rows) for name, rows in INITIAL.items()}
        result = view.evaluate(state)
        assert result.multiplicity((1, 5)) == 0
        assert result.multiplicity((2, 3)) == 1

    def test_substitute_touches_only_relevant_branches(self):
        view = union_view()
        query = view.substitute("rets", insert("rets", (2, 1)).signed_tuple())
        # Only the 'returned' branch involves rets: one term.
        assert query.term_count() == 1

    def test_substitute_shared_relation_touches_both_branches(self):
        view = union_view()
        query = view.substitute("cat", insert("cat", (4, 1)).signed_tuple())
        assert query.term_count() == 2

    def test_substitute_uninvolved_raises(self):
        with pytest.raises(ExpressionError):
            union_view().substitute("zzz", insert("zzz", (1,)).signed_tuple())


def paired_workload(k, seed):
    """Inserts that preserve 'every return matches an earlier order'.

    A signed difference view is only meaningful under such a data-model
    invariant — otherwise its value is legitimately negative and no
    maintenance algorithm can (or should) materialize it.
    """
    import random as _random

    rng = _random.Random(seed)
    unmatched = [(2, 3)]  # initial orders (1,5) is already returned
    updates = []
    while len(updates) < k:
        if unmatched and rng.random() < 0.4:
            row = unmatched.pop(rng.randrange(len(unmatched)))
            updates.append(insert("rets", row))
        elif rng.random() < 0.8:
            row = (rng.randrange(2, 6), rng.randrange(1, 5))
            unmatched.append(row)
            updates.append(insert("orders", row))
        else:
            updates.append(insert("cat", (rng.randrange(2, 6), rng.randrange(5, 50))))
    return updates


class TestMaintenance:
    @pytest.mark.parametrize("algorithm", ["eca", "lca"])
    def test_union_strongly_consistent(self, algorithm):
        view = union_view()
        schemas = [ORDERS, RETURNS, CATALOG]
        for seed in range(6):
            workload = random_workload(
                schemas, 9, seed=seed, initial=INITIAL, delete_ratio=0.0, domain=4
            )
            source = MemorySource(schemas, INITIAL)
            warehouse = create_algorithm(
                algorithm, view, evaluate_view(view, source.snapshot())
            )
            trace = Simulation(source, warehouse, workload).run(RandomSchedule(seed))
            report = check_trace(view, trace)
            assert report.strongly_consistent, (algorithm, seed, report.detail)

    @pytest.mark.parametrize("algorithm", ["eca", "lca"])
    def test_difference_strongly_consistent(self, algorithm):
        view = difference_view()
        schemas = [ORDERS, RETURNS, CATALOG]
        for seed in range(6):
            workload = paired_workload(9, seed)
            source = MemorySource(schemas, INITIAL)
            warehouse = create_algorithm(
                algorithm, view, evaluate_view(view, source.snapshot())
            )
            trace = Simulation(source, warehouse, workload).run(RandomSchedule(seed))
            report = check_trace(view, trace)
            assert report.strongly_consistent, (algorithm, seed, report.detail)

    def test_union_with_deletes_under_eca(self):
        view = union_view()
        schemas = [ORDERS, RETURNS, CATALOG]
        for seed in range(6):
            workload = random_workload(
                schemas, 9, seed=seed, initial=INITIAL, delete_ratio=0.4, domain=4
            )
            source = MemorySource(schemas, INITIAL)
            warehouse = create_algorithm(
                "eca", view, evaluate_view(view, source.snapshot())
            )
            trace = Simulation(source, warehouse, workload).run(RandomSchedule(seed))
            assert check_trace(view, trace).strongly_consistent

    def test_recompute_on_union(self):
        view = union_view()
        schemas = [ORDERS, RETURNS, CATALOG]
        workload = random_workload(schemas, 6, seed=1, initial=INITIAL, domain=4)
        source = MemorySource(schemas, INITIAL)
        warehouse = create_algorithm(
            "recompute", view, evaluate_view(view, source.snapshot()), period=1
        )
        from repro.simulation.schedules import BestCaseSchedule

        trace = Simulation(source, warehouse, workload).run(BestCaseSchedule())
        assert check_trace(view, trace).strongly_consistent

    def test_stored_copies_on_union(self):
        view = union_view()
        schemas = [ORDERS, RETURNS, CATALOG]
        workload = random_workload(schemas, 8, seed=4, initial=INITIAL, domain=4)
        source = MemorySource(schemas, INITIAL)
        warehouse = StoredCopies(
            view, evaluate_view(view, source.snapshot()), source.snapshot()
        )
        trace = Simulation(source, warehouse, workload).run(WorstCaseSchedule())
        assert check_trace(view, trace).complete

    def test_basic_breaks_on_union_somewhere(self):
        view = union_view()
        schemas = [ORDERS, RETURNS, CATALOG]
        broken = 0
        for seed in range(15):
            workload = random_workload(schemas, 8, seed=seed, initial=INITIAL, domain=4)
            source = MemorySource(schemas, INITIAL)
            warehouse = create_algorithm(
                "basic", view, evaluate_view(view, source.snapshot())
            )
            trace = Simulation(source, warehouse, workload).run(
                RandomSchedule(seed + 17)
            )
            if not check_trace(view, trace).convergent:
                broken += 1
        assert broken > 0
