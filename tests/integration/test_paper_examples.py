"""Integration: replay every worked example from the paper, end to end.

Each scenario runs through the full stack — source, FIFO channels,
scripted schedule, warehouse algorithm — and must land on the paper's
stated final view, *including* the incorrect finals of the anomalous
baseline (Examples 2 and 3).
"""

import pytest

from repro.consistency import check_trace
from repro.experiments.runner import run_scenario
from repro.relational.engine import evaluate_view
from repro.simulation.schedules import BestCaseSchedule
from repro.workloads.paper_examples import PAPER_EXAMPLES


@pytest.mark.parametrize("name", sorted(PAPER_EXAMPLES))
def test_scenario_reproduces_paper_final_state(name):
    scenario = PAPER_EXAMPLES[name]
    trace, warehouse = run_scenario(scenario)
    assert sorted(warehouse.mv.rows()) == scenario.expected_final, (
        f"{scenario.paper_ref}: {scenario.description}"
    )


@pytest.mark.parametrize("name", sorted(PAPER_EXAMPLES))
def test_scenario_reproduces_on_sqlite_source(name):
    scenario = PAPER_EXAMPLES[name]
    trace, warehouse = run_scenario(scenario, source_kind="sqlite")
    assert sorted(warehouse.mv.rows()) == scenario.expected_final


class TestExample2Anomaly:
    """Section 1.1, Example 2 — the insertion anomaly in detail."""

    def test_basic_final_state_is_wrong(self):
        scenario = PAPER_EXAMPLES["example-2"]
        trace, warehouse = run_scenario(scenario)
        correct = evaluate_view(scenario.view, trace.final_source_state)
        assert warehouse.view_state() != correct
        report = check_trace(scenario.view, trace)
        assert not report.convergent
        assert not report.weakly_consistent

    def test_eca_fixes_the_same_interleaving(self):
        scenario = PAPER_EXAMPLES["example-2"]
        trace, warehouse = run_scenario(scenario, algorithm="eca")
        assert sorted(warehouse.mv.rows()) == [(1,), (4,)]
        assert check_trace(scenario.view, trace).strongly_consistent

    def test_recompute_also_fixes_it(self):
        scenario = PAPER_EXAMPLES["example-2"]
        trace, warehouse = run_scenario(
            scenario, algorithm="recompute", schedule=BestCaseSchedule()
        )
        assert sorted(warehouse.mv.rows()) == [(1,), (4,)]


class TestExample3DeletionAnomaly:
    def test_basic_strands_stale_tuple(self):
        scenario = PAPER_EXAMPLES["example-3"]
        trace, warehouse = run_scenario(scenario)
        assert warehouse.mv.rows() == [(1, 3)]
        assert not check_trace(scenario.view, trace).convergent

    def test_eca_empties_the_view(self):
        scenario = PAPER_EXAMPLES["example-3"]
        trace, warehouse = run_scenario(scenario, algorithm="eca")
        assert warehouse.mv.is_empty()
        assert check_trace(scenario.view, trace).strongly_consistent


class TestECAScenariosAreStronglyConsistent:
    @pytest.mark.parametrize(
        "name", ["example-4", "example-7", "example-8", "example-9"]
    )
    def test_strong_consistency(self, name):
        scenario = PAPER_EXAMPLES[name]
        trace, _ = run_scenario(scenario)
        report = check_trace(scenario.view, trace)
        assert report.strongly_consistent, report.detail


class TestExample5ECAKey:
    def test_strongly_consistent(self):
        scenario = PAPER_EXAMPLES["example-5"]
        trace, _ = run_scenario(scenario)
        assert check_trace(scenario.view, trace).strongly_consistent

    def test_no_query_sent_for_the_delete(self):
        scenario = PAPER_EXAMPLES["example-5"]
        trace, warehouse = run_scenario(scenario)
        # Three updates but only two queries (the two inserts).
        assert len(trace.events_of_kind("S_qu")) == 2


class TestExample1AlsoCorrectUnderEveryAlgorithm:
    @pytest.mark.parametrize(
        "algorithm", ["basic", "eca", "eca-local", "lca", "recompute"]
    )
    def test_single_quiet_update(self, algorithm):
        scenario = PAPER_EXAMPLES["example-1"]
        trace, warehouse = run_scenario(
            scenario, algorithm=algorithm, schedule=BestCaseSchedule()
        )
        assert sorted(warehouse.mv.rows()) == [(1,), (1,)]
