"""Integration: the multi-source open problem of Section 7, demonstrated.

A view over relations at two autonomous sources.  The naive transplant of
incremental maintenance (with query fragmentation) is anomalous — its
fragments read different global states — while stored copies remain
cut-consistent because they never query the sources.
"""

import pytest

from repro.consistency import check_trace
from repro.core.registry import create_algorithm
from repro.kernel import REFRESH
from repro.multisource import (
    FragmentingIncremental,
    MultiSourceSimulation,
    MultiSourceStoredCopies,
    check_cut_consistency,
    check_cut_convergence,
    fragment_query,
)
from repro.relational.bag import SignedBag
from repro.relational.engine import evaluate_view
from repro.relational.schema import RelationSchema
from repro.relational.tuples import SignedTuple
from repro.relational.views import View
from repro.simulation.schedules import RandomSchedule
from repro.simulation.trace import C_REF, W_REF
from repro.source.memory import MemorySource
from repro.workloads.random_gen import random_workload

R1 = RelationSchema("r1", ("W", "X"))
R2 = RelationSchema("r2", ("X", "Y"))
R3 = RelationSchema("r3", ("Y", "Z"))
OWNERS = {"r1": "A", "r2": "B", "r3": "B"}
INITIAL = {"r1": [(1, 2), (4, 2)], "r2": [(2, 5)], "r3": [(5, 3), (5, 9)]}


def chain_view():
    return View.natural_join("V", [R1, R2, R3], ["W", "Z"])


def build(kind):
    view = chain_view()
    a = MemorySource([R1], {"r1": INITIAL["r1"]})
    b = MemorySource([R2, R3], {"r2": INITIAL["r2"], "r3": INITIAL["r3"]})
    merged = {**a.snapshot(), **b.snapshot()}
    initial_view = evaluate_view(view, merged)
    if kind == "naive":
        algorithm = FragmentingIncremental(view, OWNERS, initial_view)
    else:
        algorithm = MultiSourceStoredCopies(view, OWNERS, initial_view, merged)
    return view, {"A": a, "B": b}, algorithm


class TestFragmentation:
    def test_fragments_grouped_by_owner(self):
        view = chain_view()
        query = view.substitute("r2", SignedTuple((2, 5)))
        plans = fragment_query(query, OWNERS)
        assert len(plans) == 1
        plan = plans[0]
        assert set(plan.fragments) == {"A", "B"}
        assert plan.spans_sources()

    def test_single_source_query_has_one_fragment(self):
        view = chain_view()
        query = view.substitute("r1", SignedTuple((9, 2)))
        plan = fragment_query(query, OWNERS)[0]
        assert set(plan.fragments) == {"B"}
        assert not plan.spans_sources()

    def test_fully_bound_term_is_local(self):
        view = chain_view()
        query = (
            view.substitute("r1", SignedTuple((9, 2)))
            .substitute("r2", SignedTuple((2, 5)))
            .substitute("r3", SignedTuple((5, 0)))
        )
        plan = fragment_query(query, OWNERS)[0]
        assert plan.is_local()

    def test_reassembly_matches_direct_evaluation(self):
        """Fragment answers computed on a *frozen* state reassemble to
        exactly the whole term's value — fragmentation itself is sound;
        only the timing is not."""
        view = chain_view()
        state = {
            "r1": SignedBag.from_rows(INITIAL["r1"]),
            "r2": SignedBag.from_rows(INITIAL["r2"]),
            "r3": SignedBag.from_rows(INITIAL["r3"]),
        }
        for relation, row in (("r1", (7, 2)), ("r2", (2, 5)), ("r3", (5, 1))):
            query = view.substitute(relation, SignedTuple(row))
            for plan in fragment_query(query, OWNERS):
                answers = {
                    source: fragment.evaluate(state)
                    for source, fragment in plan.fragments.items()
                }
                assert plan.reassemble(answers) == plan.term.evaluate(state)

    def test_reassembly_with_negative_bound_tuple(self):
        view = chain_view()
        state = {
            "r1": SignedBag.from_rows(INITIAL["r1"]),
            "r2": SignedBag.from_rows(INITIAL["r2"]),
            "r3": SignedBag.from_rows(INITIAL["r3"]),
        }
        query = view.substitute("r2", SignedTuple((2, 5), -1))
        plan = fragment_query(query, OWNERS)[0]
        answers = {
            source: fragment.evaluate(state)
            for source, fragment in plan.fragments.items()
        }
        assert plan.reassemble(answers) == plan.term.evaluate(state)

    def test_missing_answer_rejected(self):
        from repro.errors import SchemaError

        view = chain_view()
        plan = fragment_query(view.substitute("r2", SignedTuple((2, 5))), OWNERS)[0]
        with pytest.raises(SchemaError):
            plan.reassemble({})

    def test_unowned_relation_rejected(self):
        from repro.errors import SchemaError

        view = chain_view()
        with pytest.raises(SchemaError):
            fragment_query(view.as_query(), {"r1": "A"})


class TestNaiveTransplantIsAnomalous:
    def test_convergence_violations_occur(self):
        failures = 0
        runs = 30
        for seed in range(runs):
            workload = random_workload([R1, R2, R3], 8, seed=seed, initial=INITIAL)
            view, sources, algorithm = build("naive")
            sim = MultiSourceSimulation(sources, algorithm, workload)
            sim.run(RandomSchedule(seed * 3 + 1))
            if not check_cut_convergence(
                view, sim.per_source_states, sim.trace.final_view_state
            ):
                failures += 1
        assert failures > 0, (
            "the naive multi-source transplant should break on some "
            "interleaving — otherwise the Section 7 warning is vacuous"
        )

    def test_spanning_queries_are_the_culprit(self):
        view, sources, algorithm = build("naive")
        workload = random_workload([R1, R2, R3], 8, seed=2, initial=INITIAL)
        MultiSourceSimulation(sources, algorithm, workload).run(RandomSchedule(5))
        assert algorithm.spanning_queries > 0


class TestStoredCopiesAcrossSources:
    @pytest.mark.parametrize("seed", range(8))
    def test_cut_consistent_and_convergent(self, seed):
        workload = random_workload([R1, R2, R3], 8, seed=seed, initial=INITIAL)
        view, sources, algorithm = build("sc")
        sim = MultiSourceSimulation(sources, algorithm, workload)
        trace = sim.run(RandomSchedule(seed * 7 + 3))
        assert check_cut_consistency(view, sim.per_source_states, trace.view_states)
        assert check_cut_convergence(
            view, sim.per_source_states, trace.final_view_state
        )

    def test_refresh_markers_flow_through_the_client_channel(self):
        """REFRESH in a multi-source workload rides the implicit client
        channel: a ``C_ref`` request, a ``W_ref`` atomic event, and the
        run stays cut-consistent."""
        updates = random_workload([R1, R2, R3], 6, seed=3, initial=INITIAL)
        workload = list(updates[:3]) + [REFRESH] + list(updates[3:]) + [REFRESH]
        view, sources, algorithm = build("sc")
        sim = MultiSourceSimulation(sources, algorithm, workload)
        trace = sim.run(RandomSchedule(11))
        refreshes = [event for event in trace.events if event.kind == C_REF]
        assert [event.detail for event in refreshes] == [
            "client refresh #1",
            "client refresh #2",
        ]
        assert sum(1 for event in trace.events if event.kind == W_REF) == 2
        assert check_cut_consistency(view, sim.per_source_states, trace.view_states)

    def test_refresh_flushes_deferred_maintenance_across_sources(self):
        """Deferred maintenance in a multi-source topology: source A owns
        every view relation, B's presence forces the multi-source path, and
        only the client refresh makes the buffered updates visible."""

        class DrainSourcesFirst:
            # Deliver and answer everything on the source channels before
            # the warehouse reads the client refresh.
            def choose(self, available):
                for action in ("update", "warehouse:A", "answer:A"):
                    if action in available:
                        return action
                return available[0]

        pair_view = View.natural_join("V2", [R1, R2], ["W", "Y"])
        a = MemorySource([R1, R2], {"r1": INITIAL["r1"], "r2": INITIAL["r2"]})
        b = MemorySource([R3], {"r3": INITIAL["r3"]})
        stale_view = evaluate_view(pair_view, a.snapshot())
        algorithm = create_algorithm("deferred-eca", pair_view, stale_view)
        updates = random_workload(
            [R1, R2], 5, seed=7, initial={"r1": INITIAL["r1"], "r2": INITIAL["r2"]}
        )
        sim = MultiSourceSimulation(
            {"A": a, "B": b}, algorithm, list(updates) + [REFRESH]
        )
        trace = sim.run(DrainSourcesFirst())
        # One view state is recorded per atomic warehouse event; all of
        # them before the refresh still show the stale initial view ...
        warehouse_events = [
            event for event in trace.events if event.kind.startswith("W_")
        ]
        kinds = [event.kind for event in warehouse_events]
        assert W_REF in kinds
        for kind, state in zip(kinds, trace.view_states[1:]):
            if kind == W_REF:
                break
            assert state == stale_view
        # ... and the refresh flushes the buffer to full convergence.
        assert algorithm.is_quiescent()
        merged = {**a.snapshot(), **b.snapshot()}
        assert trace.final_view_state == evaluate_view(pair_view, merged)

    def test_global_order_consistency_can_fail_even_for_sc(self):
        """SC tracks *a* consistent cut, not the actual global order: on
        some interleaving the warehouse applies sources' updates in an
        order that differs from wall-clock execution order, so classic
        (single-timeline) consistency fails while cut consistency holds.
        This is why Section 3.1's definitions do not transfer verbatim to
        multiple sources."""
        saw_global_violation = False
        for seed in range(30):
            workload = random_workload([R1, R2, R3], 8, seed=seed, initial=INITIAL)
            view, sources, algorithm = build("sc")
            sim = MultiSourceSimulation(sources, algorithm, workload)
            trace = sim.run(RandomSchedule(seed + 100))
            assert check_cut_consistency(
                view, sim.per_source_states, trace.view_states
            )
            if not check_trace(view, trace).consistent:
                saw_global_violation = True
        assert saw_global_violation
