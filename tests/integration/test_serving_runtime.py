"""Integration tests: the serving tier over the concurrent runtime.

Covers the tentpole's acceptance surface end to end:

- bound-0 equivalence — every cached read equals the uncached read at
  the same point in the event sequence — on the plain runtime, under
  transport faults, and on a sharded run with a crashed-and-recovered
  shard (recovery replay must not double-invalidate);
- stale serving within a nonzero bound, annotated with lag;
- the ``repro_cache_*`` metric series appearing only when a cache is
  bound, with cache-disabled runs exporting byte-identical metrics to a
  build without a serving tier.
"""

from __future__ import annotations

import json

import pytest

from repro.core.eca import ECA
from repro.durability.crash import CrashPolicy
from repro.relational.engine import evaluate_view
from repro.relational.schema import RelationSchema
from repro.relational.views import View
from repro.runtime import FaultPlan, Observability, run_concurrent
from repro.serving import ServingCache, reader_for
from repro.source.memory import MemorySource
from repro.warehouse.catalog import WarehouseCatalog
from repro.workloads.random_gen import random_workload, zipf_read_workload


def build(n_views, updates=8, seed=0):
    """N disjoint two-relation join views, one source each (sharding-ready)."""
    sources = {}
    algorithms = {}
    workloads = {}
    for index in range(n_views):
        prefix = f"s{index}"
        schemas = [
            RelationSchema(f"{prefix}r1", ("W", "X"), key=("W",)),
            RelationSchema(f"{prefix}r2", ("X", "Y"), key=("Y",)),
        ]
        initial = {
            f"{prefix}r1": [(1, 2), (2, 3)],
            f"{prefix}r2": [(2, 5), (3, 6)],
        }
        source = MemorySource(schemas, initial)
        sources[prefix] = source
        view = View.natural_join(f"V{index}", schemas, ["W", "Y"])
        algorithms[f"V{index}"] = ECA(
            view, evaluate_view(view, source.snapshot())
        )
        workloads[prefix] = random_workload(
            schemas, updates, seed=seed + index, initial=initial,
            respect_keys=True,
        )
    return sources, WarehouseCatalog(algorithms), workloads


def read_mix(catalog, count=40, theta=1.0, seed=0):
    keys = reader_for(catalog).current_keys()
    return zipf_read_workload(keys, count, theta=theta, seed=seed)


class TestServingOverRuntime:
    def test_cache_reduces_backend_reads(self):
        sources, catalog, workloads = build(2, seed=5)
        reads = read_mix(catalog, seed=5)
        cache = ServingCache(capacity=16, staleness_bound=2)
        result = run_concurrent(
            sources, catalog, workloads, clients=0, seed=5,
            cache=cache, read_workload=reads,
        )
        serving = result.serving
        assert serving["reads"] == len(reads)
        assert serving["hits"] > 0
        assert serving["backend_reads"] < serving["reads"]
        assert serving["hit_rate"] > 0.5
        assert "freshness" in serving

    def test_bound_zero_reads_equal_backend_reads(self):
        sources, catalog, workloads = build(2, seed=3)
        reads = read_mix(catalog, seed=3)
        cache = ServingCache(capacity=16, staleness_bound=0)
        result = run_concurrent(
            sources, catalog, workloads, clients=0, seed=3,
            cache=cache, read_workload=reads, verify_reads=True,
        )
        assert result.read_mismatches == []
        assert result.serving["max_served_lag"] == 0
        assert result.serving["stale_served"] == 0

    def test_bound_zero_under_transport_faults(self):
        sources, catalog, workloads = build(2, seed=9)
        reads = read_mix(catalog, seed=9)
        cache = ServingCache(capacity=16, staleness_bound=0)
        result = run_concurrent(
            sources, catalog, workloads, clients=0, seed=9,
            faults=FaultPlan(latency=1.0, jitter=2.0, drop_rate=0.2),
            cache=cache, read_workload=reads, verify_reads=True,
        )
        assert result.read_mismatches == []

    def test_stale_served_lag_never_exceeds_bound(self):
        bound = 3
        sources, catalog, workloads = build(2, updates=12, seed=7)
        reads = read_mix(catalog, count=60, seed=7)
        cache = ServingCache(capacity=16, staleness_bound=bound)
        result = run_concurrent(
            sources, catalog, workloads, clients=0, seed=7,
            cache=cache, read_workload=reads,
        )
        results = result.read_results["reader-0"]
        assert len(results) == len(reads)
        for read in results:
            assert read.status in ("hit", "stale", "miss")
            assert read.lag <= bound
            if read.status != "stale":
                assert read.lag == 0
        assert result.serving["max_served_lag"] <= bound

    def test_reader_metrics_reach_the_result_table(self):
        sources, catalog, workloads = build(2, seed=1)
        reads = read_mix(catalog, seed=1)
        cache = ServingCache(capacity=16, staleness_bound=1)
        result = run_concurrent(
            sources, catalog, workloads, clients=0, seed=1,
            cache=cache, read_workload=reads,
        )
        table = {row["actor"]: row for row in result.metrics_table()}
        assert table["reader-0"]["reads"] == len(reads)

    def test_cache_off_reader_reads_directly(self):
        sources, catalog, workloads = build(2, seed=4)
        reads = read_mix(catalog, seed=4)
        result = run_concurrent(
            sources, catalog, workloads, clients=0, seed=4,
            read_workload=reads,
        )
        assert result.serving == {
            "reads": len(reads), "backend_reads": len(reads)
        }
        assert all(
            r.status == "direct" for r in result.read_results["reader-0"]
        )


class TestServingSharded:
    def test_sharded_bound_zero_equivalence(self):
        sources, catalog, workloads = build(2, seed=6)
        reads = read_mix(catalog, seed=6)
        cache = ServingCache(capacity=16, staleness_bound=0)
        result = run_concurrent(
            sources, catalog, workloads, clients=0, seed=6, shards=2,
            cache=cache, read_workload=reads, verify_reads=True,
        )
        assert result.read_mismatches == []
        assert result.serving["reads"] == len(reads)

    @pytest.mark.parametrize("crash_shard", [0, 1])
    def test_crashed_and_recovered_shard_keeps_equivalence(
        self, tmp_path, crash_shard
    ):
        # Recovery replays WAL'd events through dispatch_event; those
        # replays must not stream duplicate invalidations (each event
        # invalidated once, in its pre-crash incarnation).
        sources, catalog, workloads = build(2, updates=10, seed=5)
        reads = read_mix(catalog, count=60, seed=5)
        cache = ServingCache(capacity=16, staleness_bound=0)
        result = run_concurrent(
            sources, catalog, workloads, clients=0, seed=5, shards=2,
            wal_dir=str(tmp_path),
            crash=CrashPolicy(mode="mid-uqs", max_crashes=1, seed=5),
            crash_shard=crash_shard,
            cache=cache, read_workload=reads, verify_reads=True,
        )
        assert result.crashes, "crash policy must fire on this workload"
        assert result.read_mismatches == []


class TestCacheOffMetricsRegression:
    """Cache-disabled runs must export metrics byte-identical to a build
    with no serving tier: the cache series bind lazily, so they may not
    even *exist* unless a cache is attached."""

    # The exact instrument set a cache-off runtime run exports — the
    # pre-serving-tier surface, pinned.
    PINNED = [
        "repro_warehouse_events_total",
        "repro_queries_sent_total",
        "repro_compensating_terms_total",
        "repro_collect_installs_total",
        "repro_source_updates_total",
        "repro_source_answers_total",
        "repro_answer_tuples",
        "repro_client_reads_total",
        "repro_wal_append_total",
        "repro_wal_snapshot_total",
        "repro_warehouse_crashes_total",
        "repro_warehouse_recoveries_total",
        "repro_recovery_replayed_total",
        "repro_uqs_size",
        "repro_staleness_lag_updates",
        "repro_algorithm_gauge",
        "repro_shared_queries_issued",
        "repro_shared_queries_saved",
        "repro_actor_sent_total",
        "repro_actor_received_total",
        "repro_actor_queries_answered_total",
        "repro_actor_updates_applied_total",
        "repro_actor_reads_total",
        "repro_channel_sent_total",
        "repro_channel_delivered_total",
        "repro_channel_bytes_total",
        "repro_channel_dropped_total",
        "repro_channel_retries_total",
        "repro_channel_reordered_total",
        "repro_channel_max_pending_total",
        "repro_run",
    ]

    @staticmethod
    def run_once(cache=None, reads=None, verify=False):
        sources, catalog, workloads = build(2, updates=6, seed=2)
        obs = Observability()
        run_concurrent(
            sources, catalog, workloads, clients=1, seed=2, obs=obs,
            cache=cache, read_workload=reads, verify_reads=verify,
        )
        return obs.registry

    @staticmethod
    def stable_json(registry):
        dump = registry.as_json()
        # Wall-clock time is the one legitimately nondeterministic stat.
        dump["repro_run"]["series"] = [
            s for s in dump["repro_run"]["series"]
            if s["labels"] != {"stat": "wall_seconds"}
        ]
        return json.dumps(dump, sort_keys=True)

    def test_cache_off_exports_exactly_the_pinned_instruments(self):
        registry = self.run_once()
        assert [i.name for i in registry.instruments()] == self.PINNED

    def test_cache_off_exports_no_serving_series(self):
        registry = self.run_once()
        prom = registry.render_prometheus()
        assert "repro_cache" not in prom
        assert "reader" not in prom

    def test_cache_off_export_is_byte_identical_across_runs(self):
        a, b = self.run_once(), self.run_once()
        assert self.stable_json(a) == self.stable_json(b)
        prom_a = [
            line for line in a.render_prometheus().splitlines()
            if 'stat="wall_seconds"' not in line
        ]
        prom_b = [
            line for line in b.render_prometheus().splitlines()
            if 'stat="wall_seconds"' not in line
        ]
        assert prom_a == prom_b

    def test_cache_on_only_adds_series(self):
        sources, catalog, workloads = build(2, updates=6, seed=2)
        reads = read_mix(catalog, count=20, seed=2)
        registry = self.run_once(
            cache=ServingCache(capacity=8, staleness_bound=1), reads=reads
        )
        names = {i.name for i in registry.instruments()}
        assert set(self.PINNED) <= names
        extras = names - set(self.PINNED)
        assert extras == {
            "repro_cache_hits",
            "repro_cache_misses",
            "repro_cache_stale_served",
            "repro_cache_invalidations",
            "repro_actor_cache_hits_total",
            "repro_actor_cache_misses_total",
            "repro_actor_cache_stale_total",
        }
