"""Integration: the Strobe-style multi-source algorithm.

The repository's answer to the Section 7 open problem: for key-complete
views, the action-list + delete-filter + quiescent-apply design is
cut-consistent and convergent on every randomized interleaving where the
naive transplant fails about half the time.
"""

import pytest

from repro.errors import ProtocolError, SchemaError
from repro.multisource import (
    FragmentingIncremental,
    MultiSourceSimulation,
    check_cut_consistency,
    check_cut_convergence,
)
from repro.multisource.strobe import StrobeStyle
from repro.relational.engine import evaluate_view
from repro.relational.schema import RelationSchema
from repro.relational.views import View
from repro.simulation.schedules import RandomSchedule
from repro.source.memory import MemorySource
from repro.source.updates import delete, insert
from repro.workloads.random_gen import random_workload

R1 = RelationSchema("r1", ("W", "X"), key=("W",))
R2 = RelationSchema("r2", ("X", "Y"), key=("Y",))
R3 = RelationSchema("r3", ("Y", "Z"), key=("Z",))
OWNERS = {"r1": "A", "r2": "B", "r3": "B"}
INITIAL = {"r1": [(1, 2), (4, 3)], "r2": [(2, 5)], "r3": [(5, 3), (6, 9)]}


def keyed_view():
    return View.natural_join("V", [R1, R2, R3], ["W", "r2.Y", "Z"])


def build():
    view = keyed_view()
    a = MemorySource([R1], {"r1": INITIAL["r1"]})
    b = MemorySource([R2, R3], {"r2": INITIAL["r2"], "r3": INITIAL["r3"]})
    merged = {**a.snapshot(), **b.snapshot()}
    algorithm = StrobeStyle(view, OWNERS, evaluate_view(view, merged))
    return view, {"A": a, "B": b}, algorithm


class TestApplicability:
    def test_requires_key_complete_view(self):
        bare = View.natural_join("V", [R1, R2, R3], ["W"])
        with pytest.raises(SchemaError):
            StrobeStyle(bare, OWNERS)

    def test_accepts_keyed_view(self):
        StrobeStyle(keyed_view(), OWNERS)

    def test_rejects_answer_for_unknown_fragment(self):
        from repro.messaging.messages import QueryAnswer
        from repro.relational.bag import SignedBag

        algo = StrobeStyle(keyed_view(), OWNERS)
        with pytest.raises(ProtocolError):
            algo.on_answer("A", QueryAnswer(99, SignedBag()))


class TestCorrectness:
    @pytest.mark.parametrize("seed", range(12))
    def test_cut_consistent_and_convergent(self, seed):
        workload = random_workload(
            [R1, R2, R3], 10, seed=seed, initial=INITIAL, respect_keys=True
        )
        view, sources, algorithm = build()
        sim = MultiSourceSimulation(sources, algorithm, workload)
        trace = sim.run(RandomSchedule(seed * 13 + 5))
        assert check_cut_consistency(
            view, sim.per_source_states, trace.view_states
        )
        assert check_cut_convergence(
            view, sim.per_source_states, trace.final_view_state
        )
        assert algorithm.is_quiescent()

    def test_beats_the_naive_transplant_on_the_same_runs(self):
        naive_failures = strobe_failures = 0
        for seed in range(25):
            workload = random_workload(
                [R1, R2, R3], 10, seed=seed, initial=INITIAL, respect_keys=True
            )
            view, sources, strobe = build()
            sim = MultiSourceSimulation(sources, strobe, list(workload))
            sim.run(RandomSchedule(seed * 3 + 1))
            if not check_cut_convergence(
                view, sim.per_source_states, sim.trace.final_view_state
            ):
                strobe_failures += 1

            view2 = keyed_view()
            a = MemorySource([R1], {"r1": INITIAL["r1"]})
            b = MemorySource([R2, R3], {"r2": INITIAL["r2"], "r3": INITIAL["r3"]})
            merged = {**a.snapshot(), **b.snapshot()}
            naive = FragmentingIncremental(view2, OWNERS, evaluate_view(view2, merged))
            sim2 = MultiSourceSimulation({"A": a, "B": b}, naive, list(workload))
            sim2.run(RandomSchedule(seed * 3 + 1))
            if not check_cut_convergence(
                view2, sim2.per_source_states, sim2.trace.final_view_state
            ):
                naive_failures += 1
        assert strobe_failures == 0
        assert naive_failures > 0

    def test_cross_source_delete_insert_race(self):
        """The signature race: an insert's fragments in flight at both
        sources while a delete removes one of the joined tuples."""
        view, sources, algorithm = build()
        workload = [
            insert("r2", (3, 6)),       # joins r1 (4,3) and r3 (6,9)
            delete("r1", (4, 3)),       # removes the left part mid-flight
        ]
        sim = MultiSourceSimulation(sources, algorithm, workload)
        # Adversarial order: both updates land, then fragments answered.
        for action in [
            "update", "warehouse:B",     # insert processed, fragments out
            "update", "warehouse:A",     # delete processed (filter + AL)
            "answer:A", "answer:B",      # fragments evaluated post-delete
            "warehouse:A", "warehouse:B",
        ]:
            sim.step(action)
        while sim.available_actions():
            sim.step(sim.available_actions()[0])
        assert check_cut_convergence(
            view, sim.per_source_states, sim.trace.final_view_state
        )
        # The deleted tuple's derivations must not survive.
        assert all(row[0] != 4 for row in algorithm.view_state().rows())

    def test_quiescent_apply_hides_intermediate_states(self):
        """The view changes only at quiescent points: every recorded view
        state must match a consistent cut (never a half-applied AL)."""
        for seed in (3, 7):
            workload = random_workload(
                [R1, R2, R3], 8, seed=seed, initial=INITIAL, respect_keys=True
            )
            view, sources, algorithm = build()
            sim = MultiSourceSimulation(sources, algorithm, workload)
            trace = sim.run(RandomSchedule(seed))
            assert check_cut_consistency(
                view, sim.per_source_states, trace.view_states
            )
