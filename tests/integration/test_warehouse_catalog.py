"""Integration: one warehouse, many views, one notification stream."""

import pytest

from repro.consistency import check_trace, staleness_profile
from repro.core.batch import DeferredECA
from repro.core.eca import ECA
from repro.core.eca_key import ECAKey
from repro.core.lazy import LCA
from repro.errors import ProtocolError
from repro.relational.conditions import Attr, Comparison, Const
from repro.relational.engine import evaluate_view
from repro.relational.schema import RelationSchema
from repro.relational.views import View
from repro.simulation.driver import REFRESH, Simulation
from repro.simulation.schedules import BestCaseSchedule, RandomSchedule
from repro.source.memory import MemorySource
from repro.warehouse.catalog import WarehouseCatalog
from repro.workloads.random_gen import random_workload

ACCOUNTS = RelationSchema("accounts", ("acct", "owner"), key=("acct",))
MOVES = RelationSchema("moves", ("move_id", "acct", "amount"), key=("move_id",))
INITIAL = {
    "accounts": [(1, 10), (2, 20)],
    "moves": [(100, 1, 500), (101, 2, 40)],
}


def build_catalog(source):
    ledger = View.natural_join(
        "ledger", [ACCOUNTS, MOVES], ["move_id", "accounts.acct", "owner", "amount"]
    )
    big = View.natural_join(
        "big",
        [ACCOUNTS, MOVES],
        ["owner", "amount"],
        Comparison(Attr("amount"), ">", Const(100)),
    )
    audit = View.natural_join("audit", [ACCOUNTS, MOVES], ["move_id", "owner"])
    state = source.snapshot()
    return WarehouseCatalog(
        {
            "ledger": ECAKey(ledger, evaluate_view(ledger, state)),
            "big": ECA(big, evaluate_view(big, state)),
            "audit": LCA(audit, evaluate_view(audit, state)),
        }
    )


class TestCatalog:
    def test_requires_at_least_one_view(self):
        with pytest.raises(ProtocolError):
            WarehouseCatalog({})

    def test_unknown_answer_rejected(self):
        from repro.messaging.messages import QueryAnswer
        from repro.relational.bag import SignedBag

        source = MemorySource([ACCOUNTS, MOVES], INITIAL)
        catalog = build_catalog(source)
        with pytest.raises(ProtocolError):
            catalog.on_answer(None, QueryAnswer(99, SignedBag()))

    @pytest.mark.parametrize("seed", range(6))
    def test_every_view_strongly_consistent_on_its_own_timeline(self, seed):
        source = MemorySource([ACCOUNTS, MOVES], INITIAL)
        catalog = build_catalog(source)
        workload = random_workload(
            [ACCOUNTS, MOVES], 12, seed=seed, initial=INITIAL,
            respect_keys=True, domain=9,
        )
        trace = Simulation(source, catalog, workload).run(RandomSchedule(seed))
        assert catalog.is_quiescent()
        for name, algorithm in catalog.algorithms.items():
            solo = catalog.per_view_trace(name, trace)
            report = check_trace(algorithm.view, solo)
            assert report.strongly_consistent, (seed, name, report.detail)

    def test_joint_state_is_convergent_but_not_always_consistent(self):
        """The mutual-consistency finding: independently maintained views
        advance at different rates, so the tagged union may momentarily
        mix different source states — Section 7's per-view guarantee does
        not compose into a joint one (the Strobe paper's 'global
        consistency' problem)."""
        saw_joint_violation = False
        for seed in range(10):
            source = MemorySource([ACCOUNTS, MOVES], INITIAL)
            catalog = build_catalog(source)
            workload = random_workload(
                [ACCOUNTS, MOVES], 12, seed=seed, initial=INITIAL,
                respect_keys=True, domain=9,
            )
            trace = Simulation(source, catalog, workload).run(RandomSchedule(seed))
            report = check_trace(catalog, trace)
            assert report.convergent, (seed, report.detail)
            if not report.consistent:
                saw_joint_violation = True
        assert saw_joint_violation

    def test_per_view_final_states_match_oracles(self):
        source = MemorySource([ACCOUNTS, MOVES], INITIAL)
        catalog = build_catalog(source)
        workload = random_workload(
            [ACCOUNTS, MOVES], 10, seed=3, initial=INITIAL,
            respect_keys=True, domain=9,
        )
        Simulation(source, catalog, workload).run(RandomSchedule(7))
        final = source.snapshot()
        for name, algorithm in catalog.algorithms.items():
            assert catalog.state_of(name) == evaluate_view(algorithm.view, final), name

    def test_mixed_timing_policies(self):
        """An immediate view and a deferred view share the stream; the
        deferred one flushes only at REFRESH markers."""
        ledger = View.natural_join(
            "ledger", [ACCOUNTS, MOVES], ["move_id", "accounts.acct", "owner", "amount"]
        )
        audit = View.natural_join("audit", [ACCOUNTS, MOVES], ["move_id", "owner"])
        source = MemorySource([ACCOUNTS, MOVES], INITIAL)
        state = source.snapshot()
        catalog = WarehouseCatalog(
            {
                "ledger": ECA(ledger, evaluate_view(ledger, state)),
                "audit": DeferredECA(audit, evaluate_view(audit, state)),
            }
        )
        updates = random_workload(
            [ACCOUNTS, MOVES], 8, seed=5, initial=INITIAL,
            respect_keys=True, domain=9,
        )
        workload = updates[:4] + [REFRESH] + updates[4:] + [REFRESH]
        trace = Simulation(source, catalog, workload).run(BestCaseSchedule())
        # Each view is correct on its own timeline...
        for name, algorithm in catalog.algorithms.items():
            solo = catalog.per_view_trace(name, trace)
            assert check_trace(algorithm.view, solo).strongly_consistent, name
        # ...and the deferred view lags more than the immediate one.
        ledger_lag = staleness_profile(
            catalog.algorithms["ledger"].view,
            catalog.per_view_trace("ledger", trace),
        ).mean_lag
        audit_lag = staleness_profile(
            catalog.algorithms["audit"].view,
            catalog.per_view_trace("audit", trace),
        ).mean_lag
        assert audit_lag > ledger_lag

    def test_view_states_are_tagged(self):
        source = MemorySource([ACCOUNTS, MOVES], INITIAL)
        catalog = build_catalog(source)
        tags = {row[0] for row, _ in catalog.view_state().items()}
        assert tags == {"ledger", "big", "audit"}

    def test_repr_lists_views(self):
        source = MemorySource([ACCOUNTS, MOVES], INITIAL)
        text = repr(build_catalog(source))
        assert "ledger:eca-key" in text
        assert "audit:lca" in text
