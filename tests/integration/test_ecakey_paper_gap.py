"""Regression artifact: the Appendix C gap in ECA-Key, demonstrated.

The paper's correctness sketch (Appendix C, Case II(a)) claims a late
insert answer cannot resurrect a deleted tuple.  The claim fails when the
delete removes the very tuple whose insert query is still in flight — the
query carries the deleted key as a bound constant.  These tests pin both
sides: the verbatim-paper variant (``inflight_filter=False``) violates
convergence on that race, and the corrected default never does.
"""

from repro.consistency import check_trace
from repro.core.eca_key import ECAKey
from repro.relational.engine import evaluate_view
from repro.relational.schema import RelationSchema
from repro.relational.views import View
from repro.simulation.driver import Simulation
from repro.simulation.schedules import RandomSchedule, ScriptedSchedule
from repro.source.memory import MemorySource
from repro.source.updates import delete, insert
from repro.workloads.random_gen import random_workload

SCHEMAS = [
    RelationSchema("r1", ("W", "X"), key=("W",)),
    RelationSchema("r2", ("X", "Y"), key=("Y",)),
]
INITIAL = {"r1": [(1, 2)], "r2": []}


def build(inflight_filter):
    view = View.natural_join("V", SCHEMAS, ["W", "Y"])
    source = MemorySource(SCHEMAS, INITIAL)
    warehouse = ECAKey(
        view, evaluate_view(view, source.snapshot()), inflight_filter=inflight_filter
    )
    return view, source, warehouse


# The minimal race: insert a tuple, delete it while its query is in
# flight, answer afterwards.
RACE_WORKLOAD = [insert("r2", (2, 4)), delete("r2", (2, 4))]
RACE_ACTIONS = [
    "update",      # U1 executed
    "warehouse",   # U1 processed -> Q1 sent
    "update",      # U2 executed (before Q1 evaluated)
    "warehouse",   # U2 processed -> key-delete on COLLECT
    "answer",      # Q1 evaluated AFTER the delete; bound tuple leaks key
    "warehouse",   # A1 merged
]


def test_paper_verbatim_variant_fails_on_the_race():
    view, source, warehouse = build(inflight_filter=False)
    trace = Simulation(source, warehouse, list(RACE_WORKLOAD)).run(
        ScriptedSchedule(RACE_ACTIONS)
    )
    report = check_trace(view, trace)
    assert not report.convergent
    # The resurrected tuple is exactly the one key-delete removed.
    assert warehouse.view_state().multiplicity((1, 4)) == 1


def test_corrected_variant_survives_the_race():
    view, source, warehouse = build(inflight_filter=True)
    trace = Simulation(source, warehouse, list(RACE_WORKLOAD)).run(
        ScriptedSchedule(RACE_ACTIONS)
    )
    report = check_trace(view, trace)
    assert report.strongly_consistent, report.detail
    assert warehouse.view_state().is_empty()


def test_corrected_variant_always_at_least_as_good():
    """Over randomized runs the corrected variant never does worse than
    the verbatim one (and strictly better somewhere)."""
    initial = {"r1": [(1, 2), (2, 3)], "r2": [(2, 5), (3, 6)]}
    order = [
        "incorrect",
        "convergent",
        "weakly consistent",
        "consistent",
        "strongly consistent",
        "complete",
    ]
    strictly_better = 0
    for seed in range(30):
        workload = random_workload(
            SCHEMAS, 10, seed=seed, initial=initial, respect_keys=True
        )
        levels = {}
        for flag in (False, True):
            view = View.natural_join("V", SCHEMAS, ["W", "Y"])
            source = MemorySource(SCHEMAS, initial)
            warehouse = ECAKey(
                view, evaluate_view(view, source.snapshot()), inflight_filter=flag
            )
            trace = Simulation(source, warehouse, list(workload)).run(
                RandomSchedule(seed * 7 + 1)
            )
            levels[flag] = order.index(check_trace(view, trace).level())
        assert levels[True] >= order.index("strongly consistent")
        if levels[True] > levels[False]:
            strictly_better += 1
    assert strictly_better > 0
