"""Integration tests for the concurrent runtime.

The acceptance bar: with faults disabled, ``run_concurrent`` must produce
traces the Section 3.1 checker certifies strongly consistent for ECA on
the paper's Example 2/3 workloads; and the fault-injecting transport must
be fully deterministic under a fixed seed.
"""

from __future__ import annotations

import pytest

from repro.consistency import check_trace
from repro.core.eca import ECA
from repro.core.eca_key import ECAKey
from repro.multisource.strobe import StrobeStyle
from repro.relational.engine import evaluate_view
from repro.relational.schema import RelationSchema
from repro.relational.views import View
from repro.runtime import FaultPlan, run_concurrent
from repro.source.memory import MemorySource
from repro.source.updates import delete, insert
from repro.warehouse.catalog import WarehouseCatalog
from repro.workloads.paper_examples import PAPER_EXAMPLES
from repro.workloads.random_gen import random_workload

SCHEMAS = [RelationSchema("r1", ("W", "X")), RelationSchema("r2", ("X", "Y"))]


def build_eca(scenario_name):
    """Source + ECA warehouse + workload from one of the paper's examples."""
    scenario = PAPER_EXAMPLES[scenario_name]
    source = MemorySource(scenario.schemas, scenario.initial)
    warehouse = ECA(
        scenario.view, evaluate_view(scenario.view, source.snapshot())
    )
    return scenario, source, warehouse


class TestFaultsOffStrongConsistency:
    """Acceptance: the reliable transport preserves ECA's guarantee."""

    @pytest.mark.parametrize("scenario_name", ["example-2", "example-3"])
    @pytest.mark.parametrize("seed", range(8))
    def test_eca_on_paper_examples(self, scenario_name, seed):
        scenario, source, warehouse = build_eca(scenario_name)
        result = run_concurrent(
            source, warehouse, scenario.updates, clients=2, seed=seed
        )
        report = check_trace(scenario.view, result.trace)
        assert report.strongly_consistent, report.detail
        correct = evaluate_view(scenario.view, result.trace.final_source_state)
        assert result.final_view == correct

    def test_quiesce_latency_is_zero_without_faults(self):
        scenario, source, warehouse = build_eca("example-2")
        result = run_concurrent(source, warehouse, scenario.updates, seed=1)
        assert result.quiesce_latency == 0.0
        assert result.virtual_duration == 0.0

    def test_eca_on_randomized_workload_with_clients(self):
        initial = {"r1": [(1, 2), (2, 3)], "r2": [(2, 5), (3, 6)]}
        view = View.natural_join("V", SCHEMAS, ["W", "Y"])
        source = MemorySource(SCHEMAS, initial)
        warehouse = ECA(view, evaluate_view(view, source.snapshot()))
        workload = random_workload(SCHEMAS, 14, seed=4, initial=initial)
        result = run_concurrent(
            source, warehouse, workload, clients=3, client_reads=5, seed=7
        )
        report = check_trace(view, result.trace)
        assert report.strongly_consistent, report.detail
        # Every client observation is a state the warehouse really exposed.
        exposed = list(result.trace.view_states)
        for observations in result.observations.values():
            assert len(observations) == 5
            for _, seen in observations:
                assert seen in exposed


class TestDeterminism:
    """Acceptance: same seed ⇒ identical trace, twice in a row."""

    def run_once(self, seed):
        initial = {"r1": [(1, 2), (2, 3)], "r2": [(2, 5), (3, 6)]}
        view = View.natural_join("V", SCHEMAS, ["W", "Y"])
        source = MemorySource(SCHEMAS, initial)
        warehouse = ECA(view, evaluate_view(view, source.snapshot()))
        workload = random_workload(SCHEMAS, 12, seed=99, initial=initial)
        faults = FaultPlan(latency=1.0, jitter=3.0, drop_rate=0.3)
        return run_concurrent(
            source, warehouse, workload, clients=3, faults=faults, seed=seed
        )

    def test_same_seed_same_trace(self):
        first, second = self.run_once(5), self.run_once(5)
        assert [repr(e) for e in first.trace.events] == [
            repr(e) for e in second.trace.events
        ]
        assert first.trace.view_states == second.trace.view_states
        assert first.trace.source_states == second.trace.source_states
        assert first.quiesce_latency == second.quiesce_latency
        assert {c: s.as_dict() for c, s in first.channel_stats.items()} == {
            c: s.as_dict() for c, s in second.channel_stats.items()
        }

    def test_different_seeds_usually_differ(self):
        traces = {
            tuple(repr(e) for e in self.run_once(seed).trace.events)
            for seed in range(6)
        }
        assert len(traces) > 1  # the seed really steers the interleaving


class TestFaultyTransportRuns:
    def test_eca_stays_strongly_consistent_with_fifo_faults(self):
        # Faults delay, jitter, and drop/retry, but per-channel FIFO is
        # preserved — exactly the assumption ECA needs (Section 5.2).
        scenario, source, warehouse = build_eca("example-2")
        faults = FaultPlan(latency=2.0, jitter=5.0, drop_rate=0.4)
        result = run_concurrent(
            source, warehouse, scenario.updates, clients=2, faults=faults, seed=3
        )
        report = check_trace(scenario.view, result.trace)
        assert report.strongly_consistent, report.detail
        assert result.quiesce_latency > 0.0

    def test_metrics_account_for_messages(self):
        scenario, source, warehouse = build_eca("example-2")
        result = run_concurrent(source, warehouse, scenario.updates, seed=0)
        source_metrics = result.metrics["source"]
        warehouse_metrics = result.metrics["warehouse"]
        assert source_metrics.events["updates_applied"] == len(scenario.updates)
        assert source_metrics.sent == warehouse_metrics.received
        assert warehouse_metrics.sent == source_metrics.received
        stats = result.channel_stats
        assert stats["source->wh"].sent == stats["source->wh"].delivered


class TestMultiSource:
    def two_source_catalog(self):
        a = [RelationSchema("a1", ("W", "X")), RelationSchema("a2", ("X", "Y"))]
        b = [RelationSchema("b1", ("P", "Q")), RelationSchema("b2", ("Q", "R"))]
        ia = {"a1": [(1, 2)], "a2": [(2, 4)]}
        ib = {"b1": [(7, 8)], "b2": [(8, 9)]}
        va = View.natural_join("VA", a, ["W"])
        vb = View.natural_join("VB", b, ["P"])
        sa, sb = MemorySource(a, ia), MemorySource(b, ib)
        catalog = WarehouseCatalog(
            {
                "VA": ECA(va, evaluate_view(va, sa.snapshot())),
                "VB": ECA(vb, evaluate_view(vb, sb.snapshot())),
            }
        )
        workload = random_workload(a, 5, seed=1, initial=ia) + random_workload(
            b, 5, seed=2, initial=ib
        )
        return {"alpha": sa, "beta": sb}, catalog, workload

    def test_catalog_over_two_sources_converges(self):
        sources, catalog, workload = self.two_source_catalog()
        result = run_concurrent(sources, catalog, workload, clients=2, seed=6)
        report = check_trace(catalog, result.trace)
        # Section 7: per-view ECA buys convergence of the combined state;
        # the tagged union is not strongly consistent in general.
        assert report.convergent, report.detail

    def test_strobe_style_over_two_sources(self):
        keyed = [
            RelationSchema("r1", ("W", "X"), key=("W",)),
            RelationSchema("r2", ("X", "Y"), key=("Y",)),
        ]
        init1, init2 = {"r1": [(1, 2)]}, {"r2": [(2, 3)]}
        view = View.natural_join("V", keyed, ["W", "Y"])
        s1 = MemorySource([keyed[0]], init1)
        s2 = MemorySource([keyed[1]], init2)
        snapshot = dict(s1.snapshot())
        snapshot.update(s2.snapshot())
        strobe = StrobeStyle(
            view, {"r1": "s1", "r2": "s2"}, evaluate_view(view, snapshot)
        )
        workload = random_workload(
            keyed,
            8,
            seed=5,
            initial={"r1": init1["r1"], "r2": init2["r2"]},
            respect_keys=True,
        )
        result = run_concurrent(
            {"s1": s1, "s2": s2}, strobe, workload, clients=2, seed=9
        )
        report = check_trace(view, result.trace)
        assert report.convergent, report.detail

    def test_workload_mapping_form(self):
        sources, catalog, workload = self.two_source_catalog()
        split = {
            "alpha": [u for u in workload if u.relation.startswith("a")],
            "beta": [u for u in workload if u.relation.startswith("b")],
        }
        result = run_concurrent(sources, catalog, split, seed=2)
        assert result.updates == len(workload)
        assert check_trace(catalog, result.trace).convergent


class TestRefreshAndDeferred:
    def test_deferred_eca_flushes_on_client_refresh(self):
        from repro.core.batch import DeferredECA

        initial = {"r1": [(1, 2)], "r2": [(2, 4)]}
        view = View.natural_join("V", SCHEMAS, ["W"])
        source = MemorySource(SCHEMAS, initial)
        warehouse = DeferredECA(view, evaluate_view(view, source.snapshot()))
        workload = [insert("r2", (2, 3)), insert("r1", (4, 2))]
        result = run_concurrent(
            source, warehouse, workload, clients=2, client_reads=3, seed=4
        )
        # Client refreshes forced the deferred buffer to flush; at
        # quiescence the view converged to the final source state.
        correct = evaluate_view(view, result.trace.final_source_state)
        assert result.final_view == correct

    def test_eca_key_runs_concurrently(self):
        keyed = [
            RelationSchema("r1", ("W", "X"), key=("W",)),
            RelationSchema("r2", ("X", "Y"), key=("Y",)),
        ]
        initial = {"r1": [(1, 2)], "r2": [(2, 3)]}
        view = View.natural_join("V", keyed, ["W", "Y"])
        source = MemorySource(keyed, initial)
        warehouse = ECAKey(view, evaluate_view(view, source.snapshot()))
        workload = [
            insert("r2", (2, 4)),
            insert("r1", (3, 2)),
            delete("r1", (1, 2)),
        ]
        result = run_concurrent(source, warehouse, workload, seed=11)
        report = check_trace(view, result.trace)
        assert report.strongly_consistent, report.detail
