"""Conformance of k-update batched runs: every ``batch_k`` replays exactly.

The kernel-level batching contract (`docs/RELATIONAL.md`): coalescing a
run of same-source notifications into one ``Q<U1,...,Uk>`` event changes
*how many* protocol round trips a run needs, never *what* the run
computes — and every coalescing decision is recorded in the action log
(``warehouse:<source>@<k>``), so the synchronous kernel can re-enact the
exact batched execution.  These tests pin that contract for every
registered single- and multi-source family at several ``batch_k``
values, and pin the consistency verdict across the live/replayed pair.

Workloads are insert-only: batching must hold on deletes too (the
algebra in :func:`repro.core.compensation.batch_delta_query` is
sign-agnostic), but the concurrent ECA family has a known pre-existing
deletion anomaly under some interleavings (see
``tests/integration/test_paper_examples.py``), and these tests pin
*batching*, not that anomaly.
"""

from __future__ import annotations

import pytest

from repro.consistency import check_trace
from repro.core.registry import create_algorithm
from repro.core.stored_copies import StoredCopies
from repro.multisource.consistency import cut_report
from repro.relational.engine import evaluate_view
from repro.relational.schema import RelationSchema
from repro.relational.views import View
from repro.runtime import run_concurrent
from repro.kernel import replay_concurrent
from repro.source.memory import MemorySource
from repro.source.updates import insert
from repro.warehouse.catalog import WarehouseCatalog

SCHEMAS = [
    RelationSchema("r1", ("W", "X"), key=("W",)),
    RelationSchema("r2", ("X", "Y"), key=("Y",)),
]
INITIAL = {"r1": [(1, 2), (2, 3)], "r2": [(2, 5), (3, 6)]}

SINGLE_SOURCE = ["basic", "eca", "eca-local", "lca", "stored-copies"]
MULTI_SOURCE = ["strobe", "sweep", "fragmenting-incremental", "multi-stored-copies"]

K_VALUES = [1, 2, 4, 8]


def single_workload():
    return [
        insert("r1", (10, 2)),
        insert("r2", (2, 20)),
        insert("r1", (11, 3)),
        insert("r1", (12, 2)),
        insert("r2", (3, 21)),
        insert("r1", (13, 9)),
        insert("r2", (9, 22)),
        insert("r1", (14, 2)),
    ]


def single_setup(name):
    source = MemorySource(SCHEMAS, INITIAL)
    view = View.natural_join("V", SCHEMAS, ["W", "Y"])
    initial_view = evaluate_view(view, source.snapshot())
    if name == "stored-copies":
        algo = StoredCopies(view, initial_view, source.snapshot())
    else:
        algo = create_algorithm(name, view, initial_view)
    return source, view, algo


def assert_conforms(result, kernel):
    assert [(e.kind, e.detail) for e in result.trace.events] == [
        (e.kind, e.detail) for e in kernel.trace.events
    ]
    assert result.trace.source_states == kernel.trace.source_states
    assert result.trace.view_states == kernel.trace.view_states
    assert result.per_source_states == kernel.per_source_states
    assert result.final_view == kernel.algorithm.view_state()


class TestSingleSourceBatchedConformance:
    @pytest.mark.parametrize("k", K_VALUES)
    @pytest.mark.parametrize("name", SINGLE_SOURCE)
    @pytest.mark.parametrize("seed", range(2))
    def test_every_family_replays_identically_at_every_k(self, name, k, seed):
        workload = single_workload()
        source, view, algo = single_setup(name)
        result = run_concurrent(
            source, algo, workload, seed=seed, max_burst=4, batch_k=k
        )
        twin_source, twin_view, twin_algo = single_setup(name)
        kernel = replay_concurrent(
            result.action_log,
            {"source": twin_source},
            twin_algo,
            {"source": workload},
        )
        assert_conforms(result, kernel)
        assert check_trace(view, result.trace).level() == check_trace(
            twin_view, kernel.trace
        ).level()

    def test_coalescing_actually_happens_and_is_logged(self):
        source, _view, algo = single_setup("eca")
        result = run_concurrent(
            source, algo, single_workload(), seed=1, max_burst=8, batch_k=8
        )
        assert any("@" in action for action in result.action_log)
        assert any("(k=" in e.detail for e in result.trace.events)

    def test_batching_reduces_compensating_queries(self):
        def queries_sent(k):
            source, _view, algo = single_setup("eca")
            result = run_concurrent(
                source, algo, single_workload(), seed=1, max_burst=8, batch_k=k
            )
            return result.metrics["warehouse"].sent, result.final_view

        unbatched_sent, unbatched_view = queries_sent(1)
        batched_sent, batched_view = queries_sent(8)
        assert batched_sent < unbatched_sent
        assert batched_view == unbatched_view

    @pytest.mark.parametrize("codec", ["frame", "zlib"])
    def test_wire_codec_changes_bytes_not_behavior(self, codec):
        def run(wire_codec):
            source, _view, algo = single_setup("eca")
            return run_concurrent(
                source,
                algo,
                single_workload(),
                seed=2,
                batch_k=2,
                wire_codec=wire_codec,
            )

        plain = run(None)
        framed = run(codec)
        assert plain.action_log == framed.action_log
        assert plain.final_view == framed.final_view
        assert [(e.kind, e.detail) for e in plain.trace.events] == [
            (e.kind, e.detail) for e in framed.trace.events
        ]
        # Framed accounting counts real bytes; the default run has no
        # sizer, so its channels report zero.
        assert all(s.sent_bytes == 0 for s in plain.channel_stats.values())
        assert any(s.sent_bytes > 0 for s in framed.channel_stats.values())


def multi_setup(name):
    sources = {
        "A": MemorySource([SCHEMAS[0]], {"r1": INITIAL["r1"]}),
        "B": MemorySource([SCHEMAS[1]], {"r2": INITIAL["r2"]}),
    }
    view = View.natural_join("V", SCHEMAS, ["W", "Y"])
    snapshot = {}
    for source in sources.values():
        snapshot.update(source.snapshot())
    options = {"owners": {"r1": "A", "r2": "B"}}
    if name == "multi-stored-copies":
        options["initial_copies"] = snapshot
    algo = create_algorithm(
        name, view, evaluate_view(view, snapshot), **options
    )
    return sources, view, algo


MULTI_WORKLOADS = {
    "A": [insert("r1", (10, 2)), insert("r1", (11, 3)), insert("r1", (12, 2))],
    "B": [insert("r2", (2, 20)), insert("r2", (3, 21)), insert("r2", (9, 22))],
}


class TestMultiSourceBatchedConformance:
    @pytest.mark.parametrize("k", [1, 2, 4])
    @pytest.mark.parametrize("name", MULTI_SOURCE)
    @pytest.mark.parametrize("seed", range(2))
    def test_spanning_view_replays_identically_at_every_k(self, name, k, seed):
        sources, view, algo = multi_setup(name)
        result = run_concurrent(
            sources, algo, MULTI_WORKLOADS, seed=seed, max_burst=4, batch_k=k
        )
        twin_sources, twin_view, twin_algo = multi_setup(name)
        kernel = replay_concurrent(
            result.action_log, twin_sources, twin_algo, MULTI_WORKLOADS
        )
        assert_conforms(result, kernel)
        live = cut_report(
            view,
            result.per_source_states,
            result.trace.view_states,
            result.final_view,
        )
        replayed = cut_report(
            twin_view,
            kernel.per_source_states,
            kernel.trace.view_states,
            kernel.algorithm.view_state(),
        )
        assert live.level() == replayed.level()


def catalog_setup(share=False):
    """The CLI's multi-source topology: one independent two-relation
    join view per source, all behind one :class:`WarehouseCatalog`."""
    sources = {}
    algorithms = {}
    for index in range(2):
        prefix = f"s{index}"
        schemas = [
            RelationSchema(f"{prefix}r1", ("W", "X"), key=("W",)),
            RelationSchema(f"{prefix}r2", ("X", "Y"), key=("Y",)),
        ]
        initial = {
            f"{prefix}r1": [(1, 2), (2, 3)],
            f"{prefix}r2": [(2, 5), (3, 6)],
        }
        source = MemorySource(schemas, initial)
        sources[prefix] = source
        view = View.natural_join(f"V{index}", schemas, ["W", "Y"])
        algorithms[f"V{index}"] = create_algorithm(
            "eca", view, evaluate_view(view, source.snapshot())
        )
    return sources, WarehouseCatalog(algorithms, share_compensation=share)


CATALOG_WORKLOADS = {
    "s0": [insert("s0r1", (10, 2)), insert("s0r1", (11, 3)), insert("s0r2", (3, 20))],
    "s1": [insert("s1r2", (2, 21)), insert("s1r1", (12, 2)), insert("s1r1", (13, 3))],
}


class TestCatalogBatched:
    """Regression: the catalog must speak the k-update protocol.

    The catalog implements the routed event surface directly (it is not a
    ``WarehouseAlgorithm`` subclass), so it needs its own
    ``on_update_batch`` — without one, any ``--sources N`` run with
    ``--batch-k > 1`` died with an ``AttributeError`` inside dispatch.
    """

    @pytest.mark.parametrize("share", [False, True])
    @pytest.mark.parametrize("k", [2, 4])
    @pytest.mark.parametrize("seed", range(2))
    def test_batched_catalog_runs_converge_and_replay(self, k, seed, share):
        sources, catalog = catalog_setup(share)
        result = run_concurrent(
            sources, catalog, CATALOG_WORKLOADS, seed=seed, max_burst=4, batch_k=k
        )
        baseline_sources, baseline = catalog_setup(share)
        plain = run_concurrent(
            baseline_sources, baseline, CATALOG_WORKLOADS, seed=seed,
            max_burst=4, batch_k=1,
        )
        assert result.final_view == plain.final_view
        twin_sources, twin = catalog_setup(share)
        kernel = replay_concurrent(
            result.action_log, twin_sources, twin, CATALOG_WORKLOADS
        )
        assert_conforms(result, kernel)

    @pytest.mark.parametrize("k", [1, 2, 4])
    @pytest.mark.parametrize("seed", range(2))
    def test_shared_axis_is_byte_identical_per_view(self, k, seed):
        """The shared-vs-independent axis: on this disjoint topology the
        planner never finds a coincident query, so sharing must be a
        byte-level no-op — same action log, same trace, and every member
        view walking the identical state sequence."""
        runs = {}
        catalogs = {}
        for share in (False, True):
            sources, catalog = catalog_setup(share)
            runs[share] = run_concurrent(
                sources, catalog, CATALOG_WORKLOADS, seed=seed,
                max_burst=4, batch_k=k,
            )
            catalogs[share] = catalog
        assert runs[False].action_log == runs[True].action_log
        assert runs[False].trace.view_states == runs[True].trace.view_states
        for name in catalogs[False].algorithms:
            assert catalogs[False].view_history(name) == catalogs[
                True
            ].view_history(name), name

    @pytest.mark.parametrize("share", [False, True])
    def test_catalog_batch_coalescing_is_logged(self, share):
        sources, catalog = catalog_setup(share)
        result = run_concurrent(
            sources, catalog, CATALOG_WORKLOADS, seed=1, max_burst=8, batch_k=8
        )
        assert any("@" in action for action in result.action_log)
        assert any("(k=" in e.detail for e in result.trace.events)
        assert catalog.is_quiescent()
