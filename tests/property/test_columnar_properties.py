"""Property tests for the columnar batch layer.

Two contracts the columnar refactor must honor on *all* inputs:

1. Every batch operator (`batch_select`, `batch_project`, `batch_join`,
   `batch_union`, `batch_negate`) is extensionally equal to the obvious
   per-tuple reference computed over ``SignedBag`` items — consolidation
   order and internal row layout may differ, but ``to_bag()`` may not.
2. The columnar round trip is lossless: ``SignedBag.to_columns`` /
   ``SignedBag.from_columns`` compose to the identity, for any signed
   bag, and the scalar engine oracle (`evaluate_term_scalar`) agrees
   with the batched engine on whole queries (the same divergence check
   the CI ``bench-smoke`` job runs on the measured workload).

The batch-k=1 / identity-codec legacy-equivalence properties live at the
bottom: a ``run_concurrent`` at ``batch_k=1`` and ``wire_codec=None``
must produce byte-for-byte the trace, action log, and byte accounting
the pre-batching runtime produced (asserted structurally: no UpdateBatch
ever appears, no ``@k`` action suffix, sizer-based byte counts).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.eca import ECA
from repro.kernel.conformance import replay_concurrent
from repro.relational.bag import SignedBag
from repro.relational.batch_ops import (
    batch_join,
    batch_negate,
    batch_project,
    batch_select,
    batch_union,
)
from repro.relational.columns import ColumnBatch
from repro.relational.conditions import Attr, Comparison, Const
from repro.relational.engine import evaluate_query, evaluate_query_scalar
from repro.relational.schema import RelationSchema
from repro.relational.views import View
from repro.runtime.harness import run_concurrent
from repro.source.memory import MemorySource
from repro.source.updates import insert

rows2 = st.tuples(st.integers(0, 3), st.integers(0, 3))
counts = st.integers(-2, 2).filter(bool)
signed_relation = st.lists(st.tuples(rows2, counts), max_size=6)


def to_bag(pairs):
    bag = SignedBag()
    for row, count in pairs:
        bag.add(row, count)
    return bag


def resolve2(name):
    return {"A": 0, "B": 1}[name]


# --------------------------------------------------------------------- #
# Round trip
# --------------------------------------------------------------------- #


@settings(max_examples=60, deadline=None)
@given(signed_relation)
def test_columns_round_trip_is_identity(pairs):
    bag = to_bag(pairs)
    columns, cts = bag.to_columns(width=2)
    assert SignedBag.from_columns(columns, cts) == bag
    assert ColumnBatch.from_bag(bag, 2).to_bag() == bag


@settings(max_examples=60, deadline=None)
@given(signed_relation, st.integers(-2, 2).filter(bool))
def test_from_columns_applies_the_coefficient(pairs, coefficient):
    bag = to_bag(pairs)
    columns, cts = bag.to_columns(width=2)
    scaled = SignedBag.from_columns(columns, cts, coefficient=coefficient)
    expected = SignedBag()
    for row, count in bag.items():
        expected.add(row, count * coefficient)
    assert scaled == expected


# --------------------------------------------------------------------- #
# Operators vs the per-tuple reference
# --------------------------------------------------------------------- #


@settings(max_examples=60, deadline=None)
@given(signed_relation, st.integers(0, 3))
def test_batch_select_matches_per_tuple_filter(pairs, threshold):
    bag = to_bag(pairs)
    condition = Comparison(Attr("A"), ">", Const(threshold))
    batch = ColumnBatch.from_bag(bag, 2)
    got = batch_select(batch, condition, resolve2).to_bag()
    expected = SignedBag()
    for row, count in bag.items():
        if row[0] > threshold:
            expected.add(row, count)
    assert got == expected


@settings(max_examples=60, deadline=None)
@given(signed_relation, st.permutations([0, 1]))
def test_batch_project_matches_per_tuple_projection(pairs, positions):
    bag = to_bag(pairs)
    batch = ColumnBatch.from_bag(bag, 2)
    got = batch_project(batch, list(positions)).to_bag()
    expected = SignedBag()
    for row, count in bag.items():
        expected.add(tuple(row[i] for i in positions), count)
    assert got == expected


@settings(max_examples=60, deadline=None)
@given(signed_relation, signed_relation)
def test_batch_join_matches_per_tuple_hash_join(left_pairs, right_pairs):
    left, right = to_bag(left_pairs), to_bag(right_pairs)
    got = batch_join(
        ColumnBatch.from_bag(left, 2), ColumnBatch.from_bag(right, 2), [(1, 0)]
    ).to_bag()
    expected = SignedBag()
    for lrow, lcount in left.items():
        for rrow, rcount in right.items():
            if lrow[1] == rrow[0]:
                expected.add(lrow + rrow, lcount * rcount)
    assert got == expected


@settings(max_examples=60, deadline=None)
@given(signed_relation, signed_relation)
def test_batch_join_without_keys_is_the_cartesian_product(left_pairs, right_pairs):
    left, right = to_bag(left_pairs), to_bag(right_pairs)
    got = batch_join(
        ColumnBatch.from_bag(left, 2), ColumnBatch.from_bag(right, 2), []
    ).to_bag()
    expected = SignedBag()
    for lrow, lcount in left.items():
        for rrow, rcount in right.items():
            expected.add(lrow + rrow, lcount * rcount)
    assert got == expected


@settings(max_examples=60, deadline=None)
@given(signed_relation, signed_relation)
def test_batch_union_matches_bag_addition(left_pairs, right_pairs):
    left, right = to_bag(left_pairs), to_bag(right_pairs)
    got = batch_union(
        ColumnBatch.from_bag(left, 2), ColumnBatch.from_bag(right, 2)
    ).to_bag()
    assert got == left + right


@settings(max_examples=60, deadline=None)
@given(signed_relation)
def test_batch_negate_matches_bag_negation(pairs):
    bag = to_bag(pairs)
    got = batch_negate(ColumnBatch.from_bag(bag, 2)).to_bag()
    assert got == SignedBag() - bag


# --------------------------------------------------------------------- #
# Whole-query divergence check (what bench-smoke runs on the measured
# workload)
# --------------------------------------------------------------------- #

SCHEMAS = [
    RelationSchema("r1", ("W", "X")),
    RelationSchema("r2", ("X", "Y")),
    RelationSchema("r3", ("Y", "Z")),
]

relation = st.lists(rows2, max_size=5)
states = st.fixed_dictionaries({"r1": relation, "r2": relation, "r3": relation})


@settings(max_examples=40, deadline=None)
@given(states, st.booleans())
def test_batched_engine_agrees_with_scalar_oracle(state, with_condition):
    extra = Comparison(Attr("W"), ">", Attr("Z")) if with_condition else None
    view = View.natural_join("V", SCHEMAS, ["W", "Z"], extra)
    bags = {name: SignedBag.from_rows(rows) for name, rows in state.items()}
    query = view.as_query()
    assert evaluate_query(query, bags) == evaluate_query_scalar(query, bags)


# --------------------------------------------------------------------- #
# batch_k=1 + identity codec == the legacy protocol, byte for byte
# --------------------------------------------------------------------- #


def _run(seed, batch_k, wire_codec=None):
    schema_r = RelationSchema("r", ("A", "B"), key=("A",))
    schema_s = RelationSchema("s", ("B", "C"), key=("C",))
    source = MemorySource(
        [schema_r, schema_s], {"r": [(1, 2)], "s": [(2, 9)]}
    )
    view = View.natural_join("v", [schema_r, schema_s], projection=("A", "C"))
    workload = [
        insert("r", (5, 2)),
        insert("s", (2, 11)),
        insert("r", (6, 2)),
        insert("s", (4, 7)),
        insert("r", (7, 4)),
    ]
    result = run_concurrent(
        {"src": source},
        ECA(view),
        workload,
        seed=seed,
        max_burst=3,
        batch_k=batch_k,
        wire_codec=wire_codec,
    )
    return result, workload


@settings(max_examples=12, deadline=None)
@given(st.integers(0, 400))
def test_batch_k1_reproduces_the_legacy_run_exactly(seed):
    """batch_k=1 must be indistinguishable from not passing batch_k at all."""
    legacy, _ = _run(seed, batch_k=1)
    default, _ = _run(seed, batch_k=1, wire_codec="none")
    assert legacy.action_log == default.action_log
    assert all("@" not in a for a in legacy.action_log)
    assert [(e.kind, e.detail) for e in legacy.trace.events] == [
        (e.kind, e.detail) for e in default.trace.events
    ]
    assert legacy.final_view == default.final_view
    assert {n: s.sent_bytes for n, s in legacy.channel_stats.items()} == {
        n: s.sent_bytes for n, s in default.channel_stats.items()
    }


@settings(max_examples=8, deadline=None)
@given(st.integers(0, 400), st.sampled_from([2, 3, 8]))
def test_batched_runs_converge_and_replay_on_the_sync_kernel(seed, k):
    batched, workload = _run(seed, batch_k=k)
    legacy, _ = _run(seed, batch_k=1)
    # Same final state regardless of coalescing ...
    assert batched.final_view == legacy.final_view
    # ... and the batched action log replays exactly on the sync kernel.
    schema_r = RelationSchema("r", ("A", "B"), key=("A",))
    schema_s = RelationSchema("s", ("B", "C"), key=("C",))
    twin = MemorySource([schema_r, schema_s], {"r": [(1, 2)], "s": [(2, 9)]})
    view = View.natural_join("v", [schema_r, schema_s], projection=("A", "C"))
    kernel = replay_concurrent(
        batched.action_log, {"src": twin}, ECA(view), {"src": workload}
    )
    assert [(e.kind, e.detail) for e in batched.trace.events] == [
        (e.kind, e.detail) for e in kernel.trace.events
    ]
    assert kernel.algorithm.view_state() == batched.final_view
