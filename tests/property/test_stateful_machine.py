"""Stateful property test: hypothesis drives the simulation step by step.

A rule-based state machine picks arbitrary valid actions — execute a
source update (random valid insert/delete), let the source answer, let
the warehouse process — in any order hypothesis can dream up, then at
teardown drains all remaining work and checks the trace against the
algorithm's claimed correctness level.  This subsumes the fixed schedule
families with genuinely adversarial interleavings (hypothesis shrinks any
failure to a minimal action sequence).
"""

import random

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)

from repro.consistency import check_trace
from repro.core.batch import BatchECA
from repro.core.eca import ECA
from repro.core.eca_key import ECAKey
from repro.core.lazy import LCA
from repro.relational.engine import evaluate_view
from repro.relational.schema import RelationSchema
from repro.relational.views import View
from repro.simulation.driver import Simulation
from repro.simulation.schedules import ANSWER, UPDATE, WAREHOUSE
from repro.source.memory import MemorySource
from repro.source.updates import delete, insert

SCHEMAS = [
    RelationSchema("r1", ("W", "X"), key=("W",)),
    RelationSchema("r2", ("X", "Y"), key=("Y",)),
]
INITIAL = {"r1": [(0, 1), (1, 2)], "r2": [(1, 0), (2, 1)]}
MAX_UPDATES = 8


class _MachineBase(RuleBasedStateMachine):
    """Drives one Simulation; subclasses pick the algorithm."""

    requires_complete = False

    def make_algorithm(self, view, initial_view):
        raise NotImplementedError

    @initialize(seed=st.integers(0, 2**20))
    def setup(self, seed):
        self.rng = random.Random(seed)
        self.view = View.natural_join("V", SCHEMAS, ["W", "Y"])
        self.source = MemorySource(SCHEMAS, INITIAL)
        initial_view = evaluate_view(self.view, self.source.snapshot())
        self.algorithm = self.make_algorithm(self.view, initial_view)
        # The workload is generated lazily: the simulation starts with an
        # empty queue and we push one update right before executing it.
        self.sim = Simulation(self.source, self.algorithm, [])
        self.updates_issued = 0
        # Shadow multiset for generating valid deletes; tracks key use.
        self.live = {name: list(rows) for name, rows in INITIAL.items()}

    def _random_update(self):
        schema = self.rng.choice(SCHEMAS)
        rows = self.live[schema.name]
        if rows and self.rng.random() < 0.4:
            row = self.rng.choice(rows)
            rows.remove(row)
            return delete(schema.name, row)
        used_keys = {schema.key_of(r) for r in rows}
        for _ in range(50):
            row = tuple(self.rng.randrange(6) for _ in schema.attributes)
            if schema.key_of(row) not in used_keys:
                rows.append(row)
                return insert(schema.name, row)
        return None

    @rule()
    def source_update(self):
        # Always available, so the machine can never wedge; the overall
        # update count is bounded by stateful_step_count.
        if self.updates_issued >= MAX_UPDATES:
            return
        update = self._random_update()
        if update is None:
            return
        self.sim._updates.append(update)
        self.sim.step(UPDATE)
        self.updates_issued += 1

    @precondition(lambda self: ANSWER in self.sim.available_actions())
    @rule()
    def source_answer(self):
        self.sim.step(ANSWER)

    @precondition(lambda self: WAREHOUSE in self.sim.available_actions())
    @rule()
    def warehouse_process(self):
        self.sim.step(WAREHOUSE)

    @invariant()
    def view_never_negative(self):
        if not hasattr(self, "sim"):
            return
        assert self.algorithm.view_state().is_nonnegative()

    def teardown(self):
        if not hasattr(self, "sim"):
            return
        # Drain: process everything outstanding, then flush if batching.
        while True:
            actions = [a for a in self.sim.available_actions() if a != UPDATE]
            if not actions:
                if hasattr(self.algorithm, "flush") and (
                    self.algorithm.buffered_updates() or False
                ):
                    for request in self.algorithm.flush():
                        self.sim.to_source.send(request)
                    continue
                break
            self.sim.step(actions[0])
        report = check_trace(self.view, self.sim.trace)
        assert report.strongly_consistent, report.detail
        if self.requires_complete:
            assert report.complete, report.detail
        assert self.algorithm.is_quiescent()


class ECAMachine(_MachineBase):
    def make_algorithm(self, view, initial_view):
        return ECA(view, initial_view)


class ECAKeyMachine(_MachineBase):
    def make_algorithm(self, view, initial_view):
        return ECAKey(view, initial_view)


class LCAMachine(_MachineBase):
    requires_complete = True

    def make_algorithm(self, view, initial_view):
        return LCA(view, initial_view)


class BatchMachine(_MachineBase):
    def make_algorithm(self, view, initial_view):
        return BatchECA(view, initial_view, batch_size=3)


_SETTINGS = settings(max_examples=20, stateful_step_count=30, deadline=None)

TestECAStateful = ECAMachine.TestCase
TestECAStateful.settings = _SETTINGS
TestECAKeyStateful = ECAKeyMachine.TestCase
TestECAKeyStateful.settings = _SETTINGS
TestLCAStateful = LCAMachine.TestCase
TestLCAStateful.settings = _SETTINGS
TestBatchStateful = BatchMachine.TestCase
TestBatchStateful.settings = _SETTINGS
