"""Property tests: bound-0 serving equals direct reads, at every step.

The serving tier's core guarantee (docs/SERVING.md): with
``staleness_bound=0``, a cached read returns exactly what an uncached
read of the warehouse returns at the same point in the event sequence —
any maintenance write to a key forces the next read of that key to
reload.  The asyncio and sharded frontends are covered by
``tests/integration/test_serving_runtime.py``; here Hypothesis drives
the sync kernel through random interleavings and read points, where
every intermediate state is observable.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.eca import ECA
from repro.kernel.sync import SyncKernel
from repro.relational.engine import evaluate_view
from repro.relational.schema import RelationSchema
from repro.relational.views import View
from repro.serving import ServingCache, reader_for
from repro.simulation.schedules import RandomSchedule
from repro.source.memory import MemorySource
from repro.warehouse.catalog import WarehouseCatalog
from repro.workloads.random_gen import random_workload


def build_kernel(n_views, updates, seed, cache):
    sources = {}
    algorithms = {}
    workload = []
    for index in range(n_views):
        prefix = f"s{index}"
        schemas = [
            RelationSchema(f"{prefix}r1", ("W", "X"), key=("W",)),
            RelationSchema(f"{prefix}r2", ("X", "Y"), key=("Y",)),
        ]
        initial = {
            f"{prefix}r1": [(1, 2), (2, 3)],
            f"{prefix}r2": [(2, 5), (3, 6)],
        }
        source = MemorySource(schemas, initial)
        sources[prefix] = source
        view = View.natural_join(f"V{index}", schemas, ["W", "Y"])
        algorithms[f"V{index}"] = ECA(
            view, evaluate_view(view, source.snapshot())
        )
        workload.extend(
            random_workload(
                schemas, updates, seed=seed + index, initial=initial,
                respect_keys=True,
            )
        )
    catalog = WarehouseCatalog(algorithms)
    return SyncKernel(sources, catalog, workload, cache=cache), catalog


@settings(max_examples=25, deadline=None)
@given(
    n_views=st.integers(1, 2),
    updates=st.integers(1, 8),
    seed=st.integers(0, 1000),
    schedule_seed=st.integers(0, 1000),
)
def test_bound_zero_cached_reads_equal_direct_reads(
    n_views, updates, seed, schedule_seed
):
    cache = ServingCache(capacity=8, staleness_bound=0)
    kernel, catalog = build_kernel(n_views, updates, seed, cache)
    reader = reader_for(catalog)
    schedule = RandomSchedule(schedule_seed)
    while True:
        available = kernel.available_actions()
        if not available:
            break
        kernel.step(schedule.choose(available))
        # Read every currently-live address through the cache and
        # directly; bound 0 means they must agree mid-run, not just at
        # quiescence.
        for view_name, key in reader.current_keys():
            cached = cache.read(view_name, key, reader.loader(view_name, key))
            assert cached.value == reader.read(view_name, key), (
                f"bound-0 divergence at {view_name}:{key}"
            )
            assert cached.status in ("hit", "miss")
            assert cached.lag == 0


@settings(max_examples=15, deadline=None)
@given(
    bound=st.integers(0, 4),
    seed=st.integers(0, 1000),
    schedule_seed=st.integers(0, 1000),
)
def test_served_lag_never_exceeds_the_bound(bound, seed, schedule_seed):
    cache = ServingCache(capacity=8, staleness_bound=bound)
    kernel, catalog = build_kernel(1, 8, seed, cache)
    reader = reader_for(catalog)
    schedule = RandomSchedule(schedule_seed)
    while True:
        available = kernel.available_actions()
        if not available:
            break
        kernel.step(schedule.choose(available))
        for view_name, key in reader.current_keys():
            result = cache.read(view_name, key, reader.loader(view_name, key))
            assert result.lag <= bound
            if result.status == "stale":
                assert result.lag >= 1
    assert cache.max_served_lag <= bound
