"""Property tests for the substitution operator — Lemma B.2 in particular.

Lemma B.2 is the engine of the whole correctness proof:

    Q[ss_{j-1}] = Q[ss_j] - Q<U_j>[ss_j]   for any query Q

i.e. the effect of an update on any query is exactly the substituted
query, evaluated on the post-update state.  We check it for random
states, random updates (inserts and deletes), and query shapes up to the
compensated forms ECA actually emits.
"""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.relational.bag import SignedBag
from repro.relational.conditions import Attr, Comparison
from repro.relational.schema import RelationSchema
from repro.relational.tuples import MINUS, PLUS, SignedTuple
from repro.relational.views import View
from repro.source.updates import delete, insert

SCHEMAS = [
    RelationSchema("r1", ("W", "X")),
    RelationSchema("r2", ("X", "Y")),
]

rows2 = st.tuples(st.integers(0, 3), st.integers(0, 3))
relation = st.lists(rows2, max_size=5)
states = st.fixed_dictionaries({"r1": relation, "r2": relation})


def make_view():
    return View.natural_join(
        "V", SCHEMAS, ["W", "Y"], Comparison(Attr("W"), "<=", Attr("Y"))
    )


def apply_update(bags, update):
    after = {name: bag.copy() for name, bag in bags.items()}
    after[update.relation].add(update.values, update.sign)
    return after


def to_bags(state):
    return {name: SignedBag.from_rows(rows) for name, rows in state.items()}


def updates():
    return st.builds(
        lambda rel, row, is_insert: (insert if is_insert else delete)(rel, row),
        st.sampled_from(["r1", "r2"]),
        rows2,
        st.booleans(),
    )


@settings(max_examples=80, deadline=None)
@given(states, updates())
def test_lemma_b2_for_the_view_query(state, update):
    """V[ss_{j-1}] = V[ss_j] - V<U_j>[ss_j]."""
    view = make_view()
    before = to_bags(state)
    if update.is_delete:
        assume(before[update.relation].multiplicity(update.values) > 0)
    after = apply_update(before, update)
    query = view.as_query()
    substituted = view.substitute(update.relation, update.signed_tuple())
    assert query.evaluate(before) == query.evaluate(after) - substituted.evaluate(
        after
    )


@settings(max_examples=80, deadline=None)
@given(states, updates(), rows2, st.sampled_from([PLUS, MINUS]))
def test_lemma_b2_for_bound_queries(state, update, bound_row, sign):
    """The lemma holds for already-substituted (compensating) queries."""
    view = make_view()
    before = to_bags(state)
    if update.is_delete:
        assume(before[update.relation].multiplicity(update.values) > 0)
    after = apply_update(before, update)
    other = "r2" if update.relation == "r1" else "r1"
    query = view.substitute(other, SignedTuple(bound_row, sign))
    substituted = query.substitute(update.relation, update.signed_tuple())
    assert query.evaluate(before) == query.evaluate(after) - substituted.evaluate(
        after
    )


@settings(max_examples=60, deadline=None)
@given(states, updates(), updates())
def test_lemma_b2_composes_over_two_updates(state, u1, u2):
    """Q[ss_0] = Q[ss_2] - Q<U2>[ss_2] - Q<U1>[ss_2] + Q<U1,U2>[ss_2] —
    the expansion LCA's backdating and ECA's chained compensation rely
    on."""
    view = make_view()
    s0 = to_bags(state)
    if u1.is_delete:
        assume(s0[u1.relation].multiplicity(u1.values) > 0)
    s1 = apply_update(s0, u1)
    if u2.is_delete:
        assume(s1[u2.relation].multiplicity(u2.values) > 0)
    s2 = apply_update(s1, u2)
    q = view.as_query()
    q1 = q.substitute(u1.relation, u1.signed_tuple())
    q2 = q.substitute(u2.relation, u2.signed_tuple())
    q12 = q1.substitute(u2.relation, u2.signed_tuple())
    expanded = (
        q.evaluate(s2) - q2.evaluate(s2) - q1.evaluate(s2) + q12.evaluate(s2)
    )
    assert q.evaluate(s0) == expanded


@given(rows2, rows2)
def test_same_relation_double_substitution_vanishes(row_a, row_b):
    view = make_view()
    q = view.substitute("r1", SignedTuple(row_a))
    assert q.substitute("r1", SignedTuple(row_b)).is_empty()


@settings(max_examples=60, deadline=None)
@given(states, updates())
def test_substitution_distributes_over_query_sum(state, update):
    view = make_view()
    bags = to_bags(state)
    q = view.as_query()
    summed = (q + q).substitute(update.relation, update.signed_tuple())
    single = q.substitute(update.relation, update.signed_tuple())
    assert summed.evaluate(bags) == (single + single).evaluate(bags)


@settings(max_examples=60, deadline=None)
@given(states, updates())
def test_negation_commutes_with_substitution(state, update):
    view = make_view()
    bags = to_bags(state)
    q = view.as_query()
    a = (-q).substitute(update.relation, update.signed_tuple()).evaluate(bags)
    b = (-(q.substitute(update.relation, update.signed_tuple()))).evaluate(bags)
    assert a == b
