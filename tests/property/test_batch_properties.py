"""Property tests: batched/deferred maintenance under arbitrary schedules."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.consistency import check_trace
from repro.core.batch import BatchECA, DeferredECA
from repro.relational.engine import evaluate_view
from repro.relational.schema import RelationSchema
from repro.relational.views import View
from repro.simulation.driver import REFRESH, Simulation
from repro.simulation.schedules import RandomSchedule
from repro.source.memory import MemorySource
from repro.workloads.random_gen import random_workload

SCHEMAS = [RelationSchema("r1", ("W", "X")), RelationSchema("r2", ("X", "Y"))]
INITIAL = {"r1": [(0, 1), (1, 2)], "r2": [(1, 0), (2, 1)]}


def build(factory):
    view = View.natural_join("V", SCHEMAS, ["W", "Y"])
    source = MemorySource(SCHEMAS, INITIAL)
    warehouse = factory(view, evaluate_view(view, source.snapshot()))
    return view, source, warehouse


@settings(max_examples=25, deadline=None)
@given(
    st.integers(0, 10_000),
    st.integers(0, 10_000),
    st.integers(1, 6),
)
def test_batch_eca_strongly_consistent(workload_seed, schedule_seed, batch_size):
    view, source, warehouse = build(
        lambda v, iv: BatchECA(v, iv, batch_size=batch_size)
    )
    k = batch_size * 3  # divisible -> the run converges without a refresh
    workload = random_workload(SCHEMAS, k, seed=workload_seed, initial=INITIAL)
    trace = Simulation(source, warehouse, workload).run(RandomSchedule(schedule_seed))
    report = check_trace(view, trace)
    assert report.strongly_consistent, report.detail


@settings(max_examples=25, deadline=None)
@given(
    st.integers(0, 10_000),
    st.integers(0, 10_000),
    st.lists(st.integers(1, 4), min_size=1, max_size=5),
)
def test_deferred_eca_strongly_consistent(workload_seed, schedule_seed, gaps):
    """Refresh positions are arbitrary; the run always ends with one."""
    view, source, warehouse = build(DeferredECA)
    updates = random_workload(
        SCHEMAS, sum(gaps), seed=workload_seed, initial=INITIAL
    )
    workload = []
    cursor = 0
    for gap in gaps:
        workload.extend(updates[cursor : cursor + gap])
        workload.append(REFRESH)
        cursor += gap
    trace = Simulation(source, warehouse, workload).run(RandomSchedule(schedule_seed))
    report = check_trace(view, trace)
    assert report.strongly_consistent, report.detail


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 10_000), st.integers(1, 6))
def test_batch_eca_agrees_with_plain_eca(workload_seed, batch_size):
    """Same workload, same schedule: identical final view.

    The batch run ends with a REFRESH so any partial tail flushes.
    """
    from repro.core.eca import ECA
    from repro.simulation.schedules import WorstCaseSchedule

    workload = random_workload(SCHEMAS, 12, seed=workload_seed, initial=INITIAL)

    _, source, plain = build(lambda v, iv: ECA(v, iv))
    Simulation(source, plain, list(workload)).run(WorstCaseSchedule())

    _, source, batched = build(lambda v, iv: BatchECA(v, iv, batch_size=batch_size))
    Simulation(source, batched, list(workload) + [REFRESH]).run(WorstCaseSchedule())

    assert plain.view_state() == batched.view_state()
    assert batched.is_quiescent()
