"""Property tests for the Zipf hot-key generator (``repro.workloads``).

The serving benchmarks and the hot-key compensation benchmark both lean
on :class:`ZipfSampler` being (a) a real probability distribution over
``[0, n)``, (b) monotone — lower ranks never less likely than higher
ones — and (c) a pure function of ``(n, theta, seed)`` so RPR002-style
replays reproduce byte-identical workloads.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.random_gen import ZipfSampler, zipf_read_workload

ns = st.integers(1, 12)
thetas = st.floats(0.0, 8.0, allow_nan=False, allow_infinity=False)
seeds = st.integers(0, 2**16)


@given(ns, thetas, seeds)
def test_samples_always_in_range(n, theta, seed):
    sampler = ZipfSampler(n, theta, seed=seed)
    assert all(0 <= sampler.sample() < n for _ in range(30))


@given(ns, thetas, seeds)
def test_same_triple_same_sequence(n, theta, seed):
    a = ZipfSampler(n, theta, seed=seed)
    b = ZipfSampler(n, theta, seed=seed)
    assert [a.sample() for _ in range(30)] == [b.sample() for _ in range(30)]


@given(ns, seeds)
def test_theta_zero_is_the_legacy_uniform_stream(n, seed):
    sampler = ZipfSampler(n, 0.0, seed=seed)
    rng = random.Random(seed)
    assert [sampler.sample() for _ in range(30)] == [
        rng.randrange(n) for _ in range(30)
    ]


@settings(max_examples=30)
@given(st.integers(2, 10), st.floats(0.5, 6.0), seeds)
def test_empirical_frequencies_are_monotone_in_rank(n, theta, seed):
    # With enough draws, observed counts must not *grossly* invert the
    # rank order: rank 0 is at least as common as the last rank.
    sampler = ZipfSampler(n, theta, seed=seed)
    counts = [0] * n
    for _ in range(600):
        counts[sampler.sample()] += 1
    assert counts[0] >= counts[-1]


@given(st.integers(1, 10), st.integers(0, 40), thetas, seeds)
def test_read_workload_is_deterministic_and_closed(n, count, theta, seed):
    keys = [("V", (i,)) for i in range(n)]
    a = zipf_read_workload(keys, count, theta=theta, seed=seed)
    b = zipf_read_workload(keys, count, theta=theta, seed=seed)
    assert a == b
    assert len(a) == count
    assert set(a) <= set(keys)
