"""Property tests: the signed-relation algebra of Section 4.1.

The ECA correctness proof (Appendix B) silently relies on ``+`` and ``-``
being commutative and associative and on cross products distributing over
them; these properties must hold for *all* bags, not just the examples.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.relational.bag import SignedBag
from repro.relational.expressions import RelationOperand, Term
from repro.relational.schema import RelationSchema

rows = st.tuples(st.integers(0, 3), st.integers(0, 3))
counts = st.integers(-3, 3).filter(lambda c: c != 0)
bags = st.dictionaries(rows, counts, max_size=6).map(SignedBag)


@given(bags, bags)
def test_plus_commutative(a, b):
    assert a + b == b + a


@given(bags, bags, bags)
def test_plus_associative(a, b, c):
    assert (a + b) + c == a + (b + c)


@given(bags)
def test_empty_is_identity(a):
    assert a + SignedBag() == a
    assert SignedBag() + a == a


@given(bags)
def test_minus_self_is_empty(a):
    assert (a - a).is_empty()


@given(bags, bags)
def test_minus_is_plus_negation(a, b):
    assert a - b == a + (-b)


@given(bags)
def test_double_negation(a):
    assert -(-a) == a


@given(bags)
def test_pos_neg_partition(a):
    pos, neg = a.pos(), a.neg()
    assert pos.is_nonnegative()
    assert neg.is_nonnegative()
    assert a == pos - neg


@given(bags, bags)
def test_counts_add_pointwise(a, b):
    total = a + b
    for row in set(list(a.rows()) + list(b.rows())):
        assert total.multiplicity(row) == a.multiplicity(row) + b.multiplicity(row)


@given(bags)
def test_copy_equals_original(a):
    assert a.copy() == a


@given(bags)
def test_total_count_is_sum_of_absolutes(a):
    assert a.total_count() == sum(abs(c) for _, c in a.items())


@given(bags, bags)
def test_hash_consistent_with_equality(a, b):
    if a == b:
        assert hash(a) == hash(b)


# --------------------------------------------------------------------- #
# Distributivity of the cross product over + (used by Lemma B.2's proof)
# --------------------------------------------------------------------- #

_R1 = RelationSchema("r1", ("A",))
_R2 = RelationSchema("r2", ("B",))

small_rows = st.tuples(st.integers(0, 2))
small_bags = st.dictionaries(small_rows, counts, max_size=4).map(SignedBag)


@settings(max_examples=50)
@given(small_bags, small_bags, small_bags)
def test_product_distributes_over_plus(a, b, c):
    """pi(r1 x r2) over (b + c) equals the sum of the two products."""
    term = Term([RelationOperand(_R1), RelationOperand(_R2)], ("A", "B"))
    combined = term.evaluate({"r1": a, "r2": b + c})
    separate = term.evaluate({"r1": a, "r2": b}) + term.evaluate({"r1": a, "r2": c})
    assert combined == separate
