"""Property tests: partitioners are total, stable, pure functions of the key.

These are the properties the router and recovery lean on (see
``repro.sharding.partition``): every key lands on exactly one shard in
range, the same key lands on the same shard in every process and every
instance, and range layouts respect key order.  Hypothesis drives the
key universe; nothing here depends on interleavings or the runtime.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sharding import (
    ExplicitPartitioner,
    HashPartitioner,
    RangePartitioner,
    make_partitioner,
)

# View keys as the harness builds them: 1-tuples of short names.  Text
# covers the realistic alphabet; integers check non-string key parts.
key_parts = st.one_of(
    st.text(min_size=0, max_size=12),
    st.integers(-(10**6), 10**6),
)
view_keys = st.tuples(key_parts)
# Range layouts need a totally ordered key universe (mixed int/str keys
# do not compare), so their strategies stay within text keys — matching
# real catalogs, where keys are ``(view_name,)``.
text_keys = st.tuples(st.text(max_size=8))
shard_counts = st.integers(1, 16)


@settings(max_examples=100, deadline=None)
@given(view_keys, shard_counts)
def test_hash_total_and_in_range(key, shards):
    assert 0 <= HashPartitioner(shards).shard_of(key) < shards


@settings(max_examples=100, deadline=None)
@given(view_keys, shard_counts)
def test_hash_stable_across_instances_and_calls(key, shards):
    first = HashPartitioner(shards)
    second = HashPartitioner(shards)
    assert first.shard_of(key) == second.shard_of(key) == first.shard_of(key)


@settings(max_examples=50, deadline=None)
@given(st.lists(st.tuples(st.text(max_size=8)), min_size=1, max_size=12))
def test_hash_ignores_placement_history(keys):
    """shard_of is a pure function: past calls never change the answer."""
    p = HashPartitioner(4)
    before = [p.shard_of(k) for k in keys]
    after = [p.shard_of(k) for k in reversed(keys)]
    assert before == list(reversed(after))


@settings(max_examples=100, deadline=None)
@given(
    st.lists(st.tuples(st.text(max_size=8)), unique=True, min_size=0, max_size=6),
    text_keys,
)
def test_range_total_in_range_and_monotone(boundaries, key):
    ordered = sorted(boundaries)
    p = RangePartitioner(ordered)
    shard = p.shard_of(key)
    assert 0 <= shard < len(ordered) + 1
    # Order-preserving: the shard is exactly the count of boundaries <= key.
    assert shard == sum(1 for b in ordered if b <= tuple(key))


@settings(max_examples=50, deadline=None)
@given(
    st.lists(st.tuples(st.text(max_size=8)), unique=True, min_size=2, max_size=10),
    text_keys,
    text_keys,
)
def test_range_respects_key_order(boundaries, a, b):
    p = RangePartitioner(sorted(boundaries))
    low, high = sorted([tuple(a), tuple(b)])
    assert p.shard_of(low) <= p.shard_of(high)


@settings(max_examples=50, deadline=None)
@given(
    st.dictionaries(
        st.tuples(st.text(max_size=8)), st.integers(0, 7), min_size=1, max_size=12
    )
)
def test_explicit_reproduces_its_table(assignment):
    p = ExplicitPartitioner(assignment)
    for key, shard in assignment.items():
        assert p.shard_of(key) == shard


@settings(max_examples=50, deadline=None)
@given(
    st.lists(st.tuples(st.text(max_size=8)), unique=True, min_size=1, max_size=16),
    shard_counts,
)
def test_make_partitioner_specs_are_total_over_their_universe(keys, shards):
    """Both CLI specs place every catalog key in range, deterministically."""
    hash_p = make_partitioner("hash", shards, keys)
    assert all(0 <= hash_p.shard_of(k) < shards for k in keys)
    if len(keys) >= shards:
        range_p = make_partitioner("range", shards, keys)
        placed = [range_p.shard_of(k) for k in sorted(keys)]
        assert all(0 <= shard < shards for shard in placed)
        assert placed == sorted(placed)  # contiguous runs in key order
        twin = make_partitioner("range", shards, list(reversed(keys)))
        assert [twin.shard_of(k) for k in keys] == [
            range_p.shard_of(k) for k in keys
        ]  # boundary derivation is insensitive to key presentation order
