"""Property tests for the whole-program analysis engine.

Two invariants the interprocedural rules stand on:

1. **Call-graph soundness** — every ``ast.Call`` whose callee names a
   locally defined function produces a resolved edge, so the effect
   pass never silently drops a reachable dependency.
2. **Effect inference is a least fixed point** — one more ``relax``
   step after :func:`infer_effects` changes nothing (idempotence at the
   fixpoint), ``relax`` is monotone in its input, and a function's
   inferred clock effect matches ground-truth reachability over the
   generated call graph.
"""

from __future__ import annotations

import ast

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.callgraph import CallGraph
from repro.analysis.effects import CLOCK, infer_effects, relax
from repro.analysis.engine import FileContext
from repro.analysis.project import Project

_NAMES = [f"fn{i}" for i in range(6)]


@st.composite
def generated_modules(draw):
    """A random intra-module call graph with optional clock leaves."""
    funcs = draw(
        st.lists(st.sampled_from(_NAMES), min_size=1, max_size=6, unique=True)
    )
    calls = {
        f: draw(st.lists(st.sampled_from(funcs), max_size=3, unique=True))
        for f in funcs
    }
    clocked = {f: draw(st.booleans()) for f in funcs}
    return funcs, calls, clocked


def _render(funcs, calls, clocked) -> str:
    lines = ["import time", ""]
    for f in funcs:
        lines.append(f"def {f}():")
        for callee in calls[f]:
            lines.append(f"    {callee}()")
        if clocked[f]:
            lines.append("    time.time()")
        lines.append("    return None")
        lines.append("")
    return "\n".join(lines)


def _build(funcs, calls, clocked):
    source = _render(funcs, calls, clocked)
    context = FileContext(
        "src/repro/warehouse/generated.py", source, ast.parse(source)
    )
    project = Project.build([context])
    graph = CallGraph.build(project)
    return project, graph


def _qualnames(project):
    return {fn.name: qualname for qualname, fn in project.functions.items()}


@given(generated_modules())
@settings(max_examples=50, deadline=None)
def test_every_local_call_yields_a_resolved_edge(module):
    funcs, calls, clocked = module
    project, graph = _build(funcs, calls, clocked)
    by_name = _qualnames(project)
    for f in funcs:
        sites = graph.sites(by_name[f])
        resolved = [s.target for s in sites if s.raw in funcs]
        assert sorted(resolved) == sorted(by_name[c] for c in calls[f])


@given(generated_modules())
@settings(max_examples=50, deadline=None)
def test_inference_is_idempotent_at_the_fixpoint(module):
    funcs, calls, clocked = module
    project, graph = _build(funcs, calls, clocked)
    effects, _ = infer_effects(project, graph)
    again = relax(graph, effects)
    assert {k: set(v) for k, v in again.items()} == {
        k: set(v) for k, v in effects.items()
    }


@given(generated_modules())
@settings(max_examples=50, deadline=None)
def test_relax_is_monotone(module):
    funcs, calls, clocked = module
    project, graph = _build(funcs, calls, clocked)
    fixpoint, _ = infer_effects(project, graph)
    empty = {k: frozenset() for k in fixpoint}
    lower = relax(graph, empty)
    upper = relax(graph, fixpoint)
    for qualname in fixpoint:
        assert set(lower.get(qualname, ())) <= set(upper.get(qualname, ()))


@given(generated_modules())
@settings(max_examples=50, deadline=None)
def test_clock_effect_equals_reachability_ground_truth(module):
    funcs, calls, clocked = module
    project, graph = _build(funcs, calls, clocked)
    effects, _ = infer_effects(project, graph)
    by_name = _qualnames(project)

    def reaches_clock(start):
        seen, frontier = set(), [start]
        while frontier:
            current = frontier.pop()
            if current in seen:
                continue
            seen.add(current)
            if clocked[current]:
                return True
            frontier.extend(calls[current])
        return False

    for f in funcs:
        assert (CLOCK in effects[by_name[f]]) == reaches_clock(f)
