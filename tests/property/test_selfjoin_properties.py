"""Property tests: inclusion-exclusion substitution for self-joins.

The generalized Lemma B.2 — ``Q[ss_{j-1}] = Q[ss_j] - Q<U_j>[ss_j]`` with
``Q<U>`` expanded over subsets of the updated relation's occurrences —
must hold for all states, all updates, both signs, and any number of
occurrences; it is what makes every compensation algorithm carry over to
self-join views unchanged.
"""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.relational.bag import SignedBag
from repro.relational.conditions import Attr, Comparison
from repro.relational.schema import RelationSchema
from repro.relational.views import View
from repro.source.updates import delete, insert

EMP = RelationSchema("emp", ("name", "dept"))

rows2 = st.tuples(st.integers(0, 3), st.integers(0, 2))
relations = st.lists(rows2, max_size=5)


def pair_view() -> View:
    e1, e2 = EMP.aliased("e1"), EMP.aliased("e2")
    return View(
        "pairs",
        [e1, e2],
        ["e1.name", "e2.name"],
        Comparison(Attr("e1.dept"), "=", Attr("e2.dept")),
    )


def triple_view() -> View:
    e1, e2, e3 = EMP.aliased("e1"), EMP.aliased("e2"), EMP.aliased("e3")
    return View(
        "triples",
        [e1, e2, e3],
        ["e1.name", "e2.name", "e3.name"],
        Comparison(Attr("e1.dept"), "=", Attr("e2.dept"))
        & Comparison(Attr("e2.dept"), "=", Attr("e3.dept")),
    )


def updates():
    return st.builds(
        lambda row, is_insert: (insert if is_insert else delete)("emp", row),
        rows2,
        st.booleans(),
    )


@settings(max_examples=80, deadline=None)
@given(relations, updates())
def test_lemma_b2_two_occurrences(rows, update):
    view = pair_view()
    before = {"emp": SignedBag.from_rows(rows)}
    if update.is_delete:
        assume(before["emp"].multiplicity(update.values) > 0)
    after = {"emp": before["emp"].copy()}
    after["emp"].add(update.values, update.sign)
    delta = view.substitute("emp", update.signed_tuple()).evaluate(after)
    assert view.evaluate(before) + delta == view.evaluate(after)


@settings(max_examples=40, deadline=None)
@given(st.lists(rows2, max_size=4), updates())
def test_lemma_b2_three_occurrences(rows, update):
    view = triple_view()
    before = {"emp": SignedBag.from_rows(rows)}
    if update.is_delete:
        assume(before["emp"].multiplicity(update.values) > 0)
    after = {"emp": before["emp"].copy()}
    after["emp"].add(update.values, update.sign)
    delta = view.substitute("emp", update.signed_tuple()).evaluate(after)
    assert view.evaluate(before) + delta == view.evaluate(after)


@settings(max_examples=50, deadline=None)
@given(relations, updates(), updates())
def test_lemma_b2_composes_for_self_joins(rows, u1, u2):
    """Two consecutive updates: chained substitution still telescopes."""
    view = pair_view()
    s0 = {"emp": SignedBag.from_rows(rows)}
    if u1.is_delete:
        assume(s0["emp"].multiplicity(u1.values) > 0)
    s1 = {"emp": s0["emp"].copy()}
    s1["emp"].add(u1.values, u1.sign)
    if u2.is_delete:
        assume(s1["emp"].multiplicity(u2.values) > 0)
    s2 = {"emp": s1["emp"].copy()}
    s2["emp"].add(u2.values, u2.sign)
    q = view.as_query()
    q1 = q.substitute("emp", u1.signed_tuple())
    q2 = q.substitute("emp", u2.signed_tuple())
    q12 = q1.substitute("emp", u2.signed_tuple())
    expanded = q.evaluate(s2) - q2.evaluate(s2) - q1.evaluate(s2) + q12.evaluate(s2)
    assert q.evaluate(s0) == expanded


@settings(max_examples=40, deadline=None)
@given(relations, updates())
def test_expansion_term_count(rows, update):
    """m free occurrences -> 2^m - 1 expansion terms."""
    view = pair_view()
    query = view.substitute("emp", update.signed_tuple())
    assert query.term_count() == 3  # 2^2 - 1

    triple = triple_view().substitute("emp", update.signed_tuple())
    assert triple.term_count() == 7  # 2^3 - 1


@settings(max_examples=40, deadline=None)
@given(relations, updates())
def test_engine_agrees_on_selfjoin_expansion(rows, update):
    from repro.relational.engine import evaluate_query

    view = pair_view()
    state = {"emp": SignedBag.from_rows(rows)}
    query = view.substitute("emp", update.signed_tuple())
    assert evaluate_query(query, state) == query.evaluate(state)
