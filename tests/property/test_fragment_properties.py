"""Property tests: fragmentation is sound on frozen states.

The multi-source anomaly comes from *timing*, not decomposition: on any
single fixed state, fragmenting a term, evaluating fragments separately,
and reassembling must equal evaluating the term whole.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.multisource.fragment import fragment_query
from repro.relational.bag import SignedBag
from repro.relational.conditions import Attr, Comparison
from repro.relational.schema import RelationSchema
from repro.relational.tuples import MINUS, PLUS, SignedTuple
from repro.relational.views import View

SCHEMAS = [
    RelationSchema("r1", ("W", "X")),
    RelationSchema("r2", ("X", "Y")),
    RelationSchema("r3", ("Y", "Z")),
]

rows2 = st.tuples(st.integers(0, 3), st.integers(0, 3))
relation = st.lists(rows2, max_size=4)
states = st.fixed_dictionaries({"r1": relation, "r2": relation, "r3": relation})
ownerships = st.sampled_from(
    [
        {"r1": "A", "r2": "B", "r3": "B"},
        {"r1": "A", "r2": "B", "r3": "C"},
        {"r1": "A", "r2": "A", "r3": "B"},
        {"r1": "A", "r2": "A", "r3": "A"},
    ]
)


def make_view(with_condition: bool) -> View:
    extra = Comparison(Attr("W"), ">", Attr("Z")) if with_condition else None
    return View.natural_join("V", SCHEMAS, ["W", "Z"], extra)


def to_bags(state):
    return {name: SignedBag.from_rows(rows) for name, rows in state.items()}


@settings(max_examples=40, deadline=None)
@given(
    states,
    ownerships,
    st.sampled_from(["r1", "r2", "r3"]),
    rows2,
    st.sampled_from([PLUS, MINUS]),
    st.booleans(),
)
def test_fragment_reassembly_equals_whole_term(
    state, owners, relation_name, row, sign, with_condition
):
    view = make_view(with_condition)
    bags = to_bags(state)
    query = view.substitute(relation_name, SignedTuple(row, sign))
    for plan in fragment_query(query, owners):
        answers = {
            source: fragment.evaluate(bags)
            for source, fragment in plan.fragments.items()
        }
        assert plan.reassemble(answers) == plan.term.evaluate(bags)


@settings(max_examples=30, deadline=None)
@given(states, ownerships)
def test_full_view_fragments_reassemble(state, owners):
    view = make_view(True)
    bags = to_bags(state)
    for plan in fragment_query(view.as_query(), owners):
        answers = {
            source: fragment.evaluate(bags)
            for source, fragment in plan.fragments.items()
        }
        assert plan.reassemble(answers) == plan.term.evaluate(bags)


@settings(max_examples=30, deadline=None)
@given(states, ownerships, rows2, rows2)
def test_compensated_query_fragments_reassemble(state, owners, row_a, row_b):
    """Multi-term signed queries (the compensated shapes) fragment soundly
    term by term."""
    view = make_view(True)
    bags = to_bags(state)
    first = view.substitute("r1", SignedTuple(row_a))
    query = first - first.substitute("r2", SignedTuple(row_b, MINUS))
    total = SignedBag()
    for plan in fragment_query(query, owners):
        answers = {
            source: fragment.evaluate(bags)
            for source, fragment in plan.fragments.items()
        }
        total.add_bag(plan.reassemble(answers))
    assert total == query.evaluate(bags)
