"""Property tests: the correctness hierarchy under arbitrary interleavings.

Hypothesis drives both the workload *and* the interleaving (as a seed for
the random schedule), hammering the algorithms far beyond the paper's
hand-worked examples.  The asserted levels are exactly the paper's claims:

- ECA, ECA-Key, ECA-Local: strongly consistent (Appendix B / C);
- LCA, SC: complete;
- the basic algorithm: correct when updates are spaced (Section 5.6
  property 3), anomalous in general (not asserted per-case — that's
  covered statistically in the integration suite).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.consistency import check_trace
from repro.core.registry import create_algorithm
from repro.core.stored_copies import StoredCopies
from repro.relational.engine import evaluate_view
from repro.relational.schema import RelationSchema
from repro.relational.views import View
from repro.simulation.driver import Simulation
from repro.simulation.schedules import BestCaseSchedule, RandomSchedule
from repro.source.memory import MemorySource
from repro.workloads.random_gen import random_workload

SCHEMAS = [
    RelationSchema("r1", ("W", "X"), key=("W",)),
    RelationSchema("r2", ("X", "Y"), key=("Y",)),
]
INITIAL = {"r1": [(0, 1), (1, 2)], "r2": [(1, 0), (2, 1)]}


def build(algorithm):
    view = View.natural_join("V", SCHEMAS, ["W", "Y"])
    source = MemorySource(SCHEMAS, INITIAL)
    initial_view = evaluate_view(view, source.snapshot())
    if algorithm == "stored-copies":
        warehouse = StoredCopies(view, initial_view, initial_copies=source.snapshot())
    else:
        warehouse = create_algorithm(algorithm, view, initial_view)
    return view, source, warehouse


def run(algorithm, workload_seed, schedule_seed, k=8):
    view, source, warehouse = build(algorithm)
    workload = random_workload(
        SCHEMAS, k, seed=workload_seed, initial=INITIAL, respect_keys=True
    )
    trace = Simulation(source, warehouse, workload).run(RandomSchedule(schedule_seed))
    return check_trace(view, trace)


seeds = st.integers(0, 10_000)


@settings(max_examples=25, deadline=None)
@given(seeds, seeds)
def test_eca_strongly_consistent(workload_seed, schedule_seed):
    report = run("eca", workload_seed, schedule_seed)
    assert report.strongly_consistent, report.detail


@settings(max_examples=25, deadline=None)
@given(seeds, seeds)
def test_eca_key_strongly_consistent(workload_seed, schedule_seed):
    report = run("eca-key", workload_seed, schedule_seed)
    assert report.strongly_consistent, report.detail


@settings(max_examples=25, deadline=None)
@given(seeds, seeds)
def test_eca_local_strongly_consistent(workload_seed, schedule_seed):
    report = run("eca-local", workload_seed, schedule_seed)
    assert report.strongly_consistent, report.detail


@settings(max_examples=25, deadline=None)
@given(seeds, seeds)
def test_lca_complete(workload_seed, schedule_seed):
    report = run("lca", workload_seed, schedule_seed)
    assert report.complete, report.detail


@settings(max_examples=15, deadline=None)
@given(seeds, seeds)
def test_stored_copies_complete(workload_seed, schedule_seed):
    report = run("stored-copies", workload_seed, schedule_seed)
    assert report.complete, report.detail


@settings(max_examples=15, deadline=None)
@given(seeds)
def test_basic_correct_when_updates_spaced(workload_seed):
    view, source, warehouse = build("basic")
    workload = random_workload(
        SCHEMAS, 8, seed=workload_seed, initial=INITIAL, respect_keys=True
    )
    trace = Simulation(source, warehouse, workload).run(BestCaseSchedule())
    assert check_trace(view, trace).strongly_consistent


@settings(max_examples=15, deadline=None)
@given(seeds, seeds)
def test_every_algorithm_quiesces(workload_seed, schedule_seed):
    for algorithm in ("eca", "eca-key", "eca-local", "lca", "stored-copies"):
        _, source, warehouse = build(algorithm)
        workload = random_workload(
            SCHEMAS, 6, seed=workload_seed, initial=INITIAL, respect_keys=True
        )
        Simulation(source, warehouse, workload).run(RandomSchedule(schedule_seed))
        assert warehouse.is_quiescent(), algorithm
