"""Property tests: the concurrent runtime under fault injection.

Hypothesis drives the workload, the actors' pacing, and the fault plan's
seed.  The claims under test:

- with drops+retries enabled but per-channel FIFO preserved (the paper's
  Section 2 assumption), ECA still converges to the eval-anytime view and
  in fact stays strongly consistent on the single-source topology;
- every fault-injected execution is a pure function of its seed (the
  determinism the debuggability story rests on);
- with the reliable transport, concurrency alone (no faults) never
  degrades ECA below strong consistency.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.consistency import check_trace
from repro.core.eca import ECA
from repro.relational.engine import evaluate_view
from repro.relational.schema import RelationSchema
from repro.relational.views import View
from repro.runtime import FaultPlan, run_concurrent
from repro.source.memory import MemorySource
from repro.workloads.random_gen import random_workload

SCHEMAS = [
    RelationSchema("r1", ("W", "X"), key=("W",)),
    RelationSchema("r2", ("X", "Y"), key=("Y",)),
]
INITIAL = {"r1": [(0, 1), (1, 2)], "r2": [(1, 0), (2, 1)]}

seeds = st.integers(0, 10_000)
drop_rates = st.sampled_from([0.1, 0.3, 0.5])


def run(workload_seed, runtime_seed, faults=None, k=8, clients=2):
    view = View.natural_join("V", SCHEMAS, ["W", "Y"])
    source = MemorySource(SCHEMAS, INITIAL)
    warehouse = ECA(view, evaluate_view(view, source.snapshot()))
    workload = random_workload(
        SCHEMAS, k, seed=workload_seed, initial=INITIAL, respect_keys=True
    )
    result = run_concurrent(
        source,
        warehouse,
        workload,
        clients=clients,
        faults=faults,
        seed=runtime_seed,
    )
    return view, result


@settings(max_examples=20, deadline=None)
@given(seeds, seeds, drop_rates)
def test_eca_converges_under_lossy_fifo_transport(
    workload_seed, runtime_seed, drop_rate
):
    faults = FaultPlan(latency=1.0, jitter=4.0, drop_rate=drop_rate)
    view, result = run(workload_seed, runtime_seed, faults=faults)
    report = check_trace(view, result.trace)
    assert report.convergent, report.detail
    # The eval-anytime oracle: the settled view equals V[final source].
    assert result.final_view == evaluate_view(
        view, result.trace.final_source_state
    )
    # Single source + FIFO per channel is all ECA needs — faults only
    # stretch time, so the full guarantee survives too.
    assert report.strongly_consistent, report.detail


@settings(max_examples=15, deadline=None)
@given(seeds, seeds)
def test_eca_strongly_consistent_without_faults(workload_seed, runtime_seed):
    view, result = run(workload_seed, runtime_seed)
    report = check_trace(view, result.trace)
    assert report.strongly_consistent, report.detail


@settings(max_examples=10, deadline=None)
@given(seeds, seeds, drop_rates)
def test_fault_injection_is_deterministic(workload_seed, runtime_seed, drop_rate):
    faults = FaultPlan(latency=1.0, jitter=3.0, drop_rate=drop_rate)
    _, first = run(workload_seed, runtime_seed, faults=faults)
    _, second = run(workload_seed, runtime_seed, faults=faults)
    assert [repr(e) for e in first.trace.events] == [
        repr(e) for e in second.trace.events
    ]
    assert first.trace.view_states == second.trace.view_states
    assert first.quiesce_latency == second.quiesce_latency
