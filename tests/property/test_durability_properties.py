"""Property tests: durability reconstructs warehouse state exactly.

The central claim (state-machine replication): for any seeded workload,
any answer-delay interleaving, any snapshot cadence, and any crash point,
decoding the newest snapshot and replaying the WAL's ``recv`` records
rebuilds an algorithm whose canonical encoding is *byte-identical* to the
live one at the crash point — and whose re-issued requests are exactly
the pending ones.  On top of that, the concurrent runtime with crash
injection must keep ECA strongly consistent on the paper's Example 2/3
workloads (the Section 3.1 checker is the oracle).
"""

import random
import tempfile

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.consistency import check_trace
from repro.core.eca import ECA
from repro.core.registry import create_algorithm
from repro.durability import RECV, WriteAheadLog, dumps_algorithm, encode_value, recover
from repro.messaging.messages import QueryAnswer, UpdateNotification
from repro.relational.engine import evaluate_view
from repro.relational.schema import RelationSchema
from repro.relational.views import View
from repro.runtime import CrashPolicy, run_concurrent
from repro.source.memory import MemorySource
from repro.workloads.paper_examples import PAPER_EXAMPLES
from repro.workloads.random_gen import random_workload

SCHEMAS = [
    RelationSchema("r1", ("W", "X"), key=("W",)),
    RelationSchema("r2", ("X", "Y"), key=("Y",)),
]
INITIAL = {"r1": [(0, 1), (1, 2)], "r2": [(1, 0), (2, 1)]}

seeds = st.integers(0, 10_000)
algorithm_names = st.sampled_from(["eca", "eca-key", "lca"])


def drive_with_wal(directory, name, workload_seed, pace_seed, cadence, max_events):
    """Feed a WAL-logged message stream to a live algorithm, stopping at
    an arbitrary event boundary (the simulated crash point)."""
    view = View.natural_join("V", SCHEMAS, ["W", "Y"])
    source = MemorySource(SCHEMAS, INITIAL)
    algorithm = create_algorithm(
        name, view, evaluate_view(view, source.snapshot())
    )
    workload = list(
        random_workload(
            SCHEMAS, 8, seed=workload_seed, initial=INITIAL, respect_keys=True
        )
    )
    wal = WriteAheadLog(str(directory), snapshot_every=cadence)
    wal.snapshot(algorithm)  # genesis
    rng = random.Random(pace_seed)
    pending = []  # FIFO of (query_id, query) awaiting answers
    serial = 0
    events = 0
    while events < max_events and (workload or pending):
        answer_next = pending and (not workload or rng.random() < 0.5)
        if answer_next:
            query_id, query = pending.pop(0)
            message = QueryAnswer(query_id, source.evaluate(query))
        else:
            update = workload.pop(0)
            source.apply_update(update)
            serial += 1
            message = UpdateNotification(update, serial)
        wal.append(
            RECV,
            {"channel": "source->wh", "origin": "source", "message": encode_value(message)},
        )
        if isinstance(message, UpdateNotification):
            requests = algorithm.handle_update(message)
        else:
            requests = algorithm.handle_answer(message)
        pending.extend((r.query_id, r.query) for r in requests)
        events += 1
        wal.maybe_snapshot(algorithm)
    wal.close()
    return algorithm


@settings(max_examples=25, deadline=None)
@given(algorithm_names, seeds, seeds, st.integers(1, 9), st.integers(0, 40))
def test_recovery_is_byte_identical_at_any_crash_point(
    name, workload_seed, pace_seed, cadence, max_events
):
    # A fresh directory per generated input (hypothesis re-runs the test
    # body many times, so a function-scoped fixture would be reused).
    with tempfile.TemporaryDirectory(prefix="repro-wal-") as directory:
        live = drive_with_wal(
            directory, name, workload_seed, pace_seed, cadence, max_events
        )
        recovered = recover(directory)
        assert dumps_algorithm(recovered.algorithm) == dumps_algorithm(live)
        assert [req for _, req in recovered.reissue] == [
            req for _, req in live.pending_requests()
        ]


@settings(max_examples=12, deadline=None)
@given(st.sampled_from(["example-2", "example-3"]), seeds, st.booleans())
def test_crashed_runtime_stays_strongly_consistent(
    scenario_name, seed, drop_sends
):
    scenario = PAPER_EXAMPLES[scenario_name]
    source = MemorySource(scenario.schemas, scenario.initial)
    warehouse = ECA(
        scenario.view, evaluate_view(scenario.view, source.snapshot())
    )
    with tempfile.TemporaryDirectory(prefix="repro-wal-") as directory:
        result = run_concurrent(
            source,
            warehouse,
            scenario.updates,
            clients=2,
            seed=seed,
            wal_dir=directory,
            snapshot_every=4,
            crash=CrashPolicy(mode="mid-uqs", drop_sends=drop_sends, seed=seed),
        )
    report = check_trace(scenario.view, result.trace)
    assert report.strongly_consistent, report.detail
    assert result.final_view == evaluate_view(
        scenario.view, result.trace.final_source_state
    )
