"""Property tests: the Strobe- and SWEEP-style multi-source algorithms.

Hypothesis drives workload seed, interleaving seed, and workload length;
both algorithms must be cut-consistent and convergent on every run
(Strobe on key-complete views, SWEEP with no key requirement).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.multisource import (
    MultiSourceSimulation,
    check_cut_consistency,
    check_cut_convergence,
)
from repro.multisource.strobe import StrobeStyle
from repro.relational.engine import evaluate_view
from repro.relational.schema import RelationSchema
from repro.relational.views import View
from repro.simulation.schedules import RandomSchedule
from repro.source.memory import MemorySource
from repro.workloads.random_gen import random_workload

R1 = RelationSchema("r1", ("W", "X"), key=("W",))
R2 = RelationSchema("r2", ("X", "Y"), key=("Y",))
R3 = RelationSchema("r3", ("Y", "Z"), key=("Z",))
OWNERS = {"r1": "A", "r2": "B", "r3": "B"}
INITIAL = {"r1": [(1, 2), (4, 3)], "r2": [(2, 5)], "r3": [(5, 3), (6, 9)]}


def build():
    view = View.natural_join("V", [R1, R2, R3], ["W", "r2.Y", "Z"])
    a = MemorySource([R1], {"r1": INITIAL["r1"]})
    b = MemorySource([R2, R3], {"r2": INITIAL["r2"], "r3": INITIAL["r3"]})
    merged = {**a.snapshot(), **b.snapshot()}
    return view, {"A": a, "B": b}, StrobeStyle(view, OWNERS, evaluate_view(view, merged))


@settings(max_examples=25, deadline=None)
@given(
    st.integers(0, 10_000),
    st.integers(0, 10_000),
    st.integers(2, 12),
)
def test_strobe_cut_consistent_and_convergent(workload_seed, schedule_seed, k):
    workload = random_workload(
        [R1, R2, R3], k, seed=workload_seed, initial=INITIAL, respect_keys=True
    )
    view, sources, algorithm = build()
    sim = MultiSourceSimulation(sources, algorithm, workload)
    trace = sim.run(RandomSchedule(schedule_seed))
    assert check_cut_consistency(view, sim.per_source_states, trace.view_states)
    assert check_cut_convergence(view, sim.per_source_states, trace.final_view_state)
    assert algorithm.is_quiescent()


KEYLESS = [
    RelationSchema("r1", ("W", "X")),
    RelationSchema("r2", ("X", "Y")),
    RelationSchema("r3", ("Y", "Z")),
]
KEYLESS_INITIAL = {"r1": [(1, 2), (4, 2)], "r2": [(2, 5)], "r3": [(5, 3), (5, 9)]}


def build_sweep():
    from repro.multisource.sweep import SweepStyle

    view = View.natural_join("V", KEYLESS, ["W", "Z"])
    a = MemorySource([KEYLESS[0]], {"r1": KEYLESS_INITIAL["r1"]})
    b = MemorySource([KEYLESS[1]], {"r2": KEYLESS_INITIAL["r2"]})
    c = MemorySource([KEYLESS[2]], {"r3": KEYLESS_INITIAL["r3"]})
    merged = {**a.snapshot(), **b.snapshot(), **c.snapshot()}
    owners = {"r1": "A", "r2": "B", "r3": "C"}
    return (
        view,
        {"A": a, "B": b, "C": c},
        SweepStyle(view, owners, evaluate_view(view, merged)),
    )


@settings(max_examples=25, deadline=None)
@given(
    st.integers(0, 10_000),
    st.integers(0, 10_000),
    st.integers(2, 12),
)
def test_sweep_cut_consistent_and_convergent(workload_seed, schedule_seed, k):
    workload = random_workload(
        KEYLESS, k, seed=workload_seed, initial=KEYLESS_INITIAL
    )
    view, sources, algorithm = build_sweep()
    sim = MultiSourceSimulation(sources, algorithm, workload)
    trace = sim.run(RandomSchedule(schedule_seed))
    assert check_cut_consistency(view, sim.per_source_states, trace.view_states)
    assert check_cut_convergence(view, sim.per_source_states, trace.final_view_state)
    assert algorithm.is_quiescent()


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 10_000), st.integers(0, 10_000))
def test_strobe_final_state_equals_oracle(workload_seed, schedule_seed):
    """Convergence stated directly: final view == V over final sources."""
    workload = random_workload(
        [R1, R2, R3], 8, seed=workload_seed, initial=INITIAL, respect_keys=True
    )
    view, sources, algorithm = build()
    sim = MultiSourceSimulation(sources, algorithm, workload)
    sim.run(RandomSchedule(schedule_seed))
    merged = {}
    for source in sources.values():
        merged.update(source.snapshot())
    assert algorithm.view_state() == evaluate_view(view, merged)
