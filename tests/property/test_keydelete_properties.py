"""Property tests: key-delete computes exactly the view delta of a delete.

Section 5.4's justification — "since each view tuple contains key values
for all base relations, when a base relation tuple t is deleted, we can
use the key values in t to identify which tuples in the view were derived
using t" — as an executable property: for any state and any present tuple,

    key_delete(V[s], r, t)  ==  V[s - t]

whenever the view projects a key of every base relation.
"""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.relational.bag import SignedBag
from repro.relational.engine import evaluate_view
from repro.relational.schema import RelationSchema
from repro.relational.views import View
from repro.warehouse.state import key_delete

SCHEMAS = [
    RelationSchema("r1", ("W", "X"), key=("W",)),
    RelationSchema("r2", ("X", "Y"), key=("Y",)),
]


def make_view():
    return View.natural_join("V", SCHEMAS, ["W", "Y"])


def keyed_relation(key_position, max_size=5):
    """Rows with unique values at the key position (key integrity)."""

    def build(rows):
        seen, out = set(), []
        for row in rows:
            if row[key_position] in seen:
                continue
            seen.add(row[key_position])
            out.append(row)
        return out

    return st.lists(
        st.tuples(st.integers(0, 3), st.integers(0, 3)), max_size=max_size
    ).map(build)


states = st.fixed_dictionaries(
    {"r1": keyed_relation(0), "r2": keyed_relation(1)}
)


@settings(max_examples=80, deadline=None)
@given(states, st.sampled_from(["r1", "r2"]), st.integers(0, 10))
def test_key_delete_equals_view_of_post_delete_state(state, relation, pick):
    assume(state[relation])
    victim = state[relation][pick % len(state[relation])]
    view = make_view()
    before = {name: SignedBag.from_rows(rows) for name, rows in state.items()}
    after = {name: bag.copy() for name, bag in before.items()}
    after[relation].add(victim, -1)

    materialized = evaluate_view(view, before)
    key_delete(materialized, view, relation, victim)
    assert materialized == evaluate_view(view, after)


@settings(max_examples=50, deadline=None)
@given(states, st.sampled_from(["r1", "r2"]))
def test_key_delete_of_absent_key_is_noop(state, relation):
    view = make_view()
    bags = {name: SignedBag.from_rows(rows) for name, rows in state.items()}
    materialized = evaluate_view(view, bags)
    before = materialized.copy()
    # Key value 99 never occurs (domain is 0..3).
    removed = key_delete(materialized, view, relation, (99, 99))
    assert removed == 0
    assert materialized == before


@settings(max_examples=50, deadline=None)
@given(states, st.sampled_from(["r1", "r2"]), st.integers(0, 10))
def test_key_delete_is_idempotent(state, relation, pick):
    assume(state[relation])
    victim = state[relation][pick % len(state[relation])]
    view = make_view()
    bags = {name: SignedBag.from_rows(rows) for name, rows in state.items()}
    materialized = evaluate_view(view, bags)
    key_delete(materialized, view, relation, victim)
    once = materialized.copy()
    key_delete(materialized, view, relation, victim)
    assert materialized == once
