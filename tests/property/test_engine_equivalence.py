"""Property tests: the three evaluators agree on all inputs.

Reference cross-product evaluation (Term.evaluate), the hash-join engine,
and the SQLite source must compute identical answers for identical states
— this is what lets the rest of the suite trust any one of them.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.relational.bag import SignedBag
from repro.relational.conditions import Attr, Comparison
from repro.relational.engine import evaluate_query
from repro.relational.schema import RelationSchema
from repro.relational.tuples import MINUS, PLUS, SignedTuple
from repro.relational.views import View
from repro.source.sqlite import SQLiteSource

SCHEMAS = [
    RelationSchema("r1", ("W", "X")),
    RelationSchema("r2", ("X", "Y")),
    RelationSchema("r3", ("Y", "Z")),
]

rows2 = st.tuples(st.integers(0, 3), st.integers(0, 3))
relation = st.lists(rows2, max_size=5)


def states():
    return st.fixed_dictionaries(
        {"r1": relation, "r2": relation, "r3": relation}
    )


def make_view(with_condition):
    extra = Comparison(Attr("W"), ">", Attr("Z")) if with_condition else None
    return View.natural_join("V", SCHEMAS, ["W", "Z"], extra)


def to_bags(state):
    return {name: SignedBag.from_rows(rows) for name, rows in state.items()}


@settings(max_examples=40, deadline=None)
@given(states(), st.booleans())
def test_engine_matches_reference_on_full_view(state, with_condition):
    view = make_view(with_condition)
    bags = to_bags(state)
    query = view.as_query()
    assert evaluate_query(query, bags) == query.evaluate(bags)


@settings(max_examples=40, deadline=None)
@given(
    states(),
    st.sampled_from(["r1", "r2", "r3"]),
    rows2,
    st.sampled_from([PLUS, MINUS]),
)
def test_engine_matches_reference_on_bound_queries(state, relation_name, row, sign):
    view = make_view(True)
    bags = to_bags(state)
    query = view.substitute(relation_name, SignedTuple(row, sign))
    assert evaluate_query(query, bags) == query.evaluate(bags)


@settings(max_examples=25, deadline=None)
@given(states(), st.sampled_from(["r1", "r2", "r3"]), rows2)
def test_sqlite_matches_reference(state, relation_name, row):
    view = make_view(True)
    bags = to_bags(state)
    query = view.substitute(relation_name, SignedTuple(row)) - view.as_query()
    with SQLiteSource(SCHEMAS, state) as source:
        sqlite_answer = source.evaluate(query)
    assert sqlite_answer == query.evaluate(bags)


@settings(max_examples=25, deadline=None)
@given(states())
def test_sqlite_matches_reference_on_full_view(state):
    view = make_view(False)
    bags = to_bags(state)
    with SQLiteSource(SCHEMAS, state) as source:
        assert source.evaluate(view.as_query()) == view.evaluate(bags)


@settings(max_examples=30, deadline=None)
@given(states(), rows2, rows2)
def test_multi_term_signed_queries_agree(state, row_a, row_b):
    """Compensated-query shapes: V<U_a> - (V<U_a>)<U_b> across evaluators."""
    view = make_view(True)
    bags = to_bags(state)
    first = view.substitute("r1", SignedTuple(row_a))
    query = first - first.substitute("r2", SignedTuple(row_b, MINUS))
    engine = evaluate_query(query, bags)
    reference = query.evaluate(bags)
    with SQLiteSource(SCHEMAS, state) as source:
        sqlite_answer = source.evaluate(query)
    assert engine == reference == sqlite_answer
