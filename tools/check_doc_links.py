#!/usr/bin/env python
"""Dead-link checker for the repo's markdown documentation.

Walks README.md, DESIGN.md, EXPERIMENTS.md, and docs/*.md, extracts
every markdown link, and verifies:

- **relative paths** resolve to an existing file or directory (relative
  to the file containing the link);
- **anchors** (``#fragment``, alone or after a path) match a heading in
  the target document, using GitHub's heading-to-anchor slug rules.

External schemes (http/https/mailto) are skipped — CI must not depend
on the network.  Fenced code blocks and inline code spans are ignored
so ASCII diagrams and ``[BLT86]``-style citations don't false-positive.

Usage::

    python tools/check_doc_links.py [repo-root]

Exits 0 when every link resolves, 1 otherwise (one line per broken
link: ``file:line: target — reason``).
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import Iterator, List, NamedTuple, Optional

#: Files checked, relative to the repo root (globs allowed).
DOC_GLOBS = ("README.md", "DESIGN.md", "EXPERIMENTS.md", "docs/*.md")

_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_HEADING = re.compile(r"^#{1,6}\s+(.*)$")
_FENCE = re.compile(r"^(```|~~~)")
_CODE_SPAN = re.compile(r"`[^`]*`")
_EXTERNAL = re.compile(r"^[a-zA-Z][a-zA-Z0-9+.-]*:")


class Broken(NamedTuple):
    file: Path
    line: int
    target: str
    reason: str


def slugify(heading: str) -> str:
    """GitHub's heading → anchor id rule.

    Lowercase; markup/punctuation dropped; spaces become hyphens.
    ``"## 1. Schemas, views"`` → ``"1-schemas-views"``.
    """

    text = _CODE_SPAN.sub(lambda m: m.group(0).strip("`"), heading)
    text = re.sub(r"[*_~]", "", text).strip().lower()
    text = re.sub(r"[^\w\- ]", "", text, flags=re.UNICODE)
    return text.replace(" ", "-")


def iter_content_lines(text: str) -> Iterator[tuple]:
    """Yield (lineno, line) pairs with fenced code blocks blanked out."""

    fence: Optional[str] = None
    for lineno, line in enumerate(text.splitlines(), start=1):
        match = _FENCE.match(line.strip())
        if match:
            marker = match.group(1)
            if fence is None:
                fence = marker
            elif marker == fence:
                fence = None
            continue
        if fence is None:
            yield lineno, line


def anchors_of(path: Path) -> set:
    """All anchor ids a markdown file exposes (headings, deduplicated)."""

    seen: dict = {}
    out = set()
    for _, line in iter_content_lines(path.read_text(encoding="utf-8")):
        match = _HEADING.match(line)
        if not match:
            continue
        slug = slugify(match.group(1))
        count = seen.get(slug, 0)
        seen[slug] = count + 1
        out.add(slug if count == 0 else f"{slug}-{count}")
    return out


def check_file(path: Path, root: Path) -> List[Broken]:
    broken: List[Broken] = []
    text = path.read_text(encoding="utf-8")
    for lineno, raw_line in iter_content_lines(text):
        line = _CODE_SPAN.sub("", raw_line)
        for match in _LINK.finditer(line):
            target = match.group(1)
            if _EXTERNAL.match(target):
                continue
            dest_part, _, fragment = target.partition("#")
            if dest_part:
                dest = (path.parent / dest_part).resolve()
                try:
                    dest.relative_to(root.resolve())
                except ValueError:
                    broken.append(Broken(path, lineno, target, "escapes the repository"))
                    continue
                if not dest.exists():
                    broken.append(Broken(path, lineno, target, "no such file"))
                    continue
            else:
                dest = path
            if fragment:
                if dest.is_dir() or dest.suffix.lower() not in (".md", ".markdown"):
                    broken.append(
                        Broken(path, lineno, target, "anchor into a non-markdown target")
                    )
                elif fragment.lower() not in anchors_of(dest):
                    broken.append(
                        Broken(path, lineno, target, f"no heading for #{fragment}")
                    )
    return broken


def check_tree(root: Path) -> List[Broken]:
    broken: List[Broken] = []
    for pattern in DOC_GLOBS:
        for path in sorted(root.glob(pattern)):
            broken.extend(check_file(path, root))
    return broken


def main(argv: List[str]) -> int:
    root = Path(argv[1]) if len(argv) > 1 else Path(__file__).resolve().parent.parent
    broken = check_tree(root)
    for item in broken:
        rel = item.file.relative_to(root)
        print(f"{rel}:{item.line}: {item.target} — {item.reason}")
    checked = sum(len(list(root.glob(p))) for p in DOC_GLOBS)
    if broken:
        print(f"{len(broken)} broken link(s) across {checked} file(s)")
        return 1
    print(f"all links OK across {checked} file(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
