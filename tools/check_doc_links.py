#!/usr/bin/env python
"""Dead-link checker for the repo's markdown documentation.

Walks README.md, DESIGN.md, EXPERIMENTS.md, and docs/*.md, extracts
every markdown link, and verifies:

- **relative paths** resolve to an existing file or directory (relative
  to the file containing the link);
- **anchors** (``#fragment``, alone or after a path) match a heading in
  the target document, using GitHub's heading-to-anchor slug rules;
- **lint CLI flags**: every ``--flag`` that ``docs/ANALYSIS.md``
  attributes to ``repro lint`` / ``python -m repro.analysis`` exists in
  the linter's argument parser (``src/repro/analysis/__main__.py``,
  read via ``ast`` — never imported), so the analysis docs cannot
  drift from the CLI;
- **runtime CLI flags**: likewise, every ``--flag`` that a
  runtime-documenting file (``docs/SERVING.md``, ``docs/RELATIONAL.md``,
  ``docs/PERFORMANCE.md``, ``docs/MULTIVIEW.md``) attributes to
  ``repro runtime`` exists in the main CLI's argument parser
  (``src/repro/cli.py``), so those docs cannot drift from the runtime
  flags they document (``--batch-k``, ``--wire-codec``,
  ``--share-compensation``, the serving flags, ...);
- **CLI subcommands**: every ``repro <sub>`` invocation any checked
  document shows (in a fenced block or an inline code span) names a
  subparser ``src/repro/cli.py`` actually registers, so a doc cannot
  advertise a ``repro freshness``-style entry point that does not
  exist.

External schemes (http/https/mailto) are skipped — CI must not depend
on the network.  Fenced code blocks and inline code spans are ignored
so ASCII diagrams and ``[BLT86]``-style citations don't false-positive.

Usage::

    python tools/check_doc_links.py [repo-root]

Exits 0 when every link resolves, 1 otherwise (one line per broken
link: ``file:line: target — reason``).
"""

from __future__ import annotations

import ast
import re
import sys
from pathlib import Path
from typing import Iterator, List, NamedTuple, Optional, Set, Tuple

#: Files checked, relative to the repo root (globs allowed).
DOC_GLOBS = ("README.md", "DESIGN.md", "EXPERIMENTS.md", "docs/*.md")

#: The document whose ``--flag`` references are validated, and the
#: argparse module they must resolve against.
ANALYSIS_DOC = "docs/ANALYSIS.md"
ANALYSIS_CLI = "src/repro/analysis/__main__.py"

#: The documents whose ``repro runtime --flag`` references are
#: validated, and the argparse module they must resolve against.
SERVING_DOC = "docs/SERVING.md"
RUNTIME_FLAG_DOCS = (
    SERVING_DOC,
    "docs/RELATIONAL.md",
    "docs/PERFORMANCE.md",
    "docs/MULTIVIEW.md",
)
RUNTIME_CLI = "src/repro/cli.py"

_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_FLAG = re.compile(r"(--[A-Za-z0-9][\w-]*)")
_LINT_INVOCATION = re.compile(r"repro\.analysis|repro lint")
_RUNTIME_INVOCATION = re.compile(r"repro runtime|-m repro runtime")
#: ``repro <sub>`` with a guard against ``from repro import ...`` lines
#: in fenced python examples (``repro`` followed by a keyword there).
_SUBCOMMAND = re.compile(r"(?<!from\s)\brepro\s+([a-z][a-z0-9-]*)")
_HEADING = re.compile(r"^#{1,6}\s+(.*)$")
_FENCE = re.compile(r"^(```|~~~)")
_CODE_SPAN = re.compile(r"`[^`]*`")
_EXTERNAL = re.compile(r"^[a-zA-Z][a-zA-Z0-9+.-]*:")


class Broken(NamedTuple):
    file: Path
    line: int
    target: str
    reason: str


def slugify(heading: str) -> str:
    """GitHub's heading → anchor id rule.

    Lowercase; markup/punctuation dropped; spaces become hyphens.
    ``"## 1. Schemas, views"`` → ``"1-schemas-views"``.
    """

    text = _CODE_SPAN.sub(lambda m: m.group(0).strip("`"), heading)
    text = re.sub(r"[*_~]", "", text).strip().lower()
    text = re.sub(r"[^\w\- ]", "", text, flags=re.UNICODE)
    return text.replace(" ", "-")


def iter_content_lines(text: str) -> Iterator[tuple]:
    """Yield (lineno, line) pairs with fenced code blocks blanked out."""

    fence: Optional[str] = None
    for lineno, line in enumerate(text.splitlines(), start=1):
        match = _FENCE.match(line.strip())
        if match:
            marker = match.group(1)
            if fence is None:
                fence = marker
            elif marker == fence:
                fence = None
            continue
        if fence is None:
            yield lineno, line


def anchors_of(path: Path) -> set:
    """All anchor ids a markdown file exposes (headings, deduplicated)."""

    seen: dict = {}
    out = set()
    for _, line in iter_content_lines(path.read_text(encoding="utf-8")):
        match = _HEADING.match(line)
        if not match:
            continue
        slug = slugify(match.group(1))
        count = seen.get(slug, 0)
        seen[slug] = count + 1
        out.add(slug if count == 0 else f"{slug}-{count}")
    return out


def check_file(path: Path, root: Path) -> List[Broken]:
    broken: List[Broken] = []
    text = path.read_text(encoding="utf-8")
    for lineno, raw_line in iter_content_lines(text):
        line = _CODE_SPAN.sub("", raw_line)
        for match in _LINK.finditer(line):
            target = match.group(1)
            if _EXTERNAL.match(target):
                continue
            dest_part, _, fragment = target.partition("#")
            if dest_part:
                dest = (path.parent / dest_part).resolve()
                try:
                    dest.relative_to(root.resolve())
                except ValueError:
                    broken.append(Broken(path, lineno, target, "escapes the repository"))
                    continue
                if not dest.exists():
                    broken.append(Broken(path, lineno, target, "no such file"))
                    continue
            else:
                dest = path
            if fragment:
                if dest.is_dir() or dest.suffix.lower() not in (".md", ".markdown"):
                    broken.append(
                        Broken(path, lineno, target, "anchor into a non-markdown target")
                    )
                elif fragment.lower() not in anchors_of(dest):
                    broken.append(
                        Broken(path, lineno, target, f"no heading for #{fragment}")
                    )
    return broken


def _parser_flags(root: Path, cli_module: str) -> Set[str]:
    """The ``--flags`` an argparse module actually defines.

    Read from the source with ``ast`` rather than imported: the checker
    must work without ``src`` on ``sys.path`` and must not execute
    library code.
    """

    flags: Set[str] = set()
    tree = ast.parse((root / cli_module).read_text(encoding="utf-8"))
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "add_argument"
        ):
            for arg in node.args:
                if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                    if arg.value.startswith("--"):
                        flags.add(arg.value)
    return flags


def lint_cli_flags(root: Path) -> Set[str]:
    """The ``--flags`` the lint CLI's argparse actually defines."""

    return _parser_flags(root, ANALYSIS_CLI)


def runtime_cli_flags(root: Path) -> Set[str]:
    """The ``--flags`` the main ``repro`` CLI's argparse defines.

    The ``lint`` subcommand builds its flags by delegating to
    ``repro.analysis.__main__.add_lint_arguments`` (a delegation pinned
    by :func:`check_lint_delegation`), so the lint flags are part of the
    main CLI's surface even though no ``add_argument`` call in
    ``repro/cli.py`` names them.
    """

    flags = _parser_flags(root, RUNTIME_CLI)
    if (root / ANALYSIS_CLI).exists() and not check_lint_delegation(root):
        flags |= _parser_flags(root, ANALYSIS_CLI)
    return flags


def runtime_cli_subcommands(root: Path) -> Set[str]:
    """The subcommand names the main CLI's argparse registers.

    The first positional string argument of every ``add_parser(...)``
    call, read via ``ast`` like :func:`_parser_flags`.
    """

    subs: Set[str] = set()
    tree = ast.parse((root / RUNTIME_CLI).read_text(encoding="utf-8"))
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "add_parser"
            and node.args
        ):
            first = node.args[0]
            if isinstance(first, ast.Constant) and isinstance(first.value, str):
                subs.add(first.value)
    return subs


def _flag_references(
    text: str, invocation: "re.Pattern[str]"
) -> Iterator[Tuple[int, str]]:
    """``(lineno, flag)`` for every CLI flag the document mentions.

    Two reference shapes count:

    - inside fenced code blocks, flags on lines matching ``invocation``;
    - inline code spans that either contain such an invocation or *are*
      a flag (``` `--format json` ```, ``` `--list-rules` ```) — by
      convention a span starting with ``--`` refers to the document's
      CLI.
    """

    fence: Optional[str] = None
    for lineno, line in enumerate(text.splitlines(), start=1):
        match = _FENCE.match(line.strip())
        if match:
            marker = match.group(1)
            if fence is None:
                fence = marker
            elif marker == fence:
                fence = None
            continue
        if fence is not None:
            if invocation.search(line):
                for flag in _FLAG.findall(line):
                    yield lineno, flag
            continue
        for span in _CODE_SPAN.findall(line):
            content = span.strip("`")
            if invocation.search(content) or content.startswith("--"):
                for flag in _FLAG.findall(content):
                    yield lineno, flag


def lint_flag_references(text: str) -> Iterator[Tuple[int, str]]:
    """``(lineno, flag)`` for every lint-CLI flag the document mentions."""

    return _flag_references(text, _LINT_INVOCATION)


def runtime_flag_references(text: str) -> Iterator[Tuple[int, str]]:
    """``(lineno, flag)`` for every runtime-CLI flag the doc mentions."""

    return _flag_references(text, _RUNTIME_INVOCATION)


def check_lint_flags(root: Path) -> List[Broken]:
    """Dangling ``repro lint`` flag references in ``docs/ANALYSIS.md``."""

    doc = root / ANALYSIS_DOC
    if not doc.exists() or not (root / ANALYSIS_CLI).exists():
        return []
    known = lint_cli_flags(root)
    broken: List[Broken] = []
    for lineno, flag in lint_flag_references(doc.read_text(encoding="utf-8")):
        if flag not in known:
            broken.append(
                Broken(
                    doc,
                    lineno,
                    flag,
                    f"no such repro lint flag (parser defines: {sorted(known)})",
                )
            )
    return broken


def check_runtime_flags(root: Path) -> List[Broken]:
    """Dangling ``repro runtime`` flag references in the runtime docs."""

    if not (root / RUNTIME_CLI).exists():
        return []
    known: Optional[Set[str]] = None
    broken: List[Broken] = []
    for relpath in RUNTIME_FLAG_DOCS:
        doc = root / relpath
        if not doc.exists():
            continue
        if known is None:
            known = runtime_cli_flags(root)
        for lineno, flag in runtime_flag_references(
            doc.read_text(encoding="utf-8")
        ):
            if flag not in known:
                broken.append(
                    Broken(
                        doc,
                        lineno,
                        flag,
                        "no such repro runtime flag "
                        f"(parser defines: {sorted(known)})",
                    )
                )
    return broken


def subcommand_references(text: str) -> Iterator[Tuple[int, str]]:
    """``(lineno, sub)`` for every ``repro <sub>`` invocation shown.

    Only code positions count — lines inside fenced blocks and inline
    code spans — so prose like "the repro warehouse" never matches.
    """

    fence: Optional[str] = None
    for lineno, line in enumerate(text.splitlines(), start=1):
        match = _FENCE.match(line.strip())
        if match:
            marker = match.group(1)
            if fence is None:
                fence = marker
            elif marker == fence:
                fence = None
            continue
        if fence is not None:
            for hit in _SUBCOMMAND.finditer(line):
                yield lineno, hit.group(1)
            continue
        for span in _CODE_SPAN.findall(line):
            for hit in _SUBCOMMAND.finditer(span.strip("`")):
                yield lineno, hit.group(1)


def check_subcommands(root: Path) -> List[Broken]:
    """Dangling ``repro <sub>`` invocations anywhere in the doc set."""

    if not (root / RUNTIME_CLI).exists():
        return []
    known = runtime_cli_subcommands(root)
    broken: List[Broken] = []
    for pattern in DOC_GLOBS:
        for path in sorted(root.glob(pattern)):
            for lineno, sub in subcommand_references(
                path.read_text(encoding="utf-8")
            ):
                if sub not in known:
                    broken.append(
                        Broken(
                            path,
                            lineno,
                            f"repro {sub}",
                            "no such repro subcommand "
                            f"(parser defines: {sorted(known)})",
                        )
                    )
    return broken


def check_lint_delegation(root: Path) -> List[Broken]:
    """The ``repro lint`` subparser must delegate to ``add_lint_arguments``.

    :func:`check_lint_flags` validates ``docs/ANALYSIS.md`` against the
    analysis module's parser — which is only sound while the main CLI
    builds its ``lint`` subcommand from that same helper.  This check
    pins the delegation, so a hand-rolled divergent flag set in
    ``repro.cli`` fails the doc check instead of silently forking the
    two front-ends.
    """

    cli = root / RUNTIME_CLI
    if not cli.exists() or not (root / ANALYSIS_CLI).exists():
        return []
    tree = ast.parse(cli.read_text(encoding="utf-8"))
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            func = node.func
            name = (
                func.id
                if isinstance(func, ast.Name)
                else func.attr if isinstance(func, ast.Attribute) else None
            )
            if name == "add_lint_arguments":
                return []
    return [
        Broken(
            cli,
            1,
            "add_lint_arguments",
            "the lint subparser no longer delegates to "
            "repro.analysis.__main__.add_lint_arguments, so the "
            "documented lint flags are not validated against it",
        )
    ]


def check_tree(root: Path) -> List[Broken]:
    broken: List[Broken] = []
    for pattern in DOC_GLOBS:
        for path in sorted(root.glob(pattern)):
            broken.extend(check_file(path, root))
    broken.extend(check_lint_flags(root))
    broken.extend(check_runtime_flags(root))
    broken.extend(check_subcommands(root))
    broken.extend(check_lint_delegation(root))
    return broken


def main(argv: List[str]) -> int:
    root = Path(argv[1]) if len(argv) > 1 else Path(__file__).resolve().parent.parent
    broken = check_tree(root)
    for item in broken:
        rel = item.file.relative_to(root)
        print(f"{rel}:{item.line}: {item.target} — {item.reason}")
    checked = sum(len(list(root.glob(p))) for p in DOC_GLOBS)
    if broken:
        print(f"{len(broken)} broken link(s) across {checked} file(s)")
        return 1
    print(f"all links OK across {checked} file(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
