"""E2 — Figure 6.2: bytes transferred versus relation cardinality C.

Example 6 with three updates, C swept over 1..20.  Paper claims:
ECA's curves are flat in C, RV's grow linearly, and ECA beats RV unless
the relations are extremely small (fewer than ~5 tuples).
"""

from __future__ import annotations

from _bench_util import emit, monotone_nondecreasing

from repro.experiments.figures import figure_6_2
from repro.experiments.report import render_series


def test_bench_figure_6_2(benchmark, paper_params):
    series = benchmark(figure_6_2, paper_params)
    emit(render_series("Figure 6.2 — B versus C (3 updates)", series, x_key="C"))

    # ECA curves are independent of C.
    assert len(set(series["BECABest"])) == 1
    assert len(set(series["BECAWorst"])) == 1

    # RV curves grow linearly with C (strictly, since S*sigma*J^2 > 0).
    assert monotone_nondecreasing(series["BRVBest"])
    steps = {
        round(series["BRVBest"][i + 1] - series["BRVBest"][i], 6)
        for i in range(len(series["C"]) - 1)
    }
    assert len(steps) == 1

    # Worst-case ordering: RVWorst is 3x RVBest throughout.
    for best, worst in zip(series["BRVBest"], series["BRVWorst"]):
        assert worst == 3 * best

    # Crossover: ECA wins except for extremely small relations (C < ~5).
    for c, rv_best, eca_worst in zip(
        series["C"], series["BRVBest"], series["BECAWorst"]
    ):
        if c >= 5:
            assert eca_worst <= rv_best
    assert series["BECAWorst"][0] > series["BRVBest"][0]  # tiny C: RV wins


def test_bench_figure_6_2_wide_join_factor_sensitivity(benchmark, paper_params):
    """Paper: 'this result continues to hold over wide ranges of J,
    except if J is very small'."""

    def sweep():
        return {
            j: figure_6_2(paper_params.replace(join_factor=j))
            for j in (1, 2, 4, 8, 16)
        }

    by_j = benchmark(sweep)
    for j, series in by_j.items():
        if j <= 1:
            continue  # very small J: the exception the paper allows
        tail = [
            (rv, eca)
            for c, rv, eca in zip(series["C"], series["BRVBest"], series["BECAWorst"])
            if c >= 10
        ]
        assert all(eca <= rv for rv, eca in tail), f"J={j}"
