"""Benchmarks for the Section 7 extensions: batching and multi-source.

Not figures from the paper — these quantify the future-work items the
paper predicted ("this extension should result in a very useful
performance enhancement" for batching; "additional issues are raised" for
multiple sources).
"""

from __future__ import annotations

from _bench_util import emit

from repro.consistency import check_trace
from repro.core.batch import BatchECA
from repro.core.eca import ECA
from repro.costmodel.counters import CostRecorder
from repro.experiments.report import render_table
from repro.relational.engine import evaluate_view
from repro.relational.schema import RelationSchema
from repro.relational.views import View
from repro.simulation.driver import Simulation
from repro.simulation.schedules import RandomSchedule, WorstCaseSchedule
from repro.source.memory import MemorySource
from repro.workloads.random_gen import random_workload

SCHEMAS = [RelationSchema("r1", ("W", "X")), RelationSchema("r2", ("X", "Y"))]
INITIAL = {"r1": [(1, 2), (2, 3)], "r2": [(2, 5), (3, 6)]}


def run_batched(batch_size: int, k: int = 24):
    view = View.natural_join("V", SCHEMAS, ["W", "Y"])
    source = MemorySource(SCHEMAS, INITIAL)
    initial_view = evaluate_view(view, source.snapshot())
    if batch_size == 1:
        warehouse = ECA(view, initial_view)
    else:
        warehouse = BatchECA(view, initial_view, batch_size=batch_size)
    recorder = CostRecorder()
    workload = random_workload(SCHEMAS, k, seed=3, initial=INITIAL)
    trace = Simulation(source, warehouse, workload, recorder).run(WorstCaseSchedule())
    report = check_trace(view, trace)
    return recorder, report


def test_bench_batching_message_economics(benchmark):
    """2*ceil(k/b) messages, strong consistency preserved at every b."""

    def sweep():
        return {b: run_batched(b) for b in (1, 2, 4, 8, 24)}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = []
    k = 24
    for batch_size, (recorder, report) in sorted(results.items()):
        rows.append(
            {
                "batch": batch_size,
                "messages": recorder.messages,
                "bytes": recorder.bytes,
                "level": report.level(),
            }
        )
        assert recorder.messages == 2 * -(-k // batch_size)
        assert report.strongly_consistent
    emit(render_table("Batching economics (k=24, worst-case interleaving)", rows))
    # Strictly fewer messages as batches grow.
    messages = [row["messages"] for row in rows]
    assert messages == sorted(messages, reverse=True)


def test_bench_multisource_failure_rate(benchmark):
    """Quantify how often the naive multi-source transplant breaks, and
    that both SC and the Strobe-style algorithm never do."""
    from repro.multisource import (
        FragmentingIncremental,
        MultiSourceSimulation,
        MultiSourceStoredCopies,
        StrobeStyle,
        check_cut_consistency,
        check_cut_convergence,
    )

    r1 = RelationSchema("r1", ("W", "X"), key=("W",))
    r2 = RelationSchema("r2", ("X", "Y"), key=("Y",))
    r3 = RelationSchema("r3", ("Y", "Z"), key=("Z",))
    owners = {"r1": "A", "r2": "B", "r3": "B"}
    initial = {"r1": [(1, 2), (4, 2)], "r2": [(2, 5)], "r3": [(5, 3), (9, 8)]}
    view = View.natural_join("V", [r1, r2, r3], ["W", "r2.Y", "Z"])

    def audit(runs=25):
        kinds = ("naive", "sc", "strobe")
        counts = {kind: 0 for kind in kinds}
        cut_ok = {kind: 0 for kind in kinds}
        for seed in range(runs):
            workload = random_workload(
                [r1, r2, r3], 8, seed=seed, initial=initial, respect_keys=True
            )
            for kind in kinds:
                a = MemorySource([r1], {"r1": initial["r1"]})
                b = MemorySource(
                    [r2, r3], {"r2": initial["r2"], "r3": initial["r3"]}
                )
                merged = {**a.snapshot(), **b.snapshot()}
                initial_view = evaluate_view(view, merged)
                if kind == "naive":
                    algo = FragmentingIncremental(view, owners, initial_view)
                elif kind == "strobe":
                    algo = StrobeStyle(view, owners, initial_view)
                else:
                    algo = MultiSourceStoredCopies(view, owners, initial_view, merged)
                sim = MultiSourceSimulation({"A": a, "B": b}, algo, list(workload))
                trace = sim.run(RandomSchedule(seed * 3 + 1))
                counts[kind] += check_cut_convergence(
                    view, sim.per_source_states, trace.final_view_state
                )
                cut_ok[kind] += check_cut_consistency(
                    view, sim.per_source_states, trace.view_states
                )
        return counts, cut_ok, runs

    counts, cut_ok, runs = benchmark.pedantic(audit, rounds=1, iterations=1)
    emit(
        f"multi-source over {runs} interleavings: naive converged "
        f"{counts['naive']}/{runs} (cut-consistent {cut_ok['naive']}), "
        f"SC {counts['sc']}/{runs} (cut-consistent {cut_ok['sc']}), "
        f"strobe-style {counts['strobe']}/{runs} "
        f"(cut-consistent {cut_ok['strobe']})"
    )
    assert counts["sc"] == cut_ok["sc"] == runs
    assert counts["strobe"] == cut_ok["strobe"] == runs
    assert counts["naive"] < runs
