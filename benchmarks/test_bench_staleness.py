"""Freshness versus message cost — the timing-policy trade-off.

Section 2 situates the paper among immediate/deferred/periodic update
policies ("the efficiency of an approach depends heavily on ... update
patterns" [Han87]).  This benchmark quantifies that frontier for our
implementations: ECA buys minimal lag with 2k messages; RV(s) and
BatchECA(b) slide along the curve — fewer messages, more staleness.
"""

from __future__ import annotations

from _bench_util import emit

from repro.consistency import check_trace, staleness_profile
from repro.core.batch import BatchECA
from repro.core.eca import ECA
from repro.core.recompute import RecomputeView
from repro.costmodel.counters import CostRecorder
from repro.experiments.report import render_table
from repro.relational.engine import evaluate_view
from repro.relational.schema import RelationSchema
from repro.relational.views import View
from repro.simulation.driver import Simulation
from repro.simulation.schedules import BestCaseSchedule
from repro.source.memory import MemorySource
from repro.workloads.random_gen import random_workload

SCHEMAS = [RelationSchema("r1", ("W", "X")), RelationSchema("r2", ("X", "Y"))]
INITIAL = {"r1": [(1, 2), (2, 3)], "r2": [(2, 5), (3, 6)]}
K = 24


def run_policy(label, factory):
    view = View.natural_join("V", SCHEMAS, ["W", "Y"])
    source = MemorySource(SCHEMAS, INITIAL)
    warehouse = factory(view, evaluate_view(view, source.snapshot()))
    recorder = CostRecorder()
    workload = random_workload(SCHEMAS, K, seed=9, initial=INITIAL)
    trace = Simulation(source, warehouse, workload, recorder).run(
        BestCaseSchedule()
    )
    profile = staleness_profile(view, trace)
    report = check_trace(view, trace)
    return {
        "policy": label,
        "messages": recorder.messages,
        "mean lag": round(profile.mean_lag, 2),
        "max lag": profile.max_lag,
        "in sync": f"{profile.in_sync_fraction:.0%}",
        "level": report.level(),
    }


def test_bench_staleness_vs_messages(benchmark):
    policies = [
        ("ECA (immediate)", lambda v, iv: ECA(v, iv)),
        ("RV s=1", lambda v, iv: RecomputeView(v, iv, period=1)),
        ("RV s=6", lambda v, iv: RecomputeView(v, iv, period=6)),
        ("RV s=24", lambda v, iv: RecomputeView(v, iv, period=24)),
        ("Batch b=4", lambda v, iv: BatchECA(v, iv, batch_size=4)),
        ("Batch b=12", lambda v, iv: BatchECA(v, iv, batch_size=12)),
    ]

    def sweep():
        return [run_policy(label, factory) for label, factory in policies]

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(render_table(f"Freshness vs messages (k={K}, quiet schedule)", rows))

    by_policy = {row["policy"]: row for row in rows}
    # Everything here is at least strongly consistent.
    for row in rows:
        assert row["level"] in ("strongly consistent", "complete"), row

    # The frontier: fewer messages <-> more staleness.
    assert by_policy["ECA (immediate)"]["messages"] == 2 * K
    assert by_policy["RV s=24"]["messages"] == 2
    assert by_policy["RV s=24"]["max lag"] >= K - 1
    assert by_policy["ECA (immediate)"]["mean lag"] <= by_policy["RV s=6"]["mean lag"]
    assert by_policy["RV s=6"]["mean lag"] <= by_policy["RV s=24"]["mean lag"]
    assert (
        by_policy["Batch b=4"]["messages"]
        < by_policy["ECA (immediate)"]["messages"]
    )
    assert by_policy["Batch b=4"]["mean lag"] <= by_policy["Batch b=12"]["mean lag"]
