"""Shared benchmark fixtures and reporting helpers.

Run with ``pytest benchmarks/ --benchmark-only``.  Each module regenerates
one experiment from the paper (a figure or a table), asserts its
qualitative claims, and — with ``-s`` — prints the regenerated series in
the paper's layout.
"""

from __future__ import annotations

import pytest

from repro.costmodel.parameters import PaperParameters


@pytest.fixture(scope="session")
def paper_params() -> PaperParameters:
    """Table 1 defaults, shared by every benchmark."""
    return PaperParameters()


def emit(text: str) -> None:
    """Print a regenerated series (visible with -s)."""
    print()
    print(text)
