"""E1 — Section 6.1: message counts, analytic and on-the-wire.

The paper's claim: RV sends between 2 (recompute once) and 2k messages,
ECA always sends exactly 2k.  We regenerate the analytic table and verify
the 2k / 2*ceil(k/s) laws against the actual simulation's channels.
"""

from __future__ import annotations

from repro.core.eca import ECA
from repro.core.recompute import RecomputeView
from repro.costmodel.analytic import messages_eca, messages_rv
from repro.costmodel.counters import CostRecorder
from repro.experiments.report import render_table
from repro.experiments.tables import messages_table
from repro.relational.schema import RelationSchema
from repro.relational.views import View
from repro.simulation.driver import Simulation
from repro.simulation.schedules import BestCaseSchedule, WorstCaseSchedule
from repro.source.memory import MemorySource
from repro.source.updates import insert

from _bench_util import emit

SCHEMAS = [RelationSchema("r1", ("W", "X")), RelationSchema("r2", ("X", "Y"))]


def _run(algorithm_factory, k, schedule):
    view = View.natural_join("V", SCHEMAS, ["W"])
    source = MemorySource(SCHEMAS)
    recorder = CostRecorder()
    workload = [insert("r1", (i, i % 3)) for i in range(k)]
    Simulation(source, algorithm_factory(view), workload, recorder).run(schedule)
    return recorder.messages


def test_bench_messages_table(benchmark):
    rows = benchmark(messages_table, k_values=(1, 5, 10, 50, 100), periods=(1, 5, 10))
    emit(render_table("Section 6.1 — message counts (analytic)", rows))
    for row in rows:
        assert row["M_ECA"] == 2 * row["k"]
        assert 2 <= row["M_RV"] <= row["M_ECA"]


def test_bench_eca_sends_exactly_2k_messages(benchmark):
    def run():
        return {k: _run(lambda v: ECA(v), k, WorstCaseSchedule()) for k in (1, 4, 8, 16)}

    measured = benchmark(run)
    for k, messages in measured.items():
        assert messages == messages_eca(k)


def test_bench_rv_message_law_on_the_wire(benchmark):
    def run():
        out = {}
        for k, s in ((8, 1), (8, 2), (8, 4), (8, 8)):
            out[(k, s)] = _run(
                lambda v, s=s: RecomputeView(v, period=s), k, BestCaseSchedule()
            )
        return out

    measured = benchmark(run)
    for (k, s), messages in measured.items():
        assert messages == messages_rv(k, s)
