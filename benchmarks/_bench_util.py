"""Helpers shared by the benchmark modules."""

from __future__ import annotations


def emit(text: str) -> None:
    """Print a regenerated series/table (visible with pytest -s)."""
    print()
    print(text)


def monotone_nondecreasing(values) -> bool:
    return all(a <= b for a, b in zip(values, values[1:]))


def strictly_increasing(values) -> bool:
    return all(a < b for a, b in zip(values, values[1:]))
