"""E3 — Figure 6.3: bytes transferred versus number of updates k (C=100).

Paper claims: BECABest is linear and crosses BRVBest (one recompute) at
k = 100; BECAWorst is quadratic and crosses at k = 30; BRVWorst is always
substantially worse than BECAWorst.
"""

from __future__ import annotations

from _bench_util import emit, strictly_increasing

from repro.experiments.figures import figure_6_3
from repro.experiments.report import render_series


def test_bench_figure_6_3(benchmark, paper_params):
    series = benchmark(figure_6_3, paper_params)
    sampled = {
        name: [values[i] for i in range(0, 120, 10)]
        for name, values in series.items()
    }
    emit(render_series("Figure 6.3 — B versus k (C=100), every 10th k", sampled))

    k = series["k"]
    rv_best = series["BRVBest"][0]

    # RVBest constant; every other curve strictly increasing in k.
    assert len(set(series["BRVBest"])) == 1
    for name in ("BRVWorst", "BECABest", "BECAWorst"):
        assert strictly_increasing(series[name]), name

    # Crossovers at exactly the paper's k values.
    def crossover(name):
        for kk, value in zip(k, series[name]):
            if value >= rv_best:
                return kk
        raise AssertionError(f"{name} never crosses RVBest")

    assert crossover("BECABest") == 100
    assert crossover("BECAWorst") == 30

    # RVWorst dominates ECAWorst everywhere.
    for worst_rv, worst_eca in zip(series["BRVWorst"], series["BECAWorst"]):
        assert worst_rv > worst_eca


def test_bench_figure_6_3_quadratic_compensation_term(benchmark, paper_params):
    """The worst-case gap to the best case is the pure compensation cost,
    k(k-1) S sigma J / 3 — quadratic in k."""

    def gaps():
        series = figure_6_3(paper_params)
        return [w - b for w, b in zip(series["BECAWorst"], series["BECABest"])]

    import pytest

    gap = benchmark(gaps)
    S, sigma, J = paper_params.S, paper_params.sigma, paper_params.J
    for index, value in enumerate(gap):
        k = index + 1
        assert value == pytest.approx(k * (k - 1) * S * sigma * J / 3)


def test_bench_figure_6_3_larger_cardinality_moves_crossover_out(
    benchmark, paper_params
):
    """Paper: 'for larger cardinalities the crossover points will be at
    larger numbers of updates'."""

    def crossovers():
        from repro.costmodel import analytic

        out = {}
        for c in (50, 100, 200, 400):
            params = paper_params.replace(cardinality=c)
            out[c] = analytic.crossover_k(
                lambda p, k: analytic.bytes_eca_worst(p, k),
                lambda p, k: analytic.bytes_rv_best(p),
                params,
            )
        return out

    points = benchmark(crossovers)
    values = [points[c] for c in sorted(points)]
    assert values == sorted(values)
    assert values[0] < values[-1]
