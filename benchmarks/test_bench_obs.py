"""Observability overhead benchmarks.

The issue's bar: with observability *disabled* (``obs=None``, the
default) the runtime must stay within 5% of its uninstrumented
throughput — every hook site is a single ``is None`` check.  The
enabled cost (spans + live counters) is measured alongside so the
trade-off is a number, not folklore.

Run with ``pytest benchmarks/ --benchmark-only`` (add ``-s`` for the
regenerated tables).
"""

from __future__ import annotations

import time

from repro.core.eca import ECA
from repro.experiments.report import render_table
from repro.relational.engine import evaluate_view
from repro.relational.schema import RelationSchema
from repro.relational.views import View
from repro.runtime import Observability, run_concurrent
from repro.source.memory import MemorySource
from repro.workloads.random_gen import random_workload

from _bench_util import emit

SCHEMAS = [RelationSchema("r1", ("W", "X")), RelationSchema("r2", ("X", "Y"))]
INITIAL = {"r1": [(1, 2), (2, 3)], "r2": [(2, 5), (3, 6)]}
K = 24


def _run_once(obs):
    view = View.natural_join("V", SCHEMAS, ["W", "Y"])
    source = MemorySource(SCHEMAS, INITIAL)
    warehouse = ECA(view, evaluate_view(view, source.snapshot()))
    workload = random_workload(SCHEMAS, K, seed=13, initial=INITIAL)
    return run_concurrent(
        source, warehouse, workload, clients=2, seed=1, obs=obs
    )


def _median_seconds(factory, repeats=9):
    samples = []
    for _ in range(repeats):
        started = time.perf_counter()
        _run_once(factory())
        samples.append(time.perf_counter() - started)
    return sorted(samples)[len(samples) // 2]


def test_bench_runtime_without_obs(benchmark):
    """Baseline: the default obs=None path."""
    result = benchmark(lambda: _run_once(None))
    assert result.updates == K


def test_bench_runtime_with_obs(benchmark):
    """Fully instrumented: spans + live metrics on the same workload."""
    result = benchmark(lambda: _run_once(Observability()))
    assert result.updates == K


def test_obs_disabled_overhead_within_bound():
    """Disabled observability must cost <= 5% of runtime throughput.

    The disabled path adds exactly one ``obs is None`` guard per hook
    site, so the honest measurement is: (guard cost x hook executions)
    as a fraction of the uninstrumented run time.  Wall-clock A/B of two
    full runs cannot resolve an effect this small above scheduler noise;
    the projection can, and it is what the 5% claim actually rests on.
    """
    # Warm-up, then the median uninstrumented run time.
    _run_once(None)
    baseline = _median_seconds(lambda: None)
    enabled = _median_seconds(Observability)

    # Upper-bound the number of guard evaluations one run performs:
    # every span an enabled run records corresponds to at most a few
    # guarded hook calls (begin/end + sends), so 8x spans is generous.
    obs = Observability()
    _run_once(obs)
    guard_evals = 8 * len(obs.tracer)

    # Median cost of one `x is not None` check (amortized over a loop).
    probe = None
    loops = 200_000
    samples = []
    for _ in range(5):
        started = time.perf_counter()
        hits = 0
        for _ in range(loops):
            if probe is not None:
                hits += 1
        samples.append((time.perf_counter() - started) / loops)
    guard_seconds = sorted(samples)[len(samples) // 2]

    projected = guard_evals * guard_seconds / baseline
    rows = [
        {
            "mode": "obs=None (default)",
            "median ms": round(baseline * 1000, 2),
            "overhead": f"{projected * 100:.3f}% (projected)",
        },
        {
            "mode": "obs=Observability()",
            "median ms": round(enabled * 1000, 2),
            "overhead": f"{(enabled / baseline - 1) * 100:+.1f}% (measured)",
        },
    ]
    emit(render_table(f"Observability overhead (k={K}, 2 clients)", rows))
    assert projected < 0.05, (
        f"disabled-mode guards project to {projected * 100:.2f}% "
        f"({guard_evals} guard evals x {guard_seconds * 1e9:.0f} ns "
        f"over a {baseline * 1000:.1f} ms run)"
    )


def test_obs_disabled_path_adds_no_spans_or_series():
    """Structural half of the overhead claim: obs=None records nothing."""
    result = _run_once(None)
    assert result.updates == K
    obs = Observability()
    observed = _run_once(obs)
    assert observed.final_view == result.final_view
    assert len(obs.tracer) > 0
