"""The serving-tier trade-off: hit rate versus staleness bound.

The bounded-staleness cache (docs/SERVING.md; Stale View Cleaning,
arXiv:1509.07454) trades read freshness for backend load.  This
benchmark sweeps the staleness bound over one fixed maintenance run and
a fixed Zipf read mix and proves the three acceptance properties:

- hit rate is monotone nondecreasing in the bound (a larger bound can
  only turn reloads into stale serves);
- a nonzero bound cuts backend view reads by at least 5x versus the
  cache-off baseline;
- no stale answer is ever served with lag above the bound.
"""

from __future__ import annotations

import pytest

from _bench_util import emit, monotone_nondecreasing

from repro.core.eca import ECA
from repro.experiments.report import render_table
from repro.relational.engine import evaluate_view
from repro.relational.schema import RelationSchema
from repro.relational.views import View
from repro.runtime import run_concurrent
from repro.serving import ServingCache, reader_for
from repro.source.memory import MemorySource
from repro.warehouse.catalog import WarehouseCatalog
from repro.workloads.random_gen import random_workload, zipf_read_workload

N_VIEWS = 2
UPDATES = 16
READS = 200
SEED = 11
BOUNDS = (0, 1, 2, 4, 8)


def build():
    sources = {}
    algorithms = {}
    workloads = {}
    for index in range(N_VIEWS):
        prefix = f"s{index}"
        schemas = [
            RelationSchema(f"{prefix}r1", ("W", "X"), key=("W",)),
            RelationSchema(f"{prefix}r2", ("X", "Y"), key=("Y",)),
        ]
        initial = {
            f"{prefix}r1": [(1, 2), (2, 3)],
            f"{prefix}r2": [(2, 5), (3, 6)],
        }
        source = MemorySource(schemas, initial)
        sources[prefix] = source
        view = View.natural_join(f"V{index}", schemas, ["W", "Y"])
        algorithms[f"V{index}"] = ECA(
            view, evaluate_view(view, source.snapshot())
        )
        workloads[prefix] = random_workload(
            schemas, UPDATES, seed=SEED + index, initial=initial,
            respect_keys=True,
        )
    return sources, WarehouseCatalog(algorithms), workloads


def run_with_bound(bound, reads, capacity=32):
    sources, catalog, workloads = build()
    cache = ServingCache(capacity=capacity, staleness_bound=bound)
    result = run_concurrent(
        sources, catalog, workloads, clients=0, seed=SEED,
        cache=cache, read_workload=reads,
    )
    return result


def run_cache_off(reads):
    sources, catalog, workloads = build()
    return run_concurrent(
        sources, catalog, workloads, clients=0, seed=SEED,
        read_workload=reads,
    )


def test_bench_serving_hit_rate_vs_bound(benchmark):
    sources, catalog, _ = build()
    reads = zipf_read_workload(
        reader_for(catalog).current_keys(), READS, theta=1.0, seed=SEED
    )

    def sweep():
        baseline = run_cache_off(reads)
        rows = [
            {
                "bound": "off",
                "hit rate": "-",
                "stale served": 0,
                "max lag": "-",
                "backend reads": baseline.serving["backend_reads"],
            }
        ]
        runs = []
        for bound in BOUNDS:
            result = run_with_bound(bound, reads)
            serving = result.serving
            rows.append(
                {
                    "bound": bound,
                    "hit rate": f"{serving['hit_rate']:.2f}",
                    "stale served": serving["stale_served"],
                    "max lag": serving["max_served_lag"],
                    "backend reads": serving["backend_reads"],
                }
            )
            runs.append(result)
        return baseline, runs, rows

    baseline, runs, rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(render_table("Serving: hit rate vs staleness bound", rows))

    # The same read mix reached every run.
    assert baseline.serving["reads"] == READS
    assert all(r.serving["reads"] == READS for r in runs)

    # Monotone: widening the bound never lowers the hit rate and never
    # raises backend traffic.
    hit_rates = [r.serving["hit_rate"] for r in runs]
    backend = [r.serving["backend_reads"] for r in runs]
    assert monotone_nondecreasing(hit_rates)
    assert monotone_nondecreasing(list(reversed(backend)))

    # >= 5x backend-read reduction at a nonzero bound vs cache-off.
    off_reads = baseline.serving["backend_reads"]
    assert off_reads == READS  # every direct read hits the warehouse
    nonzero = dict(zip(BOUNDS, runs))[2].serving["backend_reads"]
    assert nonzero * 5 <= off_reads, (
        f"bound 2 still issued {nonzero} backend reads vs {off_reads} off"
    )

    # Every stale answer stays within its run's bound.
    for bound, result in zip(BOUNDS, runs):
        assert result.serving["max_served_lag"] <= bound
        for read in result.read_results["reader-0"]:
            assert read.lag <= bound


def test_bench_serving_skew_raises_hit_rate(benchmark):
    """Hotter read mixes concentrate on fewer keys, so a cache too small
    for the whole universe serves more of them: hit rate grows with
    theta once eviction pressure is real (capacity 1 here)."""
    sources, catalog, _ = build()
    keys = reader_for(catalog).current_keys()

    def sweep():
        out = []
        for theta in (0.0, 1.0, 8.0):
            reads = zipf_read_workload(keys, READS, theta=theta, seed=SEED)
            result = run_with_bound(1, reads, capacity=1)
            out.append((theta, result.serving["hit_rate"]))
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(f"hit rate by theta (capacity 1): {results}")
    rates = [rate for _, rate in results]
    assert monotone_nondecreasing(rates)
    assert rates[-1] > rates[0]
    assert rates[-1] > 0.9
