"""Fan-in: N overlapping views behind one catalog, sharing on vs off.

The shared-compensation planner (``docs/MULTIVIEW.md``) collapses
signature-equal compensating queries within one atomic event, so a
warehouse maintaining N structurally identical views over one source
should pay roughly the round trips of maintaining one.  This benchmark
sweeps N over {1, 4, 16, 64} and reports, for both catalog modes, the
distinct source round trips the planner issued and the paper's
cost-model ``M`` (query + answer messages) / ``B`` (answer bytes)
measured by a :class:`~repro.costmodel.counters.CostRecorder`.

Acceptance (the ISSUE's bar): at N=16, sharing cuts source round trips
by at least 2x — and every view's final state is identical either way.
"""

from __future__ import annotations

from _bench_util import emit

from repro.core.registry import create_algorithm
from repro.costmodel.counters import CostRecorder
from repro.experiments.report import render_table
from repro.relational.engine import evaluate_view
from repro.relational.schema import RelationSchema
from repro.relational.views import View
from repro.simulation.driver import Simulation
from repro.simulation.schedules import WorstCaseSchedule
from repro.source.memory import MemorySource
from repro.source.updates import insert
from repro.warehouse.catalog import WarehouseCatalog

SCHEMAS = [
    RelationSchema("r1", ("W", "X"), key=("W",)),
    RelationSchema("r2", ("X", "Y"), key=("Y",)),
]
INITIAL = {"r1": [(1, 2), (2, 3)], "r2": [(2, 5), (3, 6)]}

WORKLOAD = [
    insert("r1", (10, 2)),
    insert("r2", (2, 20)),
    insert("r1", (11, 3)),
    insert("r1", (12, 2)),
    insert("r2", (3, 21)),
    insert("r1", (13, 9)),
]

FAN_INS = (1, 4, 16, 64)


def build(n_views, share):
    source = MemorySource(SCHEMAS, INITIAL)
    algorithms = {}
    for index in range(n_views):
        view = View.natural_join(f"V{index}", SCHEMAS, ["W", "Y"])
        algorithms[f"V{index}"] = create_algorithm(
            "eca", view, evaluate_view(view, source.snapshot())
        )
    return source, WarehouseCatalog(algorithms, share_compensation=share)


def run_once(n_views, share):
    """One maintenance run under the compensation-heavy schedule.

    WorstCaseSchedule executes every update before any answer returns,
    so each event's compensating queries are the interesting, deeply
    compensated kind — the regime where N-way duplication hurts most.
    """
    source, catalog = build(n_views, share)
    recorder = CostRecorder()
    Simulation(source, catalog, list(WORKLOAD), recorder).run(
        WorstCaseSchedule()
    )
    issued, saved = catalog.shared_query_stats()
    states = {name: catalog.state_of(name) for name in catalog.algorithms}
    return {
        "round_trips": issued,
        "saved": saved,
        "M": recorder.messages,
        "B": recorder.bytes,
        "states": states,
    }


def test_bench_multiview_fan_in(benchmark):
    def sweep():
        rows = []
        measures = {}
        for n_views in FAN_INS:
            for share in (False, True):
                out = run_once(n_views, share)
                measures[(n_views, share)] = out
                rows.append(
                    {
                        "N views": n_views,
                        "sharing": "on" if share else "off",
                        "round trips": out["round_trips"],
                        "absorbed": out["saved"],
                        "M": out["M"],
                        "B": out["B"],
                    }
                )
        return measures, rows

    measures, rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(render_table("Fan-in: shared vs independent compensation", rows))

    for n_views in FAN_INS:
        off = measures[(n_views, False)]
        on = measures[(n_views, True)]
        # Identity first: sharing never changes any view's final state.
        assert off["states"] == on["states"], n_views
        # Independent catalogs pay one round trip per view; sharing pays
        # for the distinct expressions only.
        assert off["round_trips"] == n_views * measures[(1, False)]["round_trips"]
        if n_views == 1:
            assert off["round_trips"] == on["round_trips"]
        else:
            assert on["saved"] > 0

    # The acceptance bar: >= 2x fewer source round trips at N=16.
    assert (
        measures[(16, False)]["round_trips"]
        >= 2 * measures[(16, True)]["round_trips"]
    ), measures[(16, True)]
    # Cost-model M and B scale down the same way (B only when answers
    # actually carry tuples).
    assert measures[(16, False)]["M"] >= 2 * measures[(16, True)]["M"]
    assert measures[(16, False)]["B"] >= measures[(16, True)]["B"]


def test_bench_multiview_savings_grow_with_fan_in(benchmark):
    """Absorbed round trips grow linearly in N while issued stays flat."""

    def sweep():
        return {n: run_once(n, True) for n in FAN_INS}

    by_n = benchmark.pedantic(sweep, rounds=1, iterations=1)
    issued = [by_n[n]["round_trips"] for n in FAN_INS]
    emit(f"issued round trips by fan-in {FAN_INS}: {issued}")
    # One shared expression per event regardless of N: issued is constant.
    assert len(set(issued)) == 1
    for n in FAN_INS:
        assert by_n[n]["saved"] == (n - 1) * by_n[1]["round_trips"]
