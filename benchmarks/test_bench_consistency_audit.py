"""E9 — the Section 3.1 correctness matrix as a benchmark.

Audits every algorithm against randomized workloads and interleavings and
reports the strongest correctness level each one achieved/violated —
reproducing the paper's qualitative table:

==============  ==========================================
basic           anomalous (fails weak consistency)
ECA             strongly consistent (Appendix B)
ECA-Key         strongly consistent (Appendix C)
ECA-Local       strongly consistent
LCA             complete
SC              complete
RV (s | k)      strongly consistent
==============  ==========================================
"""

from __future__ import annotations

from collections import defaultdict

from _bench_util import emit

from repro.consistency import check_trace
from repro.core.registry import create_algorithm
from repro.core.stored_copies import StoredCopies
from repro.experiments.report import render_table
from repro.relational.engine import evaluate_view
from repro.relational.schema import RelationSchema
from repro.relational.views import View
from repro.simulation.driver import Simulation
from repro.simulation.schedules import (
    BestCaseSchedule,
    EagerSourceSchedule,
    RandomSchedule,
    WorstCaseSchedule,
)
from repro.source.memory import MemorySource
from repro.workloads.random_gen import random_workload

SCHEMAS = [
    RelationSchema("r1", ("W", "X"), key=("W",)),
    RelationSchema("r2", ("X", "Y"), key=("Y",)),
]
INITIAL = {"r1": [(1, 2), (2, 3)], "r2": [(2, 5), (3, 6)]}
ALGORITHMS = ("basic", "eca", "eca-key", "eca-local", "lca", "stored-copies")

LEVEL_ORDER = [
    "incorrect",
    "convergent",
    "weakly consistent",
    "consistent",
    "strongly consistent",
    "complete",
]


def audit(workload_count=10, k=10):
    view = View.natural_join("V", SCHEMAS, ["W", "Y"])
    worst = defaultdict(lambda: len(LEVEL_ORDER) - 1)
    best = defaultdict(int)
    for seed in range(workload_count):
        workload = random_workload(
            SCHEMAS, k, seed=seed, initial=INITIAL, respect_keys=True
        )
        schedules = [
            BestCaseSchedule(),
            WorstCaseSchedule(),
            EagerSourceSchedule(),
            RandomSchedule(seed),
            RandomSchedule(seed + 5000),
        ]
        for schedule in schedules:
            for name in ALGORITHMS:
                source = MemorySource(SCHEMAS, INITIAL)
                initial_view = evaluate_view(view, source.snapshot())
                if name == "stored-copies":
                    algo = StoredCopies(view, initial_view, source.snapshot())
                else:
                    algo = create_algorithm(name, view, initial_view)
                trace = Simulation(source, algo, workload).run(schedule)
                level = LEVEL_ORDER.index(check_trace(view, trace).level())
                worst[name] = min(worst[name], level)
                best[name] = max(best[name], level)
    return {
        name: (LEVEL_ORDER[worst[name]], LEVEL_ORDER[best[name]])
        for name in ALGORITHMS
    }


def test_bench_consistency_audit(benchmark):
    results = benchmark.pedantic(audit, rounds=1, iterations=1)
    rows = [
        {"algorithm": name, "worst observed": lo, "best observed": hi}
        for name, (lo, hi) in results.items()
    ]
    emit(render_table("Correctness audit (random workloads x interleavings)", rows))

    # The paper's guarantees hold as observed *floors*:
    assert LEVEL_ORDER.index(results["eca"][0]) >= LEVEL_ORDER.index(
        "strongly consistent"
    )
    assert LEVEL_ORDER.index(results["eca-key"][0]) >= LEVEL_ORDER.index(
        "strongly consistent"
    )
    assert LEVEL_ORDER.index(results["eca-local"][0]) >= LEVEL_ORDER.index(
        "strongly consistent"
    )
    assert results["lca"][0] == "complete"
    assert results["stored-copies"][0] == "complete"
    # ...and the basic algorithm demonstrably breaks somewhere:
    assert LEVEL_ORDER.index(results["basic"][0]) < LEVEL_ORDER.index(
        "weakly consistent"
    )
