"""E4 — Figure 6.4: I/O versus k, Scenario 1 (indexes + ample memory).

Paper claims: crossover at k = 3 (against recomputing once, which costs a
flat 3I = 15 I/Os); ECA's worst case adds a quadratic compensation term;
RVWorst grows linearly at 3I per update.
"""

from __future__ import annotations

from _bench_util import emit

from repro.experiments.figures import figure_6_4
from repro.experiments.report import render_series


def test_bench_figure_6_4(benchmark, paper_params):
    series = benchmark(figure_6_4, paper_params)
    emit(render_series("Figure 6.4 — IO versus k, Scenario 1", series))

    k = series["k"]
    rv_best = series["IORVBest"][0]
    assert rv_best == 3 * paper_params.I  # 15

    # Crossover at k = 3 for the ECA best case.
    assert series["IOECABest"][k.index(2.0)] < rv_best
    assert series["IOECABest"][k.index(3.0)] >= rv_best

    # Per-update slopes: best case J+1 per update, RVWorst 3I per update.
    for i in range(len(k) - 1):
        assert series["IOECABest"][i + 1] - series["IOECABest"][i] == (
            paper_params.J + 1
        )
        assert series["IORVWorst"][i + 1] - series["IORVWorst"][i] == 3 * paper_params.I

    # Worst ECA stays below worst RV throughout the plotted range.
    for eca, rv in zip(series["IOECAWorst"], series["IORVWorst"]):
        assert eca <= rv


def test_bench_figure_6_4_j_less_than_i_advantage(benchmark, paper_params):
    """Paper: 'if J < I, then ECA can outperform RV arbitrarily'."""

    def gap_for_large_relations():
        # One update (k=1): ECA best = J+1, RV best = 3I.
        params = paper_params.replace(cardinality=2000)  # I = 100
        series = figure_6_4(params, k_values=[1])
        return series["IORVBest"][0] - series["IOECABest"][0]

    gap = benchmark(gap_for_large_relations)
    assert gap == 3 * 100 - (paper_params.J + 1)
