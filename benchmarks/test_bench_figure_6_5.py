"""E5 — Figure 6.5: I/O versus k, Scenario 2 (no indexes, 3 buffer blocks).

Paper claims: recomputing once costs I^3 = 125; ECA's worst case crosses
that between k=5 and k=8; unless relations are tiny, ECA beats RV by a
factor of about I.
"""

from __future__ import annotations

from _bench_util import emit

from repro.experiments.figures import figure_6_5
from repro.experiments.report import render_series


def test_bench_figure_6_5(benchmark, paper_params):
    series = benchmark(figure_6_5, paper_params)
    emit(render_series("Figure 6.5 — IO versus k, Scenario 2", series))

    k = series["k"]
    rv_best = series["IORVBest"][0]
    assert rv_best == paper_params.I**3  # 125

    # ECA worst crossover inside the paper's 5 < k < 8 window.
    crossed = [kk for kk, v in zip(k, series["IOECAWorst"]) if v >= rv_best]
    assert 5 < crossed[0] < 8

    # ECA best crossover at ceil(I^3 / (I * I')) = 9 (~8.3 continuous;
    # the paper eyeballs "5 < k < 8" from the plot).
    crossed_best = [kk for kk, v in zip(k, series["IOECABest"]) if v >= rv_best]
    assert crossed_best[0] == 9

    # Per-update RV worst slope is I^3.
    for i in range(len(k) - 1):
        assert series["IORVWorst"][i + 1] - series["IORVWorst"][i] == rv_best

    # ECA beats the per-update recompute by ~factor I (paper: 'ECA
    # outperforms RV by a factor of I').
    for eca, rv in zip(series["IOECABest"], series["IORVWorst"]):
        assert rv / eca >= paper_params.I / paper_params.I_prime


def test_bench_figure_6_5_io_costs_dwarf_scenario_1(benchmark, paper_params):
    """Paper: 'the I/O costs for this scenario are much higher than for
    Scenario 1'."""
    from repro.experiments.figures import figure_6_4

    def both():
        return figure_6_4(paper_params), figure_6_5(paper_params)

    s1, s2 = benchmark(both)
    for name in ("IORVBest", "IORVWorst", "IOECABest", "IOECAWorst"):
        for a, b in zip(s1[name], s2[name]):
            assert b > a, name
