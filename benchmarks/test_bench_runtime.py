"""Runtime benchmarks: concurrent harness vs the synchronous driver.

Measures what the concurrent runtime costs and buys:

- end-to-end throughput of ``run_concurrent`` against the synchronous
  ``Simulation`` driver on an identical single-source ECA workload (both
  must settle on the same final view);
- quiesce latency (virtual time from the last update to a quiet
  warehouse) as the fault plan's drop rate grows;
- throughput scaling as sources and clients are added.

Run with ``pytest benchmarks/ --benchmark-only`` (add ``-s`` for the
regenerated tables).
"""

from __future__ import annotations

from repro.consistency import check_trace
from repro.core.eca import ECA
from repro.experiments.report import render_table
from repro.relational.engine import evaluate_view
from repro.relational.schema import RelationSchema
from repro.relational.views import View
from repro.runtime import FaultPlan, run_concurrent
from repro.simulation.driver import Simulation
from repro.simulation.schedules import RandomSchedule
from repro.source.memory import MemorySource
from repro.warehouse.catalog import WarehouseCatalog
from repro.workloads.random_gen import random_workload

from _bench_util import emit

SCHEMAS = [RelationSchema("r1", ("W", "X")), RelationSchema("r2", ("X", "Y"))]
INITIAL = {"r1": [(1, 2), (2, 3)], "r2": [(2, 5), (3, 6)]}
K = 24


def fresh_eca():
    view = View.natural_join("V", SCHEMAS, ["W", "Y"])
    source = MemorySource(SCHEMAS, INITIAL)
    warehouse = ECA(view, evaluate_view(view, source.snapshot()))
    return view, source, warehouse


def workload(k=K, seed=13):
    return random_workload(SCHEMAS, k, seed=seed, initial=INITIAL)


def test_bench_concurrent_vs_sync_same_answer(benchmark):
    """Both drivers must settle on the same (eval-anytime) final view."""

    def run_concurrent_driver():
        view, source, warehouse = fresh_eca()
        result = run_concurrent(source, warehouse, workload(), clients=2, seed=1)
        return view, result

    view, result = benchmark(run_concurrent_driver)
    assert check_trace(view, result.trace).strongly_consistent

    sync_view, sync_source, sync_warehouse = fresh_eca()
    sync_trace = Simulation(sync_source, sync_warehouse, workload()).run(
        RandomSchedule(seed=1)
    )
    assert check_trace(sync_view, sync_trace).strongly_consistent
    assert result.final_view == sync_warehouse.view_state()

    emit(
        render_table(
            "Concurrent vs synchronous driver (ECA, k=%d)" % K,
            [
                {
                    "driver": "concurrent",
                    "events": len(result.trace.events),
                    "updates/s": round(result.throughput()),
                },
                {
                    "driver": "synchronous",
                    "events": len(sync_trace.events),
                    "updates/s": "-",
                },
            ],
        )
    )


def test_bench_sync_driver_baseline(benchmark):
    """The synchronous driver's wall time on the identical workload."""

    def run_sync():
        _, source, warehouse = fresh_eca()
        return Simulation(source, warehouse, workload()).run(RandomSchedule(seed=1))

    trace = benchmark(run_sync)
    assert trace.events


def test_bench_quiesce_latency_vs_drop_rate(benchmark):
    """Drops + retries stretch quiesce latency; zero faults mean zero wait."""

    rates = (0.0, 0.2, 0.4, 0.6)

    def sweep():
        latencies = {}
        for rate in rates:
            _, source, warehouse = fresh_eca()
            faults = FaultPlan(latency=1.0, jitter=2.0, drop_rate=rate)
            result = run_concurrent(
                source, warehouse, workload(k=12), faults=faults, seed=5
            )
            latencies[rate] = result.quiesce_latency
        return latencies

    latencies = benchmark(sweep)
    assert latencies[0.0] > 0.0  # base latency alone delays the last answer
    assert latencies[0.6] > latencies[0.0]  # retries push quiescence out
    emit(
        render_table(
            "Quiesce latency vs drop rate (virtual time)",
            [
                {"drop rate": rate, "quiesce latency": round(latencies[rate], 2)}
                for rate in rates
            ],
        )
    )


def test_bench_throughput_vs_topology(benchmark):
    """Throughput as the actor count grows (N sources x M clients)."""

    topologies = ((1, 0), (1, 4), (2, 4), (4, 8))

    def build(n_sources):
        sources, algorithms, updates = {}, {}, []
        for index in range(n_sources):
            prefix = "s%d" % index
            schemas = [
                RelationSchema(prefix + "r1", ("W", "X")),
                RelationSchema(prefix + "r2", ("X", "Y")),
            ]
            initial = {
                prefix + "r1": [(1, 2), (2, 3)],
                prefix + "r2": [(2, 5), (3, 6)],
            }
            source = MemorySource(schemas, initial)
            sources[prefix] = source
            view = View.natural_join("V%d" % index, schemas, ["W", "Y"])
            algorithms["V%d" % index] = ECA(
                view, evaluate_view(view, source.snapshot())
            )
            updates.extend(
                random_workload(schemas, 8, seed=index, initial=initial)
            )
        if n_sources == 1:
            return sources, next(iter(algorithms.values())), updates
        return sources, WarehouseCatalog(algorithms), updates

    def sweep():
        rows = []
        for n_sources, n_clients in topologies:
            sources, warehouse, updates = build(n_sources)
            result = run_concurrent(
                sources, warehouse, updates, clients=n_clients, seed=3
            )
            rows.append(
                {
                    "sources": n_sources,
                    "clients": n_clients,
                    "updates": result.updates,
                    "events": len(result.trace.events),
                    "updates/s": round(result.throughput()),
                }
            )
        return rows

    rows = benchmark(sweep)
    assert all(row["updates/s"] > 0 for row in rows)
    emit(render_table("Runtime throughput vs topology", rows))
