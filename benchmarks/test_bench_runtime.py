"""Runtime benchmarks: concurrent harness vs the synchronous driver.

Measures what the concurrent runtime costs and buys:

- end-to-end throughput of ``run_concurrent`` against the synchronous
  ``Simulation`` driver on an identical single-source ECA workload (both
  must settle on the same final view);
- quiesce latency (virtual time from the last update to a quiet
  warehouse) as the fault plan's drop rate grows;
- throughput scaling as sources and clients are added.

Run with ``pytest benchmarks/ --benchmark-only`` (add ``-s`` for the
regenerated tables).
"""

from __future__ import annotations

from repro.consistency import check_trace
from repro.core.eca import ECA
from repro.experiments.report import render_table
from repro.relational.engine import evaluate_view
from repro.relational.schema import RelationSchema
from repro.relational.views import View
from repro.runtime import FaultPlan, run_concurrent
from repro.simulation.driver import Simulation
from repro.simulation.schedules import RandomSchedule
from repro.source.memory import MemorySource
from repro.warehouse.catalog import WarehouseCatalog
from repro.workloads.random_gen import random_workload

from _bench_util import emit

SCHEMAS = [RelationSchema("r1", ("W", "X")), RelationSchema("r2", ("X", "Y"))]
INITIAL = {"r1": [(1, 2), (2, 3)], "r2": [(2, 5), (3, 6)]}
K = 24


def fresh_eca():
    view = View.natural_join("V", SCHEMAS, ["W", "Y"])
    source = MemorySource(SCHEMAS, INITIAL)
    warehouse = ECA(view, evaluate_view(view, source.snapshot()))
    return view, source, warehouse


def workload(k=K, seed=13):
    return random_workload(SCHEMAS, k, seed=seed, initial=INITIAL)


def test_bench_concurrent_vs_sync_same_answer(benchmark):
    """Both drivers must settle on the same (eval-anytime) final view."""

    def run_concurrent_driver():
        view, source, warehouse = fresh_eca()
        result = run_concurrent(source, warehouse, workload(), clients=2, seed=1)
        return view, result

    view, result = benchmark(run_concurrent_driver)
    assert check_trace(view, result.trace).strongly_consistent

    sync_view, sync_source, sync_warehouse = fresh_eca()
    sync_trace = Simulation(sync_source, sync_warehouse, workload()).run(
        RandomSchedule(seed=1)
    )
    assert check_trace(sync_view, sync_trace).strongly_consistent
    assert result.final_view == sync_warehouse.view_state()

    emit(
        render_table(
            "Concurrent vs synchronous driver (ECA, k=%d)" % K,
            [
                {
                    "driver": "concurrent",
                    "events": len(result.trace.events),
                    "updates/s": round(result.throughput()),
                },
                {
                    "driver": "synchronous",
                    "events": len(sync_trace.events),
                    "updates/s": "-",
                },
            ],
        )
    )


def test_bench_sync_driver_baseline(benchmark):
    """The synchronous driver's wall time on the identical workload."""

    def run_sync():
        _, source, warehouse = fresh_eca()
        return Simulation(source, warehouse, workload()).run(RandomSchedule(seed=1))

    trace = benchmark(run_sync)
    assert trace.events


def test_bench_quiesce_latency_vs_drop_rate(benchmark):
    """Drops + retries stretch quiesce latency; zero faults mean zero wait."""

    rates = (0.0, 0.2, 0.4, 0.6)

    def sweep():
        latencies = {}
        for rate in rates:
            _, source, warehouse = fresh_eca()
            faults = FaultPlan(latency=1.0, jitter=2.0, drop_rate=rate)
            result = run_concurrent(
                source, warehouse, workload(k=12), faults=faults, seed=5
            )
            latencies[rate] = result.quiesce_latency
        return latencies

    latencies = benchmark(sweep)
    assert latencies[0.0] > 0.0  # base latency alone delays the last answer
    assert latencies[0.6] > latencies[0.0]  # retries push quiescence out
    emit(
        render_table(
            "Quiesce latency vs drop rate (virtual time)",
            [
                {"drop rate": rate, "quiesce latency": round(latencies[rate], 2)}
                for rate in rates
            ],
        )
    )


def test_bench_throughput_vs_topology(benchmark):
    """Throughput as the actor count grows (N sources x M clients)."""

    topologies = ((1, 0), (1, 4), (2, 4), (4, 8))

    def build(n_sources):
        sources, algorithms, updates = {}, {}, []
        for index in range(n_sources):
            prefix = "s%d" % index
            schemas = [
                RelationSchema(prefix + "r1", ("W", "X")),
                RelationSchema(prefix + "r2", ("X", "Y")),
            ]
            initial = {
                prefix + "r1": [(1, 2), (2, 3)],
                prefix + "r2": [(2, 5), (3, 6)],
            }
            source = MemorySource(schemas, initial)
            sources[prefix] = source
            view = View.natural_join("V%d" % index, schemas, ["W", "Y"])
            algorithms["V%d" % index] = ECA(
                view, evaluate_view(view, source.snapshot())
            )
            updates.extend(
                random_workload(schemas, 8, seed=index, initial=initial)
            )
        if n_sources == 1:
            return sources, next(iter(algorithms.values())), updates
        return sources, WarehouseCatalog(algorithms), updates

    def sweep():
        rows = []
        for n_sources, n_clients in topologies:
            sources, warehouse, updates = build(n_sources)
            result = run_concurrent(
                sources, warehouse, updates, clients=n_clients, seed=3
            )
            rows.append(
                {
                    "sources": n_sources,
                    "clients": n_clients,
                    "updates": result.updates,
                    "events": len(result.trace.events),
                    "updates/s": round(result.throughput()),
                }
            )
        return rows

    rows = benchmark(sweep)
    assert all(row["updates/s"] > 0 for row in rows)
    emit(render_table("Runtime throughput vs topology", rows))


def test_bench_sharded_scaling(benchmark):
    """Update throughput as the warehouse is partitioned over N shards.

    The workload is deliberately catalog-heavy: 8 sources each own 32
    keyed join views (256 members), and every update is a keyed delete
    that ECA-Key handles locally with no compensating query.  Per-event
    bookkeeping in a catalog snapshots every member view — O(views on
    the shard) — and the unsharded warehouse pays it for all 256 views
    on every event, while relation-level routing sends each event to
    exactly one shard.  Sharding therefore divides the dominant cost;
    what remains fixed is the keyed-delete scan, transport hops, and
    event-loop overhead.

    Measurement: CPU seconds (``time.process_time``), best of 3
    interleaved cycles per shard count, with the collector paused during
    the timed region — wall clock and GC placement are far noisier than
    the effect under test.  Every shard count must converge to the same
    merged view; 4 shards must at least double 1-shard throughput.
    """
    import gc
    import time

    from repro.core.registry import create_algorithm
    from repro.sharding import ExplicitPartitioner
    from repro.source.updates import delete

    n_sources = 8
    views_per_source = 32
    n_rows = 24
    cycles = 3
    shard_counts = (1, 2, 4, 8)
    names = [
        "V%d_%d" % (s, j)
        for s in range(n_sources)
        for j in range(views_per_source)
    ]

    def build():
        sources, algorithms, updates = {}, {}, []
        for s in range(n_sources):
            prefix = "s%d" % s
            schemas, initial = [], {}
            for j in range(views_per_source):
                r1, r2 = "%sa%d" % (prefix, j), "%sb%d" % (prefix, j)
                schemas += [
                    RelationSchema(r1, ("W", "X"), key=("W",)),
                    RelationSchema(r2, ("X", "Y"), key=("Y",)),
                ]
                initial[r1] = [(i, i + 1) for i in range(n_rows)]
                initial[r2] = [(i + 1, i + 100) for i in range(n_rows)]
            source = MemorySource(schemas, initial)
            sources[prefix] = source
            for j in range(views_per_source):
                pair = [schemas[2 * j], schemas[2 * j + 1]]
                view = View.natural_join("V%d_%d" % (s, j), pair, ["W", "Y"])
                algorithms[view.name] = create_algorithm(
                    "eca-key", view, evaluate_view(view, source.snapshot())
                )
                updates.append(delete("%sa%d" % (prefix, j), (0, 1)))
        return sources, WarehouseCatalog(algorithms), updates

    def sweep():
        best = {shards: None for shards in shard_counts}
        n_updates = 0
        finals = []
        # Interleave the shard counts within each cycle so slow drifts
        # (CPU frequency, cache state) hit every configuration alike.
        for _ in range(cycles):
            for shards in shard_counts:
                sources, catalog, updates = build()
                placement = ExplicitPartitioner(
                    {(name,): i % shards for i, name in enumerate(names)},
                    shards=shards,
                )
                gc.collect()
                gc.disable()
                started = time.process_time()
                result = run_concurrent(
                    sources, catalog, updates, clients=0, seed=3,
                    shards=shards, partitioner=placement, record_trace=False,
                )
                cpu = time.process_time() - started
                gc.enable()
                if best[shards] is None or cpu < best[shards]:
                    best[shards] = cpu
                n_updates = result.updates
                finals.append(result.final_view)
        assert all(final == finals[0] for final in finals[1:])
        return [
            {
                "shards": shards,
                "updates": n_updates,
                "updates/cpu-s": round(n_updates / best[shards]),
            }
            for shards in shard_counts
        ]

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    by_shards = {row["shards"]: row["updates/cpu-s"] for row in rows}
    assert by_shards[4] >= 2 * by_shards[1], (
        "4-shard throughput %d < 2x 1-shard %d" % (by_shards[4], by_shards[1])
    )
    emit(
        render_table(
            "Sharded warehouse throughput (%d views)" % len(names), rows
        )
    )
