"""E7 — measured-vs-analytic cross-check.

The analytic curves of Figures 6.2-6.5 assume every join expands by
exactly J and every selection keeps exactly sigma; here we run the real
simulator on generated Example 6 data and check that the *shape* claims
survive contact with actual data:

- ECA transfers far fewer bytes than per-update recomputation;
- measured I/O reproduces the per-update slopes and the Scenario 1/2 gap;
- the best-case ECA run sends exactly one single-term query per update
  (no compensation), while the worst-case run's query complexity grows.

A documented divergence: the analytic worst case charges every
compensating term sigma*J result tuples, but on random data most
compensations return few or no tuples, so measured BECAWorst hugs
BECABest instead of opening the quadratic gap (EXPERIMENTS.md, E7).
The compensation cost is still visible in I/O, where a term costs I/Os
whether or not it produces tuples.
"""

from __future__ import annotations

import pytest

from _bench_util import emit, monotone_nondecreasing

from repro.costmodel.parameters import PaperParameters
from repro.experiments.measured import (
    measure_bytes_series,
    measure_io_series,
    run_example6_once,
)
from repro.experiments.report import render_series
from repro.relational.engine import evaluate_query, evaluate_query_scalar
from repro.simulation.schedules import BestCaseSchedule, WorstCaseSchedule
from repro.source.memory import MemorySource
from repro.workloads.example6 import build_example6


@pytest.fixture(scope="module")
def params():
    return PaperParameters()


def test_bench_measured_bytes(benchmark, params):
    series = benchmark.pedantic(
        measure_bytes_series,
        args=(params,),
        kwargs={"k_values": (3, 12, 24, 48)},
        rounds=1,
        iterations=1,
    )
    emit(render_series("Measured B versus k (C=100, memory source)", series))

    # Every curve grows with k except the single recompute, which grows
    # only through relation growth (inserts enlarge the view).
    for name in ("BRVWorst", "BECABest", "BECAWorst"):
        assert monotone_nondecreasing(series[name]), name

    # ECA moves far less data than per-update recomputation at every k.
    for eca, rv in zip(series["BECAWorst"], series["BRVWorst"]):
        assert eca * 5 < rv

    # Worst-case ECA never beats best-case ECA.
    for best, worst in zip(series["BECABest"], series["BECAWorst"]):
        assert worst >= best


def test_bench_measured_io_scenario1(benchmark, params):
    series = benchmark.pedantic(
        measure_io_series,
        args=(1, params),
        kwargs={"k_values": (1, 3, 5, 7, 9, 11)},
        rounds=1,
        iterations=1,
    )
    emit(render_series("Measured IO versus k, Scenario 1", series))

    # Shape: RVBest flat-ish (just relation growth), RVWorst linear and
    # dominant, ECA curves in between with the compensation gap visible.
    assert series["IORVWorst"][-1] > series["IOECAWorst"][-1]
    assert series["IOECAWorst"][-1] > series["IOECABest"][-1]
    # The crossover against recompute-once lands at small k (paper: k=3).
    crossing = [
        k
        for k, eca, rv in zip(series["k"], series["IOECABest"], series["IORVBest"])
        if eca >= rv
    ]
    assert crossing and crossing[0] <= 7


def test_bench_measured_io_scenario2(benchmark, params):
    series = benchmark.pedantic(
        measure_io_series,
        args=(2, params),
        kwargs={"k_values": (1, 3, 5, 7, 9, 11)},
        rounds=1,
        iterations=1,
    )
    emit(render_series("Measured IO versus k, Scenario 2", series))
    # Scenario 2 costs dwarf Scenario 1 (paper Section 6.3).
    s1 = measure_io_series(1, params, k_values=(1, 3, 5, 7, 9, 11))
    for name in ("IORVBest", "IORVWorst", "IOECABest", "IOECAWorst"):
        assert series[name][-1] > s1[name][-1], name
    # ECA beats per-update recompute by roughly a factor of I.
    assert series["IORVWorst"][-1] / series["IOECABest"][-1] > params.I / params.I_prime


def test_bench_measured_compensation_visible_in_query_complexity(benchmark, params):
    """Worst-case interleaving must evaluate more terms than best-case:
    that *is* the compensation overhead, measured on the wire."""

    def both():
        best = run_example6_once(params, 9, "eca", BestCaseSchedule())
        worst = run_example6_once(params, 9, "eca", WorstCaseSchedule())
        return best, worst

    best, worst = benchmark.pedantic(both, rounds=1, iterations=1)
    assert best.terms_evaluated == 9  # one single-term query per update
    assert worst.terms_evaluated > best.terms_evaluated
    assert best.messages == worst.messages == 18  # M = 2k regardless


def test_bench_batched_engine_matches_scalar_oracle(benchmark, params):
    """The CI `bench-smoke` divergence gate (docs/PERFORMANCE.md).

    The columnar engine earns its speedup only if it computes exactly
    what the retired row-at-a-time plan computed.  On the measured
    workload's own data — Example 6 states before and after each
    update, plus every substituted delta query — `evaluate_query` and
    `evaluate_query_scalar` must agree bag-for-bag.
    """

    def divergence_sweep():
        checked = 0
        for seed in (0, 4):
            setup = build_example6(params, 6, seed)
            source = MemorySource(setup.schemas, setup.initial)
            view_query = setup.view.as_query()
            for update in setup.workload:
                state = source.snapshot()
                delta = setup.view.substitute(
                    update.relation, update.signed_tuple()
                )
                for query in (view_query, delta):
                    assert evaluate_query(query, state) == evaluate_query_scalar(
                        query, state
                    )
                    checked += 1
                source.apply_update(update)
            final = source.snapshot()
            assert evaluate_query(view_query, final) == evaluate_query_scalar(
                view_query, final
            )
            checked += 1
        return checked

    checked = benchmark.pedantic(divergence_sweep, rounds=1, iterations=1)
    assert checked == 2 * (6 * 2 + 1)


def test_bench_measured_sqlite_source_agrees(benchmark, params):
    """The SQLite-backed source reports identical measured costs."""

    def pair():
        memory = run_example6_once(
            params, 6, "eca", WorstCaseSchedule(), io_scenario=1, seed=4
        )
        sqlite = run_example6_once(
            params, 6, "eca", WorstCaseSchedule(), io_scenario=1, seed=4,
            source_kind="sqlite",
        )
        return memory, sqlite

    memory, sqlite = benchmark.pedantic(pair, rounds=1, iterations=1)
    assert memory.summary() == sqlite.summary()
