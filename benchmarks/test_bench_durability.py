"""Durability benchmarks: what the WAL costs and what recovery takes.

Measures the two prices the durability subsystem asks:

- WAL overhead — the identical concurrent ECA workload with no WAL, a
  flush-only WAL, and an fsync-per-append WAL (the flush/fsync gap is the
  real durability premium);
- recovery latency — wall time for ``recover()`` (snapshot decode + WAL
  replay) as the replayed suffix grows, i.e. as snapshots get rarer.

Run with ``pytest benchmarks/ --benchmark-only`` (add ``-s`` for the
regenerated tables).
"""

from __future__ import annotations

import tempfile
import time

from repro.core.eca import ECA
from repro.durability import RECV, WriteAheadLog, encode_value, recover
from repro.experiments.report import render_table
from repro.messaging.messages import QueryAnswer, UpdateNotification
from repro.relational.engine import evaluate_view
from repro.relational.schema import RelationSchema
from repro.relational.views import View
from repro.runtime import run_concurrent
from repro.source.memory import MemorySource
from repro.workloads.random_gen import random_workload

from _bench_util import emit

SCHEMAS = [RelationSchema("r1", ("W", "X")), RelationSchema("r2", ("X", "Y"))]
INITIAL = {"r1": [(1, 2), (2, 3)], "r2": [(2, 5), (3, 6)]}
K = 24


def fresh_eca():
    view = View.natural_join("V", SCHEMAS, ["W", "Y"])
    source = MemorySource(SCHEMAS, INITIAL)
    warehouse = ECA(view, evaluate_view(view, source.snapshot()))
    return view, source, warehouse


def workload(k=K, seed=13):
    return random_workload(SCHEMAS, k, seed=seed, initial=INITIAL)


def run_once(wal_dir=None, wal_fsync=False):
    _, source, warehouse = fresh_eca()
    return run_concurrent(
        source,
        warehouse,
        workload(),
        clients=2,
        seed=1,
        wal_dir=wal_dir,
        wal_fsync=wal_fsync,
        snapshot_every=8,
    )


def test_bench_wal_overhead(benchmark):
    """No WAL vs flushed WAL vs fsynced WAL on the same seeded workload."""

    def sweep():
        rows = []
        for label, use_wal, fsync in (
            ("no wal", False, False),
            ("wal (flush)", True, False),
            ("wal (fsync)", True, True),
        ):
            started = time.perf_counter()
            if use_wal:
                with tempfile.TemporaryDirectory(prefix="repro-bench-wal-") as d:
                    result = run_once(wal_dir=d, wal_fsync=fsync)
            else:
                result = run_once()
            elapsed = time.perf_counter() - started
            rows.append(
                {
                    "configuration": label,
                    "wall ms": round(elapsed * 1000, 1),
                    "updates/s": round(result.updates / elapsed),
                    "wal records": (result.wal_stats or {}).get("records", 0),
                    "final_view": result.final_view,
                }
            )
        return rows

    rows = benchmark(sweep)
    # Durability must not change the answer, only the wall time.
    views = {repr(sorted(row.pop("final_view").expand_rows())) for row in rows}
    assert len(views) == 1
    emit(render_table("WAL overhead (ECA, k=%d)" % K, rows))


def test_bench_recovery_latency(benchmark):
    """recover() wall time as the replayed WAL suffix grows."""

    def prepare(replay_depth):
        directory = tempfile.mkdtemp(prefix="repro-bench-rec-")
        view = View.natural_join("V", SCHEMAS, ["W", "Y"])
        source = MemorySource(SCHEMAS, INITIAL)
        algorithm = ECA(view, evaluate_view(view, source.snapshot()))
        wal = WriteAheadLog(directory)  # no cadence: snapshot only at genesis
        wal.snapshot(algorithm)
        serial = 0
        for update in workload(k=replay_depth, seed=7):
            source.apply_update(update)
            serial += 1
            notification = UpdateNotification(update, serial)
            wal.append(
                RECV,
                {
                    "channel": "source->wh",
                    "origin": "source",
                    "message": encode_value(notification),
                },
            )
            for request in algorithm.handle_update(notification):
                answer = QueryAnswer(request.query_id, source.evaluate(request.query))
                wal.append(
                    RECV,
                    {
                        "channel": "source->wh",
                        "origin": "source",
                        "message": encode_value(answer),
                    },
                )
                algorithm.handle_answer(answer)
        wal.close()
        return directory, algorithm

    depths = (4, 16, 48)
    prepared = {depth: prepare(depth) for depth in depths}

    def sweep():
        timings = {}
        for depth, (directory, _) in prepared.items():
            started = time.perf_counter()
            result = recover(directory)
            timings[depth] = (time.perf_counter() - started, result)
        return timings

    timings = benchmark(sweep)
    rows = []
    for depth in depths:
        elapsed, result = timings[depth]
        directory, live = prepared[depth]
        assert result.algorithm.view_state() == live.view_state()
        rows.append(
            {
                "updates replayed": depth,
                "wal records": result.replayed,
                "recover ms": round(elapsed * 1000, 2),
            }
        )
    emit(render_table("Recovery latency vs replay depth", rows))

    import shutil

    for directory, _ in prepared.values():
        shutil.rmtree(directory, ignore_errors=True)
