"""Substrate benchmarks: the hash-join engine and the SQLite source.

Not a paper figure — these guard the performance properties the rest of
the harness depends on (a full recompute at C=100 must be cheap enough to
run hundreds of times in the measured benchmarks).
"""

from __future__ import annotations

import pytest

from _bench_util import emit

from repro.costmodel.parameters import PaperParameters
from repro.relational.engine import evaluate_view
from repro.relational.tuples import SignedTuple
from repro.source.memory import MemorySource
from repro.source.sqlite import SQLiteSource
from repro.workloads.example6 import build_example6


def _setup(cardinality: int):
    params = PaperParameters(cardinality=cardinality)
    return build_example6(params, k=0, seed=1)


class TestEngineScaling:
    @pytest.mark.parametrize("cardinality", [50, 100, 200, 400])
    def test_bench_full_view_evaluation(self, benchmark, cardinality):
        setup = _setup(cardinality)
        source = MemorySource(setup.schemas, setup.initial)
        state = source.snapshot()
        result = benchmark(evaluate_view, setup.view, state)
        # The generated data guarantees a non-trivial join result.
        assert result.total_count() > 0

    def test_bench_incremental_query(self, benchmark):
        setup = _setup(200)
        source = MemorySource(setup.schemas, setup.initial)
        query = setup.view.substitute("r2", SignedTuple((3, 7)))
        result = benchmark(source.evaluate, query)
        assert result.is_nonnegative()


class TestSQLiteSubstrate:
    def test_bench_sqlite_full_view(self, benchmark):
        setup = _setup(100)
        source = SQLiteSource(setup.schemas, setup.initial)
        result = benchmark(source.evaluate, setup.view.as_query())
        memory = MemorySource(setup.schemas, setup.initial)
        assert result == memory.evaluate(setup.view.as_query())
        source.close()

    def test_bench_sqlite_incremental(self, benchmark):
        setup = _setup(100)
        source = SQLiteSource(setup.schemas, setup.initial)
        query = setup.view.substitute("r1", SignedTuple((500, 3)))
        result = benchmark(source.evaluate, query)
        assert result.is_nonnegative()
        source.close()


def test_bench_engine_vs_reference_scaling(benchmark):
    """At C=60 the reference evaluator is already orders of magnitude
    behind the hash-join engine; document the ratio once."""
    import time

    setup = _setup(60)
    source = MemorySource(setup.schemas, setup.initial)
    state = source.snapshot()
    query = setup.view.as_query()

    def engine_run():
        return evaluate_view(setup.view, state)

    result = benchmark(engine_run)
    start = time.perf_counter()
    reference = query.evaluate(state)
    reference_seconds = time.perf_counter() - start
    assert reference == result
    emit(
        f"reference cross-product evaluation at C=60: "
        f"{reference_seconds * 1000:.1f} ms (engine mean is benchmarked above)"
    )
