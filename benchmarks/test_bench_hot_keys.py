"""E12 — when is the analytic worst case *real*? Hot-key workloads.

The measured benchmark (E7) found that on uniform-random data ECA's
worst-case byte curve hugs the best case: compensating terms rarely match
any tuples.  Appendix D's worst-case model implicitly assumes concurrent
updates interact — every compensation term returns ``sigma * J`` tuples.
This benchmark closes the loop: drawing the inserted join keys from a
Zipf distribution (``key_theta``; see
:class:`repro.workloads.random_gen.ZipfSampler`) makes concurrent
updates derive overlapping view tuples, and the compensation traffic
(the best/worst gap) reappears and grows superlinearly with k, exactly
as the model's ``k(k-1)`` term predicts.  ``theta=0`` is uniform; large
theta collapses onto one hot key, the old ``hot_fraction=1.0`` regime.
"""

from __future__ import annotations

import pytest

from _bench_util import emit

from repro.costmodel.parameters import PaperParameters
from repro.experiments.measured import run_example6_once
from repro.experiments.report import render_table
from repro.simulation.schedules import BestCaseSchedule, WorstCaseSchedule


@pytest.fixture(scope="module")
def params():
    return PaperParameters()


def compensation_gap(params, k, theta, seed=3):
    best = run_example6_once(
        params, k, "eca", BestCaseSchedule(), seed=seed, key_theta=theta
    )
    worst = run_example6_once(
        params, k, "eca", WorstCaseSchedule(), seed=seed, key_theta=theta
    )
    return best.bytes, worst.bytes


def test_bench_hot_keys_realize_worst_case(benchmark, params):
    def sweep():
        rows = []
        for theta in (0.0, 4.0, 16.0):
            for k in (12, 24):
                best, worst = compensation_gap(params, k, theta)
                rows.append(
                    {
                        "theta": theta,
                        "k": k,
                        "B best": best,
                        "B worst": worst,
                        "gap": worst - best,
                    }
                )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(render_table("Compensation traffic vs join-key skew", rows))

    gap = {(row["theta"], row["k"]): row["gap"] for row in rows}
    # Uniform keys: compensation is (near) vacuous.
    assert gap[(0.0, 24)] <= gap[(16.0, 12)]
    # Skew opens the gap...
    assert gap[(16.0, 24)] > gap[(0.0, 24)]
    assert gap[(16.0, 24)] > 0
    # ...and it grows superlinearly with k (the k(k-1) term): doubling k
    # more than doubles the gap.
    assert gap[(16.0, 24)] > 2 * gap[(16.0, 12)]


def test_bench_hot_keys_io_compensation(benchmark, params):
    """The I/O compensation cost is interleaving-driven, not data-driven:
    it appears at every skew level (terms cost I/Os whether or not they
    match tuples)."""

    def sweep():
        out = {}
        for theta in (0.0, 16.0):
            best = run_example6_once(
                params, 9, "eca", BestCaseSchedule(), io_scenario=1,
                seed=3, key_theta=theta,
            )
            worst = run_example6_once(
                params, 9, "eca", WorstCaseSchedule(), io_scenario=1,
                seed=3, key_theta=theta,
            )
            out[theta] = (best.ios, worst.ios)
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for theta, (best_io, worst_io) in results.items():
        assert worst_io > best_io, f"theta={theta}"
    emit(f"I/O best/worst by skew: {results}")
