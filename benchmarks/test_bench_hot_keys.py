"""E12 — when is the analytic worst case *real*? Hot-key workloads.

The measured benchmark (E7) found that on uniform-random data ECA's
worst-case byte curve hugs the best case: compensating terms rarely match
any tuples.  Appendix D's worst-case model implicitly assumes concurrent
updates interact — every compensation term returns ``sigma * J`` tuples.
This benchmark closes the loop: skewing the inserted join keys toward a
hot value makes concurrent updates derive overlapping view tuples, and
the compensation traffic (the best/worst gap) reappears and grows
superlinearly with k, exactly as the model's ``k(k-1)`` term predicts.
"""

from __future__ import annotations

import pytest

from _bench_util import emit

from repro.costmodel.parameters import PaperParameters
from repro.experiments.measured import run_example6_once
from repro.experiments.report import render_table
from repro.simulation.schedules import BestCaseSchedule, WorstCaseSchedule


@pytest.fixture(scope="module")
def params():
    return PaperParameters()


def compensation_gap(params, k, hot_fraction, seed=3):
    best = run_example6_once(
        params, k, "eca", BestCaseSchedule(), seed=seed, hot_fraction=hot_fraction
    )
    worst = run_example6_once(
        params, k, "eca", WorstCaseSchedule(), seed=seed, hot_fraction=hot_fraction
    )
    return best.bytes, worst.bytes


def test_bench_hot_keys_realize_worst_case(benchmark, params):
    def sweep():
        rows = []
        for hot in (0.0, 0.5, 1.0):
            for k in (12, 24):
                best, worst = compensation_gap(params, k, hot)
                rows.append(
                    {
                        "hot": hot,
                        "k": k,
                        "B best": best,
                        "B worst": worst,
                        "gap": worst - best,
                    }
                )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(render_table("Compensation traffic vs join-key skew", rows))

    gap = {(row["hot"], row["k"]): row["gap"] for row in rows}
    # Uniform keys: compensation is (near) vacuous.
    assert gap[(0.0, 24)] <= gap[(1.0, 12)]
    # Skew opens the gap...
    assert gap[(1.0, 24)] > gap[(0.0, 24)]
    assert gap[(1.0, 24)] > 0
    # ...and it grows superlinearly with k (the k(k-1) term): doubling k
    # more than doubles the gap.
    assert gap[(1.0, 24)] > 2 * gap[(1.0, 12)]


def test_bench_hot_keys_io_compensation(benchmark, params):
    """The I/O compensation cost is interleaving-driven, not data-driven:
    it appears at every skew level (terms cost I/Os whether or not they
    match tuples)."""

    def sweep():
        out = {}
        for hot in (0.0, 1.0):
            best = run_example6_once(
                params, 9, "eca", BestCaseSchedule(), io_scenario=1,
                seed=3, hot_fraction=hot,
            )
            worst = run_example6_once(
                params, 9, "eca", WorstCaseSchedule(), io_scenario=1,
                seed=3, hot_fraction=hot,
            )
            out[hot] = (best.ios, worst.ios)
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for hot, (best_io, worst_io) in results.items():
        assert worst_io > best_io, f"hot={hot}"
    emit(f"I/O best/worst by skew: {results}")
