"""Ablations of DESIGN.md's called-out design choices.

1. Counted bags versus naive tuple lists for duplicate retention;
2. the hash-join engine versus the reference cross-product evaluator;
3. COLLECT buffering (consistency) has no cost in messages or bytes;
4. local evaluation of fully-bound terms (Appendix D's 'the last term
   does not have to be sent') reduces shipped query terms.
"""

from __future__ import annotations

import pytest

from _bench_util import emit

from repro.costmodel.counters import CostRecorder
from repro.costmodel.parameters import PaperParameters
from repro.relational.bag import SignedBag
from repro.relational.engine import evaluate_query
from repro.source.memory import MemorySource
from repro.workloads.example6 import build_example6


@pytest.fixture(scope="module")
def setup():
    return build_example6(PaperParameters(), k=0, seed=7)


class TestBagRepresentation:
    def bench_counted(self, deltas):
        bag = SignedBag()
        for delta in deltas:
            bag.add_bag(delta)
        return bag

    def bench_list_based(self, deltas):
        # The naive alternative: view as a list of tuples, deletions by
        # linear scan — what duplicate retention costs without counts.
        view = []
        for delta in deltas:
            for row, count in delta.items():
                if count > 0:
                    view.extend([row] * count)
                else:
                    for _ in range(-count):
                        view.remove(row)
        return view

    @pytest.fixture(scope="class")
    def deltas(self):
        rows = [(i % 50, i % 7) for i in range(400)]
        ups = [SignedBag.from_rows(rows)]
        ups += [SignedBag({rows[i]: -1}) for i in range(0, 400, 2)]
        ups += [SignedBag({rows[i]: 1}) for i in range(0, 400, 4)]
        return ups

    def test_bench_counted_bag(self, benchmark, deltas):
        result = benchmark(self.bench_counted, deltas)
        assert result.is_nonnegative()

    def test_bench_list_baseline(self, benchmark, deltas):
        result = benchmark(self.bench_list_based, deltas)
        counted = self.bench_counted(deltas)
        assert sorted(result) == sorted(counted.expand_rows())


class TestEvaluatorAblation:
    def test_bench_hash_join_engine(self, benchmark, setup):
        source = MemorySource(setup.schemas, setup.initial)
        state = source.snapshot()
        query = setup.view.as_query()
        result = benchmark(evaluate_query, query, state)
        assert not result.is_empty()

    def test_bench_reference_cross_product(self, benchmark, setup):
        # Same evaluation through the reference evaluator, on a reduced
        # state (the full 100^3 cross product is exactly the cost this
        # ablation demonstrates).
        small = {
            name: SignedBag.from_rows(rows[:20])
            for name, rows in setup.initial.items()
        }
        query = setup.view.as_query()
        reference = benchmark(query.evaluate, small)
        assert reference == evaluate_query(query, small)


class TestProtocolAblations:
    def test_bench_buffering_costs_nothing_on_the_wire(self, benchmark):
        """COLLECT buffering buys consistency for free in M and B."""
        from repro.core.eca import ECA
        from repro.relational.engine import evaluate_view
        from repro.simulation.driver import Simulation
        from repro.simulation.schedules import WorstCaseSchedule

        params = PaperParameters()

        def run(buffered):
            setup = build_example6(params, k=9, seed=2)
            source = MemorySource(setup.schemas, setup.initial)
            warehouse = ECA(
                setup.view,
                evaluate_view(setup.view, source.snapshot()),
                buffer_answers=buffered,
            )
            recorder = CostRecorder(params)
            Simulation(source, warehouse, setup.workload, recorder).run(
                WorstCaseSchedule()
            )
            return recorder, warehouse.view_state()

        def both():
            return run(True), run(False)

        (buffered, final_a), (unbuffered, final_b) = benchmark.pedantic(
            both, rounds=1, iterations=1
        )
        assert buffered.summary() == unbuffered.summary()
        assert final_a == final_b  # both converge to the same state
        emit(
            "Buffered vs unbuffered ECA (k=9, worst case): "
            f"identical wire costs {buffered.summary()}"
        )

    def test_bench_local_evaluation_of_bound_terms(self, benchmark, setup):
        """Without local evaluation every compensation term would ship;
        count how many terms the warehouse kept local in a worst-case
        run (Appendix D's zero-cost terms)."""
        from repro.core.eca import ECA
        from repro.messaging.messages import UpdateNotification

        view = setup.view

        def count_local_terms():
            algo = ECA(view)
            shipped = 0
            produced = 0
            from repro.source.updates import insert

            updates = [
                insert("r1", (1, 2)),
                insert("r2", (2, 3)),
                insert("r3", (3, 4)),
                insert("r1", (5, 6)),
                insert("r2", (6, 7)),
                insert("r3", (7, 8)),
            ]
            for serial, update in enumerate(updates, start=1):
                signed = update.signed_tuple()
                full = view.substitute(update.relation, signed)
                for pending in algo.uqs_queries():
                    full = full - pending.substitute(update.relation, signed)
                produced += full.term_count()
                for request in algo.handle_update(UpdateNotification(update, serial)):
                    shipped += request.query.term_count()
            return produced, shipped

        produced, shipped = benchmark(count_local_terms)
        assert shipped < produced
        emit(
            f"Fully-bound term elision: {produced} terms produced, "
            f"{shipped} shipped to the source"
        )
