"""Union and difference views — Section 7's "more complex expressions".

The paper's future work includes "views defined by more complex
relational algebra expressions (e.g., using union and/or difference)".
Our query algebra already *is* a sum of signed SPJ terms, so the
extension is a thin layer: a :class:`UnionView` is a signed combination
of SPJ branches, its definition query is the concatenation of the branch
terms (with ``-1`` coefficients for subtracted branches), and
``V<U> = sum_i T_i<U>`` falls out of the existing
:meth:`~repro.relational.expressions.Query.substitute` — terms not
involving the updated relation contribute nothing, self-join terms expand
by inclusion-exclusion.  Lemma B.2 is linear in the terms, so every
compensation-based algorithm works unchanged.

Semantics notes:

- **UNION ALL** (bag union): multiplicities add across branches.  Fully
  supported.
- **Difference** is *signed* (Z-relation) difference: a maintained view
  whose data would make some multiplicity negative is a modeling error
  and strict installs raise :class:`~repro.errors.ViewStateError`.  (Bag
  "monus" is not linear and therefore not maintainable by pure delta
  algebra — the same restriction applies to the counting algorithms the
  paper cites, e.g. [GMS93].)
- All branches must have the same output arity; column names are taken
  from the first branch.
- ECA-Key does not apply (a union tuple's provenance is ambiguous), and
  :meth:`contains_all_keys` is accordingly ``False``.
"""

from __future__ import annotations

from typing import List, Mapping, Sequence, Tuple, Union

from repro.errors import ExpressionError, SchemaError
from repro.relational.bag import SignedBag
from repro.relational.expressions import Query
from repro.relational.views import View

State = Mapping[str, SignedBag]

Branch = Union[View, Tuple[int, View]]


class UnionView:
    """A signed combination of SPJ views, maintained as one warehouse view.

    Parameters
    ----------
    name:
        View name.
    branches:
        A sequence of :class:`View` objects (each weighted +1) or
        ``(sign, View)`` pairs with sign +1 (union all) or -1
        (difference).
    """

    def __init__(self, name: str, branches: Sequence[Branch]) -> None:
        if not branches:
            raise ExpressionError("a union view needs at least one branch")
        self.name = name
        self.branches: List[Tuple[int, View]] = []
        for branch in branches:
            if isinstance(branch, tuple):
                sign, view = branch
            else:
                sign, view = 1, branch
            if sign not in (1, -1):
                raise ExpressionError(f"branch sign must be +1 or -1, got {sign!r}")
            self.branches.append((sign, view))
        arities = {view.arity for _, view in self.branches}
        if len(arities) != 1:
            raise SchemaError(
                f"union branches must share one output arity, got {sorted(arities)}"
            )
        self.arity = arities.pop()

    # ------------------------------------------------------------------ #
    # Structure
    # ------------------------------------------------------------------ #

    @property
    def relation_names(self) -> Tuple[str, ...]:
        """All stored relations read by any branch, deduplicated."""
        seen: List[str] = []
        for _, view in self.branches:
            for schema in view.relations:
                if schema.base not in seen:
                    seen.append(schema.base)
        return tuple(seen)

    def involves(self, relation: str) -> bool:
        return any(view.involves(relation) for _, view in self.branches)

    def output_columns(self) -> Tuple[str, ...]:
        return self.branches[0][1].output_columns()

    def contains_all_keys(self) -> bool:
        """ECA-Key never applies to union views (ambiguous provenance)."""
        return False

    def key_output_positions(self, relation: str) -> Tuple[int, ...]:
        """Always raises: key-based local handling needs provenance."""
        raise SchemaError(
            f"union view {self.name!r} cannot map keys to output columns"
        )

    def serving_key_positions(self) -> None:
        """No serving key either: the cache falls back to whole-row keys."""
        return None

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def as_query(self) -> Query:
        total = Query()
        for sign, view in self.branches:
            query = view.as_query()
            total = total + (query if sign > 0 else -query)
        return total

    def substitute(self, relation: str, signed_tuple) -> Query:
        if not self.involves(relation):
            raise ExpressionError(
                f"view {self.name!r} is not defined over relation {relation!r}"
            )
        return self.as_query().substitute(relation, signed_tuple)

    # ------------------------------------------------------------------ #
    # Oracle
    # ------------------------------------------------------------------ #

    def evaluate(self, state: State) -> SignedBag:
        from repro.relational.engine import evaluate_query

        return evaluate_query(self.as_query(), state)

    def __repr__(self) -> str:
        parts = []
        for index, (sign, view) in enumerate(self.branches):
            symbol = "" if index == 0 and sign > 0 else (" + " if sign > 0 else " - ")
            parts.append(f"{symbol}{view.name}")
        return f"UnionView({self.name} = {''.join(parts)})"
