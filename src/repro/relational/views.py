"""Select-project-join view definitions (Section 4).

A :class:`View` is ``V = pi_proj(sigma_cond(r1 x r2 x ... x rn))`` over
distinct base relations.  It is the object the warehouse holds: algorithms
derive maintenance queries from it via :meth:`View.substitute` (the paper's
``V<U>``), and the consistency checker uses :meth:`View.evaluate` as the
oracle ``V[ss]``.

The paper's running examples write natural joins (``r1 |x| r2`` on the
shared attribute ``X``); :meth:`View.natural_join` builds the equivalent
product-plus-equality-condition form.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ExpressionError, SchemaError
from repro.relational.bag import SignedBag
from repro.relational.conditions import (
    Attr,
    Comparison,
    Condition,
    TrueCondition,
    conjunction,
)
from repro.relational.expressions import Query, RelationOperand, Term
from repro.relational.schema import ProductSchema, RelationSchema, require_distinct
from repro.relational.tuples import SignedTuple

State = Mapping[str, SignedBag]


class View:
    """An SPJ view over distinct base relations.

    Parameters
    ----------
    name:
        View name (used in logs and the warehouse catalog).
    relations:
        The base relation schemas, in product order.
    projection:
        Projected attribute references (qualified or unambiguous bare
        names).
    condition:
        Selection/join condition; defaults to TRUE.
    """

    def __init__(
        self,
        name: str,
        relations: Sequence[RelationSchema],
        projection: Sequence[str],
        condition: Optional[Condition] = None,
    ) -> None:
        require_distinct(relations)
        self.name = name
        self.relations: Tuple[RelationSchema, ...] = tuple(relations)
        self.projection: Tuple[str, ...] = tuple(projection)
        self.condition: Condition = condition if condition is not None else TrueCondition()
        self._schema_by_name: Dict[str, RelationSchema] = {
            s.name: s for s in self.relations
        }
        # Validates projection and condition references eagerly.
        self._term = Term(
            [RelationOperand(s) for s in self.relations],
            self.projection,
            self.condition,
        )
        self.product: ProductSchema = self._term.product
        # View structure is frozen after construction, so key-position
        # analysis (a union-find over the condition) is memoized per
        # relation; ECA-Key consults it on every keyed delete.
        self._key_positions: Dict[str, Tuple[int, ...]] = {}

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def natural_join(
        cls,
        name: str,
        relations: Sequence[RelationSchema],
        projection: Sequence[str],
        extra_condition: Optional[Condition] = None,
    ) -> "View":
        """Build a view joining ``relations`` on all shared attribute names.

        For every attribute name appearing in more than one relation, an
        equality between consecutive occurrences is added to the condition,
        reproducing the paper's ``r1 |x| r2 |x| r3`` notation.
        """
        require_distinct(relations)
        owners: Dict[str, List[str]] = {}
        for schema in relations:
            for attribute in schema.attributes:
                owners.setdefault(attribute, []).append(schema.name)
        equalities: List[Condition] = []
        for attribute, names in owners.items():
            for left, right in zip(names, names[1:]):
                equalities.append(
                    Comparison(
                        Attr(f"{left}.{attribute}"), "=", Attr(f"{right}.{attribute}")
                    )
                )
        if extra_condition is not None:
            equalities.append(extra_condition)
        return cls(name, relations, projection, conjunction(equalities))

    # ------------------------------------------------------------------ #
    # Structure
    # ------------------------------------------------------------------ #

    @property
    def relation_names(self) -> Tuple[str, ...]:
        return tuple(s.name for s in self.relations)

    def schema_for(self, relation: str) -> RelationSchema:
        try:
            return self._schema_by_name[relation]
        except KeyError:
            raise SchemaError(
                f"view {self.name!r} is not defined over relation {relation!r}"
            ) from None

    def involves(self, relation: str) -> bool:
        """Whether an update to stored relation ``relation`` affects V.

        Matches by *base* relation, so a self-join view over
        ``emp.aliased("manager")`` reacts to updates on ``emp``.
        """
        if relation in self._schema_by_name:
            return True
        return any(schema.base == relation for schema in self.relations)

    def output_columns(self) -> Tuple[str, ...]:
        """Display names of the view's columns, in projection order."""
        return self._term.output_columns()

    @property
    def arity(self) -> int:
        return len(self.projection)

    # ------------------------------------------------------------------ #
    # Key analysis (ECA-Key, Section 5.4)
    # ------------------------------------------------------------------ #

    def projected_positions(self) -> Tuple[int, ...]:
        """Product-row positions of the projected columns."""
        return tuple(self.product.resolve(name) for name in self.projection)

    def _position_equivalence(self) -> Dict[int, int]:
        """Union-find roots over product positions equated by the condition.

        Two positions are equivalent when a top-level equality conjunct
        (e.g. a natural-join condition) forces them equal for every view
        tuple, so either one can serve as the other's projected value.
        """
        from repro.relational.conditions import equality_pairs

        parent: Dict[int, int] = {}

        def find(x: int) -> int:
            parent.setdefault(x, x)
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        for left, right in equality_pairs(self.condition):
            a, b = find(self.product.resolve(left)), find(self.product.resolve(right))
            if a != b:
                parent[a] = b
        return {position: find(position) for position in parent}

    def key_output_positions(self, relation: str) -> Tuple[int, ...]:
        """Output-column indices holding ``relation``'s key, in key order.

        A key attribute counts as projected if the projection contains it
        *or any attribute the view's condition forces equal to it* (e.g.
        the natural-join twin in another relation).  Raises
        :class:`SchemaError` when the relation declares no key or some key
        attribute is unavailable — exactly the cases where ECA-Key does
        not apply.
        """
        cached = self._key_positions.get(relation)
        if cached is not None:
            return cached
        schema = self.schema_for(relation)
        if schema.key is None:
            raise SchemaError(f"relation {relation!r} declares no key")
        start, _ = self.product.relation_span(relation)
        projected = self.projected_positions()
        roots = self._position_equivalence()
        positions: List[int] = []
        for attribute in schema.key:
            product_position = start + schema.position(attribute)
            if product_position in projected:
                positions.append(projected.index(product_position))
                continue
            root = roots.get(product_position, product_position)
            twin = next(
                (
                    index
                    for index, position in enumerate(projected)
                    if roots.get(position, position) == root
                ),
                None,
            )
            if twin is None:
                raise SchemaError(
                    f"view {self.name!r} does not project key attribute "
                    f"{attribute!r} of relation {relation!r} (nor any "
                    f"attribute equated to it)"
                )
            positions.append(twin)
        self._key_positions[relation] = tuple(positions)
        return self._key_positions[relation]

    def serving_key_positions(self) -> Optional[Tuple[int, ...]]:
        """Output positions the serving tier keys cache entries by.

        Prefers the first base relation whose key the view projects (the
        same analysis ECA-Key relies on); falls back to ``None`` when no
        relation qualifies, in which case the whole row is the cache key.
        """
        for schema in self.relations:
            if schema.key is None:
                continue
            try:
                return self.key_output_positions(schema.name)
            except SchemaError:
                continue
        return None

    def contains_all_keys(self) -> bool:
        """True when the view projects a key of every base relation.

        This is the applicability condition of the ECA-Key algorithm.
        """
        try:
            for schema in self.relations:
                self.key_output_positions(schema.name)
        except SchemaError:
            return False
        return True

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def as_query(self) -> Query:
        """The view definition as a one-term query (used by RV)."""
        return Query([self._term])

    def substitute(self, relation: str, signed_tuple: SignedTuple) -> Query:
        """``V<U>`` — the incremental query for an update on ``relation``."""
        if not self.involves(relation):
            raise ExpressionError(
                f"view {self.name!r} is not defined over relation {relation!r}"
            )
        return self.as_query().substitute(relation, signed_tuple)

    # ------------------------------------------------------------------ #
    # Oracle evaluation
    # ------------------------------------------------------------------ #

    def evaluate(self, state: State) -> SignedBag:
        """``V[ss]`` — the view contents over a full source state."""
        return self._term.evaluate(state)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, View):
            return NotImplemented
        return (
            self.name == other.name
            and self.relations == other.relations
            and self.projection == other.projection
            and self.condition == other.condition
        )

    def __hash__(self) -> int:
        return hash((self.name, self.relations, self.projection, self.condition))

    def __repr__(self) -> str:
        rels = " x ".join(self.relation_names)
        return f"View({self.name} = pi[{','.join(self.projection)}]({rels}))"
