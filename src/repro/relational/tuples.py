"""Signed tuples (Section 4.1).

The paper attaches a sign to every tuple: ``+`` for existing or inserted
tuples, ``-`` for deleted tuples.  Signs propagate through relational
operators: selection and projection preserve the sign, and the sign of a
product tuple is the product of its factors' signs (the paper's sign
tables).
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.errors import SignError

PLUS = 1
MINUS = -1

_VALID_SIGNS = (PLUS, MINUS)


def check_sign(sign: int) -> int:
    """Validate a sign value, returning it unchanged.

    Signs are the integers +1 and -1 exactly; equal-comparing values of
    other types (1.0, True) are rejected so sign arithmetic stays integral.
    """
    if type(sign) is not int or sign not in _VALID_SIGNS:
        raise SignError(f"sign must be +1 or -1, got {sign!r}")
    return sign


def combine_signs(*signs: int) -> int:
    """Sign of a product tuple: the product of the factor signs."""
    result = PLUS
    for sign in signs:
        result *= check_sign(sign)
    return result


def sign_symbol(sign: int) -> str:
    """Render a sign the way the paper does (``+``/``-``)."""
    return "+" if check_sign(sign) == PLUS else "-"


class SignedTuple:
    """An immutable tuple of values together with a sign.

    ``SignedTuple((1, 2))`` is the paper's ``+[1,2]``;
    ``SignedTuple((1, 2), MINUS)`` is ``-[1,2]``.
    """

    __slots__ = ("values", "sign")

    def __init__(self, values: Sequence[object], sign: int = PLUS) -> None:
        self.values: Tuple[object, ...] = tuple(values)
        self.sign = check_sign(sign)

    def negate(self) -> "SignedTuple":
        """The same tuple with its sign flipped (the unary ``-``)."""
        return SignedTuple(self.values, -self.sign)

    def with_sign(self, sign: int) -> "SignedTuple":
        return SignedTuple(self.values, sign)

    @property
    def arity(self) -> int:
        return len(self.values)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SignedTuple):
            return NotImplemented
        return self.values == other.values and self.sign == other.sign

    def __hash__(self) -> int:
        return hash((self.values, self.sign))

    def __neg__(self) -> "SignedTuple":
        return self.negate()

    def __repr__(self) -> str:
        inner = ",".join(repr(v) for v in self.values)
        return f"{sign_symbol(self.sign)}[{inner}]"
