"""Columnar batches of signed tuples.

A :class:`ColumnBatch` is the batch-oriented twin of
:class:`~repro.relational.bag.SignedBag`: the same Z-multiset of rows, but
stored as parallel *column* lists plus one signed count vector instead of a
``row -> multiplicity`` mapping.  Row ``i`` of a batch is
``(columns[0][i], ..., columns[w-1][i])`` with signed multiplicity
``counts[i]``; rows may repeat (the batch is *unconsolidated*), and
consolidation back to canonical multiplicities happens exactly once, in
:meth:`to_bag`.

Why columns?  The relational hot path (``repro.relational.engine``) spends
its time selecting, joining, and projecting; in columnar form each of those
is a handful of ``map``/``itertools.compress`` passes over flat lists —
C-speed loops — instead of one Python-level predicate call and one tuple
allocation per candidate row.  No per-tuple wrapper objects
(:class:`~repro.relational.tuples.SignedTuple`) are ever created inside the
batch operators; that invariant is machine-checked by lint rule RPR009.

The vectorized operators over batches live in
:mod:`repro.relational.batch_ops`; this module is just the container and
its (cheap) invariants.
"""

from __future__ import annotations

from itertools import compress
from typing import Iterable, List, Sequence, Tuple

from repro.relational.bag import SignedBag

Row = Tuple[object, ...]


class ColumnBatch:
    """Parallel column lists plus a signed count vector.

    Parameters
    ----------
    columns:
        One list per attribute position, all the same length.
    counts:
        Signed multiplicities, parallel to the columns.  Zero counts are
        legal inside a batch (they annihilate on :meth:`to_bag`).
    """

    __slots__ = ("columns", "counts")

    def __init__(
        self, columns: Sequence[List[object]], counts: List[int]
    ) -> None:
        n = len(counts)
        for column in columns:
            if len(column) != n:
                raise ValueError(
                    f"ragged batch: column of length {len(column)} "
                    f"with {n} counts"
                )
        self.columns: List[List[object]] = list(columns)
        self.counts: List[int] = counts

    # ------------------------------------------------------------------ #
    # Construction / conversion
    # ------------------------------------------------------------------ #

    @classmethod
    def empty(cls, width: int) -> "ColumnBatch":
        return cls([[] for _ in range(width)], [])

    @classmethod
    def from_bag(cls, bag: SignedBag, width: int) -> "ColumnBatch":
        """Transpose a bag into columns (``width`` disambiguates empties)."""
        columns, counts = bag.to_columns(width)
        return cls(columns, counts)

    @classmethod
    def from_pairs(
        cls, pairs: Iterable[Tuple[Row, int]], width: int
    ) -> "ColumnBatch":
        """Batch from ``(row, count)`` pairs (e.g. ``SignedBag.items()``)."""
        rows: List[Row] = []
        counts: List[int] = []
        for row, count in pairs:
            rows.append(row)
            counts.append(count)
        if not rows:
            return cls.empty(width)
        return cls([list(col) for col in zip(*rows)], counts)

    def to_bag(self, coefficient: int = 1) -> SignedBag:
        """Consolidate into a canonical :class:`SignedBag`."""
        return SignedBag.from_columns(self.columns, self.counts, coefficient)

    # ------------------------------------------------------------------ #
    # Shape
    # ------------------------------------------------------------------ #

    @property
    def width(self) -> int:
        """Number of attribute positions (the row arity)."""
        return len(self.columns)

    def __len__(self) -> int:
        """Number of (unconsolidated) rows in the batch."""
        return len(self.counts)

    def is_empty(self) -> bool:
        return not self.counts

    # ------------------------------------------------------------------ #
    # Row/column selection (the building blocks of the operators)
    # ------------------------------------------------------------------ #

    def take(self, indices: Sequence[int]) -> "ColumnBatch":
        """Row gather: the batch restricted to ``indices``, in order."""
        return ColumnBatch(
            [list(map(column.__getitem__, indices)) for column in self.columns],
            list(map(self.counts.__getitem__, indices)),
        )

    def compress(self, mask: Sequence[object]) -> "ColumnBatch":
        """Row filter by a parallel boolean mask."""
        return ColumnBatch(
            [list(compress(column, mask)) for column in self.columns],
            list(compress(self.counts, mask)),
        )

    def gather_columns(self, positions: Sequence[int]) -> "ColumnBatch":
        """Column gather (projection without consolidation).

        Positions may repeat or reorder; counts are shared, not copied.
        """
        return ColumnBatch(
            [self.columns[p] for p in positions], self.counts
        )

    def rows(self) -> Iterable[Row]:
        """Iterate rows as tuples (for tests and display, not hot paths)."""
        return zip(*self.columns) if self.columns else iter(() for _ in self.counts)

    def __repr__(self) -> str:
        return f"ColumnBatch(width={self.width}, rows={len(self.counts)})"
