"""Terms, queries, and the substitution operator ``Q<U>`` (Section 4.2).

A *term* is ``pi_proj(sigma_cond(~r1 x ~r2 x ... x ~rn))`` where each
``~ri`` is either the base relation ``ri`` (a :class:`RelationOperand`) or
a concrete signed tuple of ``ri`` (a :class:`BoundOperand`).  A *query* is
a sum of terms; the paper's ``-`` between terms is encoded as a ``-1``
coefficient.

Substituting an update ``U`` on relation ``rk`` into a term binds ``rk``'s
operand to ``U``'s signed tuple; if the operand is already bound the result
is the empty query (the paper's ``Ti<U> = {}`` rule), which is why
``Q<U1,...,Uk>`` vanishes as soon as two updates touch the same relation.
"""

from __future__ import annotations

import itertools
from typing import Callable, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ExpressionError
from repro.relational.bag import SignedBag
from repro.relational.conditions import Condition, TrueCondition
from repro.relational.schema import ProductSchema, RelationSchema
from repro.relational.tuples import SignedTuple

Row = Tuple[object, ...]
State = Mapping[str, SignedBag]


class RelationOperand:
    """An unbound occurrence of a base relation inside a term."""

    __slots__ = ("schema",)

    def __init__(self, schema: RelationSchema) -> None:
        self.schema = schema

    @property
    def name(self) -> str:
        """The occurrence's name within the term (its alias, if any)."""
        return self.schema.name

    @property
    def source_relation(self) -> str:
        """The stored relation this occurrence reads from."""
        return self.schema.base

    @property
    def is_bound(self) -> bool:
        return False

    def __eq__(self, other: object) -> bool:
        return isinstance(other, RelationOperand) and self.schema == other.schema

    def __hash__(self) -> int:
        return hash(("RelationOperand", self.schema))

    def __repr__(self) -> str:
        return self.schema.name


class BoundOperand:
    """A term operand fixed to one signed tuple of its relation."""

    __slots__ = ("schema", "tuple")

    def __init__(self, schema: RelationSchema, signed_tuple: SignedTuple) -> None:
        schema.validate_row(signed_tuple.values)
        self.schema = schema
        self.tuple = signed_tuple

    @property
    def name(self) -> str:
        return self.schema.name

    @property
    def source_relation(self) -> str:
        return self.schema.base

    @property
    def is_bound(self) -> bool:
        return True

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, BoundOperand)
            and self.schema == other.schema
            and self.tuple == other.tuple
        )

    def __hash__(self) -> int:
        return hash(("BoundOperand", self.schema, self.tuple))

    def __repr__(self) -> str:
        return f"{self.schema.name}={self.tuple!r}"


Operand = object  # RelationOperand | BoundOperand


class Term:
    """One ``pi_proj(sigma_cond(~r1 x ... x ~rn))`` with a +/-1 coefficient."""

    __slots__ = (
        "operands",
        "projection",
        "condition",
        "coefficient",
        "product",
        "_proj_positions",
        "_predicate",
    )

    def __init__(
        self,
        operands: Sequence[Operand],
        projection: Sequence[str],
        condition: Optional[Condition] = None,
        coefficient: int = 1,
    ) -> None:
        if not operands:
            raise ExpressionError("a term needs at least one operand")
        if coefficient not in (1, -1):
            raise ExpressionError(f"term coefficient must be +1 or -1, got {coefficient!r}")
        self.operands: Tuple[Operand, ...] = tuple(operands)
        self.product = ProductSchema([op.schema for op in self.operands])
        self.projection: Tuple[str, ...] = tuple(projection)
        if not self.projection:
            raise ExpressionError("a term needs a non-empty projection")
        self.condition: Condition = condition if condition is not None else TrueCondition()
        self.coefficient = coefficient
        # Resolve names eagerly so malformed terms fail at construction
        # time; the condition's row predicate is bound lazily because
        # compensation machinery builds thousands of terms that are
        # evaluated (if at all) through the columnar engine, which
        # compiles masks itself and never calls the predicate.
        self._proj_positions: Tuple[int, ...] = tuple(
            self.product.resolve(name) for name in self.projection
        )
        for name in self.condition.attributes():
            self.product.resolve(name)
        self._predicate: Optional[Callable[[Row], bool]] = None

    # ------------------------------------------------------------------ #
    # Structure
    # ------------------------------------------------------------------ #

    @property
    def relation_names(self) -> Tuple[str, ...]:
        """Occurrence names (aliases) in operand order."""
        return tuple(op.name for op in self.operands)

    @property
    def source_relation_names(self) -> Tuple[str, ...]:
        """Stored relations read, in operand order (duplicates possible)."""
        return tuple(op.source_relation for op in self.operands)

    def free_relations(self) -> Tuple[str, ...]:
        """Names of operands still bound to full base relations."""
        return tuple(op.name for op in self.operands if not op.is_bound)

    def bound_operands(self) -> Tuple[BoundOperand, ...]:
        return tuple(op for op in self.operands if op.is_bound)

    def is_fully_bound(self) -> bool:
        """True when no base relation remains — evaluable without the source."""
        return all(op.is_bound for op in self.operands)

    def operand_for(self, relation: str) -> Operand:
        for op in self.operands:
            if op.name == relation:
                return op
        raise ExpressionError(f"term does not involve relation {relation!r}")

    def output_columns(self) -> Tuple[str, ...]:
        """Display names of the projected columns."""
        return tuple(self.product.output_name(name) for name in self.projection)

    # ------------------------------------------------------------------ #
    # Algebra
    # ------------------------------------------------------------------ #

    def negate(self) -> "Term":
        return Term(self.operands, self.projection, self.condition, -self.coefficient)

    def substitute(self, relation: str, signed_tuple: SignedTuple) -> Optional["Term"]:
        """``T<U>`` for a relation occurring exactly once: bind its operand.

        Returns ``None`` (the empty term) when the operand is already
        bound, per Section 4.2.  Raises when the term does not involve
        ``relation`` at all, or when the relation occurs several times
        (self-join) — use :meth:`substitute_update` for the general case.
        """
        matches = [
            i for i, op in enumerate(self.operands) if op.source_relation == relation
        ]
        if not matches:
            raise ExpressionError(f"term does not involve relation {relation!r}")
        if len(matches) > 1:
            raise ExpressionError(
                f"relation {relation!r} occurs {len(matches)} times in this "
                f"term; use substitute_update for multi-occurrence views"
            )
        index = matches[0]
        if self.operands[index].is_bound:
            return None
        new_operands = list(self.operands)
        new_operands[index] = BoundOperand(self.operands[index].schema, signed_tuple)
        return Term(new_operands, self.projection, self.condition, self.coefficient)

    def substitute_update(
        self, relation: str, signed_tuple: SignedTuple
    ) -> List["Term"]:
        """``T<U>`` in general — multiple occurrences handled correctly.

        The paper's hint ("handling updates to such relations once for
        each appearance") worked out: with free occurrences ``o_1..o_m``
        of the updated relation, the delta term expands by
        inclusion-exclusion over the non-empty subsets ``S`` of
        occurrences, each bound to ``tuple(U)`` with an extra sign
        ``(-1)^(|S|+1)``::

            T<U> = sum over S != {} of (-1)^(|S|+1) * T[S := tuple(U)]

        because the old extent of each occurrence is ``new - delta`` and
        the product expands multilinearly.  For one occurrence this is
        exactly :meth:`substitute`, and the identity preserves Lemma B.2,
        so every compensation-based algorithm works unchanged on
        self-join views.  Returns ``[]`` when the term has occurrences of
        ``relation`` but all are already bound (the generalized vanishing
        rule), and raises when it has none.
        """
        occurrences = [
            i for i, op in enumerate(self.operands) if op.source_relation == relation
        ]
        if not occurrences:
            raise ExpressionError(f"term does not involve relation {relation!r}")
        free = [i for i in occurrences if not self.operands[i].is_bound]
        out: List[Term] = []
        for size in range(1, len(free) + 1):
            flip = 1 if size % 2 == 1 else -1
            for subset in itertools.combinations(free, size):
                new_operands = list(self.operands)
                for index in subset:
                    new_operands[index] = BoundOperand(
                        self.operands[index].schema, signed_tuple
                    )
                out.append(
                    Term(
                        new_operands,
                        self.projection,
                        self.condition,
                        self.coefficient * flip,
                    )
                )
        return out

    # ------------------------------------------------------------------ #
    # Evaluation
    # ------------------------------------------------------------------ #

    def evaluate(self, state: State) -> SignedBag:
        """Evaluate against ``state`` (relation name -> SignedBag).

        Sign propagation follows Section 4.1: each factor contributes its
        sign (and multiplicity), selection and projection pass signs
        through, and the term's coefficient multiplies the result.
        """
        extents: List[List[Tuple[Row, int]]] = []
        for op in self.operands:
            if op.is_bound:
                extents.append([(op.tuple.values, op.tuple.sign)])
            else:
                try:
                    bag = state[op.source_relation]
                except KeyError:
                    raise ExpressionError(
                        f"state has no relation {op.source_relation!r}"
                    ) from None
                extents.append(list(bag.items()))
        result = SignedBag()
        predicate = self._predicate
        if predicate is None:
            predicate = self.condition.bind(self.product)
            self._predicate = predicate
        positions = self._proj_positions
        for combo in itertools.product(*extents):
            row: Row = tuple(itertools.chain.from_iterable(part for part, _ in combo))
            if not predicate(row):
                continue
            count = self.coefficient
            for _, factor in combo:
                count *= factor
            result.add(tuple(row[i] for i in positions), count)
        return result

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Term):
            return NotImplemented
        return (
            self.operands == other.operands
            and self.projection == other.projection
            and self.condition == other.condition
            and self.coefficient == other.coefficient
        )

    def __hash__(self) -> int:
        return hash((self.operands, self.projection, self.condition, self.coefficient))

    def __repr__(self) -> str:
        sign = "" if self.coefficient > 0 else "-"
        body = " x ".join(repr(op) for op in self.operands)
        cond = "" if isinstance(self.condition, TrueCondition) else f" | {self.condition!r}"
        return f"{sign}pi[{','.join(self.projection)}]({body}{cond})"


class Query:
    """A sum of terms, the unit shipped from warehouse to source."""

    __slots__ = ("terms",)

    def __init__(self, terms: Iterable[Term] = ()) -> None:
        self.terms: Tuple[Term, ...] = tuple(terms)

    # ------------------------------------------------------------------ #
    # Algebra
    # ------------------------------------------------------------------ #

    def __add__(self, other: "Query") -> "Query":
        return Query(self.terms + other.terms)

    def __sub__(self, other: "Query") -> "Query":
        return Query(self.terms + tuple(t.negate() for t in other.terms))

    def __neg__(self) -> "Query":
        return Query(tuple(t.negate() for t in self.terms))

    def substitute(self, relation: str, signed_tuple: SignedTuple) -> "Query":
        """``Q<U> = sum_i T_i<U>``, dropping vanished terms.

        Terms that do not involve ``relation`` at all contribute nothing
        (their value is unaffected by the update); self-join terms expand
        by inclusion-exclusion (see :meth:`Term.substitute_update`).
        """
        substituted: List[Term] = []
        for term in self.terms:
            if relation not in term.source_relation_names:
                continue
            substituted.extend(term.substitute_update(relation, signed_tuple))
        return Query(substituted)

    def substitute_all(
        self, updates: Sequence[Tuple[str, SignedTuple]]
    ) -> "Query":
        """``Q<U1,...,Uk>`` — sequential substitution (Section 4.2)."""
        query: Query = self
        for relation, signed_tuple in updates:
            query = query.substitute(relation, signed_tuple)
        return query

    # ------------------------------------------------------------------ #
    # Partitioning (used by algorithms and by the cost model)
    # ------------------------------------------------------------------ #

    def is_empty(self) -> bool:
        return not self.terms

    def fully_bound_terms(self) -> "Query":
        """Terms needing no source access (evaluable at the warehouse)."""
        return Query(t for t in self.terms if t.is_fully_bound())

    def source_terms(self) -> "Query":
        """Terms that reference at least one base relation."""
        return Query(t for t in self.terms if not t.is_fully_bound())

    def term_count(self) -> int:
        return len(self.terms)

    # ------------------------------------------------------------------ #
    # Evaluation
    # ------------------------------------------------------------------ #

    def evaluate(self, state: State) -> SignedBag:
        result = SignedBag()
        for term in self.terms:
            result.add_bag(term.evaluate(state))
        return result

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Query):
            return NotImplemented
        return self.terms == other.terms

    def __hash__(self) -> int:
        return hash(self.terms)

    def __repr__(self) -> str:
        if not self.terms:
            return "Query(empty)"
        parts = []
        for i, term in enumerate(self.terms):
            rendered = repr(term)
            if i and not rendered.startswith("-"):
                rendered = "+ " + rendered
            elif rendered.startswith("-"):
                rendered = "- " + rendered[1:]
            parts.append(rendered)
        return "Query(" + " ".join(parts) + ")"


def empty_query() -> Query:
    """The query with no terms (evaluates to the empty relation)."""
    return Query()
