"""Duplicate-retaining relations with signed tuples.

The paper keeps duplicates in materialized views ("duplicate retention, or
at least a replication count, is essential if deletions are to be handled
incrementally" — Section 1.1) and defines ``+`` and ``-`` on relations of
signed tuples (Section 4.1):

    r1 + r2 = (pos(r1) U pos(r2)) - (neg(r1) U neg(r2))
    r1 - r2 = r1 + (-r2)

We represent such a relation as a mapping from tuple values to an integer
multiplicity (a Z-multiset, sometimes called a z-relation).  A positive
multiplicity ``n`` encodes ``n`` copies with a ``+`` sign; a negative
multiplicity encodes copies carrying ``-``.  Under this encoding the
paper's ``+`` is pointwise integer addition, unary ``-`` is pointwise
negation, and both operator laws used by the correctness proofs
(commutativity, associativity, distributivity of ``x`` over ``+``) hold by
construction.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.relational.tuples import MINUS, PLUS, SignedTuple, check_sign

Row = Tuple[object, ...]


class SignedBag:
    """A relation of signed tuples with integer multiplicities.

    The empty bag is falsy; bags compare equal when every tuple has the
    same multiplicity in both.
    """

    __slots__ = ("_counts",)

    def __init__(self, counts: Mapping[Row, int] = None) -> None:
        self._counts: Dict[Row, int] = {}
        if counts:
            for row, count in counts.items():
                self.add(tuple(row), count)

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #

    @classmethod
    def from_rows(cls, rows: Iterable[Sequence[object]]) -> "SignedBag":
        """Bag of positive tuples, one occurrence per listed row."""
        bag = cls()
        for row in rows:
            bag.add(tuple(row), 1)
        return bag

    @classmethod
    def from_signed(cls, tuples: Iterable[SignedTuple]) -> "SignedBag":
        """Bag built from explicit :class:`SignedTuple` occurrences."""
        bag = cls()
        for t in tuples:
            bag.add(t.values, t.sign)
        return bag

    @classmethod
    def singleton(cls, row: Sequence[object], sign: int = PLUS) -> "SignedBag":
        bag = cls()
        bag.add(tuple(row), check_sign(sign))
        return bag

    @classmethod
    def from_columns(
        cls,
        columns: Sequence[Sequence[object]],
        counts: Sequence[int],
        coefficient: int = 1,
    ) -> "SignedBag":
        """Consolidate a columnar batch into a bag.

        ``columns`` are parallel column lists and ``counts`` the signed
        multiplicity vector (the representation of
        :class:`~repro.relational.columns.ColumnBatch`).  Rows may repeat;
        multiplicities accumulate and zeros annihilate, so the result is
        canonical.  ``coefficient`` scales every count (the term
        coefficient in :mod:`~repro.relational.engine`).
        """
        bag = cls()
        if coefficient != 1:
            counts = [coefficient * c for c in counts]
        store = bag._counts
        get = store.get
        if not columns:
            # Zero-arity rows all collapse onto the empty tuple.
            total = sum(counts)
            if total:
                store[()] = total
            return bag
        for row, count in zip(zip(*columns), counts):
            new = get(row, 0) + count
            if new:
                store[row] = new
            elif row in store:
                del store[row]
        return bag

    def to_columns(
        self, width: Optional[int] = None
    ) -> Tuple[List[List[object]], List[int]]:
        """Transpose into parallel column lists plus a count vector.

        The inverse of :meth:`from_columns` (up to row order, which is
        insertion order here — canonical representations go through
        :meth:`to_pairs`).  ``width`` disambiguates the column count for
        the empty bag; for non-empty bags it is validated against the
        stored rows.
        """
        if not self._counts:
            return [[] for _ in range(width or 0)], []
        rows = list(self._counts.keys())
        if width is not None and len(rows[0]) != width:
            raise ValueError(
                f"bag rows have arity {len(rows[0])}, expected {width}"
            )
        columns = [list(column) for column in zip(*rows)]
        return columns, list(self._counts.values())

    def copy(self) -> "SignedBag":
        clone = SignedBag()
        clone._counts = dict(self._counts)
        return clone

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #

    def add(self, row: Sequence[object], count: int = 1) -> None:
        """Add ``count`` signed occurrences of ``row`` (count may be negative)."""
        if count == 0:
            return
        key = tuple(row)
        new = self._counts.get(key, 0) + count
        if new == 0:
            self._counts.pop(key, None)
        else:
            self._counts[key] = new

    def add_bag(self, other: "SignedBag") -> None:
        """In-place ``self + other``."""
        for row, count in other._counts.items():
            self.add(row, count)

    def discard_row(self, row: Sequence[object]) -> None:
        """Remove every occurrence of ``row`` regardless of multiplicity."""
        self._counts.pop(tuple(row), None)

    def clear(self) -> None:
        self._counts.clear()

    # ------------------------------------------------------------------ #
    # The paper's relation operators
    # ------------------------------------------------------------------ #

    def __add__(self, other: "SignedBag") -> "SignedBag":
        result = self.copy()
        result.add_bag(other)
        return result

    def __sub__(self, other: "SignedBag") -> "SignedBag":
        return self + (-other)

    def __neg__(self) -> "SignedBag":
        result = SignedBag()
        result._counts = {row: -count for row, count in self._counts.items()}
        return result

    def pos(self) -> "SignedBag":
        """The sub-bag of tuples carrying a plus sign."""
        result = SignedBag()
        result._counts = {r: c for r, c in self._counts.items() if c > 0}
        return result

    def neg(self) -> "SignedBag":
        """The sub-bag of tuples carrying a minus sign, as positive counts."""
        result = SignedBag()
        result._counts = {r: -c for r, c in self._counts.items() if c < 0}
        return result

    # ------------------------------------------------------------------ #
    # Inspection
    # ------------------------------------------------------------------ #

    def multiplicity(self, row: Sequence[object]) -> int:
        return self._counts.get(tuple(row), 0)

    def __contains__(self, row: object) -> bool:
        return tuple(row) in self._counts  # type: ignore[arg-type]

    def items(self) -> Iterator[Tuple[Row, int]]:
        """Iterate ``(row, signed multiplicity)`` pairs."""
        return iter(self._counts.items())

    def rows(self) -> Iterator[Row]:
        """Iterate distinct rows (ignoring multiplicity and sign)."""
        return iter(self._counts.keys())

    def signed_tuples(self) -> Iterator[SignedTuple]:
        """Expand to individual :class:`SignedTuple` occurrences."""
        for row, count in self._counts.items():
            sign = PLUS if count > 0 else MINUS
            for _ in range(abs(count)):
                yield SignedTuple(row, sign)

    def expand_rows(self) -> List[Row]:
        """Rows with positive multiplicity, repeated per multiplicity.

        Only valid for non-negative bags (e.g. base relations, final views).
        """
        out: List[Row] = []
        for row, count in sorted(self._counts.items(), key=lambda kv: repr(kv[0])):
            if count < 0:
                raise ValueError(
                    f"expand_rows on bag with negative multiplicity: {row!r} x {count}"
                )
            out.extend([row] * count)
        return out

    def to_pairs(self) -> List[Tuple[Row, int]]:
        """Canonical ``(row, signed multiplicity)`` pairs.

        Pairs are sorted by ``repr(row)`` (the same total order
        :meth:`expand_rows` and ``__repr__`` use), so equal bags always
        produce identical pair lists — the property the durability codec
        relies on for byte-stable encodings.
        """
        return sorted(self._counts.items(), key=lambda kv: repr(kv[0]))

    @classmethod
    def from_pairs(
        cls, pairs: Iterable[Tuple[Sequence[object], int]], nonnegative: bool = False
    ) -> "SignedBag":
        """Rebuild a bag from :meth:`to_pairs` output, with validation.

        Each pair must be a ``(row, count)`` with an integral non-zero
        count and no row repeated; ``nonnegative=True`` additionally
        rejects minus-signed multiplicities (for base relations and
        installed views).  Raises ``TypeError``/``ValueError`` so that
        malformed persisted data is loudly rejected rather than clamped.
        """
        bag = cls()
        for pair in pairs:
            if not isinstance(pair, (tuple, list)) or len(pair) != 2:
                raise TypeError(f"pair must be (row, count), got {pair!r}")
            row, count = pair
            if type(count) is not int:
                raise TypeError(f"multiplicity must be int, got {count!r}")
            if count == 0:
                raise ValueError(f"zero multiplicity for row {row!r}")
            if nonnegative and count < 0:
                raise ValueError(f"negative multiplicity for row {row!r}: {count}")
            key = tuple(row)
            if key in bag._counts:
                raise ValueError(f"duplicate row in pairs: {key!r}")
            bag._counts[key] = count
        return bag

    def distinct_count(self) -> int:
        """Number of distinct rows present (with any nonzero multiplicity)."""
        return len(self._counts)

    def total_count(self) -> int:
        """Sum of absolute multiplicities (number of signed occurrences)."""
        return sum(abs(c) for c in self._counts.values())

    def net_count(self) -> int:
        """Sum of signed multiplicities."""
        return sum(self._counts.values())

    def is_empty(self) -> bool:
        return not self._counts

    def is_nonnegative(self) -> bool:
        """True when no tuple carries a minus sign."""
        return all(count > 0 for count in self._counts.values())

    def __bool__(self) -> bool:
        return bool(self._counts)

    def __len__(self) -> int:
        return self.total_count()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SignedBag):
            return NotImplemented
        return self._counts == other._counts

    def __hash__(self) -> int:
        return hash(frozenset(self._counts.items()))

    def __repr__(self) -> str:
        if not self._counts:
            return "SignedBag(empty)"
        parts = []
        for row, count in sorted(self._counts.items(), key=lambda kv: repr(kv[0])):
            sign = "+" if count > 0 else "-"
            inner = ",".join(repr(v) for v in row)
            mult = f"x{abs(count)}" if abs(count) != 1 else ""
            parts.append(f"{sign}[{inner}]{mult}")
        return f"SignedBag({' '.join(parts)})"
