"""Vectorized operators over :class:`~repro.relational.columns.ColumnBatch`.

Each operator is extensionally equal to the tuple-at-a-time reference
implementation in :mod:`repro.relational.expressions` /
:class:`~repro.relational.bag.SignedBag` (property-tested in
``tests/property/test_columnar_properties.py``) but runs as a few
``map``/``itertools.compress`` passes over flat column lists instead of a
Python-level loop per tuple:

- :func:`compile_mask` compiles any :class:`~repro.relational.conditions.
  Condition` into a columnar mask function (``columns, n -> bools``);
  the condition language is a closed set (TRUE, comparison, AND, OR,
  NOT), so there is no per-row fallback path;
- :func:`batch_select` filters a batch by a condition;
- :func:`batch_project` gathers columns (no consolidation — signed-bag
  semantics are restored by ``ColumnBatch.to_bag``);
- :func:`batch_join` hash-joins two batches on positional key pairs,
  multiplying signed counts, and falls back to the cartesian product
  when no keys are given;
- :func:`batch_union` concatenates batches (bag ``+``);
- :func:`batch_negate` flips every signed count (bag unary ``-``).

``resolve`` arguments map attribute names to product positions; pass
``ProductSchema.resolve`` (or any compatible callable).
"""

from __future__ import annotations

from itertools import repeat
from operator import and_, mul, not_, or_
from typing import Callable, List, Optional, Sequence, Tuple

from repro.errors import ExpressionError
from repro.relational.columns import ColumnBatch
from repro.relational.conditions import (
    _COMPARATORS,
    And,
    Attr,
    Comparison,
    Condition,
    Const,
    Not,
    Or,
    TrueCondition,
)

Columns = Sequence[List[object]]
#: A compiled mask: ``(columns, n) -> n booleans``.  ``None`` means
#: "always true" (no filtering needed).
MaskFn = Callable[[Columns, int], List[bool]]


def _comparison_mask(condition: Comparison, resolve: Callable[[str], int]) -> MaskFn:
    compare = _COMPARATORS[condition.op]
    left, right = condition.left, condition.right
    if isinstance(left, Attr) and isinstance(right, Attr):
        i = resolve(left.name)
        j = resolve(right.name)
        return lambda columns, n: list(map(compare, columns[i], columns[j]))
    if isinstance(left, Attr) and isinstance(right, Const):
        i = resolve(left.name)
        value = right.value
        return lambda columns, n: list(map(compare, columns[i], repeat(value)))
    if isinstance(left, Const) and isinstance(right, Attr):
        j = resolve(right.name)
        value = left.value
        return lambda columns, n: list(map(compare, repeat(value), columns[j]))
    if isinstance(left, Const) and isinstance(right, Const):
        verdict = bool(compare(left.value, right.value))
        return lambda columns, n: [verdict] * n
    raise ExpressionError(f"uncompilable comparison operands in {condition!r}")


def compile_mask(
    condition: Condition, resolve: Callable[[str], int]
) -> Optional[MaskFn]:
    """Compile a condition into a columnar mask function.

    Returns ``None`` for the always-true condition so callers can skip
    the filtering pass entirely.  The condition language is closed
    (exactly five node types), so compilation is total.
    """
    if isinstance(condition, TrueCondition):
        return None
    if isinstance(condition, Comparison):
        return _comparison_mask(condition, resolve)
    if isinstance(condition, And):
        parts = [compile_mask(part, resolve) for part in condition.parts]
        masks = [m for m in parts if m is not None]
        if not masks:
            return None
        if len(masks) == 1:
            return masks[0]

        def _and(columns: Columns, n: int) -> List[bool]:
            out = masks[0](columns, n)
            for m in masks[1:]:
                out = list(map(and_, out, m(columns, n)))
            return out

        return _and
    if isinstance(condition, Or):
        parts = [compile_mask(part, resolve) for part in condition.parts]
        if any(m is None for m in parts):
            return None

        def _or(columns: Columns, n: int) -> List[bool]:
            out = parts[0](columns, n)  # type: ignore[misc]
            for m in parts[1:]:
                out = list(map(or_, out, m(columns, n)))  # type: ignore[misc]
            return out

        return _or
    if isinstance(condition, Not):
        inner = compile_mask(condition.part, resolve)
        if inner is None:
            return lambda columns, n: [False] * n
        return lambda columns, n: list(map(not_, inner(columns, n)))
    raise ExpressionError(f"uncompilable condition node {condition!r}")


def batch_select(
    batch: ColumnBatch, condition: Condition, resolve: Callable[[str], int]
) -> ColumnBatch:
    """``sigma_cond(batch)`` — rows failing the condition are dropped."""
    mask = compile_mask(condition, resolve)
    if mask is None:
        return batch
    return batch.compress(mask(batch.columns, len(batch.counts)))


def batch_project(batch: ColumnBatch, positions: Sequence[int]) -> ColumnBatch:
    """``pi_positions(batch)`` without consolidation (duplicates retained)."""
    return batch.gather_columns(positions)


def batch_join(
    left: ColumnBatch,
    right: ColumnBatch,
    keys: Sequence[Tuple[int, int]] = (),
) -> ColumnBatch:
    """Signed hash join of two batches on positional key pairs.

    ``keys`` holds ``(left_position, right_position)`` equality pairs;
    with no keys the result is the full signed cartesian product.  Output
    columns are the left columns followed by the right columns; output
    counts multiply (Section 4.1 sign propagation).
    """
    left_counts = left.counts
    right_counts = right.counts
    if not left_counts or not right_counts:
        return ColumnBatch.empty(left.width + right.width)
    if keys:
        if len(keys) == 1:
            left_key = left.columns[keys[0][0]]
            right_key = right.columns[keys[0][1]]
        else:
            left_key = list(zip(*(left.columns[i] for i, _ in keys)))
            right_key = list(zip(*(right.columns[j] for _, j in keys)))
        buckets: dict = {}
        setdefault = buckets.setdefault
        for index, key in enumerate(right_key):
            setdefault(key, []).append(index)
        get = buckets.get
        left_indices: List[int] = []
        right_indices: List[int] = []
        extend_left = left_indices.extend
        extend_right = right_indices.extend
        for index, key in enumerate(left_key):
            matched = get(key)
            if matched:
                extend_left(repeat(index, len(matched)))
                extend_right(matched)
    else:
        n_left = len(left_counts)
        n_right = len(right_counts)
        right_range = list(range(n_right))
        left_indices = [i for i in range(n_left) for _ in right_range]
        right_indices = right_range * n_left
    columns = [
        list(map(column.__getitem__, left_indices)) for column in left.columns
    ]
    columns += [
        list(map(column.__getitem__, right_indices)) for column in right.columns
    ]
    counts = list(
        map(
            mul,
            map(left_counts.__getitem__, left_indices),
            map(right_counts.__getitem__, right_indices),
        )
    )
    return ColumnBatch(columns, counts)


def batch_union(*batches: ColumnBatch) -> ColumnBatch:
    """Signed bag union (the paper's ``+``): concatenate rows."""
    if not batches:
        raise ExpressionError("batch_union needs at least one batch")
    width = batches[0].width
    for batch in batches[1:]:
        if batch.width != width:
            raise ExpressionError(
                f"union of incompatible widths {width} and {batch.width}"
            )
    columns: List[List[object]] = [[] for _ in range(width)]
    counts: List[int] = []
    for batch in batches:
        for out, column in zip(columns, batch.columns):
            out.extend(column)
        counts.extend(batch.counts)
    return ColumnBatch(columns, counts)


def batch_negate(batch: ColumnBatch) -> ColumnBatch:
    """Signed bag negation (the paper's unary ``-``)."""
    return ColumnBatch(list(batch.columns), [-c for c in batch.counts])
