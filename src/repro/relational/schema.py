"""Relation schemas and product-row name resolution.

The paper writes views as ``V = pi_proj(sigma_cond(r1 x r2 x ... x rn))``
over *distinct* base relations (Section 4).  Its examples use shared
attribute names to express natural joins (``r1(W, X)`` joins ``r2(X, Y)``
on ``X``).  To keep both notations expressible we give every column of a
cross product a qualified name ``relation.attribute`` and additionally allow
the bare attribute name wherever it is unambiguous.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import SchemaError

Value = object
Row = Tuple[Value, ...]


class RelationSchema:
    """Schema of one base relation: a name, ordered attributes, optional key.

    Parameters
    ----------
    name:
        Relation name, e.g. ``"r1"``.  Must be a valid identifier.
    attributes:
        Ordered attribute names, e.g. ``("W", "X")``.  Names must be unique
        within the relation.
    key:
        Optional subset of ``attributes`` forming a key.  Required by the
        ECA-Key algorithm (Section 5.4); ignored by the other algorithms.
    base:
        The *stored* relation this schema reads from; defaults to ``name``.
        Differs from ``name`` only for aliases (:meth:`aliased`), which let
        a view mention the same base relation more than once (self-joins,
        Section 4's "multiple occurrences of the same relation").
    """

    __slots__ = ("name", "attributes", "key", "base", "_positions")

    def __init__(
        self,
        name: str,
        attributes: Sequence[str],
        key: Optional[Sequence[str]] = None,
        base: Optional[str] = None,
    ) -> None:
        if not name or not name.isidentifier():
            raise SchemaError(f"relation name must be an identifier, got {name!r}")
        attrs = tuple(attributes)
        if not attrs:
            raise SchemaError(f"relation {name!r} must have at least one attribute")
        if len(set(attrs)) != len(attrs):
            raise SchemaError(f"duplicate attribute names in relation {name!r}: {attrs}")
        for a in attrs:
            if not a or not a.isidentifier():
                raise SchemaError(f"attribute name must be an identifier, got {a!r}")
        if base is not None and (not base or not base.isidentifier()):
            raise SchemaError(f"base relation name must be an identifier, got {base!r}")
        self.name = name
        self.base = base if base is not None else name
        self.attributes = attrs
        self._positions: Dict[str, int] = {a: i for i, a in enumerate(attrs)}
        if key is not None:
            key_t = tuple(key)
            if not key_t:
                raise SchemaError(f"key of relation {name!r} must not be empty")
            missing = [a for a in key_t if a not in self._positions]
            if missing:
                raise SchemaError(
                    f"key attributes {missing} are not attributes of relation {name!r}"
                )
            if len(set(key_t)) != len(key_t):
                raise SchemaError(f"duplicate key attributes in relation {name!r}")
            self.key = key_t
        else:
            self.key = None

    @property
    def arity(self) -> int:
        """Number of attributes."""
        return len(self.attributes)

    @property
    def is_alias(self) -> bool:
        return self.base != self.name

    def aliased(self, alias: str) -> "RelationSchema":
        """A renamed occurrence of this relation for use inside one view.

        The alias keeps the attributes and key but reads from the same
        stored relation (``base``), so a view can join a relation with
        itself: ``emp.aliased("manager")``.
        """
        return RelationSchema(alias, self.attributes, self.key, base=self.base)

    def position(self, attribute: str) -> int:
        """Index of ``attribute`` within the schema."""
        try:
            return self._positions[attribute]
        except KeyError:
            raise SchemaError(
                f"relation {self.name!r} has no attribute {attribute!r}"
            ) from None

    def has_attribute(self, attribute: str) -> bool:
        return attribute in self._positions

    def validate_row(self, row: Sequence[Value]) -> Row:
        """Check arity and return the row as a tuple."""
        row_t = tuple(row)
        if len(row_t) != self.arity:
            raise SchemaError(
                f"row {row_t!r} has arity {len(row_t)}, "
                f"but relation {self.name!r} has arity {self.arity}"
            )
        return row_t

    def key_positions(self) -> Tuple[int, ...]:
        """Indices of the key attributes; raises if no key is declared."""
        if self.key is None:
            raise SchemaError(f"relation {self.name!r} has no declared key")
        return tuple(self._positions[a] for a in self.key)

    def key_of(self, row: Sequence[Value]) -> Row:
        """Project ``row`` onto the declared key."""
        row_t = self.validate_row(row)
        return tuple(row_t[i] for i in self.key_positions())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RelationSchema):
            return NotImplemented
        return (
            self.name == other.name
            and self.attributes == other.attributes
            and self.key == other.key
            and self.base == other.base
        )

    def __hash__(self) -> int:
        return hash((self.name, self.attributes, self.key, self.base))

    def __repr__(self) -> str:
        cols = ", ".join(self.attributes)
        key = f", key={list(self.key)}" if self.key else ""
        alias = f" AS {self.name}" if self.is_alias else ""
        shown = self.base if self.is_alias else self.name
        return f"RelationSchema({shown}({cols}){key}{alias})"


class ProductSchema:
    """Name resolution for rows of a cross product ``r1 x r2 x ... x rn``.

    A product row is the concatenation of one row per operand relation, in
    operand order.  Columns are addressable by qualified name
    (``"r1.W"``) always, and by bare name (``"W"``) when exactly one operand
    provides that attribute.
    """

    def __init__(self, schemas: Sequence[RelationSchema]) -> None:
        if not schemas:
            raise SchemaError("a product needs at least one relation")
        names = [s.name for s in schemas]
        if len(set(names)) != len(names):
            raise SchemaError(f"product relations must be distinct, got {names}")
        self.schemas: Tuple[RelationSchema, ...] = tuple(schemas)
        self._qualified: Dict[str, int] = {}
        self._bare: Dict[str, List[int]] = {}
        offset = 0
        for schema in self.schemas:
            for i, a in enumerate(schema.attributes):
                self._qualified[f"{schema.name}.{a}"] = offset + i
                self._bare.setdefault(a, []).append(offset + i)
            offset += schema.arity
        self.width = offset

    def resolve(self, name: str) -> int:
        """Map an attribute reference to its position in the product row.

        Accepts qualified (``"r1.W"``) and unambiguous bare (``"W"``) names.
        """
        if name in self._qualified:
            return self._qualified[name]
        positions = self._bare.get(name)
        if positions is None:
            raise SchemaError(f"unknown attribute {name!r} in product {self._names()}")
        if len(positions) > 1:
            raise SchemaError(
                f"attribute {name!r} is ambiguous in product {self._names()}; "
                f"qualify it as relation.attribute"
            )
        return positions[0]

    def qualified_name(self, position: int) -> str:
        """Inverse of :meth:`resolve` for qualified names."""
        offset = 0
        for schema in self.schemas:
            if position < offset + schema.arity:
                return f"{schema.name}.{schema.attributes[position - offset]}"
            offset += schema.arity
        raise SchemaError(f"position {position} out of range for product of width {self.width}")

    def output_name(self, name: str) -> str:
        """Shortest unambiguous display name for an attribute reference."""
        position = self.resolve(name)
        bare = self.qualified_name(position).split(".", 1)[1]
        if len(self._bare.get(bare, [])) == 1:
            return bare
        return self.qualified_name(position)

    def relation_span(self, relation: str) -> Tuple[int, int]:
        """Half-open ``(start, stop)`` column range of ``relation``'s columns."""
        offset = 0
        for schema in self.schemas:
            if schema.name == relation:
                return offset, offset + schema.arity
            offset += schema.arity
        raise SchemaError(f"relation {relation!r} is not part of product {self._names()}")

    def _names(self) -> Tuple[str, ...]:
        return tuple(s.name for s in self.schemas)

    def __repr__(self) -> str:
        return f"ProductSchema({' x '.join(self._names())})"


def require_distinct(schemas: Iterable[RelationSchema]) -> None:
    """Raise :class:`SchemaError` unless all relation names are distinct."""
    seen = set()
    for schema in schemas:
        if schema.name in seen:
            raise SchemaError(f"relation {schema.name!r} appears more than once")
        seen.add(schema.name)
