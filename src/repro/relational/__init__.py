"""Signed-tuple relational algebra (Section 4 of the paper).

This package implements the data model the paper's algorithms are written
against:

- :mod:`repro.relational.schema` — named relation schemas with optional keys;
- :mod:`repro.relational.bag` — duplicate-retaining relations with signed
  tuples (:class:`SignedBag`), including the paper's ``+`` and ``-``
  operators on relations;
- :mod:`repro.relational.conditions` — a small condition language evaluable
  in Python and renderable to SQL;
- :mod:`repro.relational.expressions` — terms
  ``pi_proj(sigma_cond(r1 x ... x rn))``, sum-of-term queries, and the
  substitution operator ``Q<U>``;
- :mod:`repro.relational.views` — select-project-join view definitions with
  a natural-join convenience constructor;
- :mod:`repro.relational.signature` — canonical structural signatures for
  terms and queries under renaming (the shared-compensation planner's
  grouping key).
"""

from repro.relational.bag import SignedBag
from repro.relational.batch_ops import (
    batch_join,
    batch_negate,
    batch_project,
    batch_select,
    batch_union,
    compile_mask,
)
from repro.relational.columns import ColumnBatch
from repro.relational.conditions import (
    And,
    Attr,
    Comparison,
    Condition,
    Const,
    Not,
    Or,
    TrueCondition,
    attr,
    conjunction,
)
from repro.relational.expressions import BoundOperand, Query, RelationOperand, Term
from repro.relational.schema import ProductSchema, RelationSchema
from repro.relational.signature import (
    condition_signature,
    query_signature,
    term_signature,
)
from repro.relational.tuples import MINUS, PLUS, SignedTuple
from repro.relational.unions import UnionView
from repro.relational.views import View

__all__ = [
    "And",
    "Attr",
    "BoundOperand",
    "ColumnBatch",
    "Comparison",
    "Condition",
    "Const",
    "MINUS",
    "Not",
    "Or",
    "PLUS",
    "ProductSchema",
    "Query",
    "RelationOperand",
    "RelationSchema",
    "SignedBag",
    "SignedTuple",
    "Term",
    "TrueCondition",
    "UnionView",
    "View",
    "attr",
    "batch_join",
    "batch_negate",
    "batch_project",
    "batch_select",
    "batch_union",
    "compile_mask",
    "condition_signature",
    "conjunction",
    "query_signature",
    "term_signature",
]
