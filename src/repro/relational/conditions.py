"""Selection conditions for SPJ views.

A condition is a boolean expression over attribute references and
constants, built from comparisons and ``AND`` / ``OR`` / ``NOT``.  The same
AST serves three consumers:

- the in-memory evaluator (:meth:`Condition.evaluate` against a resolved
  product row);
- the SQLite source, which renders it to a SQL ``WHERE`` clause
  (:meth:`Condition.to_sql`);
- the view-analysis code (e.g. ECA-Local), which inspects referenced
  attributes via :meth:`Condition.attributes`.

Attribute references use the naming rules of
:class:`repro.relational.schema.ProductSchema`: qualified ``"r1.W"`` always
works, bare ``"W"`` works when unambiguous.
"""

from __future__ import annotations

import operator
from typing import Callable, Dict, List, Sequence, Tuple

from repro.errors import ExpressionError
from repro.relational.schema import ProductSchema

Row = Tuple[object, ...]

_COMPARATORS: Dict[str, Callable[[object, object], bool]] = {
    "=": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}

_SQL_OPS = {"=": "=", "!=": "<>", "<": "<", "<=": "<=", ">": ">", ">=": ">="}


class Operand:
    """Base class for comparison operands (attributes and constants)."""

    def resolve(self, schema: ProductSchema) -> "_BoundOperand":
        raise NotImplementedError

    def to_sql(self, column_of: Callable[[str], str], params: List[object]) -> str:
        raise NotImplementedError


class Attr(Operand):
    """Reference to an attribute by (possibly qualified) name."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def resolve(self, schema: ProductSchema) -> "_BoundOperand":
        position = schema.resolve(self.name)
        return _BoundAttr(position)

    def to_sql(self, column_of: Callable[[str], str], params: List[object]) -> str:
        return column_of(self.name)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Attr) and self.name == other.name

    def __hash__(self) -> int:
        return hash(("Attr", self.name))

    def __repr__(self) -> str:
        return self.name


class Const(Operand):
    """A literal constant."""

    __slots__ = ("value",)

    def __init__(self, value: object) -> None:
        self.value = value

    def resolve(self, schema: ProductSchema) -> "_BoundOperand":
        return _BoundConst(self.value)

    def to_sql(self, column_of: Callable[[str], str], params: List[object]) -> str:
        params.append(self.value)
        return "?"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Const) and self.value == other.value

    def __hash__(self) -> int:
        return hash(("Const", self.value))

    def __repr__(self) -> str:
        return repr(self.value)


class _BoundOperand:
    def value(self, row: Row) -> object:
        raise NotImplementedError


class _BoundAttr(_BoundOperand):
    __slots__ = ("position",)

    def __init__(self, position: int) -> None:
        self.position = position

    def value(self, row: Row) -> object:
        return row[self.position]


class _BoundConst(_BoundOperand):
    __slots__ = ("constant",)

    def __init__(self, constant: object) -> None:
        self.constant = constant

    def value(self, row: Row) -> object:
        return self.constant


class Condition:
    """Base class for selection conditions."""

    def bind(self, schema: ProductSchema) -> Callable[[Row], bool]:
        """Compile to a fast row predicate for the given product schema."""
        raise NotImplementedError

    def attributes(self) -> Tuple[str, ...]:
        """All attribute names referenced, in syntactic order."""
        raise NotImplementedError

    def to_sql(self, column_of: Callable[[str], str], params: List[object]) -> str:
        """Render to a SQL expression, appending literals to ``params``."""
        raise NotImplementedError

    def __and__(self, other: "Condition") -> "Condition":
        return And(self, other)

    def __or__(self, other: "Condition") -> "Condition":
        return Or(self, other)

    def __invert__(self) -> "Condition":
        return Not(self)


class TrueCondition(Condition):
    """The always-true condition (a pure projection over a product)."""

    def bind(self, schema: ProductSchema) -> Callable[[Row], bool]:
        return lambda row: True

    def attributes(self) -> Tuple[str, ...]:
        return ()

    def to_sql(self, column_of: Callable[[str], str], params: List[object]) -> str:
        return "1=1"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, TrueCondition)

    def __hash__(self) -> int:
        return hash("TrueCondition")

    def __repr__(self) -> str:
        return "TRUE"


class Comparison(Condition):
    """``left op right`` where op is one of ``= != < <= > >=``."""

    __slots__ = ("left", "op", "right")

    def __init__(self, left: Operand, op: str, right: Operand) -> None:
        if op not in _COMPARATORS:
            raise ExpressionError(
                f"unknown comparison operator {op!r}; expected one of {sorted(_COMPARATORS)}"
            )
        self.left = left
        self.op = op
        self.right = right

    def bind(self, schema: ProductSchema) -> Callable[[Row], bool]:
        left = self.left.resolve(schema)
        right = self.right.resolve(schema)
        compare = _COMPARATORS[self.op]
        return lambda row: compare(left.value(row), right.value(row))

    def attributes(self) -> Tuple[str, ...]:
        names = []
        for side in (self.left, self.right):
            if isinstance(side, Attr):
                names.append(side.name)
        return tuple(names)

    def to_sql(self, column_of: Callable[[str], str], params: List[object]) -> str:
        left = self.left.to_sql(column_of, params)
        right = self.right.to_sql(column_of, params)
        return f"({left} {_SQL_OPS[self.op]} {right})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Comparison)
            and self.left == other.left
            and self.op == other.op
            and self.right == other.right
        )

    def __hash__(self) -> int:
        return hash(("Comparison", self.left, self.op, self.right))

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


class And(Condition):
    __slots__ = ("parts",)

    def __init__(self, *parts: Condition) -> None:
        if not parts:
            raise ExpressionError("And needs at least one part")
        self.parts = tuple(parts)

    def bind(self, schema: ProductSchema) -> Callable[[Row], bool]:
        predicates = [part.bind(schema) for part in self.parts]
        return lambda row: all(p(row) for p in predicates)

    def attributes(self) -> Tuple[str, ...]:
        names: List[str] = []
        for part in self.parts:
            names.extend(part.attributes())
        return tuple(names)

    def to_sql(self, column_of: Callable[[str], str], params: List[object]) -> str:
        return "(" + " AND ".join(p.to_sql(column_of, params) for p in self.parts) + ")"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, And) and self.parts == other.parts

    def __hash__(self) -> int:
        return hash(("And", self.parts))

    def __repr__(self) -> str:
        return "(" + " AND ".join(repr(p) for p in self.parts) + ")"


class Or(Condition):
    __slots__ = ("parts",)

    def __init__(self, *parts: Condition) -> None:
        if not parts:
            raise ExpressionError("Or needs at least one part")
        self.parts = tuple(parts)

    def bind(self, schema: ProductSchema) -> Callable[[Row], bool]:
        predicates = [part.bind(schema) for part in self.parts]
        return lambda row: any(p(row) for p in predicates)

    def attributes(self) -> Tuple[str, ...]:
        names: List[str] = []
        for part in self.parts:
            names.extend(part.attributes())
        return tuple(names)

    def to_sql(self, column_of: Callable[[str], str], params: List[object]) -> str:
        return "(" + " OR ".join(p.to_sql(column_of, params) for p in self.parts) + ")"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Or) and self.parts == other.parts

    def __hash__(self) -> int:
        return hash(("Or", self.parts))

    def __repr__(self) -> str:
        return "(" + " OR ".join(repr(p) for p in self.parts) + ")"


class Not(Condition):
    __slots__ = ("part",)

    def __init__(self, part: Condition) -> None:
        self.part = part

    def bind(self, schema: ProductSchema) -> Callable[[Row], bool]:
        predicate = self.part.bind(schema)
        return lambda row: not predicate(row)

    def attributes(self) -> Tuple[str, ...]:
        return self.part.attributes()

    def to_sql(self, column_of: Callable[[str], str], params: List[object]) -> str:
        return f"(NOT {self.part.to_sql(column_of, params)})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Not) and self.part == other.part

    def __hash__(self) -> int:
        return hash(("Not", self.part))

    def __repr__(self) -> str:
        return f"(NOT {self.part!r})"


def attr(name: str) -> Attr:
    """Shorthand for :class:`Attr`."""
    return Attr(name)


def _as_operand(value: object) -> Operand:
    if isinstance(value, Operand):
        return value
    return Const(value)


def compare(left: object, op: str, right: object) -> Comparison:
    """Build a comparison, wrapping non-operand arguments as constants.

    ``compare(attr("W"), ">", 3)`` or ``compare("r1.X", "=", "r2.X")`` —
    a bare string is interpreted as an attribute name.
    """
    left_op = Attr(left) if isinstance(left, str) else _as_operand(left)
    right_op = Attr(right) if isinstance(right, str) else _as_operand(right)
    return Comparison(left_op, op, right_op)


def conjunction(conditions: Sequence[Condition]) -> Condition:
    """``AND`` a sequence of conditions; empty sequence means TRUE."""
    parts = [c for c in conditions if not isinstance(c, TrueCondition)]
    if not parts:
        return TrueCondition()
    if len(parts) == 1:
        return parts[0]
    return And(*parts)


def flatten_conjuncts(condition: Condition) -> List[Condition]:
    """Split a conjunction tree into its leaf conjuncts.

    ``TRUE`` contributes nothing; any non-``And`` node (including ``Or``
    and ``Not`` subtrees) is kept whole.  Inverse of :func:`conjunction`
    up to nesting.
    """
    if isinstance(condition, TrueCondition):
        return []
    if isinstance(condition, And):
        out: List[Condition] = []
        for part in condition.parts:
            out.extend(flatten_conjuncts(part))
        return out
    return [condition]


def equality_pairs(condition: Condition) -> List[Tuple[str, str]]:
    """Attribute pairs equated by top-level conjuncts.

    Only ``Attr = Attr`` comparisons that appear as plain conjuncts count:
    an equality under ``Or``/``Not`` does not hold for every tuple and is
    ignored.
    """
    pairs: List[Tuple[str, str]] = []
    for conjunct in flatten_conjuncts(condition):
        if (
            isinstance(conjunct, Comparison)
            and conjunct.op == "="
            and isinstance(conjunct.left, Attr)
            and isinstance(conjunct.right, Attr)
        ):
            pairs.append((conjunct.left.name, conjunct.right.name))
    return pairs
