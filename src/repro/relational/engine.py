"""Columnar hash-join evaluation engine for terms and queries.

:meth:`repro.relational.expressions.Term.evaluate` is the *reference*
evaluator: it materializes the full cross product one tuple at a time,
which is exactly the paper's semantics but quadratic-to-cubic in relation
size.  This module provides an equivalent evaluator that:

1. flattens the condition into conjuncts;
2. joins operands left to right, using attribute-equality conjuncts that
   bridge the joined prefix and the next operand as hash-join keys;
3. applies every other conjunct as a filter at the earliest step where all
   of its attributes are available;
4. projects and accumulates signed multiplicities.

Since the columnar refactor the working set is a
:class:`~repro.relational.columns.ColumnBatch` — parallel column lists
plus a signed count vector — and every join/filter/projection step runs
through the vectorized operators in :mod:`repro.relational.batch_ops`
(``map``/``compress`` passes, no per-tuple objects; lint rule RPR009).
:func:`evaluate_term_scalar` preserves the previous row-at-a-time plan as
the divergence check used by the CI ``bench-smoke`` job.

Equivalence with the reference evaluator is property-tested
(``tests/property/test_engine_equivalence.py`` and
``tests/property/test_columnar_properties.py``).  The in-memory source and
the consistency oracle use this engine; the paper's cost model is *not*
affected (I/O costs are modeled separately, following Appendix D).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Tuple

from repro.errors import ExpressionError
from repro.relational.bag import SignedBag
from repro.relational.batch_ops import batch_join, compile_mask
from repro.relational.columns import ColumnBatch
from repro.relational.conditions import (
    Attr,
    Comparison,
    Condition,
    flatten_conjuncts,
)
from repro.relational.expressions import Query, Term

Row = Tuple[object, ...]
State = Mapping[str, SignedBag]

#: One join step of a term plan: the conjuncts to filter by once the step's
#: operand is joined in, and the (prefix position, local position) key pairs.
_Step = Tuple[List[Condition], List[Tuple[int, int]]]


def _max_position(conjunct: Condition, term: Term) -> int:
    """Largest product-row position the conjunct reads (-1 if none)."""
    highest = -1
    for name in conjunct.attributes():
        highest = max(highest, term.product.resolve(name))
    return highest


def _operand_batch(operand, state: State) -> ColumnBatch:
    """An operand's extent as a columnar batch."""
    if operand.is_bound:
        return ColumnBatch(
            [[value] for value in operand.tuple.values], [operand.tuple.sign]
        )
    try:
        bag = state[operand.source_relation]
    except KeyError:
        raise ExpressionError(
            f"state has no relation {operand.source_relation!r}"
        ) from None
    return ColumnBatch.from_bag(bag, operand.schema.arity)


def _term_plan(term: Term) -> Tuple[List[_Step], List[int]]:
    """Assign conjuncts to join steps and classify hash-join keys.

    Step ``i`` covers product positions ``[0, widths[i])``; each conjunct
    lands at the earliest step where it is decidable.  An attribute
    equality with one side in the joined prefix and one in the new
    operand becomes a hash-join key; everything else is a filter.
    """
    offsets: List[int] = []
    offset = 0
    for operand in term.operands:
        offsets.append(offset)
        offset += operand.schema.arity
    widths = offsets[1:] + [offset]

    steps: List[_Step] = [([], []) for _ in term.operands]
    for conjunct in flatten_conjuncts(term.condition):
        highest = _max_position(conjunct, term)
        step = 0
        while widths[step] <= highest:
            step += 1
        is_bridge_equality = (
            step > 0
            and isinstance(conjunct, Comparison)
            and conjunct.op == "="
            and isinstance(conjunct.left, Attr)
            and isinstance(conjunct.right, Attr)
        )
        if is_bridge_equality:
            left = term.product.resolve(conjunct.left.name)
            right = term.product.resolve(conjunct.right.name)
            prefix_width = widths[step - 1]
            sides = sorted((left, right))
            if sides[0] < prefix_width <= sides[1]:
                # One side in the already-joined prefix, one in the new
                # operand: a genuine hash-join key.
                steps[step][1].append((sides[0], sides[1] - prefix_width))
                continue
        steps[step][0].append(conjunct)
    return steps, widths


def evaluate_term(term: Term, state: State) -> SignedBag:
    """Evaluate one term with columnar hash joins; equals ``term.evaluate``."""
    steps, _ = _term_plan(term)
    resolve = term.product.resolve

    joined = _operand_batch(term.operands[0], state)
    filters, _ = steps[0]
    for conjunct in filters:
        mask = compile_mask(conjunct, resolve)
        if mask is not None:
            joined = joined.compress(mask(joined.columns, len(joined.counts)))

    for step in range(1, len(term.operands)):
        if joined.is_empty():
            # The batch is narrower than the full product here, so the
            # projection below could not resolve — but it is empty anyway.
            return SignedBag()
        filters, keys = steps[step]
        joined = batch_join(joined, _operand_batch(term.operands[step], state), keys)
        for conjunct in filters:
            mask = compile_mask(conjunct, resolve)
            if mask is not None:
                joined = joined.compress(mask(joined.columns, len(joined.counts)))

    positions = [resolve(name) for name in term.projection]
    return joined.gather_columns(positions).to_bag(term.coefficient)


def evaluate_term_scalar(term: Term, state: State) -> SignedBag:
    """The pre-columnar row-at-a-time hash-join plan, kept as an oracle.

    Same join/filter placement as :func:`evaluate_term`, executed one
    candidate row at a time with bound row predicates.  The CI
    ``bench-smoke`` job evaluates the measured workload through both
    paths and fails on any divergence.
    """
    extents: List[List[Tuple[Row, int]]] = []
    for operand in term.operands:
        if operand.is_bound:
            extents.append([(operand.tuple.values, operand.tuple.sign)])
        else:
            try:
                bag = state[operand.source_relation]
            except KeyError:
                raise ExpressionError(
                    f"state has no relation {operand.source_relation!r}"
                ) from None
            extents.append(list(bag.items()))

    steps, _ = _term_plan(term)
    predicates: List[List[Callable[[Row], bool]]] = [
        [c.bind(term.product) for c in filters] for filters, _ in steps
    ]

    # Step 0: the first operand's extent, filtered.
    joined: List[Tuple[Row, int]] = []
    for row, count in extents[0]:
        if all(p(row) for p in predicates[0]):
            joined.append((row, count))

    # Steps 1..n-1: hash join (or filtered cartesian) with each operand.
    for step in range(1, len(term.operands)):
        extent = extents[step]
        _, keys = steps[step]
        filters = predicates[step]
        fresh: List[Tuple[Row, int]] = []
        if keys:
            buckets: Dict[Tuple[object, ...], List[Tuple[Row, int]]] = {}
            local_positions = [local for _, local in keys]
            for row, count in extent:
                key = tuple(row[p] for p in local_positions)
                buckets.setdefault(key, []).append((row, count))
            prefix_positions = [prefix for prefix, _ in keys]
            for prefix_row, prefix_count in joined:
                key = tuple(prefix_row[p] for p in prefix_positions)
                for row, count in buckets.get(key, ()):
                    combined = prefix_row + row
                    if all(p(combined) for p in filters):
                        fresh.append((combined, prefix_count * count))
        else:
            for prefix_row, prefix_count in joined:
                for row, count in extent:
                    combined = prefix_row + row
                    if all(p(combined) for p in filters):
                        fresh.append((combined, prefix_count * count))
        joined = fresh
        if not joined:
            break

    positions = tuple(term.product.resolve(name) for name in term.projection)
    result = SignedBag()
    for row, count in joined:
        result.add(tuple(row[i] for i in positions), count * term.coefficient)
    return result


def evaluate_query(query: Query, state: State) -> SignedBag:
    """Sum of the optimized term evaluations."""
    result = SignedBag()
    for term in query.terms:
        result.add_bag(evaluate_term(term, state))
    return result


def evaluate_query_scalar(query: Query, state: State) -> SignedBag:
    """Sum of the scalar-oracle term evaluations (divergence checks)."""
    result = SignedBag()
    for term in query.terms:
        result.add_bag(evaluate_term_scalar(term, state))
    return result


def evaluate_view(view, state: State) -> SignedBag:
    """Optimized oracle ``V[ss]``.

    Accepts any view-like object: plain :class:`View`, ``UnionView``, or
    anything exposing ``evaluate_oracle`` (e.g. a multi-view
    :class:`~repro.warehouse.catalog.WarehouseCatalog`, whose oracle rows
    are tagged with their view name).
    """
    custom = getattr(view, "evaluate_oracle", None)
    if custom is not None:
        return custom(state)
    return evaluate_query(view.as_query(), state)
