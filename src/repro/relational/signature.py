"""Canonical structural signatures for terms and queries.

Two compensating queries produced by different views are often the same
expression wearing different clothes: each view aliases its operands its
own way, but after projection and condition names are resolved to
product-row *positions* the expressions are identical — and identical
expressions evaluate identically on every source state.  The signature
defined here is exactly that canonical form:

- an operand contributes its **stored** relation (``schema.base``, so
  aliases vanish) plus, when bound, the concrete signed tuple;
- the projection contributes resolved column positions, not names;
- the condition tree contributes its structure with every attribute
  reference resolved to a position and every constant kept literally;
- the term keeps its coefficient;
- a query is the **multiset** of its term signatures (term order never
  affects the summed result), canonicalized by sorting.

The guarantee the shared-compensation planner leans on (and the property
test in ``tests/unit/test_signature.py`` pins):

    ``query_signature(q1) == query_signature(q2)`` implies
    ``q1.evaluate(state) == q2.evaluate(state)`` for every state that
    contains the referenced relations.

Signatures are plain nested tuples of hashable primitives — usable as
dict keys directly.  They deliberately avoid builtin ``hash()`` (salted
per process) and any clock or randomness: a signature computed twice, in
any process, is byte-identical (see lint rule RPR010).

The converse does **not** hold and is not needed: structurally different
queries may be semantically equal (``σ_true`` vs a tautological
comparison); the planner simply misses that sharing opportunity.
"""

from __future__ import annotations

from typing import Tuple

from repro.relational.conditions import (
    And,
    Attr,
    Comparison,
    Condition,
    Const,
    Not,
    Or,
    TrueCondition,
)
from repro.relational.expressions import Query, Term
from repro.relational.schema import ProductSchema

#: A signature is a nested tuple of hashable primitives.
Signature = Tuple[object, ...]


def _operand_signature(operand: object) -> Signature:
    """Canonical form of a term operand: stored relation, bound tuple."""
    if operand.is_bound:  # type: ignore[attr-defined]
        signed = operand.tuple  # type: ignore[attr-defined]
        return (
            "bound",
            operand.source_relation,  # type: ignore[attr-defined]
            signed.values,
            signed.sign,
        )
    return ("rel", operand.source_relation)  # type: ignore[attr-defined]


def _comparand_signature(operand: object, product: ProductSchema) -> Signature:
    """Canonical form of one side of a comparison."""
    if isinstance(operand, Attr):
        return ("attr", product.resolve(operand.name))
    if isinstance(operand, Const):
        return ("const", type(operand.value).__name__, operand.value)
    # Unknown operand kinds keep their (deterministic) repr: two terms
    # only share when the reprs match verbatim, which is sound because
    # equal operand lists pin the attribute layout the repr names.
    return ("opaque", repr(operand))


def condition_signature(
    condition: Condition, product: ProductSchema
) -> Signature:
    """Canonical form of a condition tree under ``product``'s naming.

    Attribute references are resolved to product-row positions, so the
    same predicate written against differently-aliased operands yields
    the same signature.  Boolean structure is kept as written — ``AND``
    commutativity is *not* normalized; that only costs sharing
    opportunities, never soundness.
    """
    if isinstance(condition, TrueCondition):
        return ("true",)
    if isinstance(condition, Comparison):
        return (
            "cmp",
            _comparand_signature(condition.left, product),
            condition.op,
            _comparand_signature(condition.right, product),
        )
    if isinstance(condition, And):
        return ("and",) + tuple(
            condition_signature(part, product) for part in condition.parts
        )
    if isinstance(condition, Or):
        return ("or",) + tuple(
            condition_signature(part, product) for part in condition.parts
        )
    if isinstance(condition, Not):
        return ("not", condition_signature(condition.part, product))
    return ("opaque", repr(condition))


def term_signature(term: Term) -> Signature:
    """Canonical form of one term, invariant under operand renaming."""
    return (
        "term",
        tuple(_operand_signature(op) for op in term.operands),
        tuple(term.product.resolve(name) for name in term.projection),
        condition_signature(term.condition, term.product),
        term.coefficient,
    )


def query_signature(query: Query) -> Signature:
    """Canonical form of a query: the sorted multiset of term signatures.

    Term order is irrelevant to a query's value (the sum over terms is
    commutative), so signatures are sorted before packing.  Sorting uses
    each signature's ``repr`` as the key — a total, deterministic order
    over the heterogeneous value types constants may carry.
    """
    return ("query",) + tuple(
        sorted((term_signature(term) for term in query.terms), key=repr)
    )
