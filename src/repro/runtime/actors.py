"""The runtime's actors: sources, the warehouse, and reading clients.

Each actor is a coroutine owning one inbox channel (two naming helpers
below fix the topology).  Actors reuse the existing components unchanged:

- :class:`SourceActor` wraps any :class:`repro.source.base.Source`.  It
  executes its own workload at its own (seeded) pace and concurrently
  answers warehouse queries — the decoupling-in-time that creates the
  paper's anomalies now arises from genuine concurrency instead of a
  hand-written schedule.
- :class:`WarehouseActor` wraps any routed
  :class:`~repro.core.protocol.WarehouseAlgorithm` — every registry
  family, single- or multi-source, including multi-view
  :class:`~repro.warehouse.catalog.WarehouseCatalog` — and feeds each
  incoming message through :func:`repro.kernel.dispatch.dispatch_event`,
  the same atomic-event entry point the synchronous kernel and WAL
  replay use.  Owner-routed requests (``destination=None``) go to the
  source owning the relations they read.
- :class:`ClientActor` issues refresh requests and reads the materialized
  view, recording what state it observed at what virtual time.

Actors never share mutable state except through the transport and the
harness's recording hooks; within one event-loop step each message is
processed atomically (no awaits inside an algorithm call), matching the
paper's atomic-event assumption.
"""

from __future__ import annotations

import asyncio
import random
from collections import deque
from typing import TYPE_CHECKING, Deque, Dict, List, Optional, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (obs imports errors)
    from repro.obs.instrument import Observability

from repro.durability.codec import encode_value
from repro.durability.crash import CrashRun
from repro.durability.wal import EVENT, RECV, SEND, WriteAheadLog
from repro.errors import ChannelEmpty, TransportClosed, WarehouseCrashed
from repro.kernel.dispatch import (
    dispatch_event,
    event_kind,
    is_duplicate_answer,
    query_owner,
    receive_query_request,
)
from repro.messaging.messages import (
    Message,
    QueryAnswer,
    QueryRequest,
    RefreshRequest,
    ShardEnvelope,
    UpdateBatch,
    UpdateNotification,
)
from repro.relational.bag import SignedBag
from repro.runtime.transport import AsyncTransport
from repro.source.base import Source
from repro.source.updates import Update


def source_inbox(name: str) -> str:
    """Channel carrying warehouse -> source query requests."""
    return f"wh->{name}"


def warehouse_inbox(name: str) -> str:
    """Channel carrying source/client -> warehouse traffic."""
    return f"{name}->wh"


def channel_label(channel: str) -> str:
    """The source/client name behind a warehouse inbox channel."""
    suffix = "->wh"
    return channel[: -len(suffix)] if channel.endswith(suffix) else channel


class ActorMetrics:
    """Message and event counters common to every actor.

    The per-actor slice of the run's accounting; ``RuntimeResult``
    aggregates one of these per actor into ``metrics_table()``, and
    :meth:`repro.obs.instrument.Observability.finalize` republishes them
    as labelled registry counters.
    """

    __slots__ = ("name", "role", "shard", "sent", "received", "events")

    def __init__(self, name: str, role: str, shard: Optional[str] = None) -> None:
        self.name = name
        self.role = role
        #: Shard id (as a string) for per-shard actors; ``None`` keeps the
        #: column out of ``metrics_table()`` entirely, so unsharded runs
        #: render exactly as before.
        self.shard = shard
        self.sent = 0
        self.received = 0
        #: Role-specific event counts (updates applied, queries answered,
        #: reads performed, ...).
        self.events: Dict[str, int] = {}

    def bump(self, key: str, amount: int = 1) -> None:
        """Add ``amount`` to the role-specific counter ``key``."""
        self.events[key] = self.events.get(key, 0) + amount

    def declare(self, *keys: str) -> None:
        """Pre-register role counters at zero.

        Actors declare their vocabulary up front so a counter that never
        fires still reports an explicit ``0`` in ``metrics_table()`` —
        e.g. a client that reads zero times before quiescence used to
        drop its ``reads`` column entirely.
        """
        for key in keys:
            self.events.setdefault(key, 0)

    def as_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {"role": self.role}
        if self.shard is not None:
            # Only sharded runs carry the column: ``metrics_table()``
            # builds columns from the union of row keys, so unsharded
            # output is byte-identical to before.
            out["shard"] = self.shard
        out.update({"sent": self.sent, "received": self.received})
        out.update(sorted(self.events.items()))
        return out

    def __repr__(self) -> str:
        return f"ActorMetrics({self.name}, sent={self.sent}, received={self.received})"


class SourceActor:
    """Runs one source: applies its workload, answers queries, concurrently.

    Parameters
    ----------
    name, source, transport:
        Identity, the wrapped database, and the shared transport.
    workload:
        The updates this source will execute, in order.
    recorder:
        The harness's trace recorder (assigns global serials and snapshots
        the combined source state — see ``harness._TraceRecorder``).
    seed, max_burst:
        A per-actor RNG decides how many updates to apply before yielding
        (1..max_burst); different seeds explore different interleavings of
        update execution against query answering, deterministically.
    """

    def __init__(
        self,
        name: str,
        source: Source,
        transport: AsyncTransport,
        workload: Sequence[Update],
        recorder: "object",
        seed: int = 0,
        max_burst: int = 2,
        obs: Optional["Observability"] = None,
    ) -> None:
        self.name = name
        self.source = source
        self.transport = transport
        self.recorder = recorder
        self.inbox = source_inbox(name)
        self.outbox = warehouse_inbox(name)
        self._workload: Deque[Update] = deque(workload)
        self._rng = random.Random(seed)
        self._max_burst = max(1, max_burst)
        self.metrics = ActorMetrics(name, "source")
        self.metrics.declare("updates_applied", "queries_answered")
        self._obs = obs
        self.workload_done = len(self._workload) == 0

    async def run(self) -> None:
        while self._workload:
            for _ in range(1 + self._rng.randrange(self._max_burst)):
                if not self._workload:
                    break
                await self._apply_next()
            # Service whatever queries have arrived before the next burst,
            # so answers interleave with later updates (the anomaly soup).
            while True:
                try:
                    request = self.transport.receive_nowait(self.inbox)
                except ChannelEmpty:
                    break
                await self._answer(request)
            # Sends never block, so yield explicitly: this is the point
            # where the warehouse and the other actors actually run.
            await asyncio.sleep(0)
        self.workload_done = True
        # Keep answering until the harness closes the transport.
        while True:
            try:
                request = await self.transport.recv(self.inbox)
            except TransportClosed:
                return
            await self._answer(request)

    async def _apply_next(self) -> None:
        update = self._workload.popleft()
        self.source.apply_update(update)
        serial = self.recorder.record_update(self.name, update)
        self.metrics.bump("updates_applied")
        self.metrics.sent += 1
        if self._obs is not None:
            self._obs.source_update(self.name, update.relation, serial)
        await self.transport.send(self.outbox, UpdateNotification(update, serial))

    async def _answer(self, message: Message) -> None:
        request = receive_query_request(self.name, message)
        self.metrics.received += 1
        answer = self.source.evaluate(request.query)
        self.recorder.record_query(self.name, request.query_id, answer)
        self.metrics.bump("queries_answered")
        self.metrics.sent += 1
        if self._obs is not None:
            self._obs.source_answer(self.name, request.query_id, answer.total_count())
        await self.transport.send(self.outbox, QueryAnswer(request.query_id, answer))


class WarehouseActor:
    """Runs the maintenance algorithm over all incoming channels.

    ``inboxes`` lists every channel feeding the warehouse (one per source,
    one per client); message interleaving across them is decided by the
    transport's delivery times.  Outgoing query requests are routed to
    the destination the algorithm names, or — for owner-routed
    ``destination=None`` pairs — to the source owning the relations the
    query reads.

    Durability (all optional, see ``repro.durability``):

    - ``wal`` — every received message is appended as a ``"recv"`` record
      *before* dispatch, routed requests and processed events as
      informational ``"send"``/``"event"`` records after, and the log is
      offered a compacting snapshot at each event boundary.  With a WAL
      attached the actor also drops answers whose query id is no longer
      pending: after recovery, a re-issued query can race a pre-crash
      answer still in flight, and the duplicate must die *before* it is
      logged so replay stays strict.
    - ``crash_run`` — consulted once per atomic event (after the WAL and
      dispatch, so the log never lags memory); when it fires the actor
      raises :class:`~repro.errors.WarehouseCrashed`, abandoning its
      state.  ``drop_sends`` crashes suppress the event's outgoing
      requests first.
    - ``reissue`` / ``metrics`` / ``event_index`` — carried across
      incarnations by the harness: queries recovery found still pending
      (sent before the inbox loop starts), the previous incarnation's
      counters, and the global event count the crash policy keys on.
    """

    def __init__(
        self,
        algorithm: object,
        transport: AsyncTransport,
        inboxes: Sequence[str],
        owners: Dict[str, str],
        recorder: "object",
        *,
        wal: Optional[WriteAheadLog] = None,
        crash_run: Optional[CrashRun] = None,
        reissue: Optional[Sequence[Tuple[Optional[str], QueryRequest]]] = None,
        metrics: Optional[ActorMetrics] = None,
        event_index: int = 0,
        obs: Optional["Observability"] = None,
        channel_origins: Optional[Dict[str, Optional[str]]] = None,
        channel_labels: Optional[Dict[str, str]] = None,
        request_channel: Optional[str] = None,
        cache: "object" = None,
        batch_k: int = 1,
    ) -> None:
        self.algorithm = algorithm
        self.transport = transport
        self.inboxes = tuple(inboxes)
        self.owners = dict(owners)
        self.recorder = recorder
        self.wal = wal
        self.crash_run = crash_run
        self.event_index = event_index
        self.metrics = metrics or ActorMetrics("warehouse", "warehouse")
        self._reissue = list(reissue or [])
        self._obs = obs
        #: Set for the duration of one _dispatch: the event span and the
        #: UQS snapshot outgoing queries compensate against.
        self._obs_span = None
        self._obs_compensates: Sequence[int] = ()
        #: source name an UpdateNotification/QueryAnswer arrived from,
        #: recovered from the channel name.  A sharded run overrides this:
        #: a shard's inboxes are per-``(origin, shard)`` router channels,
        #: not the ``"{name}->wh"`` topology the default assumes.
        self._channel_source = (
            dict(channel_origins)
            if channel_origins is not None
            else {warehouse_inbox(name): name for name in set(owners.values())}
        )
        #: Channel-name overrides for the recorder's action-log labels, so
        #: merged shard logs keep the unsharded ``warehouse:<origin>``
        #: vocabulary the conformance replayer understands.
        self._channel_labels = dict(channel_labels or {})
        #: When set, outgoing requests are wrapped in a ShardEnvelope and
        #: sent here (the router) instead of directly to the source.
        self._request_channel = request_channel
        #: Serving cache receiving this warehouse's precise invalidations
        #: (``repro.serving.ServingCache`` or None).  In sharded runs every
        #: shard actor shares the one client-side cache.
        self.cache = cache
        #: Maximum run of already-delivered consecutive update
        #: notifications to coalesce into one atomic UpdateBatch event
        #: (1 = never batch, the legacy per-update protocol).
        self.batch_k = max(1, batch_k)

    async def run(self) -> None:
        for destination, request in self._reissue:
            await self._send_request(destination, request, reissued=True)
        self._reissue = []
        while True:
            try:
                channel, message = await self.transport.recv_any(self.inboxes)
            except TransportClosed:
                return
            self.metrics.received += 1
            if self.batch_k > 1 and isinstance(message, UpdateNotification):
                members = [message]
                # Coalesce the run of notifications already sitting in this
                # inbox — never waiting for more (that would trade the
                # paper's immediacy for batching; peek_nowait only shows
                # messages whose virtual delivery time has arrived).
                while len(members) < self.batch_k and isinstance(
                    self.transport.peek_nowait(channel), UpdateNotification
                ):
                    members.append(self.transport.receive_nowait(channel))
                    self.metrics.received += 1
                if len(members) > 1:
                    message = UpdateBatch(tuple(members))
                    self.metrics.bump("batched_updates", len(members))
            if self.wal is not None:
                if is_duplicate_answer(self.algorithm, message):
                    self.metrics.bump("duplicate_answers_dropped")
                    await asyncio.sleep(0)
                    continue
                self.wal.append(
                    RECV,
                    {
                        "channel": channel,
                        "origin": self._channel_source.get(channel),
                        "message": encode_value(message),
                    },
                )
            await self._dispatch(channel, message)
            # One atomic event per scheduling slice: yield so sources and
            # clients interleave between warehouse events, as in the paper.
            await asyncio.sleep(0)

    async def _dispatch(self, channel: str, message: Message) -> None:
        origin = self._channel_source.get(channel)
        obs = self._obs
        pending_before: Sequence[int] = ()
        if obs is not None:
            begin_kind = event_kind(message)
            pending_before = tuple(self.algorithm.pending_query_ids())
            self._obs_span = obs.wh_event_begin(begin_kind, message, origin)
            # An answer event retires its own query id before any follow-up
            # query is built, so it is not compensated against (Section 5.2).
            self._obs_compensates = tuple(
                qid
                for qid in pending_before
                if not (begin_kind == "W_ans" and qid == message.query_id)
            )
        kind, detail, routed, dirtied = dispatch_event(self.algorithm, origin, message)
        # Invalidations stream out before the crash decision below: a real
        # deployment's cache tier outlives the warehouse process, and the
        # pre-crash incarnation already applied this event to its state.
        # (Recovery replay re-drains the same keys inside dispatch_event
        # and discards them — each event invalidates exactly once.)
        if self.cache is not None and dirtied:
            self.cache.invalidate(dirtied)
        self.event_index += 1
        fired = False
        if self.crash_run is not None:
            pending = len(self.algorithm.pending_query_ids())
            fired = self.crash_run.decide(self.event_index, kind, pending)
        drop_sends = fired and self.crash_run.policy.drop_sends
        if self.wal is not None:
            # Durability before visibility (RPR011): the event record must
            # land in the log before the routed sends below await — a yield
            # there lets other coroutines observe algorithm state the log
            # does not hold yet.  Safe to reorder: recovery replays only
            # RECV records; EVENT entries are informational.
            self.wal.append(
                EVENT, {"index": self.event_index, "kind": kind, "detail": detail}
            )
            self.wal.maybe_snapshot(self.algorithm)
        if not drop_sends:
            for destination, request in routed:
                await self._send_request(destination, request)
        label = self._channel_labels.get(channel) or channel_label(channel)
        if isinstance(message, UpdateBatch):
            # ``warehouse:<origin>@<k>`` in the action log, so conformance
            # replay reproduces this exact coalescing decision.
            label = f"{label}@{len(message)}"
        self.recorder.record_warehouse_event(kind, detail, label)
        if obs is not None:
            obs.wh_event_end(self._obs_span, kind, message, self.algorithm, pending_before)
            self._obs_span = None
            self._obs_compensates = ()
        if fired:
            raise WarehouseCrashed(self.event_index, self.crash_run.policy.mode, drop_sends)

    async def _send_request(
        self, destination: Optional[str], request: QueryRequest, reissued: bool = False
    ) -> None:
        """Route one outgoing query (``destination=None`` → owner lookup)."""
        if destination is None:
            destination = query_owner(request.query, self.owners)
        self.metrics.sent += 1
        if reissued:
            self.metrics.bump("reissued_queries")
        self.recorder.record_request(request)
        if self._obs is not None:
            self._obs.wh_query_sent(
                self._obs_span,
                request.query_id,
                destination,
                self._obs_compensates,
                reissued,
            )
        if self.wal is not None:
            self.wal.append(
                SEND,
                {
                    "destination": destination,
                    "query_id": request.query_id,
                    "reissued": reissued,
                },
            )
        if self._request_channel is not None:
            # Sharded topology: the shard resolves the owner itself (so the
            # WAL's send records stay meaningful), then hands the request to
            # the router for global-id multiplexing.
            await self.transport.send(
                self._request_channel, ShardEnvelope(destination, request)
            )
        else:
            await self.transport.send(source_inbox(destination), request)

    # ------------------------------------------------------------------ #
    # State
    # ------------------------------------------------------------------ #

    def view_state(self) -> SignedBag:
        return self.algorithm.view_state()

    def is_quiescent(self) -> bool:
        return self.algorithm.is_quiescent()


class WarehouseHandle:
    """Stable facade over the current warehouse incarnation.

    Clients and the trace recorder hold this handle instead of the actor;
    when a crash policy kills the warehouse the harness rebuilds a fresh
    actor from the WAL and repoints :attr:`actor` — readers never notice
    the swap.
    """

    __slots__ = ("actor",)

    def __init__(self, actor: WarehouseActor) -> None:
        self.actor = actor

    def view_state(self) -> SignedBag:
        return self.actor.view_state()

    def is_quiescent(self) -> bool:
        return self.actor.is_quiescent()

    @property
    def metrics(self) -> ActorMetrics:
        return self.actor.metrics


class ClientActor:
    """A warehouse client: requests refreshes and reads the view.

    Reads happen at event-loop scheduling points, so every observation is
    some state the warehouse actually exposed between atomic events —
    recorded as ``(virtual time, view contents)`` in ``observations`` for
    staleness analysis by the harness.
    """

    def __init__(
        self,
        name: str,
        transport: AsyncTransport,
        warehouse: "WarehouseActor | WarehouseHandle",
        recorder: "object",
        reads: int = 4,
        seed: int = 0,
        max_think: int = 4,
        obs: Optional["Observability"] = None,
    ) -> None:
        self.name = name
        self.transport = transport
        self.warehouse = warehouse
        self.recorder = recorder
        self.outbox = warehouse_inbox(name)
        self.reads = reads
        self._rng = random.Random(seed)
        self._max_think = max(1, max_think)
        self.metrics = ActorMetrics(name, "client")
        self.metrics.declare("reads")
        self._obs = obs
        self.observations: List[Tuple[float, SignedBag]] = []

    async def run(self) -> None:
        for serial in range(1, self.reads + 1):
            try:
                await self.transport.send(self.outbox, RefreshRequest(serial))
            except TransportClosed:
                return
            self.metrics.sent += 1
            self.recorder.record_refresh(self.name, serial)
            if self._obs is not None:
                self._obs.client_refresh(self.name, serial)
            # Think, then read whatever the warehouse currently exposes.
            for _ in range(self._rng.randrange(self._max_think) + 1):
                await asyncio.sleep(0)
            view = self.warehouse.view_state()
            self.observations.append((self.transport.now(), view))
            self.metrics.bump("reads")
            if self._obs is not None:
                self._obs.client_read(self.name, view.total_count())
