"""Concurrent warehouse runtime: actors over async transports.

The synchronous drivers (:mod:`repro.simulation`,
:mod:`repro.multisource`) replay hand-scheduled interleavings; this
package runs the same components — sources, maintenance algorithms,
message types — as independent asyncio actors whose interleaving emerges
from concurrency and (optionally) injected transport faults, while
remaining fully deterministic under a fixed seed.

Durability rides on top: pass ``wal_dir=`` to :func:`run_concurrent` to
log every warehouse event to a :class:`~repro.durability.wal.WriteAheadLog`,
and a :class:`~repro.durability.crash.CrashPolicy` (re-exported here) to
kill and recover the warehouse mid-run.  Observability likewise: pass
``obs=Observability()`` (re-exported from :mod:`repro.obs`) to capture a
causal span trace and a metrics registry for the run.  See
``docs/RUNTIME.md``, ``docs/DURABILITY.md``, and ``docs/OBSERVABILITY.md``.
"""

from repro.durability.crash import CrashPolicy
from repro.obs.instrument import Observability
from repro.runtime.actors import (
    ActorMetrics,
    ClientActor,
    SourceActor,
    WarehouseActor,
    WarehouseHandle,
)
from repro.runtime.harness import RuntimeResult, run_concurrent
from repro.runtime.transport import (
    AsyncTransport,
    ChannelStats,
    FaultPlan,
    FaultyTransport,
    InMemoryTransport,
)

__all__ = [
    "ActorMetrics",
    "AsyncTransport",
    "ChannelStats",
    "ClientActor",
    "CrashPolicy",
    "FaultPlan",
    "FaultyTransport",
    "InMemoryTransport",
    "Observability",
    "RuntimeResult",
    "SourceActor",
    "WarehouseActor",
    "WarehouseHandle",
    "run_concurrent",
]
