"""Concurrent warehouse runtime: actors over async transports.

The synchronous drivers (:mod:`repro.simulation`,
:mod:`repro.multisource`) replay hand-scheduled interleavings; this
package runs the same components — sources, maintenance algorithms,
message types — as independent asyncio actors whose interleaving emerges
from concurrency and (optionally) injected transport faults, while
remaining fully deterministic under a fixed seed.

See ``docs/RUNTIME.md`` for the actor model, the fault knobs, and how
concurrent traces map onto the Section 3.1 consistency hierarchy.
"""

from repro.runtime.actors import (
    ActorMetrics,
    ClientActor,
    SourceActor,
    WarehouseActor,
)
from repro.runtime.harness import RuntimeResult, run_concurrent
from repro.runtime.transport import (
    AsyncTransport,
    ChannelStats,
    FaultPlan,
    FaultyTransport,
    InMemoryTransport,
)

__all__ = [
    "ActorMetrics",
    "AsyncTransport",
    "ChannelStats",
    "ClientActor",
    "FaultPlan",
    "FaultyTransport",
    "InMemoryTransport",
    "RuntimeResult",
    "SourceActor",
    "WarehouseActor",
    "run_concurrent",
]
