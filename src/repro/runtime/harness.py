"""``run_concurrent``: drive N sources × M clients to quiescence.

The harness wires sources, one warehouse, and view-reading clients onto a
shared transport, runs them as asyncio tasks, and records a global
:class:`~repro.simulation.trace.Trace` exactly like the synchronous
drivers do — one source snapshot per executed update, one view snapshot
per warehouse event — so :func:`repro.consistency.checker.check_trace`
classifies concurrent executions against the Section 3.1 hierarchy with
no changes.

Everything runs on one event loop with no wall-clock waits, so a run is
deterministic: the same sources, workloads, seed, and fault plan replay
the identical event trace.  Wall-clock duration is measured only as a
throughput metric and never feeds back into scheduling.

Termination: the harness waits for every client to finish and every
source workload to drain, then polls (at scheduling points) until all
channels are empty and the algorithm is quiescent, and finally closes the
transport, unwinding the actor tasks.
"""

from __future__ import annotations

import asyncio
import time
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.durability.crash import CrashPolicy
from repro.durability.recovery import recover
from repro.durability.wal import WriteAheadLog
from repro.errors import SimulationError, WarehouseCrashed
from repro.kernel.dispatch import relation_owners
from repro.messaging.messages import QueryRequest
from repro.messaging.wire import create_codec
from repro.relational.bag import SignedBag
from repro.runtime.actors import (
    ActorMetrics,
    ClientActor,
    SourceActor,
    WarehouseActor,
    WarehouseHandle,
    warehouse_inbox,
)
from repro.runtime.transport import (
    AsyncTransport,
    ChannelStats,
    FaultPlan,
    FaultyTransport,
    InMemoryTransport,
)
from repro.serving import ReadClientActor, ReadMismatch, ServingCache, reader_for, serving_report
from repro.simulation.trace import C_REF, S_QU, S_UP, W_CRASH, W_REC, Trace
from repro.source.base import Source
from repro.source.updates import Update

SourcesArg = Union[Source, Mapping[str, Source]]
WorkloadArg = Union[Sequence[Update], Mapping[str, Sequence[Update]]]

#: Safety valve for the quiescence poll loop.
_MAX_POLLS = 1_000_000


class _TraceRecorder:
    """The harness's single-writer view of the global history.

    Actors call these hooks between awaits, so each hook runs atomically
    with the event it records; the trace's event order *is* the execution
    order.
    """

    def __init__(
        self,
        sources: Mapping[str, Source],
        transport: AsyncTransport,
        record_trace: bool = True,
    ) -> None:
        self._sources = dict(sources)
        self._transport = transport
        #: When False (benchmarks), skip the O(rows) trace/snapshot work
        #: per event; serials, the action log, and timing still accrue.
        self.record_trace = record_trace
        self.trace = Trace()
        self.serial = 0
        self.last_update_at = 0.0
        self.requests = 0
        self._warehouse: Optional["WarehouseActor | WarehouseHandle"] = None
        #: The global order of recordable actions, as kernel action strings
        #: (``update:<source>`` / ``answer:<source>`` /
        #: ``warehouse:<origin>`` / ``refresh:<client>`` plus ``crash`` /
        #: ``recover`` markers).  A concurrent run's log replays on the
        #: synchronous kernel — see :mod:`repro.kernel.conformance`.
        self.action_log: List[str] = []
        #: name -> [state after i updates at that source], for the
        #: cut-consistency checker.
        self.per_source_states: Dict[str, List[Dict[str, SignedBag]]] = {
            name: [source.snapshot()] for name, source in self._sources.items()
        }

    def snapshot(self) -> Dict[str, SignedBag]:
        combined: Dict[str, SignedBag] = {}
        for source in self._sources.values():
            combined.update(source.snapshot())
        return combined

    def record_initial(self, warehouse: "WarehouseActor | WarehouseHandle") -> None:
        if self.record_trace:
            self.trace.record_source_state(self.snapshot())
            self.trace.record_view_state(warehouse.view_state())
        self._warehouse = warehouse

    def record_update(self, source_name: str, update: Update) -> int:
        self.serial += 1
        if self.record_trace:
            self.trace.record_event(S_UP, f"U{self.serial}@{source_name} = {update!r}")
            self.trace.record_source_state(self.snapshot())
            self.per_source_states[source_name].append(
                self._sources[source_name].snapshot()
            )
        self.action_log.append(f"update:{source_name}")
        self.last_update_at = self._transport.now()
        return self.serial

    def record_query(self, source_name: str, query_id: int, answer: SignedBag) -> None:
        if self.record_trace:
            self.trace.record_event(
                S_QU,
                f"{source_name}: Q{query_id} -> {answer.total_count()} tuple(s)",
            )
        self.action_log.append(f"answer:{source_name}")

    def record_request(self, request: QueryRequest) -> None:
        self.requests += 1

    def record_refresh(self, client_name: str, serial: int) -> None:
        if self.record_trace:
            self.trace.record_event(C_REF, f"{client_name} refresh #{serial}")
        self.action_log.append(f"refresh:{client_name}")

    def record_warehouse_event(self, kind: str, detail: str, origin: str) -> None:
        if self.record_trace:
            self.trace.record_event(kind, detail)
            self.trace.record_view_state(self._warehouse.view_state())
        self.action_log.append(f"warehouse:{origin}")

    def record_crash(self, detail: str) -> None:
        # No view snapshot: the crashed process exposed nothing new, and
        # the in-memory view it held is gone.
        if self.record_trace:
            self.trace.record_event(W_CRASH, detail)
        self.action_log.append("crash")

    def record_recovery(self, detail: str) -> None:
        # Snapshot the *recovered* view so the checker classifies what
        # readers can now observe (a duplicate of the pre-crash state when
        # recovery is exact — harmless to the checker's dedup).
        if self.record_trace:
            self.trace.record_event(W_REC, detail)
            self.trace.record_view_state(self._warehouse.view_state())
        self.action_log.append("recover")


class RuntimeResult:
    """Everything one concurrent run produced."""

    def __init__(
        self,
        trace: Trace,
        metrics: Dict[str, ActorMetrics],
        channel_stats: Dict[str, ChannelStats],
        updates: int,
        quiesce_latency: float,
        virtual_duration: float,
        wall_seconds: float,
        observations: Dict[str, List[Tuple[float, SignedBag]]],
        final_view: SignedBag,
        crashes: Optional[List[Dict[str, object]]] = None,
        wal_stats: Optional[Dict[str, int]] = None,
        action_log: Optional[List[str]] = None,
        per_source_states: Optional[Dict[str, List[Dict[str, SignedBag]]]] = None,
        shard_info: Optional[Dict[str, object]] = None,
        serving: Optional[Dict[str, object]] = None,
        read_results: Optional[Dict[str, List[object]]] = None,
        read_mismatches: Optional[List[ReadMismatch]] = None,
    ) -> None:
        self.trace = trace
        self.metrics = metrics
        self.channel_stats = channel_stats
        self.updates = updates
        #: Virtual time from the last executed update to quiescence
        #: (0 on the reliable zero-latency transport).
        self.quiesce_latency = quiesce_latency
        #: Total virtual time the run spanned.
        self.virtual_duration = virtual_duration
        #: Real time the run took (throughput denominator only).
        self.wall_seconds = wall_seconds
        #: Per-client ``(virtual time, view contents)`` read samples.
        self.observations = observations
        self.final_view = final_view
        #: One dict per injected crash (event index, mode, snapshot LSN,
        #: replayed record count, re-issued queries, virtual time).
        self.crashes = list(crashes or [])
        #: WAL totals across all incarnations (``None`` when no WAL ran).
        self.wal_stats = wal_stats
        #: Global action order, in kernel action-string form — replayable
        #: on the synchronous kernel (:mod:`repro.kernel.conformance`).
        self.action_log = list(action_log or [])
        #: Per-source state histories for the cut-consistency checker.
        self.per_source_states = dict(per_source_states or {})
        #: Sharded runs only (``None`` otherwise): shard count, partitioner
        #: kind, view assignment, and the final per-shard algorithms — see
        #: :mod:`repro.sharding.harness`.
        self.shard_info = shard_info
        #: Serving-tier summary — ``ServingCache.report()`` plus the
        #: backend read count — when a cache fronted this run.
        self.serving = serving
        #: Per-reader :class:`repro.serving.ReadResult` lists.
        self.read_results = dict(read_results or {})
        #: Verify-mode divergences (must be empty at staleness bound 0).
        self.read_mismatches = list(read_mismatches or [])

    def throughput(self) -> float:
        """Updates fully processed per wall-clock second."""
        if self.wall_seconds <= 0:
            return float("inf")
        return self.updates / self.wall_seconds

    def metrics_table(self) -> List[Dict[str, object]]:
        """Uniform-column rows (renderable with ``render_table``).

        Includes one ``ch:<name>`` row per transport channel, surfacing
        the fault counters (drops, retries, reorders) the
        :class:`FaultyTransport` accumulated alongside the actor counters.
        """
        dicts = {name: self.metrics[name].as_dict() for name in self.metrics}
        for name, stats in self.channel_stats.items():
            dicts[f"ch:{name}"] = {
                "role": "channel",
                "sent": stats.sent,
                "received": stats.delivered,
                "dropped": stats.dropped,
                "retries": stats.retries,
                "reordered": stats.reordered,
            }
        columns: List[str] = []
        for fields in dicts.values():
            for key in fields:
                if key not in columns:
                    columns.append(key)
        rows = []
        for name in sorted(dicts):
            row: Dict[str, object] = {"actor": name}
            row.update({column: dicts[name].get(column, 0) for column in columns})
            rows.append(row)
        return rows

    def __repr__(self) -> str:
        return (
            f"RuntimeResult(updates={self.updates}, events="
            f"{len(self.trace.events)}, quiesce_latency={self.quiesce_latency:g})"
        )


def _normalize_sources(sources: SourcesArg) -> Dict[str, Source]:
    if isinstance(sources, Source):
        return {"source": sources}
    named = dict(sources)
    if not named:
        raise SimulationError("run_concurrent needs at least one source")
    return named


def _normalize_workloads(
    workload: WorkloadArg,
    sources: Mapping[str, Source],
    owners: Mapping[str, str],
) -> Dict[str, List[Update]]:
    """Split a global update stream per owning source (or pass through)."""
    if isinstance(workload, Mapping):
        per_source = {name: list(updates) for name, updates in workload.items()}
        unknown = set(per_source) - set(sources)
        if unknown:
            raise SimulationError(f"workload names unknown sources: {sorted(unknown)}")
    else:
        per_source = {name: [] for name in sources}
        for update in workload:
            owner = owners.get(update.relation)
            if owner is None:
                raise SimulationError(f"no source owns relation {update.relation!r}")
            per_source[owner].append(update)
    for name in sources:
        per_source.setdefault(name, [])
    return per_source


def run_concurrent(
    sources: SourcesArg,
    algorithm: object,
    workload: WorkloadArg,
    *,
    clients: int = 0,
    client_reads: int = 4,
    faults: Optional[FaultPlan] = None,
    seed: int = 0,
    max_burst: int = 2,
    sizer: Optional[object] = None,
    wal_dir: Optional[str] = None,
    wal_fsync: bool = False,
    snapshot_every: Optional[int] = 8,
    crash: Optional[CrashPolicy] = None,
    obs: Optional[object] = None,
    shards: Optional[int] = None,
    partitioner: object = "hash",
    crash_shard: int = 0,
    record_trace: bool = True,
    cache: Optional[ServingCache] = None,
    read_workload: Optional[Sequence[Tuple[str, Tuple[object, ...]]]] = None,
    verify_reads: bool = False,
    batch_k: int = 1,
    wire_codec: Optional[str] = None,
) -> RuntimeResult:
    """Run sources, warehouse, and clients concurrently to quiescence.

    Parameters
    ----------
    sources:
        One :class:`Source` or a ``name -> Source`` mapping (relation
        names must be globally unique).
    algorithm:
        Any routed :class:`~repro.core.protocol.WarehouseAlgorithm` —
        every registry family, single- or multi-source, including
        :class:`~repro.warehouse.catalog.WarehouseCatalog`.  The harness
        binds the relation-owner map before the run starts.
    workload:
        A global update sequence (routed to owning sources) or a
        ``source name -> updates`` mapping.
    clients:
        Number of concurrent view-reading clients.
    faults:
        A :class:`FaultPlan` to run over the fault-injecting transport;
        ``None`` uses the reliable zero-latency transport.
    seed:
        Master seed: actor pacing and transport faults derive their
        private RNGs from it, so one seed pins the whole execution.
    max_burst:
        Largest number of updates a source applies before yielding.
    sizer:
        Optional message sizer for byte accounting (e.g.
        ``CostRecorder().message_size``).
    wal_dir:
        Directory for a :class:`~repro.durability.wal.WriteAheadLog`; the
        warehouse logs every received message before dispatching it and a
        genesis snapshot is taken before the first event.
    wal_fsync:
        Force ``os.fsync`` on every WAL append (real crash safety, real
        cost — see the durability benchmark).
    snapshot_every:
        Compacting-snapshot cadence in WAL records (``None`` disables).
    crash:
        A :class:`~repro.durability.crash.CrashPolicy`.  Requires
        ``wal_dir``: when it fires, the warehouse actor dies mid-run and
        is rebuilt from snapshot + WAL replay while sources and clients
        keep running on the same transport.
    obs:
        An :class:`repro.obs.instrument.Observability` bundle; when set,
        every actor, the WAL, and recovery emit causal spans and registry
        metrics through it (timestamps use the transport's virtual
        clock), and the run's final accounting is folded in via
        ``obs.finalize``.  ``None`` (the default) costs one ``is None``
        check per hook site.
    shards:
        Partition the warehouse into this many shards behind a
        :class:`~repro.sharding.router.ShardRouter`; ``None`` (the
        default) runs the single warehouse actor below.  A sharded run
        takes per-shard WAL directories under ``wal_dir`` and applies
        ``crash`` to ``crash_shard`` only — see
        :func:`repro.sharding.harness.run_sharded`.
    partitioner:
        Sharded runs only: ``"hash"``, ``"range"``, or a
        :class:`~repro.sharding.partition.Partitioner` instance.
    crash_shard:
        Sharded runs only: the shard ``crash`` applies to.
    record_trace:
        When ``False``, skip per-event trace/state snapshots (an O(rows)
        cost per event) — action log, serials, and metrics still accrue.
        For benchmarks; consistency checkers need the full trace.
    cache:
        A :class:`repro.serving.ServingCache` fronting the warehouse for
        read traffic.  The warehouse actor streams each event's dirtied
        view keys into it (precise invalidation); a ``read_workload``
        is served through it by a reader actor.
    read_workload:
        ``(view, key)`` addresses for a :class:`ReadClientActor` —
        usually :func:`repro.workloads.random_gen.zipf_read_workload`
        over the view's serving keys.  Works with ``cache=None`` too
        (direct backend reads, the cache-off baseline).
    verify_reads:
        Compare every cached answer against a direct backend read taken
        atomically with it; divergences land in
        ``RuntimeResult.read_mismatches`` (empty at staleness bound 0).
    batch_k:
        Maximum run of consecutive already-delivered update notifications
        the warehouse coalesces into one atomic
        :class:`~repro.messaging.messages.UpdateBatch` event, answered by
        a single compensating query ``Q<U1,...,Uk>``.  The default 1
        never batches — byte-for-byte the legacy per-update protocol.
        Not yet supported together with ``shards``.
    wire_codec:
        Name of a :mod:`repro.messaging.wire` codec (``"none"``,
        ``"frame"``, ``"zlib"``, ``"zstd"``).  When set (and not
        ``"none"``), every channel's ``sent_bytes`` counts the real
        framed (optionally compressed) serialization of each message
        instead of the abstract sizer estimate.
    """
    if batch_k < 1:
        raise SimulationError(f"batch_k must be >= 1, got {batch_k}")
    if shards is not None:
        if batch_k > 1:
            raise SimulationError(
                "batch_k > 1 is not supported with sharding yet: the "
                "router splits update runs across shards, so per-shard "
                "coalescing would not match the global action log"
            )
        if wire_codec not in (None, "none"):
            raise SimulationError(
                "wire_codec is not supported with sharding yet: the "
                "router's envelope channels bypass the codec accounting"
            )
        from repro.sharding.harness import run_sharded

        return run_sharded(
            sources,
            algorithm,
            workload,
            shards=shards,
            partitioner=partitioner,
            clients=clients,
            client_reads=client_reads,
            faults=faults,
            seed=seed,
            max_burst=max_burst,
            sizer=sizer,
            wal_dir=wal_dir,
            wal_fsync=wal_fsync,
            snapshot_every=snapshot_every,
            crash=crash,
            crash_shard=crash_shard,
            obs=obs,
            record_trace=record_trace,
            cache=cache,
            read_workload=read_workload,
            verify_reads=verify_reads,
        )
    named_sources = _normalize_sources(sources)
    owners = relation_owners(named_sources)
    workloads = _normalize_workloads(workload, named_sources, owners)
    total_updates = sum(len(w) for w in workloads.values())
    algorithm.bind_owners(owners)

    if crash is not None and wal_dir is None:
        raise SimulationError("crash injection requires wal_dir= (recovery source)")

    codec = create_codec(wire_codec) if wire_codec is not None else None
    inner = InMemoryTransport(sizer=sizer, codec=codec)
    transport: AsyncTransport = (
        FaultyTransport(inner, plan=faults, seed=seed + 0x5EED) if faults else inner
    )
    recorder = _TraceRecorder(named_sources, transport, record_trace=record_trace)
    if obs is not None:
        obs.attach_clock(transport.now)

    wal = (
        WriteAheadLog(wal_dir, fsync=wal_fsync, snapshot_every=snapshot_every, obs=obs)
        if wal_dir is not None
        else None
    )
    crash_run = crash.start() if crash is not None else None

    inboxes = [warehouse_inbox(name) for name in sorted(named_sources)] + [
        warehouse_inbox(f"client-{i}") for i in range(clients)
    ]
    if cache is not None:
        cache.bind_obs(obs)
        if obs is not None:
            cache.attach_lag(obs.staleness_lag)
    warehouse = WarehouseActor(
        algorithm,
        transport,
        inboxes=inboxes,
        owners=owners,
        recorder=recorder,
        wal=wal,
        crash_run=crash_run,
        obs=obs,
        cache=cache,
        batch_k=batch_k,
    )
    handle = WarehouseHandle(warehouse)
    recorder.record_initial(handle)
    if wal is not None:
        # Genesis snapshot: recovery is possible even before the first
        # automatic snapshot cadence fires.
        wal.snapshot(algorithm)

    source_actors = [
        SourceActor(
            name,
            named_sources[name],
            transport,
            workloads[name],
            recorder,
            seed=seed + 1 + index,
            max_burst=max_burst,
            obs=obs,
        )
        for index, name in enumerate(sorted(named_sources))
    ]
    client_actors = [
        ClientActor(
            f"client-{i}",
            transport,
            handle,
            recorder,
            reads=client_reads,
            seed=seed + 101 + i,
            obs=obs,
        )
        for i in range(clients)
    ]
    reader_actors: List[ReadClientActor] = []
    reader = None
    if read_workload is not None:
        # Reads go through the handle so they survive crash-and-recover
        # incarnation swaps, like every other reader in the system.
        reader = reader_for(algorithm, state_fn=handle.view_state)
        reader_actors.append(
            ReadClientActor(
                "reader-0",
                cache,
                reader,
                read_workload,
                verify=verify_reads,
                metrics=ActorMetrics("reader-0", "reader"),
            )
        )

    crashes: List[Dict[str, object]] = []
    wal_totals = {"records": 0, "snapshots": 0}
    wal_box = {"wal": wal}

    def _restart(fault: WarehouseCrashed) -> None:
        """Replace the dead warehouse with one rebuilt from the WAL."""
        old = handle.actor
        recorder.record_crash(
            f"warehouse crashed at event {fault.event_index} "
            f"(mode={fault.mode}, drop_sends={fault.drop_sends})"
        )
        dead_wal = wal_box["wal"]
        wal_totals["records"] += dead_wal.appended
        wal_totals["snapshots"] += dead_wal.snapshots_taken
        dead_wal.close()
        if obs is not None:
            obs.crash(fault.event_index, fault.mode, fault.drop_sends)
        recovered = recover(wal_dir, obs=obs)
        recovered.algorithm.bind_owners(owners)
        new_wal = WriteAheadLog(
            wal_dir, fsync=wal_fsync, snapshot_every=snapshot_every, obs=obs
        )
        # Fold the replayed suffix into a fresh snapshot so a second crash
        # recovers from here, not from before the first one.
        new_wal.snapshot(recovered.algorithm)
        wal_box["wal"] = new_wal
        old.metrics.bump("crashes")
        handle.actor = WarehouseActor(
            recovered.algorithm,
            transport,
            inboxes=inboxes,
            owners=owners,
            recorder=recorder,
            wal=new_wal,
            crash_run=crash_run,
            reissue=recovered.reissue,
            metrics=old.metrics,
            event_index=fault.event_index,
            obs=obs,
            cache=cache,
            batch_k=batch_k,
        )
        crashes.append(
            {
                "event_index": fault.event_index,
                "mode": fault.mode,
                "drop_sends": fault.drop_sends,
                "snapshot_lsn": recovered.snapshot_lsn,
                "replayed": recovered.replayed,
                "reissued": len(recovered.reissue),
                "virtual_time": transport.now(),
            }
        )
        recorder.record_recovery(
            f"recovered from snapshot lsn {recovered.snapshot_lsn} + "
            f"{recovered.replayed} replayed record(s), "
            f"{len(recovered.reissue)} re-issued query(ies)"
        )

    started = time.perf_counter()
    asyncio.run(
        _drive(
            transport,
            handle,
            source_actors,
            client_actors,
            restart=_restart if crash_run is not None else None,
            reader_actors=reader_actors,
        )
    )
    wall_seconds = time.perf_counter() - started

    wal_stats = None
    final_wal = wal_box["wal"]
    if final_wal is not None:
        wal_totals["records"] += final_wal.appended
        wal_totals["snapshots"] += final_wal.snapshots_taken
        wal_stats = {
            "records": wal_totals["records"],
            "snapshots": wal_totals["snapshots"],
            "last_lsn": final_wal.last_lsn,
        }
        final_wal.close()

    if not handle.is_quiescent():
        raise SimulationError(
            f"algorithm {getattr(algorithm, 'name', algorithm)!r} failed to "
            f"quiesce after the workload drained"
        )

    metrics = {actor.metrics.name: actor.metrics for actor in source_actors}
    metrics["warehouse"] = handle.metrics
    for client in client_actors:
        metrics[client.name] = client.metrics
    for reader_actor in reader_actors:
        metrics[reader_actor.name] = reader_actor.metrics

    serving = serving_report(cache, reader)

    result = RuntimeResult(
        trace=recorder.trace,
        metrics=metrics,
        channel_stats=transport.stats(),
        updates=total_updates,
        quiesce_latency=max(0.0, transport.now() - recorder.last_update_at),
        virtual_duration=transport.now(),
        wall_seconds=wall_seconds,
        observations={c.name: c.observations for c in client_actors},
        final_view=handle.view_state(),
        crashes=crashes,
        wal_stats=wal_stats,
        action_log=recorder.action_log,
        per_source_states=recorder.per_source_states,
        serving=serving,
        read_results={r.name: r.results for r in reader_actors},
        read_mismatches=[m for r in reader_actors for m in r.mismatches],
    )
    if obs is not None:
        obs.finalize(result)
    return result


async def _drive(
    transport: AsyncTransport,
    warehouse: WarehouseHandle,
    source_actors: Sequence[SourceActor],
    client_actors: Sequence[ClientActor],
    restart: Optional[object] = None,
    reader_actors: Sequence[ReadClientActor] = (),
) -> None:
    tasks = [asyncio.ensure_future(actor.run()) for actor in source_actors]

    async def _supervise_warehouse() -> None:
        # Each iteration is one warehouse incarnation.  A crash rebuilds
        # the actor (synchronously — no messages are lost, they wait in
        # the transport) and re-enters its run loop; a clean return means
        # the transport closed.
        while True:
            try:
                await warehouse.actor.run()
                return
            except WarehouseCrashed as fault:
                if restart is None:
                    raise
                restart(fault)

    warehouse_task = asyncio.ensure_future(_supervise_warehouse())
    client_tasks = [asyncio.ensure_future(actor.run()) for actor in client_actors]
    client_tasks += [asyncio.ensure_future(actor.run()) for actor in reader_actors]

    try:
        # Clients perform a bounded number of reads; wait them out first.
        if client_tasks:
            await asyncio.gather(*client_tasks)
        # Then poll for global quiescence: workloads drained, channels
        # empty, algorithm holding no deferred work.  Every poll iteration
        # yields, letting all ready actors take a step.
        for _ in range(_MAX_POLLS):
            await asyncio.sleep(0)
            if warehouse_task.done() or any(task.done() for task in tasks):
                break  # an actor died early; surface its exception below
            if (
                all(actor.workload_done for actor in source_actors)
                and transport.total_pending() == 0
                and warehouse.is_quiescent()
            ):
                break
        else:
            raise SimulationError(
                f"runtime did not quiesce within {_MAX_POLLS} polls "
                f"(pending={transport.total_pending()})"
            )
    finally:
        transport.close()
        outcome = await asyncio.gather(
            *tasks, warehouse_task, *client_tasks, return_exceptions=True
        )
        for result in outcome:
            if isinstance(result, Exception) and not isinstance(
                result, asyncio.CancelledError
            ):
                raise result
