"""``run_concurrent``: drive N sources × M clients to quiescence.

The harness wires sources, one warehouse, and view-reading clients onto a
shared transport, runs them as asyncio tasks, and records a global
:class:`~repro.simulation.trace.Trace` exactly like the synchronous
drivers do — one source snapshot per executed update, one view snapshot
per warehouse event — so :func:`repro.consistency.checker.check_trace`
classifies concurrent executions against the Section 3.1 hierarchy with
no changes.

Everything runs on one event loop with no wall-clock waits, so a run is
deterministic: the same sources, workloads, seed, and fault plan replay
the identical event trace.  Wall-clock duration is measured only as a
throughput metric and never feeds back into scheduling.

Termination: the harness waits for every client to finish and every
source workload to drain, then polls (at scheduling points) until all
channels are empty and the algorithm is quiescent, and finally closes the
transport, unwinding the actor tasks.
"""

from __future__ import annotations

import asyncio
import time
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.errors import SimulationError
from repro.messaging.messages import QueryRequest
from repro.relational.bag import SignedBag
from repro.runtime.actors import (
    ActorMetrics,
    ClientActor,
    SourceActor,
    WarehouseActor,
    warehouse_inbox,
)
from repro.runtime.transport import (
    AsyncTransport,
    ChannelStats,
    FaultPlan,
    FaultyTransport,
    InMemoryTransport,
)
from repro.simulation.trace import C_REF, S_QU, S_UP, Trace
from repro.source.base import Source
from repro.source.updates import Update

SourcesArg = Union[Source, Mapping[str, Source]]
WorkloadArg = Union[Sequence[Update], Mapping[str, Sequence[Update]]]

#: Safety valve for the quiescence poll loop.
_MAX_POLLS = 1_000_000


class _TraceRecorder:
    """The harness's single-writer view of the global history.

    Actors call these hooks between awaits, so each hook runs atomically
    with the event it records; the trace's event order *is* the execution
    order.
    """

    def __init__(self, sources: Mapping[str, Source], transport: AsyncTransport) -> None:
        self._sources = dict(sources)
        self._transport = transport
        self.trace = Trace()
        self.serial = 0
        self.last_update_at = 0.0
        self.requests = 0
        self._warehouse: Optional[WarehouseActor] = None

    def snapshot(self) -> Dict[str, SignedBag]:
        combined: Dict[str, SignedBag] = {}
        for source in self._sources.values():
            combined.update(source.snapshot())
        return combined

    def record_initial(self, warehouse: WarehouseActor) -> None:
        self.trace.record_source_state(self.snapshot())
        self.trace.record_view_state(warehouse.view_state())
        self._warehouse = warehouse

    def record_update(self, source_name: str, update: Update) -> int:
        self.serial += 1
        self.trace.record_event(S_UP, f"U{self.serial}@{source_name} = {update!r}")
        self.trace.record_source_state(self.snapshot())
        self.last_update_at = self._transport.now()
        return self.serial

    def record_query(self, source_name: str, query_id: int, answer: SignedBag) -> None:
        self.trace.record_event(
            S_QU,
            f"{source_name}: Q{query_id} -> {answer.total_count()} tuple(s)",
        )

    def record_request(self, request: QueryRequest) -> None:
        self.requests += 1

    def record_refresh(self, client_name: str, serial: int) -> None:
        self.trace.record_event(C_REF, f"{client_name} refresh #{serial}")

    def record_warehouse_event(self, kind: str, detail: str) -> None:
        self.trace.record_event(kind, detail)
        self.trace.record_view_state(self._warehouse.view_state())


class RuntimeResult:
    """Everything one concurrent run produced."""

    def __init__(
        self,
        trace: Trace,
        metrics: Dict[str, ActorMetrics],
        channel_stats: Dict[str, ChannelStats],
        updates: int,
        quiesce_latency: float,
        virtual_duration: float,
        wall_seconds: float,
        observations: Dict[str, List[Tuple[float, SignedBag]]],
        final_view: SignedBag,
    ) -> None:
        self.trace = trace
        self.metrics = metrics
        self.channel_stats = channel_stats
        self.updates = updates
        #: Virtual time from the last executed update to quiescence
        #: (0 on the reliable zero-latency transport).
        self.quiesce_latency = quiesce_latency
        #: Total virtual time the run spanned.
        self.virtual_duration = virtual_duration
        #: Real time the run took (throughput denominator only).
        self.wall_seconds = wall_seconds
        #: Per-client ``(virtual time, view contents)`` read samples.
        self.observations = observations
        self.final_view = final_view

    def throughput(self) -> float:
        """Updates fully processed per wall-clock second."""
        if self.wall_seconds <= 0:
            return float("inf")
        return self.updates / self.wall_seconds

    def metrics_table(self) -> List[Dict[str, object]]:
        """Uniform-column rows (renderable with ``render_table``)."""
        dicts = {name: self.metrics[name].as_dict() for name in self.metrics}
        columns: List[str] = []
        for fields in dicts.values():
            for key in fields:
                if key not in columns:
                    columns.append(key)
        rows = []
        for name in sorted(dicts):
            row: Dict[str, object] = {"actor": name}
            row.update({column: dicts[name].get(column, 0) for column in columns})
            rows.append(row)
        return rows

    def __repr__(self) -> str:
        return (
            f"RuntimeResult(updates={self.updates}, events="
            f"{len(self.trace.events)}, quiesce_latency={self.quiesce_latency:g})"
        )


def _normalize_sources(sources: SourcesArg) -> Dict[str, Source]:
    if isinstance(sources, Source):
        return {"source": sources}
    named = dict(sources)
    if not named:
        raise SimulationError("run_concurrent needs at least one source")
    return named


def _relation_owners(sources: Mapping[str, Source]) -> Dict[str, str]:
    owners: Dict[str, str] = {}
    for name, source in sources.items():
        for schema in source.schemas:
            if schema.name in owners:
                raise SimulationError(f"relation {schema.name!r} owned by two sources")
            owners[schema.name] = name
    return owners


def _normalize_workloads(
    workload: WorkloadArg,
    sources: Mapping[str, Source],
    owners: Mapping[str, str],
) -> Dict[str, List[Update]]:
    """Split a global update stream per owning source (or pass through)."""
    if isinstance(workload, Mapping):
        per_source = {name: list(updates) for name, updates in workload.items()}
        unknown = set(per_source) - set(sources)
        if unknown:
            raise SimulationError(f"workload names unknown sources: {sorted(unknown)}")
    else:
        per_source = {name: [] for name in sources}
        for update in workload:
            owner = owners.get(update.relation)
            if owner is None:
                raise SimulationError(f"no source owns relation {update.relation!r}")
            per_source[owner].append(update)
    for name in sources:
        per_source.setdefault(name, [])
    return per_source


def run_concurrent(
    sources: SourcesArg,
    algorithm: object,
    workload: WorkloadArg,
    *,
    clients: int = 0,
    client_reads: int = 4,
    faults: Optional[FaultPlan] = None,
    seed: int = 0,
    max_burst: int = 2,
    sizer: Optional[object] = None,
) -> RuntimeResult:
    """Run sources, warehouse, and clients concurrently to quiescence.

    Parameters
    ----------
    sources:
        One :class:`Source` or a ``name -> Source`` mapping (relation
        names must be globally unique).
    algorithm:
        Any single-source :class:`~repro.core.protocol.WarehouseAlgorithm`
        (or :class:`~repro.warehouse.catalog.WarehouseCatalog`), or a
        multi-source algorithm with the routed
        ``on_update(source, notification)`` protocol.
    workload:
        A global update sequence (routed to owning sources) or a
        ``source name -> updates`` mapping.
    clients:
        Number of concurrent view-reading clients.
    faults:
        A :class:`FaultPlan` to run over the fault-injecting transport;
        ``None`` uses the reliable zero-latency transport.
    seed:
        Master seed: actor pacing and transport faults derive their
        private RNGs from it, so one seed pins the whole execution.
    max_burst:
        Largest number of updates a source applies before yielding.
    sizer:
        Optional message sizer for byte accounting (e.g.
        ``CostRecorder().message_size``).
    """
    named_sources = _normalize_sources(sources)
    owners = _relation_owners(named_sources)
    workloads = _normalize_workloads(workload, named_sources, owners)
    total_updates = sum(len(w) for w in workloads.values())

    inner = InMemoryTransport(sizer=sizer)
    transport: AsyncTransport = (
        FaultyTransport(inner, plan=faults, seed=seed + 0x5EED) if faults else inner
    )
    recorder = _TraceRecorder(named_sources, transport)

    warehouse = WarehouseActor(
        algorithm,
        transport,
        inboxes=[warehouse_inbox(name) for name in sorted(named_sources)]
        + [warehouse_inbox(f"client-{i}") for i in range(clients)],
        owners=owners,
        recorder=recorder,
    )
    recorder.record_initial(warehouse)

    source_actors = [
        SourceActor(
            name,
            named_sources[name],
            transport,
            workloads[name],
            recorder,
            seed=seed + 1 + index,
            max_burst=max_burst,
        )
        for index, name in enumerate(sorted(named_sources))
    ]
    client_actors = [
        ClientActor(
            f"client-{i}",
            transport,
            warehouse,
            recorder,
            reads=client_reads,
            seed=seed + 101 + i,
        )
        for i in range(clients)
    ]

    started = time.perf_counter()
    asyncio.run(_drive(transport, warehouse, source_actors, client_actors))
    wall_seconds = time.perf_counter() - started

    if not warehouse.is_quiescent():
        raise SimulationError(
            f"algorithm {getattr(algorithm, 'name', algorithm)!r} failed to "
            f"quiesce after the workload drained"
        )

    metrics = {actor.metrics.name: actor.metrics for actor in source_actors}
    metrics["warehouse"] = warehouse.metrics
    for client in client_actors:
        metrics[client.name] = client.metrics

    return RuntimeResult(
        trace=recorder.trace,
        metrics=metrics,
        channel_stats=transport.stats(),
        updates=total_updates,
        quiesce_latency=max(0.0, transport.now() - recorder.last_update_at),
        virtual_duration=transport.now(),
        wall_seconds=wall_seconds,
        observations={c.name: c.observations for c in client_actors},
        final_view=warehouse.view_state(),
    )


async def _drive(
    transport: AsyncTransport,
    warehouse: WarehouseActor,
    source_actors: Sequence[SourceActor],
    client_actors: Sequence[ClientActor],
) -> None:
    tasks = [asyncio.ensure_future(actor.run()) for actor in source_actors]
    warehouse_task = asyncio.ensure_future(warehouse.run())
    client_tasks = [asyncio.ensure_future(actor.run()) for actor in client_actors]

    try:
        # Clients perform a bounded number of reads; wait them out first.
        if client_tasks:
            await asyncio.gather(*client_tasks)
        # Then poll for global quiescence: workloads drained, channels
        # empty, algorithm holding no deferred work.  Every poll iteration
        # yields, letting all ready actors take a step.
        for _ in range(_MAX_POLLS):
            await asyncio.sleep(0)
            if warehouse_task.done() or any(task.done() for task in tasks):
                break  # an actor died early; surface its exception below
            if (
                all(actor.workload_done for actor in source_actors)
                and transport.total_pending() == 0
                and warehouse.is_quiescent()
            ):
                break
        else:
            raise SimulationError(
                f"runtime did not quiesce within {_MAX_POLLS} polls "
                f"(pending={transport.total_pending()})"
            )
    finally:
        transport.close()
        outcome = await asyncio.gather(
            *tasks, warehouse_task, *client_tasks, return_exceptions=True
        )
        for result in outcome:
            if isinstance(result, Exception) and not isinstance(
                result, asyncio.CancelledError
            ):
                raise result
