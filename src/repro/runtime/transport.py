"""Async transports for the concurrent runtime.

The runtime's actors exchange the ordinary :mod:`repro.messaging`
messages over named, unidirectional channels owned by a transport.
Two transports are provided:

- :class:`InMemoryTransport` — reliable and instantaneous.  Every message
  is deliverable the moment it is sent, per-channel FIFO is exact, and a
  receiver selecting over several channels sees them merged in global
  send order.  This reproduces the paper's messaging assumptions
  (Section 2) in a concurrent setting.

- :class:`FaultyTransport` — a wrapper that injects faults described by a
  :class:`FaultPlan`: base latency, seeded jitter, and drop-with-retry
  (each attempt may be lost; the sender retries after a timeout with
  exponential backoff until the message gets through).  Faults reorder
  deliveries *across* channels; within a channel FIFO is preserved by
  default (the paper's assumption — disable ``fifo_per_channel`` to
  demonstrate what breaks without it).

Time is **virtual**: the transport carries a logical clock that advances
to each message's delivery time as it is received.  Nothing ever waits on
the wall clock, so a run is a pure function of the actors' behavior and
the fault plan's seed — the same seed replays the identical execution,
which is what makes fault-injection runs debuggable and testable.
"""

from __future__ import annotations

import asyncio
import itertools
import random
from abc import ABC, abstractmethod
from collections import deque
from typing import Deque, Dict, Optional, Sequence, Tuple

from repro.errors import ChannelEmpty, ProtocolError, TransportClosed
from repro.messaging.channel import Sizer
from repro.messaging.messages import Message
from repro.messaging.wire import WireCodec


class ChannelStats:
    """Per-channel delivery accounting.

    Rendered as the ``ch:<name>`` rows of ``RuntimeResult.metrics_table()``
    and exported as the ``repro_channel_*`` series by ``repro.obs``.
    """

    __slots__ = (
        "name",
        "sent",
        "delivered",
        "sent_bytes",
        "dropped",
        "retries",
        "reordered",
        "max_pending",
    )

    def __init__(self, name: str) -> None:
        self.name = name
        self.sent = 0
        self.delivered = 0
        self.sent_bytes = 0
        self.dropped = 0
        self.retries = 0
        #: Sends that jumped ahead of an already-queued message on this
        #: channel (only possible with ``fifo_per_channel=False``).
        self.reordered = 0
        self.max_pending = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "sent": self.sent,
            "delivered": self.delivered,
            "bytes": self.sent_bytes,
            "dropped": self.dropped,
            "retries": self.retries,
            "reordered": self.reordered,
            "max_pending": self.max_pending,
        }

    def __repr__(self) -> str:
        return (
            f"ChannelStats({self.name}, sent={self.sent}, "
            f"delivered={self.delivered}, dropped={self.dropped})"
        )


class FaultPlan:
    """Knobs for :class:`FaultyTransport` (all delays in virtual time).

    Parameters
    ----------
    latency:
        Base delivery delay added to every message.
    jitter:
        Extra uniform-random delay in ``[0, jitter)``; differing draws on
        different channels are what reorder deliveries across channels.
    drop_rate:
        Probability that any single transmission attempt is lost.
    retry_timeout:
        Virtual time the sender waits before retransmitting a lost attempt.
    backoff:
        Multiplier applied to the timeout on each further retry.
    max_retries:
        Deterministic backstop: after this many lost attempts the next
        transmission succeeds, so every run terminates.
    fifo_per_channel:
        When True (default), delivery order within one channel always
        matches send order even when latencies would say otherwise — the
        paper's per-channel FIFO assumption.  Disable to let jitter
        reorder within a channel too (breaks ECA; useful for demos).
    """

    __slots__ = (
        "latency",
        "jitter",
        "drop_rate",
        "retry_timeout",
        "backoff",
        "max_retries",
        "fifo_per_channel",
    )

    def __init__(
        self,
        latency: float = 1.0,
        jitter: float = 0.0,
        drop_rate: float = 0.0,
        retry_timeout: float = 4.0,
        backoff: float = 2.0,
        max_retries: int = 16,
        fifo_per_channel: bool = True,
    ) -> None:
        if not 0.0 <= drop_rate < 1.0:
            raise ValueError(f"drop_rate must be in [0, 1), got {drop_rate}")
        if latency < 0 or jitter < 0 or retry_timeout < 0:
            raise ValueError("latency, jitter, and retry_timeout must be >= 0")
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        self.latency = latency
        self.jitter = jitter
        self.drop_rate = drop_rate
        self.retry_timeout = retry_timeout
        self.backoff = backoff
        self.max_retries = max_retries
        self.fifo_per_channel = fifo_per_channel

    def __repr__(self) -> str:
        return (
            f"FaultPlan(latency={self.latency}, jitter={self.jitter}, "
            f"drop_rate={self.drop_rate}, fifo={self.fifo_per_channel})"
        )


#: One queued delivery: (deliver_at, global send sequence, message).
_Entry = Tuple[float, int, Message]


class AsyncTransport(ABC):
    """Named unidirectional channels with awaitable receives (Section 2's message model).

    Channels are created on first use.  Each channel is expected to have a
    single consumer (the runtime wires one inbox per actor); multiple
    producers are fine.  Implementations must deliver per-channel FIFO —
    the assumption every Section 5 correctness proof leans on — and keep
    :meth:`now` on virtual time so runs replay deterministically.
    """

    @abstractmethod
    async def send(self, channel: str, message: Message) -> None:
        """Queue ``message`` for delivery on ``channel``."""

    @abstractmethod
    def receive_nowait(self, channel: str) -> Message:
        """Deliver the next message, or raise :class:`ChannelEmpty`."""

    @abstractmethod
    def peek_nowait(self, channel: str) -> Optional[Message]:
        """The next message *iff* it is deliverable now, else ``None``.

        "Now" is the current virtual clock: a message still in flight
        under a fault plan's latency is invisible, so update batching
        coalesces only notifications that have actually arrived.
        """

    @abstractmethod
    async def recv_any(self, channels: Sequence[str]) -> Tuple[str, Message]:
        """Wait for the earliest deliverable message on any of ``channels``.

        "Earliest" means smallest (delivery time, send sequence), so a
        receiver with several inboxes sees exactly the interleaving the
        transport's latencies induce.  Raises :class:`TransportClosed`
        once the transport is closed and the channels are drained.
        """

    async def recv(self, channel: str) -> Message:
        """Wait for the next message on one channel."""
        _, message = await self.recv_any((channel,))
        return message

    @abstractmethod
    def pending(self, channel: str) -> int:
        """Messages queued (sent, not yet received) on ``channel``."""

    @abstractmethod
    def now(self) -> float:
        """Current virtual time."""

    @abstractmethod
    def stats(self) -> Dict[str, ChannelStats]:
        """Per-channel accounting, keyed by channel name."""

    @abstractmethod
    def close(self) -> None:
        """Shut down: pending and future receives raise TransportClosed."""


class InMemoryTransport(AsyncTransport):
    """Reliable, zero-latency transport (the paper's network).

    Deterministic: waiters are woken in FIFO order and ties between
    channels break on the global send sequence number.
    """

    def __init__(
        self,
        sizer: Optional[Sizer] = None,
        codec: Optional[WireCodec] = None,
    ) -> None:
        self._queues: Dict[str, Deque[_Entry]] = {}
        self._stats: Dict[str, ChannelStats] = {}
        self._waiters: Deque[Tuple[Tuple[str, ...], "asyncio.Future[None]"]] = deque()
        self._sizer = sizer
        #: Wire codec: when set, ``sent_bytes`` counts real framed bytes
        #: (the codec wins over the sizer).
        self._codec = codec
        self._seq = itertools.count()
        self._clock = 0.0
        self._closed = False

    # ------------------------------------------------------------------ #
    # Sending
    # ------------------------------------------------------------------ #

    async def send(self, channel: str, message: Message) -> None:
        self._enqueue(channel, message, self._clock)

    def _enqueue(self, channel: str, message: Message, deliver_at: float) -> None:
        if self._closed:
            raise TransportClosed(f"send on closed transport (channel {channel!r})")
        queue = self._queues.setdefault(channel, deque())
        stats = self._stats.setdefault(channel, ChannelStats(channel))
        entry = (deliver_at, next(self._seq), message)
        # Keep each queue sorted by (deliver_at, seq).  Reliable and
        # FIFO-clamped sends arrive with non-decreasing times, so this is
        # an O(1) append; only a non-FIFO fault plan ever inserts earlier.
        position = len(queue)
        while position > 0 and queue[position - 1][:2] > entry[:2]:
            position -= 1
        if position < len(queue):
            stats.reordered += 1
        queue.insert(position, entry)
        stats.sent += 1
        if self._codec is not None:
            stats.sent_bytes += self._codec.size(message)
        elif self._sizer is not None:
            stats.sent_bytes += self._sizer(message)
        stats.max_pending = max(stats.max_pending, len(queue))
        self._wake(channel)

    def _wake(self, channel: str) -> None:
        for channels, future in self._waiters:
            if not future.done() and channel in channels:
                future.set_result(None)
                return

    # ------------------------------------------------------------------ #
    # Receiving
    # ------------------------------------------------------------------ #

    def _head(self, channel: str) -> Optional[_Entry]:
        queue = self._queues.get(channel)
        return queue[0] if queue else None

    def receive_nowait(self, channel: str) -> Message:
        head = self._head(channel)
        if head is None:
            raise ChannelEmpty(f"receive on empty channel {channel!r}")
        return self._pop(channel)

    def peek_nowait(self, channel: str) -> Optional[Message]:
        head = self._head(channel)
        if head is None or head[0] > self._clock:
            return None
        return head[2]

    def _pop(self, channel: str) -> Message:
        deliver_at, _, message = self._queues[channel].popleft()
        self._clock = max(self._clock, deliver_at)
        self._stats[channel].delivered += 1
        return message

    async def recv_any(self, channels: Sequence[str]) -> Tuple[str, Message]:
        wanted = tuple(channels)
        if not wanted:
            raise ProtocolError("recv_any needs at least one channel")
        while True:
            best: Optional[str] = None
            best_key: Optional[Tuple[float, int]] = None
            for channel in wanted:
                head = self._head(channel)
                if head is None:
                    continue
                key = (head[0], head[1])
                if best_key is None or key < best_key:
                    best, best_key = channel, key
            if best is not None:
                return best, self._pop(best)
            if self._closed:
                raise TransportClosed(
                    f"transport closed with nothing pending on {wanted!r}"
                )
            future: "asyncio.Future[None]" = (
                asyncio.get_running_loop().create_future()
            )
            self._waiters.append((wanted, future))
            try:
                await future
            finally:
                self._waiters.remove((wanted, future))

    # ------------------------------------------------------------------ #
    # Introspection and lifecycle
    # ------------------------------------------------------------------ #

    def pending(self, channel: str) -> int:
        queue = self._queues.get(channel)
        return len(queue) if queue else 0

    def total_pending(self) -> int:
        return sum(len(queue) for queue in self._queues.values())

    def now(self) -> float:
        return self._clock

    def stats(self) -> Dict[str, ChannelStats]:
        return dict(self._stats)

    def close(self) -> None:
        self._closed = True
        for _, future in self._waiters:
            if not future.done():
                future.set_exception(
                    TransportClosed("transport closed while waiting")
                )

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(channels={len(self._queues)}, "
            f"pending={self.total_pending()}, t={self._clock:g})"
        )


class FaultyTransport(AsyncTransport):
    """Fault-injecting wrapper around an :class:`InMemoryTransport`.

    All queueing, waiting, and clock machinery is delegated to the inner
    transport; this wrapper only decides *when* each send is delivered,
    drawing latency, jitter, and drop/retry outcomes from a private seeded
    RNG.  Same seed + same send sequence ⇒ same delivery schedule.  The
    paper's reliable-delivery assumption (Section 2) is preserved: a
    dropped message is retried until delivered, so faults stretch time
    without ever losing messages.
    """

    def __init__(
        self,
        inner: Optional[InMemoryTransport] = None,
        plan: Optional[FaultPlan] = None,
        seed: int = 0,
    ) -> None:
        self.inner = inner if inner is not None else InMemoryTransport()
        self.plan = plan if plan is not None else FaultPlan()
        self._rng = random.Random(seed)
        #: Last scheduled delivery time per channel (the FIFO clamp).
        self._last_delivery: Dict[str, float] = {}

    # ------------------------------------------------------------------ #
    # Sending: the only place faults exist
    # ------------------------------------------------------------------ #

    async def send(self, channel: str, message: Message) -> None:
        plan = self.plan
        delay = plan.latency
        if plan.jitter:
            delay += self._rng.uniform(0.0, plan.jitter)
        # Each attempt may be dropped; the sender retries after a timeout
        # that backs off exponentially.  max_retries bounds the loop so
        # the schedule (and the run) always terminates.
        drops = 0
        timeout = plan.retry_timeout
        while drops < plan.max_retries and self._rng.random() < plan.drop_rate:
            delay += timeout
            timeout *= plan.backoff
            drops += 1
        deliver_at = self.inner.now() + delay
        if plan.fifo_per_channel:
            deliver_at = max(deliver_at, self._last_delivery.get(channel, 0.0))
        self._last_delivery[channel] = deliver_at
        self.inner._enqueue(channel, message, deliver_at)
        if drops:
            stats = self.inner.stats()[channel]
            stats.dropped += drops
            stats.retries += drops

    # ------------------------------------------------------------------ #
    # Everything else delegates
    # ------------------------------------------------------------------ #

    def receive_nowait(self, channel: str) -> Message:
        return self.inner.receive_nowait(channel)

    def peek_nowait(self, channel: str) -> Optional[Message]:
        return self.inner.peek_nowait(channel)

    async def recv_any(self, channels: Sequence[str]) -> Tuple[str, Message]:
        return await self.inner.recv_any(channels)

    def pending(self, channel: str) -> int:
        return self.inner.pending(channel)

    def total_pending(self) -> int:
        return self.inner.total_pending()

    def now(self) -> float:
        return self.inner.now()

    def stats(self) -> Dict[str, ChannelStats]:
        return self.inner.stats()

    def close(self) -> None:
        self.inner.close()

    def __repr__(self) -> str:
        return f"FaultyTransport({self.plan!r}, inner={self.inner!r})"
