"""Whole-program call graph over the :class:`~repro.analysis.project.Project`.

Every ``ast.Call`` inside every registered function becomes one
:class:`CallSite`.  A site either *resolves* to a project function
(``target`` is its qualname — the soundness contract the property tests
pin is that every call to a locally-defined symbol resolves) or is
recorded as ⊤ (``target is None``): a stdlib call, a dynamically
dispatched callable, or anything else the static resolver cannot see.

⊤ sites are kept, not dropped — :mod:`repro.analysis.effects` treats
them *optimistically* (no inferred effects) because the alternative,
poisoning every caller of ``len()`` with every effect, would make the
whole tree flag.  The seed tables in ``effects.py`` are exactly the
compensating pessimism: the known-dangerous leaf names carry their
effects by name even when unresolved.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from repro.analysis.project import (
    ClassInfo,
    FunctionInfo,
    ModuleInfo,
    Project,
    dotted_name,
    local_instance_types,
    receiver_root,
)


@dataclass
class CallSite:
    """One call expression inside one analyzed function."""

    node: ast.Call
    #: Dotted callee text (``self._retire``, ``time.time``), or None for
    #: calls on arbitrary expressions (``x[0]()``, ``f()()``).
    raw: Optional[str]
    #: Qualname of the resolved project function, or None (⊤).
    target: Optional[str]

    @property
    def line(self) -> int:
        return self.node.lineno

    @property
    def col(self) -> int:
        return self.node.col_offset

    @property
    def leaf(self) -> Optional[str]:
        return self.raw.split(".")[-1] if self.raw else None

    @property
    def self_receiver(self) -> bool:
        """Whether the callee chain is rooted at ``self``."""
        return receiver_root(self.node.func) == "self"


class CallGraph:
    """caller qualname → call sites, plus forward/reverse edge sets."""

    def __init__(self) -> None:
        self.calls: Dict[str, List[CallSite]] = {}
        self.edges: Dict[str, Set[str]] = {}
        self.reverse: Dict[str, Set[str]] = {}

    @classmethod
    def build(cls, project: Project) -> "CallGraph":
        graph = cls()
        for function in project.functions.values():
            module = project.modules.get(function.module)
            sites = _collect_sites(project, module, function)
            graph.calls[function.qualname] = sites
            targets = {s.target for s in sites if s.target is not None}
            graph.edges[function.qualname] = targets
            for target in targets:
                graph.reverse.setdefault(target, set()).add(
                    function.qualname
                )
        return graph

    def sites(self, qualname: str) -> List[CallSite]:
        return self.calls.get(qualname, [])

    def file_dependencies(self, project: Project) -> Dict[str, Set[str]]:
        """display path → set of display paths its functions call into."""
        deps: Dict[str, Set[str]] = {}
        for caller, targets in self.edges.items():
            caller_info = project.functions.get(caller)
            if caller_info is None:
                continue
            bucket = deps.setdefault(caller_info.path, set())
            for target in targets:
                target_info = project.functions.get(target)
                if target_info is not None and target_info.path != caller_info.path:
                    bucket.add(target_info.path)
        return deps


def _collect_sites(
    project: Project,
    module: Optional[ModuleInfo],
    function: FunctionInfo,
) -> List[CallSite]:
    local_types = local_instance_types(project, module, function.node)
    sites: List[CallSite] = []
    for node in ast.walk(function.node):
        if isinstance(node, ast.Call):
            sites.append(
                _resolve_call(project, module, function, local_types, node)
            )
    sites.sort(key=lambda s: (s.line, s.col))
    return sites


def _resolve_call(
    project: Project,
    module: Optional[ModuleInfo],
    function: FunctionInfo,
    local_types: Dict[str, str],
    node: ast.Call,
) -> CallSite:
    raw = dotted_name(node.func)
    if raw is None:
        return CallSite(node=node, raw=None, target=None)
    parts = raw.split(".")
    target = _resolve_parts(project, module, function, local_types, parts)
    return CallSite(node=node, raw=raw, target=target)


def _resolve_parts(
    project: Project,
    module: Optional[ModuleInfo],
    function: FunctionInfo,
    local_types: Dict[str, str],
    parts: List[str],
) -> Optional[str]:
    head = parts[0]
    if head in ("self", "cls") and function.class_name is not None:
        klass = project.class_of(function)
        if klass is None:
            return None
        if len(parts) == 2:
            return _qualname(project.method_on(klass, parts[1]))
        if len(parts) == 3:
            attr_class = project.classes.get(
                klass.attr_types.get(parts[1], "")
            )
            if attr_class is not None:
                return _qualname(project.method_on(attr_class, parts[2]))
        return None
    if head in local_types and len(parts) == 2:
        owner = project.classes.get(local_types[head])
        if owner is not None:
            return _qualname(project.method_on(owner, parts[1]))
        return None
    resolved = project.resolve_name(module, ".".join(parts))
    if isinstance(resolved, FunctionInfo):
        return resolved.qualname
    if isinstance(resolved, ClassInfo):
        return _qualname(project.constructor_of(resolved))
    return None


def _qualname(function: Optional[FunctionInfo]) -> Optional[str]:
    return function.qualname if function is not None else None
