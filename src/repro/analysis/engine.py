"""The analysis driver: collect files, parse once, run every rule.

Three rule shapes exist:

- **file rules** implement :meth:`Rule.check` and run once per analyzed
  file, over its parsed AST (:class:`FileContext`);
- **project rules** implement :meth:`Rule.check_project` and run once
  per invocation, over the whole file set — used by import-and-inspect
  rules like RPR006 that reason about the live registry rather than one
  file's syntax;
- **effect rules** set :attr:`Rule.effect_rule` and implement
  :meth:`Rule.check_effects` over the whole-program
  :class:`~repro.analysis.effects.ProjectAnalysis` (symbol table, call
  graph, inferred effects) — the interprocedural passes of RPR004/007/
  010 and all of RPR011/012 live here.  A rule may be both a file rule
  and an effect rule: the file pass catches direct violations, the
  effect pass catches transitive ones.

Scoping: each rule declares :meth:`Rule.applies_to` over the file's
normalized (posix, repo-relative) path.  Files under a ``fixtures/``
directory are special-cased twice: directory walks skip them (so linting
``tests`` does not flag the deliberately-broken rule fixtures), and when
named explicitly every rule applies to them regardless of its scope (so
one fixture file per rule can prove the rule fires).

The same file reached twice in one invocation (named explicitly *and*
found by a directory walk, or named via two spellings) is analyzed once:
:func:`collect_files` dedupes on the resolved filesystem path, and the
final merge additionally dedupes findings on ``(path, line, col, rule)``.
"""

from __future__ import annotations

import ast
import multiprocessing
import os
from dataclasses import dataclass, field
from pathlib import Path, PurePosixPath
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    FrozenSet,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.analysis.findings import ERROR, Finding
from repro.analysis.pragmas import collect_pragmas, suppressed

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.analysis.effects import ProjectAnalysis

#: Rule id reserved for files the driver cannot parse.
PARSE_ERROR = "RPR000"

#: Directory names never descended into while walking.
SKIPPED_DIRS = frozenset({"__pycache__", ".git", "fixtures", ".egg-info"})


class FileContext:
    """One analyzed file: source, AST, pragmas, and finding helpers."""

    def __init__(self, path: str, source: str, tree: ast.Module) -> None:
        self.path = path
        self.source = source
        self.tree = tree
        self.lines = source.splitlines()
        self.pragmas = collect_pragmas(source)
        #: Path split into posix parts, for scope predicates.
        self.parts: Tuple[str, ...] = PurePosixPath(path).parts

    @classmethod
    def load(cls, path: Path, display: str) -> "FileContext":
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=display)
        return cls(display, source, tree)

    def finding(
        self,
        node: ast.AST,
        rule_id: str,
        message: str,
        severity: str = ERROR,
    ) -> Finding:
        """Build a finding anchored at ``node``'s location."""
        return Finding(
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule_id=rule_id,
            message=message,
            severity=severity,
        )


class Rule:
    """Base class for every registered rule.

    Subclasses set :attr:`rule_id` (stable ``RPR###`` identifier),
    :attr:`title` (one-line summary for ``--list-rules``), and override
    :meth:`check` (file rule), :meth:`check_project` (project rule), or
    :meth:`check_effects` (effect rule, with :attr:`effect_rule` True).
    """

    rule_id: str = ""
    title: str = ""
    severity: str = ERROR
    #: Project rules run once per invocation instead of once per file.
    project_rule: bool = False
    #: Effect rules additionally run over the whole-program analysis.
    effect_rule: bool = False

    def applies_to(self, path: str) -> bool:
        """Whether this (file) rule runs over ``path``."""
        return True

    def check(self, context: FileContext) -> Iterator[Finding]:
        """Yield findings for one file (file rules override this)."""
        return iter(())

    def check_project(
        self, contexts: Sequence[FileContext]
    ) -> Iterator[Finding]:
        """Yield findings for the whole run (project rules override)."""
        return iter(())

    def check_effects(
        self, analysis: "ProjectAnalysis"
    ) -> Iterator[Finding]:
        """Yield interprocedural findings (effect rules override)."""
        return iter(())

    def effect_contexts(
        self, analysis: "ProjectAnalysis"
    ) -> Iterator[FileContext]:
        """The contexts this effect rule covers, honoring the fixture
        override exactly like the file-rule dispatch does."""
        for context in analysis.contexts:
            if is_fixture(context.path) or self.applies_to(context.path):
                yield context


#: rule id -> rule instance, in registration order.
_REGISTRY: Dict[str, Rule] = {}


def register(cls: type) -> type:
    """Class decorator: instantiate and register a :class:`Rule`."""
    rule = cls()
    if not rule.rule_id:
        raise ValueError(f"{cls.__name__} must set rule_id")
    if rule.rule_id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule.rule_id}")
    _REGISTRY[rule.rule_id] = rule
    return cls


def all_rules() -> List[Rule]:
    """Every registered rule, ordered by rule id."""
    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]


# --------------------------------------------------------------------- #
# Path handling
# --------------------------------------------------------------------- #


def repro_module(path: str) -> Optional[Tuple[str, ...]]:
    """Dotted-module parts for a file inside the ``repro`` package.

    ``src/repro/runtime/actors.py`` -> ``("repro", "runtime", "actors")``;
    ``None`` for paths outside any ``repro`` package directory.
    """
    parts = PurePosixPath(path).parts
    if "repro" not in parts:
        return None
    index = parts.index("repro")
    module = list(parts[index:])
    leaf = module[-1]
    if leaf.endswith(".py"):
        module[-1] = leaf[: -len(".py")]
    if module[-1] == "__init__":
        module.pop()
    return tuple(module)


def is_fixture(path: str) -> bool:
    """Whether ``path`` sits under a ``fixtures/`` directory."""
    return "fixtures" in PurePosixPath(path).parts


def iter_python_files(paths: Sequence[str]) -> Iterator[Tuple[Path, str]]:
    """``(filesystem path, display path)`` for every ``.py`` under ``paths``.

    Directories are walked recursively, skipping :data:`SKIPPED_DIRS`;
    explicitly named files are always yielded, fixtures included.  May
    yield the same file twice when the inputs overlap — use
    :func:`collect_files` for the deduplicated list.
    """
    for raw in paths:
        path = Path(raw)
        if path.is_file():
            yield path, raw.replace("\\", "/")
            continue
        for found in sorted(path.rglob("*.py")):
            relative = found.relative_to(path)
            if any(
                part in SKIPPED_DIRS or part.endswith(".egg-info")
                for part in relative.parts[:-1]
            ):
                continue
            display = (PurePosixPath(raw) / PurePosixPath(*relative.parts)).as_posix()
            yield found, display


def collect_files(paths: Sequence[str]) -> List[Tuple[Path, str]]:
    """:func:`iter_python_files`, deduplicated on the resolved path.

    A file reached both as an explicit argument and through a directory
    walk (``repro lint src src/repro/cli.py``) is analyzed exactly once,
    under the first display path it was reached by.
    """
    entries: List[Tuple[Path, str]] = []
    seen: Set[str] = set()
    for path, display in iter_python_files(paths):
        key = os.path.realpath(path)
        if key in seen:
            continue
        seen.add(key)
        entries.append((path, display))
    return entries


# --------------------------------------------------------------------- #
# Running
# --------------------------------------------------------------------- #


@dataclass
class AnalysisResult:
    """Bucketed output of one :func:`execute_analysis` invocation.

    Findings are kept per origin so the incremental cache can reuse the
    per-file buckets of unchanged files while recomputing the rest.
    All buckets are already pragma-suppressed.
    """

    contexts: List[FileContext] = field(default_factory=list)
    #: display path → file-rule findings (parse errors included).
    file_findings: Dict[str, List[Finding]] = field(default_factory=dict)
    #: display path → effect-rule (interprocedural) findings.
    effect_findings: Dict[str, List[Finding]] = field(default_factory=dict)
    #: project-rule findings (global, recomputed every run).
    project_findings: List[Finding] = field(default_factory=list)
    #: display path → display paths its functions call into.
    file_deps: Dict[str, List[str]] = field(default_factory=dict)

    def findings(self) -> List[Finding]:
        return merge_findings(
            self.file_findings, self.effect_findings, self.project_findings
        )


def merge_findings(
    file_findings: Dict[str, List[Finding]],
    effect_findings: Dict[str, List[Finding]],
    project_findings: Sequence[Finding],
) -> List[Finding]:
    """Merge the buckets, deduping on ``(path, line, col, rule)``.

    Dedup is *across* passes: file-rule findings win ties (their
    messages cite the direct violation; an effect finding at the same
    site is the same fact seen transitively).  Within one pass, several
    findings may legitimately share a position with distinct messages
    (RPR006 reports every contract breach of a registry entry at the
    class line), so only exact message duplicates collapse there.
    """
    merged: List[Finding] = []
    seen: Set[Tuple[str, int, int, str]] = set()
    groups: List[List[Finding]] = [
        [f for bucket in file_findings.values() for f in bucket],
        [f for bucket in effect_findings.values() for f in bucket],
        list(project_findings),
    ]
    for group in groups:
        kept: List[Finding] = []
        local: Set[Tuple[str, int, int, str, str]] = set()
        for finding in group:
            key = (finding.path, finding.line, finding.col, finding.rule_id)
            if key in seen:
                continue
            full = key + (finding.message,)
            if full in local:
                continue
            local.add(full)
            kept.append(finding)
        seen.update(
            (f.path, f.line, f.col, f.rule_id) for f in kept
        )
        merged.extend(kept)
    return sorted(merged)


def _load_context(
    path: Path, display: str
) -> Tuple[Optional[FileContext], Optional[Finding]]:
    try:
        return FileContext.load(path, display), None
    except SyntaxError as exc:
        return None, Finding(
            path=display,
            line=exc.lineno or 1,
            col=(exc.offset or 0) + 1,
            rule_id=PARSE_ERROR,
            message=f"cannot parse file: {exc.msg}",
        )


def _check_file(
    context: FileContext, rules: Sequence[Rule]
) -> List[Finding]:
    fixture = is_fixture(context.path)
    found: List[Finding] = []
    for rule in rules:
        if not fixture and not rule.applies_to(context.path):
            continue
        found.extend(rule.check(context))
    return found


def _worker_analyze(
    payload: Tuple[str, str, Optional[Tuple[str, ...]]]
) -> Tuple[str, List[Finding]]:
    """Multiprocessing worker: parse one file, run the file rules.

    Returns only the findings — never the :class:`FileContext`.  ASTs
    are expensive to pickle across the process boundary, and the parent
    re-parses every file anyway for the whole-program pass.
    """
    raw_path, display, select = payload
    context, parse_finding = _load_context(Path(raw_path), display)
    if context is None:
        return display, [parse_finding] if parse_finding else []
    rules = [rule for rule in all_rules() if not rule.project_rule]
    if select is not None:
        chosen = set(select)
        rules = [rule for rule in rules if rule.rule_id in chosen]
    return display, _check_file(context, rules)


def execute_analysis(
    paths: Sequence[str],
    rules: Optional[Sequence[Rule]] = None,
    select: Optional[FrozenSet[str]] = None,
    *,
    jobs: int = 1,
    interprocedural: bool = True,
    limit: Optional[Set[str]] = None,
) -> AnalysisResult:
    """Run the full pipeline, returning bucketed findings.

    ``limit`` restricts which display paths get file-rule and
    effect-rule findings recorded (the incremental cache supplies the
    rest) — every file is still parsed, because the whole-program
    passes need the complete symbol table either way.
    """
    active = list(rules) if rules is not None else all_rules()
    if select is not None:
        active = [rule for rule in active if rule.rule_id in select]
    file_rules = [rule for rule in active if not rule.project_rule]
    project_rules = [rule for rule in active if rule.project_rule]
    effect_rules = (
        [rule for rule in active if rule.effect_rule]
        if interprocedural
        else []
    )

    result = AnalysisResult()
    entries = collect_files(paths)
    select_key = tuple(sorted(select)) if select is not None else None

    # Custom rule instances cannot be rebuilt inside a worker process,
    # so --jobs only parallelizes registry-driven runs.
    if jobs > 1 and rules is None:
        payloads = [
            (str(path), display, select_key)
            for path, display in entries
            if limit is None or display in limit
        ]
        with multiprocessing.Pool(processes=jobs) as pool:
            pending = pool.map_async(_worker_analyze, payloads)
            # Parse in the parent while the workers run the file rules:
            # the whole-program pass needs every AST in-process anyway,
            # and the ASTs are exactly what is too expensive to pickle
            # back from the pool.
            for path, display in entries:
                context, parse_finding = _load_context(path, display)
                if context is None:
                    if (
                        limit is None or display in limit
                    ) and parse_finding is not None:
                        result.file_findings[display] = [parse_finding]
                    continue
                result.contexts.append(context)
            for display, found in pending.get():
                result.file_findings[display] = found
    else:
        for path, display in entries:
            context, parse_finding = _load_context(path, display)
            in_limit = limit is None or display in limit
            if context is None:
                if in_limit and parse_finding is not None:
                    result.file_findings[display] = [parse_finding]
                continue
            result.contexts.append(context)
            if in_limit:
                result.file_findings[display] = _check_file(
                    context, file_rules
                )

    contexts_by_path = {context.path: context for context in result.contexts}

    def suppress(findings: Sequence[Finding]) -> List[Finding]:
        kept = []
        for finding in findings:
            context = contexts_by_path.get(finding.path)
            if context is not None and suppressed(
                context.pragmas, finding.line, finding.rule_id
            ):
                continue
            kept.append(finding)
        return kept

    for display in list(result.file_findings):
        result.file_findings[display] = suppress(
            result.file_findings[display]
        )

    if effect_rules:
        from repro.analysis.effects import ProjectAnalysis

        analysis = ProjectAnalysis(result.contexts)
        for rule in effect_rules:
            for finding in suppress(list(rule.check_effects(analysis))):
                if limit is not None and finding.path not in limit:
                    continue
                result.effect_findings.setdefault(finding.path, []).append(
                    finding
                )
        result.file_deps = {
            display: sorted(deps)
            for display, deps in analysis.file_dependencies().items()
        }

    for rule in project_rules:
        result.project_findings.extend(
            suppress(list(rule.check_project(result.contexts)))
        )

    return result


def run_analysis(
    paths: Sequence[str],
    rules: Optional[Sequence[Rule]] = None,
    select: Optional[FrozenSet[str]] = None,
    *,
    jobs: int = 1,
    interprocedural: bool = True,
) -> List[Finding]:
    """Analyze every Python file under ``paths`` with every rule.

    ``rules`` overrides the registry (used by the self-tests);
    ``select`` keeps only the named rule ids; ``jobs`` fans the per-file
    pass out over processes; ``interprocedural=False`` skips the
    whole-program effect passes (per-file rules only, the pre-PR-10
    behavior).  Findings come back sorted, deduplicated, and
    pragma-suppressed.
    """
    return execute_analysis(
        paths,
        rules,
        select,
        jobs=jobs,
        interprocedural=interprocedural,
    ).findings()


def lint_paths(
    paths: Sequence[str],
    reporter: Callable[[Sequence[Finding]], str],
    *,
    jobs: int = 1,
    changed: bool = False,
    cache_dir: Optional[str] = None,
    sarif_path: Optional[str] = None,
) -> Tuple[str, int]:
    """Run the full analysis and render it: ``(report text, exit code)``.

    Exit code 1 when any error-severity finding survives suppression,
    0 otherwise — warnings never fail the build.  ``changed=True``
    consults the content-hash cache under ``cache_dir`` and re-analyzes
    only dirty files plus their call-graph dependents; a full run
    (re)populates the same cache so the next ``--changed`` run is warm.
    ``sarif_path`` additionally writes a SARIF 2.1.0 log there.
    """
    from repro.analysis.cache import (
        DEFAULT_CACHE_DIR,
        incremental_analysis,
        store_result,
    )

    directory = cache_dir or DEFAULT_CACHE_DIR
    if changed:
        findings, _stats = incremental_analysis(
            paths, cache_dir=directory, jobs=jobs
        )
    else:
        result = execute_analysis(paths, jobs=jobs)
        store_result(result, cache_dir=directory)
        findings = result.findings()
    text = reporter(findings)
    if sarif_path is not None:
        from repro.analysis.report import render_sarif

        Path(sarif_path).write_text(
            render_sarif(findings), encoding="utf-8"
        )
    failed = any(finding.severity == ERROR for finding in findings)
    return text, 1 if failed else 0
