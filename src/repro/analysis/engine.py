"""The analysis driver: collect files, parse once, run every rule.

Two rule shapes exist:

- **file rules** implement :meth:`Rule.check` and run once per analyzed
  file, over its parsed AST (:class:`FileContext`);
- **project rules** implement :meth:`Rule.check_project` and run once
  per invocation, over the whole file set — used by import-and-inspect
  rules like RPR006 that reason about the live registry rather than one
  file's syntax.

Scoping: each rule declares :meth:`Rule.applies_to` over the file's
normalized (posix, repo-relative) path.  Files under a ``fixtures/``
directory are special-cased twice: directory walks skip them (so linting
``tests`` does not flag the deliberately-broken rule fixtures), and when
named explicitly every rule applies to them regardless of its scope (so
one fixture file per rule can prove the rule fires).
"""

from __future__ import annotations

import ast
from pathlib import Path, PurePosixPath
from typing import Callable, Dict, FrozenSet, Iterator, List, Optional, Sequence, Tuple

from repro.analysis.findings import ERROR, Finding
from repro.analysis.pragmas import collect_pragmas, suppressed

#: Rule id reserved for files the driver cannot parse.
PARSE_ERROR = "RPR000"

#: Directory names never descended into while walking.
SKIPPED_DIRS = frozenset({"__pycache__", ".git", "fixtures", ".egg-info"})


class FileContext:
    """One analyzed file: source, AST, pragmas, and finding helpers."""

    def __init__(self, path: str, source: str, tree: ast.Module) -> None:
        self.path = path
        self.source = source
        self.tree = tree
        self.lines = source.splitlines()
        self.pragmas = collect_pragmas(source)
        #: Path split into posix parts, for scope predicates.
        self.parts: Tuple[str, ...] = PurePosixPath(path).parts

    @classmethod
    def load(cls, path: Path, display: str) -> "FileContext":
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=display)
        return cls(display, source, tree)

    def finding(
        self,
        node: ast.AST,
        rule_id: str,
        message: str,
        severity: str = ERROR,
    ) -> Finding:
        """Build a finding anchored at ``node``'s location."""
        return Finding(
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule_id=rule_id,
            message=message,
            severity=severity,
        )


class Rule:
    """Base class for every registered rule.

    Subclasses set :attr:`rule_id` (stable ``RPR###`` identifier),
    :attr:`title` (one-line summary for ``--list-rules``), and override
    either :meth:`check` (file rule) or :meth:`check_project` (project
    rule).
    """

    rule_id: str = ""
    title: str = ""
    severity: str = ERROR
    #: Project rules run once per invocation instead of once per file.
    project_rule: bool = False

    def applies_to(self, path: str) -> bool:
        """Whether this (file) rule runs over ``path``."""
        return True

    def check(self, context: FileContext) -> Iterator[Finding]:
        """Yield findings for one file (file rules override this)."""
        return iter(())

    def check_project(self, contexts: Sequence[FileContext]) -> Iterator[Finding]:
        """Yield findings for the whole run (project rules override)."""
        return iter(())


#: rule id -> rule instance, in registration order.
_REGISTRY: Dict[str, Rule] = {}


def register(cls: type) -> type:
    """Class decorator: instantiate and register a :class:`Rule`."""
    rule = cls()
    if not rule.rule_id:
        raise ValueError(f"{cls.__name__} must set rule_id")
    if rule.rule_id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule.rule_id}")
    _REGISTRY[rule.rule_id] = rule
    return cls


def all_rules() -> List[Rule]:
    """Every registered rule, ordered by rule id."""
    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]


# --------------------------------------------------------------------- #
# Path handling
# --------------------------------------------------------------------- #


def repro_module(path: str) -> Optional[Tuple[str, ...]]:
    """Dotted-module parts for a file inside the ``repro`` package.

    ``src/repro/runtime/actors.py`` -> ``("repro", "runtime", "actors")``;
    ``None`` for paths outside any ``repro`` package directory.
    """
    parts = PurePosixPath(path).parts
    if "repro" not in parts:
        return None
    index = parts.index("repro")
    module = list(parts[index:])
    leaf = module[-1]
    if leaf.endswith(".py"):
        module[-1] = leaf[: -len(".py")]
    if module[-1] == "__init__":
        module.pop()
    return tuple(module)


def is_fixture(path: str) -> bool:
    """Whether ``path`` sits under a ``fixtures/`` directory."""
    return "fixtures" in PurePosixPath(path).parts


def iter_python_files(paths: Sequence[str]) -> Iterator[Tuple[Path, str]]:
    """``(filesystem path, display path)`` for every ``.py`` under ``paths``.

    Directories are walked recursively, skipping :data:`SKIPPED_DIRS`;
    explicitly named files are always yielded, fixtures included.
    """
    for raw in paths:
        path = Path(raw)
        if path.is_file():
            yield path, raw.replace("\\", "/")
            continue
        for found in sorted(path.rglob("*.py")):
            relative = found.relative_to(path)
            if any(
                part in SKIPPED_DIRS or part.endswith(".egg-info")
                for part in relative.parts[:-1]
            ):
                continue
            display = (PurePosixPath(raw) / PurePosixPath(*relative.parts)).as_posix()
            yield found, display


# --------------------------------------------------------------------- #
# Running
# --------------------------------------------------------------------- #


def run_analysis(
    paths: Sequence[str],
    rules: Optional[Sequence[Rule]] = None,
    select: Optional[FrozenSet[str]] = None,
) -> List[Finding]:
    """Analyze every Python file under ``paths`` with every rule.

    ``rules`` overrides the registry (used by the self-tests);
    ``select`` keeps only the named rule ids.  Findings come back sorted
    and pragma-suppressed.
    """
    active = list(rules) if rules is not None else all_rules()
    if select is not None:
        active = [rule for rule in active if rule.rule_id in select]
    file_rules = [rule for rule in active if not rule.project_rule]
    project_rules = [rule for rule in active if rule.project_rule]

    findings: List[Finding] = []
    contexts: List[FileContext] = []
    for path, display in iter_python_files(paths):
        try:
            context = FileContext.load(path, display)
        except SyntaxError as exc:
            findings.append(
                Finding(
                    path=display,
                    line=exc.lineno or 1,
                    col=(exc.offset or 0) + 1,
                    rule_id=PARSE_ERROR,
                    message=f"cannot parse file: {exc.msg}",
                )
            )
            continue
        contexts.append(context)
        fixture = is_fixture(display)
        for rule in file_rules:
            if not fixture and not rule.applies_to(display):
                continue
            findings.extend(rule.check(context))
    for rule in project_rules:
        findings.extend(rule.check_project(contexts))

    kept = [
        finding
        for finding in findings
        for context in [_context_for(contexts, finding.path)]
        if context is None
        or not suppressed(context.pragmas, finding.line, finding.rule_id)
    ]
    return sorted(kept)


def _context_for(
    contexts: Sequence[FileContext], path: str
) -> Optional[FileContext]:
    for context in contexts:
        if context.path == path:
            return context
    return None


def lint_paths(
    paths: Sequence[str],
    reporter: Callable[[Sequence[Finding]], str],
) -> Tuple[str, int]:
    """Run the full analysis and render it: ``(report text, exit code)``.

    Exit code 1 when any error-severity finding survives suppression,
    0 otherwise — warnings never fail the build.
    """
    findings = run_analysis(paths)
    text = reporter(findings)
    failed = any(finding.severity == ERROR for finding in findings)
    return text, 1 if failed else 0
