"""``python -m repro.analysis`` — the CI entry point for the linter.

Usage::

    python -m repro.analysis src tests benchmarks --format json
    python -m repro.analysis src/repro/runtime/actors.py
    python -m repro.analysis --list-rules

Exit status: 0 when no error-severity finding survives pragma
suppression, 1 otherwise.  ``repro lint`` is the same engine behind the
main CLI (see ``docs/ANALYSIS.md``).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis import all_rules, lint_paths, render_json, render_text


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="AST-based invariant checker for the repro codebase",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to analyze (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for rule in all_rules():
            kind = "project" if rule.project_rule else "file"
            print(f"{rule.rule_id}  [{kind:>7}]  {rule.title}")
        return 0
    reporter = render_json if args.format == "json" else render_text
    report, status = lint_paths(args.paths or ["src"], reporter)
    print(report)
    return status


if __name__ == "__main__":
    sys.exit(main())
