"""``python -m repro.analysis`` — the CI entry point for the linter.

Usage::

    python -m repro.analysis src tests benchmarks --format json
    python -m repro.analysis src/repro/runtime/actors.py
    python -m repro.analysis src --changed --jobs 4
    python -m repro.analysis src --sarif lint.sarif
    python -m repro.analysis --list-rules

Exit status: 0 when no error-severity finding survives pragma
suppression, 1 otherwise.  ``repro lint`` is the same engine behind the
main CLI — both build their flags with :func:`add_lint_arguments`, so
the two entry points cannot drift apart (see ``docs/ANALYSIS.md``).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis import all_rules, lint_paths, render_json, render_text
from repro.analysis.cache import DEFAULT_CACHE_DIR


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the shared lint flags to ``parser``.

    Used by both ``python -m repro.analysis`` and ``repro lint`` so the
    two front-ends accept the same surface; ``tools/check_doc_links.py``
    validates the docs against this function's source.
    """
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to analyze (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=["text", "json", "sarif"],
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--sarif",
        metavar="PATH",
        default=None,
        help="also write a SARIF 2.1.0 report to PATH (for code scanning)",
    )
    parser.add_argument(
        "--changed",
        action="store_true",
        help=(
            "incremental mode: re-analyze only files whose content hash "
            "changed, plus their call-graph-reachable dependents"
        ),
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="parse and run file rules with N worker processes (default: 1)",
    )
    parser.add_argument(
        "--cache-dir",
        default=DEFAULT_CACHE_DIR,
        metavar="DIR",
        help=f"incremental-analysis cache directory (default: {DEFAULT_CACHE_DIR})",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )


def run_lint(args: argparse.Namespace) -> int:
    """Execute one lint invocation from parsed shared flags."""
    if args.list_rules:
        for rule in all_rules():
            kinds = []
            if rule.project_rule:
                kinds.append("project")
            if rule.effect_rule:
                kinds.append("effect")
            if not rule.project_rule and rule.check.__qualname__ != "Rule.check":
                kinds.append("file")
            label = "+".join(kinds) or "file"
            print(f"{rule.rule_id}  [{label:>12}]  {rule.title}")
        return 0
    if args.format == "sarif":
        from repro.analysis.report import render_sarif

        reporter = render_sarif
    elif args.format == "json":
        reporter = render_json
    else:
        reporter = render_text
    report, status = lint_paths(
        args.paths or ["src"],
        reporter,
        jobs=max(1, args.jobs),
        changed=args.changed,
        cache_dir=args.cache_dir,
        sarif_path=args.sarif,
    )
    print(report)
    return status


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="AST-based invariant checker for the repro codebase",
    )
    add_lint_arguments(parser)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    return run_lint(build_parser().parse_args(argv))


if __name__ == "__main__":
    sys.exit(main())
