"""Incremental mode: a content-hash finding cache under ``.repro-lint-cache/``.

``repro lint --changed`` re-analyzes only *dirty* files — files whose
content hash changed (or that are new) plus every file that can reach a
dirty file through the call graph (its transitive reverse
dependencies).  Dependents must re-run because their *interprocedural*
findings depend on effects inferred across the edge: making a helper
impure must surface a finding in its unchanged caller, and cleaning the
helper must retract it.

The cache is one JSON document:

- per file: content hash, file-rule findings, effect-rule findings;
- the file-level dependency edges extracted from the last call graph;
- the project-rule findings (cheap, recomputed on any partial run).

A fully warm run — every hash matches — returns the cached findings
without parsing a single file, which is where the ≥5× cold/warm speedup
the tests assert comes from.  Anything suspicious (missing file, schema
drift, different rule selection) degrades to a full cold run; the cache
is an optimization, never a source of truth.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.analysis.engine import (
    AnalysisResult,
    all_rules,
    collect_files,
    execute_analysis,
    merge_findings,
)
from repro.analysis.findings import Finding

DEFAULT_CACHE_DIR = ".repro-lint-cache"
CACHE_FILE = "cache.json"
CACHE_VERSION = 1

Stats = Dict[str, object]


def _hash_file(path: Path) -> str:
    return hashlib.sha256(path.read_bytes()).hexdigest()


def _rule_signature(select: Optional[Sequence[str]]) -> List[str]:
    ids = [rule.rule_id for rule in all_rules()]
    if select is not None:
        chosen = set(select)
        ids = [rule_id for rule_id in ids if rule_id in chosen]
    return ids


def _cache_path(cache_dir: str) -> Path:
    return Path(cache_dir) / CACHE_FILE


def load_cache(cache_dir: str) -> Optional[Dict[str, object]]:
    path = _cache_path(cache_dir)
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None
    if not isinstance(payload, dict):
        return None
    if payload.get("version") != CACHE_VERSION:
        return None
    return payload


def _dump_findings(findings: Sequence[Finding]) -> List[Dict[str, object]]:
    return [finding.as_dict() for finding in findings]


def _load_findings(raw: object) -> List[Finding]:
    if not isinstance(raw, list):
        return []
    return [Finding.from_dict(entry) for entry in raw]


def _write_cache(cache_dir: str, payload: Dict[str, object]) -> None:
    directory = Path(cache_dir)
    try:
        directory.mkdir(parents=True, exist_ok=True)
        _cache_path(cache_dir).write_text(
            json.dumps(payload, indent=1, sort_keys=True), encoding="utf-8"
        )
    except OSError:
        # An unwritable cache never fails the lint run.
        return


def _payload(
    rules_signature: List[str],
    hashes: Dict[str, str],
    file_findings: Dict[str, List[Finding]],
    effect_findings: Dict[str, List[Finding]],
    project_findings: Sequence[Finding],
    deps: Dict[str, List[str]],
) -> Dict[str, object]:
    return {
        "version": CACHE_VERSION,
        "rules": rules_signature,
        "files": {
            display: {
                "hash": hashes[display],
                "file": _dump_findings(file_findings.get(display, [])),
                "effects": _dump_findings(effect_findings.get(display, [])),
            }
            for display in hashes
        },
        "project": _dump_findings(project_findings),
        "deps": deps,
    }


def store_result(
    result: AnalysisResult,
    *,
    cache_dir: str = DEFAULT_CACHE_DIR,
    select: Optional[Sequence[str]] = None,
) -> None:
    """Persist a *full* (unlimited) analysis result as the new cache."""
    hashes: Dict[str, str] = {}
    for display in result.file_findings:
        try:
            hashes[display] = _hash_file(Path(display))
        except OSError:
            return  # a vanished file: skip caching this run entirely
    _write_cache(
        cache_dir,
        _payload(
            _rule_signature(select),
            hashes,
            result.file_findings,
            result.effect_findings,
            result.project_findings,
            result.file_deps,
        ),
    )


def _reverse_closure(
    seeds: Set[str], deps: Dict[str, List[str]]
) -> Set[str]:
    """Seeds plus everything that (transitively) depends on a seed."""
    reverse: Dict[str, Set[str]] = {}
    for caller, callees in deps.items():
        for callee in callees:
            reverse.setdefault(callee, set()).add(caller)
    dirty = set(seeds)
    frontier = list(seeds)
    while frontier:
        current = frontier.pop()
        for dependent in reverse.get(current, ()):
            if dependent not in dirty:
                dirty.add(dependent)
                frontier.append(dependent)
    return dirty


def incremental_analysis(
    paths: Sequence[str],
    *,
    cache_dir: str = DEFAULT_CACHE_DIR,
    select: Optional[FrozenSet[str]] = None,
    jobs: int = 1,
) -> Tuple[List[Finding], Stats]:
    """The ``--changed`` pipeline: reuse, re-analyze, re-cache.

    Returns ``(findings, stats)`` where ``stats`` records whether the
    run was a full cache hit and which files were re-analyzed.
    """
    entries = collect_files(paths)
    hashes = {display: _hash_file(path) for path, display in entries}
    signature = _rule_signature(sorted(select) if select else None)
    cached = load_cache(cache_dir)
    cached_files: Dict[str, Dict[str, object]] = {}
    if cached is not None and cached.get("rules") == signature:
        raw_files = cached.get("files")
        if isinstance(raw_files, dict):
            cached_files = raw_files

    if cached_files and set(cached_files) == set(hashes) and all(
        cached_files[display].get("hash") == digest
        for display, digest in hashes.items()
    ):
        findings = merge_findings(
            {d: _load_findings(entry.get("file")) for d, entry in cached_files.items()},
            {d: _load_findings(entry.get("effects")) for d, entry in cached_files.items()},
            _load_findings(cached.get("project") if cached else []),
        )
        stats: Stats = {
            "full_hit": True,
            "reanalyzed": [],
            "reused": sorted(hashes),
        }
        return findings, stats

    if not cached_files:
        dirty = set(hashes)
    else:
        changed = {
            display
            for display, digest in hashes.items()
            if display not in cached_files
            or cached_files[display].get("hash") != digest
        }
        removed = set(cached_files) - set(hashes)
        raw_deps = cached.get("deps") if cached else {}
        deps = raw_deps if isinstance(raw_deps, dict) else {}
        dirty = _reverse_closure(changed | removed, deps) & set(hashes)

    result = execute_analysis(
        paths, select=select, jobs=jobs, limit=dirty
    )

    file_findings: Dict[str, List[Finding]] = {}
    effect_findings: Dict[str, List[Finding]] = {}
    for display in hashes:
        if display in dirty or display not in cached_files:
            file_findings[display] = result.file_findings.get(display, [])
            effect_findings[display] = result.effect_findings.get(display, [])
        else:
            entry = cached_files[display]
            file_findings[display] = _load_findings(entry.get("file"))
            effect_findings[display] = _load_findings(entry.get("effects"))

    _write_cache(
        cache_dir,
        _payload(
            signature,
            hashes,
            file_findings,
            effect_findings,
            result.project_findings,
            result.file_deps,
        ),
    )
    findings = merge_findings(
        file_findings, effect_findings, result.project_findings
    )
    stats = {
        "full_hit": False,
        "reanalyzed": sorted(dirty),
        "reused": sorted(set(hashes) - dirty),
    }
    return findings, stats
