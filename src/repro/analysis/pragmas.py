"""Line-level suppression pragmas.

A finding is suppressed when the physical line it points at carries a
pragma comment naming its rule::

    routed.append(QueryRequest(qid, q))  # repro: ignore[RPR001]

Several rules may be listed (``# repro: ignore[RPR001, RPR005]``), and a
bare ``# repro: ignore`` suppresses every rule on that line.  Pragmas are
parsed with :mod:`tokenize` so a pragma-shaped substring inside a string
literal never counts.
"""

from __future__ import annotations

import io
import re
import tokenize
from typing import Dict, FrozenSet, Optional

#: The pragma grammar: ``repro: ignore`` with an optional rule list.
_PRAGMA = re.compile(r"#\s*repro:\s*ignore(?:\[(?P<rules>[A-Z0-9,\s]*)\])?")

#: Sentinel rule set meaning "every rule".
ALL_RULES: FrozenSet[str] = frozenset({"*"})


def collect_pragmas(source: str) -> Dict[int, FrozenSet[str]]:
    """Map line number -> suppressed rule ids for one file's source.

    Unparseable files yield no pragmas (the engine reports the syntax
    error separately, and there is nothing to suppress in a file no rule
    can visit).
    """
    pragmas: Dict[int, FrozenSet[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            rules = _parse(token.string)
            if rules is not None:
                pragmas[token.start[0]] = rules
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return {}
    return pragmas


def _parse(comment: str) -> Optional[FrozenSet[str]]:
    match = _PRAGMA.search(comment)
    if match is None:
        return None
    listed = match.group("rules")
    if listed is None:
        return ALL_RULES
    rules = frozenset(part.strip() for part in listed.split(",") if part.strip())
    # ``# repro: ignore[]`` names no rule: treat as suppress-all, like
    # the bare form, rather than a silent no-op.
    return rules or ALL_RULES


def suppressed(pragmas: Dict[int, FrozenSet[str]], line: int, rule_id: str) -> bool:
    """Whether ``rule_id`` is suppressed on ``line``."""
    rules = pragmas.get(line)
    if rules is None:
        return False
    return rules is ALL_RULES or "*" in rules or rule_id in rules
