"""Project-wide symbol table: every module, class, function, and import.

The per-file rules in :mod:`repro.analysis.rules` see one AST at a time,
which is exactly why they miss transitive violations — a planner calling
a helper that calls ``time.time()`` looks pure from inside the planner's
file.  :class:`Project` is the first layer of the whole-program engine:
one pass over every analyzed :class:`~repro.analysis.engine.FileContext`
builds a symbol table that maps dotted names to their defining nodes, so
:mod:`repro.analysis.callgraph` can resolve call sites across files and
:mod:`repro.analysis.effects` can propagate effect facts through them.

Resolution is deliberately static and conservative: module-level
functions, classes and their methods (including methods inherited from
project-local base classes), ``import`` / ``from … import`` aliases
(absolute and relative, with bounded re-export chasing), ``self.x``
attribute types inferred from ``self.x = ClassName(...)`` assignments,
and local variables bound by ``v = ClassName(...)``.  Anything dynamic —
``getattr``, callables passed as values, decorators that swap bodies —
stays unresolved and is recorded as ⊤ by the call graph.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Union

from repro.analysis.engine import FileContext, repro_module

#: How many re-export hops ``resolve_qualified`` will chase before
#: giving up (``repro/__init__`` re-exporting ``repro.messaging`` names
#: that re-export from ``repro.messaging.channel`` is two hops).
_REEXPORT_DEPTH = 4

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, None for anything else."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = dotted_name(node.value)
        if base is not None:
            return f"{base}.{node.attr}"
    return None


def receiver_root(node: ast.AST) -> Optional[str]:
    """The root Name of an attribute/subscript chain (``self`` in
    ``self.uqs[qid].rows``), or None when the chain starts elsewhere."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def module_name(path: str) -> str:
    """Dotted module name for a display path.

    Files inside a ``repro`` package directory get their real dotted
    name (``src/repro/warehouse/planner.py`` → ``repro.warehouse.
    planner``); anything else gets a stable path-derived name so test
    and tool files can still participate in resolution.
    """
    parts = repro_module(path)
    if parts is not None:
        return ".".join(parts)
    trimmed = path[: -len(".py")] if path.endswith(".py") else path
    return trimmed.strip("/").replace("/", ".")


@dataclass
class FunctionInfo:
    """One module-level function or class method."""

    qualname: str
    name: str
    module: str
    path: str
    node: FunctionNode
    class_name: Optional[str] = None

    @property
    def is_async(self) -> bool:
        return isinstance(self.node, ast.AsyncFunctionDef)

    @property
    def display(self) -> str:
        """``Class.method`` or plain ``function`` for messages."""
        if self.class_name:
            return f"{self.class_name}.{self.name}"
        return self.name


@dataclass
class ClassInfo:
    """One module-level class and its directly defined methods."""

    qualname: str
    name: str
    module: str
    path: str
    node: ast.ClassDef
    bases: List[str] = field(default_factory=list)
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)
    #: ``self.<attr>`` → class qualname, inferred from
    #: ``self.attr = ClassName(...)`` assignments in any method.
    attr_types: Dict[str, str] = field(default_factory=dict)


@dataclass
class ModuleInfo:
    """One analyzed file: its symbols and import aliases."""

    name: str
    path: str
    imports: Dict[str, str] = field(default_factory=dict)
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)


Symbol = Union[FunctionInfo, ClassInfo, ModuleInfo]


class Project:
    """Symbol table spanning every analyzed file in one invocation."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        self.by_path: Dict[str, ModuleInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        self._node_index: Dict[int, FunctionInfo] = {}

    @classmethod
    def build(cls, contexts: Sequence[FileContext]) -> "Project":
        project = cls()
        for context in contexts:
            project._add_module(context)
        for klass in project.classes.values():
            project._infer_attr_types(klass)
        return project

    # ----------------------------------------------------------------- #
    # Lookups
    # ----------------------------------------------------------------- #

    def function_at(self, node: ast.AST) -> Optional[FunctionInfo]:
        """The FunctionInfo registered for this exact def node, if any."""
        return self._node_index.get(id(node))

    def class_of(self, function: FunctionInfo) -> Optional[ClassInfo]:
        if function.class_name is None:
            return None
        return self.classes.get(f"{function.module}.{function.class_name}")

    def method_on(
        self, klass: ClassInfo, name: str, _seen: Optional[Set[str]] = None
    ) -> Optional[FunctionInfo]:
        """Resolve ``name`` on ``klass`` or its project-local bases."""
        seen = _seen if _seen is not None else set()
        if klass.qualname in seen:
            return None
        seen.add(klass.qualname)
        method = klass.methods.get(name)
        if method is not None:
            return method
        module = self.modules.get(klass.module)
        for base in klass.bases:
            resolved = self.resolve_name(module, base) if module else None
            if isinstance(resolved, ClassInfo):
                inherited = self.method_on(resolved, name, seen)
                if inherited is not None:
                    return inherited
        return None

    def resolve_name(
        self, module: Optional[ModuleInfo], name: str
    ) -> Optional[Symbol]:
        """Resolve a dotted name as seen from inside ``module``."""
        if module is None:
            return None
        parts = name.split(".")
        head = parts[0]
        if len(parts) == 1:
            if head in module.functions:
                return module.functions[head]
            if head in module.classes:
                return module.classes[head]
        if len(parts) == 2 and head in module.classes:
            return self.method_on(module.classes[head], parts[1])
        if head in module.imports:
            target = ".".join([module.imports[head], *parts[1:]])
            return self.resolve_qualified(target)
        return None

    def resolve_qualified(
        self, full: str, _depth: int = 0
    ) -> Optional[Symbol]:
        """Resolve a fully-qualified dotted name, chasing re-exports."""
        if _depth > _REEXPORT_DEPTH:
            return None
        parts = full.split(".")
        for cut in range(len(parts), 0, -1):
            module = self.modules.get(".".join(parts[:cut]))
            if module is None:
                continue
            rest = parts[cut:]
            if not rest:
                return module
            if len(rest) == 1:
                leaf = rest[0]
                if leaf in module.functions:
                    return module.functions[leaf]
                if leaf in module.classes:
                    return module.classes[leaf]
                if leaf in module.imports:
                    return self.resolve_qualified(
                        module.imports[leaf], _depth + 1
                    )
                return None
            if len(rest) == 2:
                klass = module.classes.get(rest[0])
                if klass is not None:
                    return self.method_on(klass, rest[1])
                if rest[0] in module.imports:
                    return self.resolve_qualified(
                        ".".join([module.imports[rest[0]], rest[1]]),
                        _depth + 1,
                    )
            return None
        return None

    def constructor_of(self, klass: ClassInfo) -> Optional[FunctionInfo]:
        """``__init__`` for a class construction call, bases included."""
        return self.method_on(klass, "__init__")

    # ----------------------------------------------------------------- #
    # Building
    # ----------------------------------------------------------------- #

    def _add_module(self, context: FileContext) -> None:
        name = module_name(context.path)
        if name in self.modules:
            # Two files mapping to one dotted name (a fixture shadowing
            # a real module): keep both, the later one under a unique
            # path-derived key so its symbols still resolve internally.
            name = context.path[: -len(".py")].strip("/").replace("/", ".")
        info = ModuleInfo(name=name, path=context.path)
        self.modules[name] = info
        self.by_path[context.path] = info
        self._collect_imports(info, context.tree)
        for stmt in context.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(info, stmt, class_name=None)
            elif isinstance(stmt, ast.ClassDef):
                self._add_class(info, stmt)

    def _collect_imports(self, info: ModuleInfo, tree: ast.Module) -> None:
        # Function-level imports participate too (several modules import
        # lazily to break cycles); folding them into the module map is a
        # harmless over-approximation for a resolver this conservative.
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname is not None:
                        info.imports[alias.asname] = alias.name
                    else:
                        root = alias.name.split(".")[0]
                        info.imports.setdefault(root, root)
            elif isinstance(node, ast.ImportFrom):
                base = self._import_base(info, node)
                if base is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    info.imports[local] = f"{base}.{alias.name}"

    @staticmethod
    def _import_base(
        info: ModuleInfo, node: ast.ImportFrom
    ) -> Optional[str]:
        if node.level == 0:
            return node.module
        package = info.name.split(".")[: -node.level]
        if not package:
            return node.module
        if node.module:
            return ".".join([*package, node.module])
        return ".".join(package)

    def _add_function(
        self,
        info: ModuleInfo,
        node: FunctionNode,
        class_name: Optional[str],
    ) -> FunctionInfo:
        scope = f"{info.name}.{class_name}" if class_name else info.name
        function = FunctionInfo(
            qualname=f"{scope}.{node.name}",
            name=node.name,
            module=info.name,
            path=info.path,
            node=node,
            class_name=class_name,
        )
        if class_name is None:
            info.functions[node.name] = function
        self.functions[function.qualname] = function
        self._node_index[id(node)] = function
        return function

    def _add_class(self, info: ModuleInfo, node: ast.ClassDef) -> None:
        klass = ClassInfo(
            qualname=f"{info.name}.{node.name}",
            name=node.name,
            module=info.name,
            path=info.path,
            node=node,
            bases=[
                base
                for base in (dotted_name(b) for b in node.bases)
                if base is not None
            ],
        )
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                klass.methods[stmt.name] = self._add_function(
                    info, stmt, class_name=node.name
                )
        info.classes[node.name] = klass
        self.classes[klass.qualname] = klass

    def _infer_attr_types(self, klass: ClassInfo) -> None:
        module = self.modules.get(klass.module)
        for method in klass.methods.values():
            for node in ast.walk(method.node):
                if not isinstance(node, ast.Assign):
                    continue
                if not isinstance(node.value, ast.Call):
                    continue
                callee = dotted_name(node.value.func)
                if callee is None:
                    continue
                resolved = self.resolve_name(module, callee)
                if not isinstance(resolved, ClassInfo):
                    continue
                for target in node.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        klass.attr_types[target.attr] = resolved.qualname


def local_instance_types(
    project: Project, module: Optional[ModuleInfo], node: FunctionNode
) -> Dict[str, str]:
    """``v`` → class qualname for ``v = ClassName(...)`` bindings."""
    types: Dict[str, str] = {}
    for stmt in ast.walk(node):
        if not isinstance(stmt, ast.Assign) or not isinstance(
            stmt.value, ast.Call
        ):
            continue
        callee = dotted_name(stmt.value.func)
        if callee is None:
            continue
        resolved = project.resolve_name(module, callee)
        if not isinstance(resolved, ClassInfo):
            continue
        for target in stmt.targets:
            if isinstance(target, ast.Name):
                types[target.id] = resolved.qualname
    return types
