"""What a rule reports: one :class:`Finding` per violation."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Union

#: Severities.  ``error`` findings fail the build; ``warning`` findings
#: are reported but do not affect the exit status.
ERROR = "error"
WARNING = "warning"

_SEVERITIES = (ERROR, WARNING)


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one location.

    Ordered by (path, line, col, rule_id) so reports are stable across
    runs and dict/set iteration orders.
    """

    path: str
    line: int
    col: int
    rule_id: str
    message: str = field(compare=False)
    severity: str = field(default=ERROR, compare=False)

    def __post_init__(self) -> None:
        if self.severity not in _SEVERITIES:
            raise ValueError(
                f"severity must be one of {_SEVERITIES}, got {self.severity!r}"
            )

    def as_dict(self) -> Dict[str, Union[str, int]]:
        """JSON-ready form (used by the ``--format json`` reporter)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "severity": self.severity,
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, raw: object) -> "Finding":
        """Inverse of :meth:`as_dict` (used by the finding cache)."""
        if not isinstance(raw, dict):
            raise ValueError(f"expected a finding dict, got {type(raw)!r}")
        return cls(
            path=str(raw["path"]),
            line=int(raw["line"]),
            col=int(raw["col"]),
            rule_id=str(raw["rule"]),
            message=str(raw["message"]),
            severity=str(raw["severity"]),
        )

    def render(self) -> str:
        """The one-line text form: ``path:line:col: RPR001 error: ...``."""
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule_id} {self.severity}: {self.message}"
        )
