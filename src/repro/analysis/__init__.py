"""Static invariant checking for the repro codebase.

PR 4 collapsed every maintenance algorithm onto one routed protocol and
one execution kernel; what keeps that kernel correct is now a handful of
*conventions* — routed ``(destination, QueryRequest)`` returns, seeded
RNGs only, ``obs is not None`` guards, no blocking calls inside actor
coroutines, all I/O through :mod:`repro.kernel.dispatch`.  The paper's
central observation is that decoupled components violate invariants
silently (Section 2, Examples 2-3); this package is the machine-checked
version of our conventions, so refactors cannot silently re-introduce
anomaly-shaped bugs.

Entry points
------------
- ``python -m repro.analysis <paths> [--format text|json]`` for CI;
- ``python -m repro lint <paths>`` as the CLI frontend;
- :func:`run_analysis` / :func:`lint_paths` programmatically.

Rules are registered in :mod:`repro.analysis.rules`; each carries a
stable ``RPR###`` id.  A finding on a specific line can be suppressed
with a ``# repro: ignore[RPR###]`` pragma on that line (see
:mod:`repro.analysis.pragmas`) — documented in ``docs/ANALYSIS.md``.
"""

from repro.analysis.engine import (
    FileContext,
    Rule,
    all_rules,
    iter_python_files,
    lint_paths,
    register,
    run_analysis,
)
from repro.analysis.findings import ERROR, WARNING, Finding
from repro.analysis.report import render_json, render_text

# Importing the rule modules registers every built-in rule.
from repro.analysis import rules as _rules  # noqa: F401

__all__ = [
    "ERROR",
    "WARNING",
    "FileContext",
    "Finding",
    "Rule",
    "all_rules",
    "iter_python_files",
    "lint_paths",
    "register",
    "render_json",
    "render_text",
    "run_analysis",
]
