"""Reporters: render a finding list for humans (text) or CI (JSON)."""

from __future__ import annotations

import json
from typing import Dict, Sequence

from repro.analysis.findings import ERROR, Finding


def render_text(findings: Sequence[Finding]) -> str:
    """One line per finding plus a summary line (empty-input friendly)."""
    lines = [finding.render() for finding in findings]
    errors = sum(1 for finding in findings if finding.severity == ERROR)
    warnings = len(findings) - errors
    if findings:
        lines.append(f"{errors} error(s), {warnings} warning(s)")
    else:
        lines.append("no findings")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding]) -> str:
    """A JSON document: per-finding records plus rule/severity totals."""
    by_rule: Dict[str, int] = {}
    for finding in findings:
        by_rule[finding.rule_id] = by_rule.get(finding.rule_id, 0) + 1
    payload = {
        "findings": [finding.as_dict() for finding in findings],
        "summary": {
            "total": len(findings),
            "errors": sum(1 for f in findings if f.severity == ERROR),
            "warnings": sum(1 for f in findings if f.severity != ERROR),
            "by_rule": dict(sorted(by_rule.items())),
        },
    }
    return json.dumps(payload, indent=2, sort_keys=False)
