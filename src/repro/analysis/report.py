"""Reporters: text (humans), JSON (CI), SARIF 2.1.0 (code scanning)."""

from __future__ import annotations

import json
from typing import Dict, List, Sequence

from repro.analysis.findings import ERROR, Finding

#: SARIF schema pin: GitHub code scanning ingests exactly this version.
_SARIF_VERSION = "2.1.0"
_SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"


def render_text(findings: Sequence[Finding]) -> str:
    """One line per finding plus a summary line (empty-input friendly)."""
    lines = [finding.render() for finding in findings]
    errors = sum(1 for finding in findings if finding.severity == ERROR)
    warnings = len(findings) - errors
    if findings:
        lines.append(f"{errors} error(s), {warnings} warning(s)")
    else:
        lines.append("no findings")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding]) -> str:
    """A JSON document: per-finding records plus rule/severity totals."""
    by_rule: Dict[str, int] = {}
    for finding in findings:
        by_rule[finding.rule_id] = by_rule.get(finding.rule_id, 0) + 1
    payload = {
        "findings": [finding.as_dict() for finding in findings],
        "summary": {
            "total": len(findings),
            "errors": sum(1 for f in findings if f.severity == ERROR),
            "warnings": sum(1 for f in findings if f.severity != ERROR),
            "by_rule": dict(sorted(by_rule.items())),
        },
    }
    return json.dumps(payload, indent=2, sort_keys=False)


def render_sarif(findings: Sequence[Finding]) -> str:
    """A SARIF 2.1.0 log: the full rule catalog plus one result per
    finding, shaped for GitHub code-scanning upload."""
    from repro import __version__
    from repro.analysis.engine import PARSE_ERROR, all_rules

    rules_meta: List[Dict[str, object]] = [
        {
            "id": PARSE_ERROR,
            "name": "ParseError",
            "shortDescription": {"text": "file could not be parsed"},
        }
    ]
    for rule in all_rules():
        rules_meta.append(
            {
                "id": rule.rule_id,
                "name": type(rule).__name__,
                "shortDescription": {"text": rule.title},
                "defaultConfiguration": {
                    "level": "error" if rule.severity == ERROR else "warning"
                },
            }
        )
    indices = {meta["id"]: index for index, meta in enumerate(rules_meta)}
    results: List[Dict[str, object]] = []
    for finding in findings:
        result: Dict[str, object] = {
            "ruleId": finding.rule_id,
            "level": "error" if finding.severity == ERROR else "warning",
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": finding.path},
                        "region": {
                            "startLine": finding.line,
                            "startColumn": finding.col,
                        },
                    }
                }
            ],
        }
        index = indices.get(finding.rule_id)
        if index is not None:
            result["ruleIndex"] = index
        results.append(result)
    payload = {
        "version": _SARIF_VERSION,
        "$schema": _SARIF_SCHEMA,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "version": __version__,
                        "informationUri": "docs/ANALYSIS.md",
                        "rules": rules_meta,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(payload, indent=2)
