"""RPR001 — routed-protocol returns.

Every kernel ships what ``on_update`` / ``on_answer`` / ``on_refresh``
return over per-source channels, so those overrides must return
``(destination, QueryRequest)`` pairs — a bare ``QueryRequest`` in the
routed position unpacks wrong deep inside the kernel, far from the
algorithm that caused it (``repro.kernel.dispatch`` now rejects it at
runtime; this rule rejects it at lint time).  The inverse mistake is
flagged too: the unrouted ``handle_*`` hooks return plain request lists
— a ``(destination, request)`` tuple there gets double-wrapped by the
base class's owner routing.  Finally, a class that overrides a routed
method while also defining the matching ``handle_*`` hook (without
delegating to it) is carrying dead code no kernel will ever call —
exactly the silent-shadowing hazard the unified protocol was built to
retire.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional

from repro.analysis.engine import FileContext, Rule, register
from repro.analysis.findings import Finding
from repro.analysis.rules.common import call_name, dotted_name

ROUTED = ("on_update", "on_answer", "on_refresh")
UNROUTED = ("handle_update", "handle_answer", "handle_refresh")
_PAIRED = dict(zip(ROUTED, UNROUTED))

#: Base-class names that mark a warehouse-algorithm class.
_ALGORITHM_BASES = ("WarehouseAlgorithm",)


def _is_algorithm_class(node: ast.ClassDef) -> bool:
    for base in node.bases:
        name = dotted_name(base)
        if name is not None and name.split(".")[-1] in _ALGORITHM_BASES:
            return True
    defined = {
        child.name
        for child in node.body
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
    }
    return bool(defined.intersection(ROUTED + UNROUTED))


def _is_bare_request(node: ast.AST) -> bool:
    """A ``QueryRequest(...)`` / ``self._make_request(...)`` expression."""
    if not isinstance(node, ast.Call):
        return False
    name = call_name(node)
    if name is None:
        return False
    leaf = name.split(".")[-1]
    return leaf == "QueryRequest" or leaf == "_make_request"


def _list_elements(node: Optional[ast.AST]) -> List[ast.AST]:
    if isinstance(node, ast.List):
        return list(node.elts)
    if isinstance(node, ast.ListComp):
        return [node.elt]
    return []


@register
class RoutedProtocolRule(Rule):
    rule_id = "RPR001"
    title = "on_* overrides must return routed (destination, request) pairs"

    def check(self, context: FileContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if isinstance(node, ast.ClassDef) and _is_algorithm_class(node):
                yield from self._check_class(context, node)

    def _check_class(
        self, context: FileContext, node: ast.ClassDef
    ) -> Iterator[Finding]:
        methods: Dict[str, ast.AST] = {
            child.name: child
            for child in node.body
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        for routed_name, hook_name in _PAIRED.items():
            routed_def = methods.get(routed_name)
            hook_def = methods.get(hook_name)
            if routed_def is not None:
                yield from self._check_routed(context, node, routed_def)
                if hook_def is not None and not _references(routed_def, hook_name):
                    yield context.finding(
                        hook_def,
                        self.rule_id,
                        f"{node.name}.{hook_name} is shadowed: the class "
                        f"overrides the routed {routed_name} without "
                        f"delegating, so no kernel ever calls this hook",
                    )
            if hook_def is not None:
                yield from self._check_unrouted(context, node, hook_def)

    def _check_routed(
        self, context: FileContext, cls: ast.ClassDef, func: ast.AST
    ) -> Iterator[Finding]:
        for node in ast.walk(func):
            if isinstance(node, ast.Return):
                for element in _list_elements(node.value):
                    if _is_bare_request(element):
                        yield context.finding(
                            element,
                            self.rule_id,
                            f"{cls.name}.{func.name} returns a bare "
                            f"QueryRequest; routed methods must return "
                            f"(destination, request) pairs "
                            f"(destination=None routes by owner)",
                        )
            elif isinstance(node, ast.Call):
                attr = node.func
                if (
                    isinstance(attr, ast.Attribute)
                    and attr.attr in ("append", "extend")
                ):
                    candidates = list(node.args)
                    if attr.attr == "extend":
                        candidates = [
                            e for arg in node.args for e in _list_elements(arg)
                        ]
                    for arg in candidates:
                        if _is_bare_request(arg):
                            yield context.finding(
                                arg,
                                self.rule_id,
                                f"{cls.name}.{func.name} collects a bare "
                                f"QueryRequest into its routed result; wrap "
                                f"it as (destination, request)",
                            )

    def _check_unrouted(
        self, context: FileContext, cls: ast.ClassDef, func: ast.AST
    ) -> Iterator[Finding]:
        for node in ast.walk(func):
            if isinstance(node, ast.Return):
                for element in _list_elements(node.value):
                    if isinstance(element, ast.Tuple):
                        yield context.finding(
                            element,
                            self.rule_id,
                            f"{cls.name}.{func.name} returns a routed pair; "
                            f"unrouted handle_* hooks return plain request "
                            f"lists (the base class routes by owner)",
                        )


def _references(tree: ast.AST, name: str) -> bool:
    for node in ast.walk(tree):
        if isinstance(node, ast.Attribute) and node.attr == name:
            return True
        if isinstance(node, ast.Name) and node.id == name:
            return True
    return False
