"""Built-in rules; importing this package registers all of them.

===========  ==========================================================
RPR001       routed-protocol: ``on_*`` overrides return routed pairs
RPR002       determinism: no wall-clock / unseeded randomness in repro
RPR003       async-safety: no blocking calls inside actor coroutines
RPR004       dispatch-bypass: algorithms never touch channels directly
RPR005       obs-guard: observability hooks dominated by None checks
RPR006       registry-completeness: every algorithm honors codec v3
RPR007       partitioner-purity: ``shard_of`` is pure in the key
RPR008       serving-readonly: the serving tier never writes state
RPR009       hot-path: no per-tuple wrappers in relational operator loops
RPR010       planner-purity: shared-compensation planning is deterministic
RPR011       await-atomicity: no yield between mutation and WAL append
RPR012       exception-safety: handlers validate before mutating state
===========  ==========================================================

RPR004, RPR007, and RPR010 are *effect rules* as well as file rules:
besides their syntactic pass they consult the whole-program effect
inference (:mod:`repro.analysis.effects`) and flag transitive
violations the per-file pass cannot see.  RPR011 and RPR012 are pure
effect rules.  Rationale and per-rule examples live in
``docs/ANALYSIS.md``.
"""

from repro.analysis.rules import (  # noqa: F401  (import = register)
    async_safety,
    await_atomicity,
    determinism,
    dispatch_bypass,
    exception_safety,
    hot_path,
    obs_guard,
    planner_purity,
    purity,
    registry_complete,
    routed,
    serving_readonly,
)
