"""Built-in rules; importing this package registers all of them.

===========  ==========================================================
RPR001       routed-protocol: ``on_*`` overrides return routed pairs
RPR002       determinism: no wall-clock / unseeded randomness in repro
RPR003       async-safety: no blocking calls inside actor coroutines
RPR004       dispatch-bypass: algorithms never touch channels directly
RPR005       obs-guard: observability hooks dominated by None checks
RPR006       registry-completeness: every algorithm honors codec v3
RPR007       partitioner-purity: ``shard_of`` is pure in the key
RPR008       serving-readonly: the serving tier never writes state
RPR009       hot-path: no per-tuple wrappers in relational operator loops
RPR010       planner-purity: shared-compensation planning is deterministic
===========  ==========================================================

Rationale and per-rule examples live in ``docs/ANALYSIS.md``.
"""

from repro.analysis.rules import (  # noqa: F401  (import = register)
    async_safety,
    determinism,
    dispatch_bypass,
    hot_path,
    obs_guard,
    planner_purity,
    purity,
    registry_complete,
    routed,
    serving_readonly,
)
