"""RPR006 — registry-completeness: every algorithm honors codec v3.

WAL recovery rebuilds any algorithm by name: ``durable_config()`` feeds
:func:`repro.core.registry.create_algorithm`, ``pending_state()`` is
what the snapshot codec persists, and ``gauges()`` is what the
observability layer polls after every atomic event.  A registry entry
whose hooks take required arguments (or are missing, or shadowed by
non-callables) only fails on the first crash-recovery or instrumented
run that touches it — long after the refactor that broke it merged.

This is an import-and-inspect *project rule*: it imports the live
registry once per invocation and verifies, for every entry, that

- the class's ``name`` matches its registry key (recovery looks it up
  by the persisted name);
- ``pending_state`` / ``durable_config`` / ``gauges`` exist, are
  callable, and take no required parameters beyond ``self`` (the codec
  and the metrics poller call them bare);
- ``restore_pending_state`` accepts exactly one required argument (the
  decoded state dict);
- ``multi_source`` is a plain bool (kernels branch on it).

Findings anchor at the entry's line in ``core/registry.py`` when that
file is part of the analyzed set.
"""

from __future__ import annotations

import inspect
from typing import Iterator, Optional, Sequence, Tuple

from repro.analysis.engine import FileContext, Rule, register
from repro.analysis.findings import Finding
from repro.analysis.rules.common import module_of

_ZERO_ARG_HOOKS = ("pending_state", "durable_config", "gauges")


def _required_params(func: object) -> Optional[int]:
    """Required parameters beyond ``self``; None when uninspectable."""
    try:
        signature = inspect.signature(func)  # type: ignore[arg-type]
    except (TypeError, ValueError):
        return None
    required = 0
    for index, parameter in enumerate(signature.parameters.values()):
        if index == 0 and parameter.name == "self":
            continue
        if parameter.kind in (
            inspect.Parameter.VAR_POSITIONAL,
            inspect.Parameter.VAR_KEYWORD,
        ):
            continue
        if parameter.default is inspect.Parameter.empty:
            required += 1
    return required


@register
class RegistryCompletenessRule(Rule):
    rule_id = "RPR006"
    title = "every registry entry implements the codec-v3 hook surface"
    project_rule = True

    def check_project(
        self, contexts: Sequence[FileContext]
    ) -> Iterator[Finding]:
        registry_context = next(
            (
                context
                for context in contexts
                if module_of(context.path) == ("repro", "core", "registry")
            ),
            None,
        )
        if registry_context is None and not any(
            module_of(context.path)[:1] == ("repro",) for context in contexts
        ):
            return  # the analyzed set does not include the library
        try:
            from repro.core.registry import ALGORITHMS
        except Exception as exc:  # pragma: no cover - import breakage
            yield self._finding(
                registry_context, None, f"cannot import the registry: {exc!r}"
            )
            return
        for name, cls in sorted(ALGORITHMS.items()):
            for message in self._check_entry(name, cls):
                yield self._finding(
                    registry_context, getattr(cls, "__name__", None), message
                )

    def _check_entry(self, name: str, cls: type) -> Iterator[str]:
        label = getattr(cls, "__name__", repr(cls))
        if getattr(cls, "name", None) != name:
            yield (
                f"registry entry {name!r} maps to {label} whose .name is "
                f"{getattr(cls, 'name', None)!r}; recovery rebuilds by the "
                f"persisted name, so they must match"
            )
        if not isinstance(getattr(cls, "multi_source", None), bool):
            yield (
                f"{label}.multi_source must be a plain bool "
                f"(kernels branch on it)"
            )
        for hook in _ZERO_ARG_HOOKS:
            method = getattr(cls, hook, None)
            if method is None or not callable(method):
                yield (
                    f"{label} is missing the codec-v3 hook {hook}(); "
                    f"WAL snapshots and the metrics poller call it bare"
                )
                continue
            required = _required_params(method)
            if required:
                yield (
                    f"{label}.{hook}() takes {required} required "
                    f"argument(s); codec v3 calls it with none"
                )
        restore = getattr(cls, "restore_pending_state", None)
        if restore is None or not callable(restore):
            yield (
                f"{label} is missing restore_pending_state(state); "
                f"recovery cannot rebuild it from a snapshot"
            )
        elif _required_params(restore) != 1:
            yield (
                f"{label}.restore_pending_state must take exactly the "
                f"decoded state dict; recovery passes one argument"
            )

    def _finding(
        self,
        registry_context: Optional[FileContext],
        entry: Optional[str],
        message: str,
    ) -> Finding:
        path, line = "src/repro/core/registry.py", 1
        if registry_context is not None:
            path = registry_context.path
            line = _entry_line(registry_context, entry)
        return Finding(
            path=path,
            line=line,
            col=1,
            rule_id=self.rule_id,
            message=message,
        )


def _entry_line(context: FileContext, class_name: Optional[str]) -> int:
    """Best-effort: the ``ALGORITHMS`` line naming the entry's class."""
    if class_name is not None:
        for index, line in enumerate(context.lines, start=1):
            if f"{class_name}.name:" in line.replace(" ", ""):
                return index
    for index, line in enumerate(context.lines, start=1):
        if "ALGORITHMS" in line:
            return index
    return 1
