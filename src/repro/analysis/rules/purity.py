"""RPR007 — partitioner purity: ``shard_of`` is a pure function of the key.

Sharding correctness leans on one static property: a partitioner maps a
view key to the same shard every time it is asked, in every process.
The plan is computed once per run, but *recovery re-plans from the same
catalog* and must land every view on the shard whose WAL holds its
history, and the conformance suite replays merged shard logs against a
baseline that assumes stable ownership.  A partitioner that consults a
clock, an RNG, process-salted ``hash()``, or its own mutable state
breaks all of that silently — the run still completes, just with views
maintained against the wrong shard's log.

Checked inside any class whose name (or base class) ends with
``Partitioner``, in the body of ``shard_of``:

- no wall-clock or randomness calls (``time.*``, ``datetime.now`` and
  friends, ``random.*`` — *including* seeded RNGs, whose output depends
  on call order, and ``os.urandom``);
- no builtin ``hash()``: Python salts string hashing per process, so the
  same catalog scatters differently on every run (use a content hash
  such as ``zlib.crc32`` over a canonical encoding);
- no assignments to ``self`` attributes (a ``shard_of`` that mutates its
  partitioner is a function of history, not of the key);
- no ``global`` / ``nonlocal`` declarations (captured mutable state).

The file pass above catches direct violations.  The *effect pass*
consults the whole-program inference: a ``shard_of`` that calls a
resolved helper whose inferred effects include a clock, randomness
(builtin ``hash()`` included — it is process-salted), or mutation of
the partitioner's own state is exactly as impure, one hop removed.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator, Optional

from repro.analysis.engine import FileContext, Rule, register
from repro.analysis.findings import Finding
from repro.analysis.rules.common import call_name, dotted_name, in_repro_package

if TYPE_CHECKING:
    from repro.analysis.effects import ProjectAnalysis

_METHOD = "shard_of"

_DATETIME_ATTRS = ("now", "utcnow", "today")


def _is_partitioner(node: ast.ClassDef) -> bool:
    if node.name.endswith("Partitioner"):
        return True
    for base in node.bases:
        name = dotted_name(base)
        if name is not None and name.split(".")[-1].endswith("Partitioner"):
            return True
    return False


def _impurity(name: str) -> Optional[str]:
    """Why a called name is impure, or None when it is fine."""
    parts = name.split(".")
    if name == "hash":
        return "builtin hash() is salted per process, so the same key lands on different shards across runs"
    if parts[0] == "time":
        return "a clock makes placement a function of when it is asked, not of the key"
    if len(parts) >= 2 and parts[-1] in _DATETIME_ATTRS and parts[-2] in (
        "datetime",
        "date",
    ):
        return "a clock makes placement a function of when it is asked, not of the key"
    if parts[0] == "random" or name == "os.urandom":
        return (
            "randomness (even seeded — its output depends on call order) "
            "makes placement unstable across re-planning"
        )
    return None


@register
class PartitionerPurityRule(Rule):
    rule_id = "RPR007"
    title = "Partitioner.shard_of is a deterministic pure function of the key"
    effect_rule = True

    def applies_to(self, path: str) -> bool:
        return in_repro_package(path)

    def check_effects(self, analysis: "ProjectAnalysis") -> Iterator[Finding]:
        from repro.analysis.effects import CLOCK, MUTATES_SELF, RANDOMNESS

        reasons = {
            CLOCK: "reaches a clock",
            RANDOMNESS: "reaches randomness (or process-salted hash())",
            MUTATES_SELF: "mutates the partitioner's own state",
        }
        for context in self.effect_contexts(analysis):
            for function in analysis.functions_in(context):
                if function.name != _METHOD or function.class_name is None:
                    continue
                klass = analysis.project.class_of(function)
                if klass is None or not _is_partitioner(klass.node):
                    continue
                for site in analysis.sites_of(function):
                    if site.target is None:
                        continue
                    hit = analysis.call_effects(site) & set(reasons)
                    for effect in sorted(hit):
                        chain = analysis.describe(site.target, effect)
                        yield context.finding(
                            site.node,
                            self.rule_id,
                            f"{function.display} calls {site.raw}(), which "
                            f"transitively {reasons[effect]} ({chain}); "
                            f"recovery re-plans from the same catalog and "
                            f"must reproduce the identical assignment",
                        )
                        break

    def check(self, context: FileContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if isinstance(node, ast.ClassDef) and _is_partitioner(node):
                yield from self._check_class(context, node)

    def _check_class(
        self, context: FileContext, klass: ast.ClassDef
    ) -> Iterator[Finding]:
        for child in klass.body:
            if (
                isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
                and child.name == _METHOD
            ):
                yield from self._check_shard_of(context, klass, child)

    def _check_shard_of(
        self,
        context: FileContext,
        klass: ast.ClassDef,
        func: "ast.FunctionDef | ast.AsyncFunctionDef",
    ) -> Iterator[Finding]:
        where = f"{klass.name}.{func.name}"
        for node in ast.walk(func):
            if isinstance(node, ast.Call):
                name = call_name(node)
                if name is None:
                    continue
                reason = _impurity(name)
                if reason is not None:
                    yield context.finding(
                        node,
                        self.rule_id,
                        f"{where} calls {name}(): {reason}; recovery "
                        f"re-plans from the same catalog and must reproduce "
                        f"the identical assignment",
                    )
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        yield context.finding(
                            node,
                            self.rule_id,
                            f"{where} assigns self.{target.attr}: a "
                            f"partitioner that mutates its own state places "
                            f"keys by history, not by value",
                        )
            elif isinstance(node, (ast.Global, ast.Nonlocal)):
                kind = "global" if isinstance(node, ast.Global) else "nonlocal"
                yield context.finding(
                    node,
                    self.rule_id,
                    f"{where} declares {kind} {', '.join(node.names)}: "
                    f"captured mutable state makes placement call-order "
                    f"dependent",
                )
