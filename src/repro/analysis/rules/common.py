"""Small AST helpers shared by the rule implementations."""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Tuple

from repro.analysis.engine import repro_module


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, None for anything else."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = dotted_name(node.value)
        if base is not None:
            return f"{base}.{node.attr}"
    return None


def call_name(node: ast.Call) -> Optional[str]:
    """The dotted callee of a call, e.g. ``time.sleep`` or ``open``."""
    return dotted_name(node.func)


def iter_calls(tree: ast.AST) -> Iterator[ast.Call]:
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            yield node


def iter_functions(
    tree: ast.AST,
) -> Iterator[Tuple[ast.AST, "ast.FunctionDef | ast.AsyncFunctionDef"]]:
    """Every (parent, function) pair in the tree, classes included."""
    for parent in ast.walk(tree):
        for child in ast.iter_child_nodes(parent):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield parent, child


def walk_body(node: ast.AST) -> Iterator[ast.AST]:
    """Walk a function body without descending into nested defs.

    A ``raise`` or mutation inside a nested ``def``/``lambda``/class
    body does not execute inline, so the ordering-sensitive rules
    (RPR011/RPR012) must not attribute it to the enclosing method.
    """
    stack = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        if isinstance(
            child,
            (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda),
        ):
            continue
        yield child
        stack.extend(ast.iter_child_nodes(child))


def in_repro_package(path: str) -> bool:
    """Whether the file is part of the installed ``repro`` package."""
    return repro_module(path) is not None


def module_of(path: str) -> Tuple[str, ...]:
    """The dotted-module parts, or an empty tuple outside the package."""
    return repro_module(path) or ()


def is_cli_module(path: str) -> bool:
    """The CLI surface: ``repro/cli.py`` and any ``__main__.py``."""
    module = module_of(path)
    return bool(module) and module[-1] in ("cli", "__main__")
