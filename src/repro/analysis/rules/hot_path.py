"""RPR009 — hot-path: no per-tuple wrapper objects inside operator loops.

The columnar refactor's whole performance story is that the relational
hot path (``repro.relational.engine``, ``.columns``, ``.batch_ops``)
moves data as parallel column lists driven by C-speed ``map``/
``compress`` passes.  One ``SignedTuple(...)`` or ``BoundOperand(...)``
constructed inside a join or filter loop quietly reintroduces a Python
object allocation per candidate row — the exact overhead the refactor
removed, and invisible in tests because the results stay correct.

Banned inside loop bodies (``for``/``while`` and comprehensions) of the
hot-path modules: constructing ``SignedTuple``, ``BoundOperand``,
``RelationOperand``, ``Term``, or ``Query``.  Constructing them *outside*
a loop (planning, batch boundaries) is fine — plans are built once per
term, not once per row.  ``repro.relational.bag`` is deliberately out of
scope: ``SignedBag.signed_tuples()`` is the documented per-tuple
*interface*, not the operator hot path.
"""

from __future__ import annotations

import ast
from typing import Iterator, Tuple

from repro.analysis.engine import FileContext, Rule, register
from repro.analysis.findings import Finding
from repro.analysis.rules.common import call_name, module_of

#: Modules whose operator loops must stay wrapper-free.
_HOT_PATH_MODULES = (
    ("repro", "relational", "engine"),
    ("repro", "relational", "columns"),
    ("repro", "relational", "batch_ops"),
)

#: Per-tuple wrapper constructors (by class name, however imported).
_WRAPPERS = ("SignedTuple", "BoundOperand", "RelationOperand", "Term", "Query")

_LOOPS = (ast.For, ast.AsyncFor, ast.While)
_COMPREHENSIONS = (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)


def _loop_bodies(tree: ast.AST) -> Iterator[Tuple[str, ast.AST]]:
    """Every AST region that executes once per iteration.

    Yields ``(kind, node)`` where walking ``node`` covers exactly the
    per-iteration code: the statements of a ``for``/``while`` body, or a
    whole comprehension (its element and condition expressions all run
    per item).
    """
    for node in ast.walk(tree):
        if isinstance(node, _LOOPS):
            for statement in node.body + node.orelse:
                yield type(node).__name__.lower(), statement
        elif isinstance(node, _COMPREHENSIONS):
            yield "comprehension", node


@register
class HotPathRule(Rule):
    rule_id = "RPR009"
    title = "no per-tuple wrapper construction in relational hot-path loops"

    def applies_to(self, path: str) -> bool:
        return module_of(path) in _HOT_PATH_MODULES

    def check(self, context: FileContext) -> Iterator[Finding]:
        seen = set()
        for kind, region in _loop_bodies(context.tree):
            for node in ast.walk(region):
                if not isinstance(node, ast.Call):
                    continue
                name = call_name(node)
                if name is None:
                    continue
                leaf = name.split(".")[-1]
                if leaf not in _WRAPPERS:
                    continue
                key = (node.lineno, node.col_offset)
                if key in seen:
                    # Nested loops walk overlapping regions; report the
                    # allocation once.
                    continue
                seen.add(key)
                yield context.finding(
                    node,
                    self.rule_id,
                    f"{leaf}(...) constructed inside a {kind} body: the "
                    f"relational hot path must move data as column "
                    f"batches, not per-tuple wrapper objects — hoist the "
                    f"construction out of the loop or use the batch "
                    f"operators",
                )
