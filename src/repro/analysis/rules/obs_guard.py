"""RPR005 — obs-guard: observability access dominated by None checks.

The observability layer's contract (PR 3) is that ``obs=None`` costs one
``is None`` check per hook site — which is only true if *every* hook
site performs that check.  An unguarded ``obs.hook(...)`` works in every
instrumented test and then raises ``AttributeError`` on the first
uninstrumented production run; worse, it raises mid-atomic-event,
leaving the warehouse in a half-dispatched state the WAL has already
logged.  This rule proves the guard discipline statically.

An *obs expression* is a name or attribute matching ``obs`` / ``_obs``
/ ``self.obs`` / ``self._obs``.  Dereferencing one (accessing any
attribute of it) is legal only where a dominating check proves it is not
None:

- inside ``if OBS is not None:`` (including ``and`` chains);
- after an early exit: ``if OBS is None: return`` (or raise/continue);
- in the true arm of ``X if OBS is not None else Y``;
- after ``assert OBS is not None`` or ``OBS = <constructor call>``.

Aliases propagate (``obs = self._obs`` starts unguarded; guarding the
alias guards the alias).  The ``repro.obs`` package itself is exempt —
it is the *implementation*, not a call site.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Sequence, Set

from repro.analysis.engine import FileContext, Rule, register
from repro.analysis.findings import Finding
from repro.analysis.rules.common import dotted_name, in_repro_package, module_of

#: Leaf identifiers that mark an observability handle.
_OBS_NAMES = ("obs", "_obs")


def _obs_key(node: ast.AST) -> Optional[str]:
    """Canonical key for an obs expression, None for anything else."""
    if isinstance(node, ast.Name) and node.id in _OBS_NAMES:
        return node.id
    if isinstance(node, ast.Attribute) and node.attr in _OBS_NAMES:
        base = dotted_name(node.value)
        if base is not None:
            return f"{base}.{node.attr}"
    return None


def _compare_key(test: ast.AST, op_type: type) -> Optional[str]:
    """The obs key of ``KEY is [not] None`` comparisons, else None."""
    if not isinstance(test, ast.Compare) or len(test.ops) != 1:
        return None
    if not isinstance(test.ops[0], op_type):
        return None
    right = test.comparators[0]
    if not (isinstance(right, ast.Constant) and right.value is None):
        return None
    return _obs_key(test.left)


def _not_none_keys(test: ast.AST) -> Set[str]:
    """Keys proven non-None when ``test`` is true."""
    key = _compare_key(test, ast.IsNot)
    if key is not None:
        return {key}
    if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.And):
        keys: Set[str] = set()
        for value in test.values:
            keys |= _not_none_keys(value)
        return keys
    return set()


def _is_none_keys(test: ast.AST) -> Set[str]:
    """Keys proven non-None when ``test`` is FALSE (``KEY is None`` tests)."""
    key = _compare_key(test, ast.Is)
    if key is not None:
        return {key}
    if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.Or):
        keys: Set[str] = set()
        for value in test.values:
            keys |= _is_none_keys(value)
        return keys
    return set()


def _terminates(body: Sequence[ast.stmt]) -> bool:
    return bool(body) and isinstance(
        body[-1], (ast.Return, ast.Raise, ast.Continue, ast.Break)
    )


@register
class ObsGuardRule(Rule):
    rule_id = "RPR005"
    title = "obs hook sites are dominated by `is not None` checks"

    def applies_to(self, path: str) -> bool:
        module = module_of(path)
        if not in_repro_package(path):
            return False
        return not (len(module) >= 2 and module[1] == "obs")

    def check(self, context: FileContext) -> Iterator[Finding]:
        self._context = context
        self._findings: List[Finding] = []
        self._block(context.tree.body, set())
        yield from self._findings

    # ------------------------------------------------------------------ #
    # Statement-level dominance walk
    # ------------------------------------------------------------------ #

    def _block(self, body: Sequence[ast.stmt], guarded: Set[str]) -> None:
        guarded = set(guarded)
        for stmt in body:
            if isinstance(stmt, ast.If):
                self._expr(stmt.test, guarded)
                self._block(stmt.body, guarded | _not_none_keys(stmt.test))
                none_keys = _is_none_keys(stmt.test)
                self._block(stmt.orelse, guarded | none_keys)
                if none_keys and _terminates(stmt.body) and not stmt.orelse:
                    guarded |= none_keys
            elif isinstance(stmt, ast.Assert):
                self._expr(stmt.test, guarded)
                guarded |= _not_none_keys(stmt.test)
            elif isinstance(stmt, ast.Assign):
                self._expr(stmt.value, guarded)
                self._track_assign(stmt.targets, stmt.value, guarded)
            elif isinstance(stmt, ast.AnnAssign):
                if stmt.value is not None:
                    self._expr(stmt.value, guarded)
                    self._track_assign([stmt.target], stmt.value, guarded)
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # New scope: parameters and closures start unproven.
                self._block(stmt.body, set())
            elif isinstance(stmt, ast.ClassDef):
                self._block(stmt.body, set())
            elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                self._expr(stmt.iter, guarded)
                self._block(stmt.body, guarded)
                self._block(stmt.orelse, guarded)
            elif isinstance(stmt, ast.While):
                self._expr(stmt.test, guarded)
                self._block(stmt.body, guarded | _not_none_keys(stmt.test))
                self._block(stmt.orelse, guarded)
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                for item in stmt.items:
                    self._expr(item.context_expr, guarded)
                self._block(stmt.body, guarded)
            elif isinstance(stmt, ast.Try):
                self._block(stmt.body, guarded)
                for handler in stmt.handlers:
                    self._block(handler.body, guarded)
                self._block(stmt.orelse, guarded)
                self._block(stmt.finalbody, guarded)
            else:
                for child in ast.iter_child_nodes(stmt):
                    if isinstance(child, ast.expr):
                        self._expr(child, guarded)

    def _track_assign(
        self,
        targets: Sequence[ast.expr],
        value: ast.expr,
        guarded: Set[str],
    ) -> None:
        """Propagate proof through ``alias = OBS`` / ``obs = Ctor()``."""
        source_key = _obs_key(value)
        proven = (
            source_key in guarded
            if source_key is not None
            else isinstance(value, ast.Call)
        )
        for target in targets:
            key = _obs_key(target)
            if key is None:
                continue
            if proven:
                guarded.add(key)
            else:
                guarded.discard(key)

    # ------------------------------------------------------------------ #
    # Expression-level checks (BoolOp / IfExp short-circuit guards)
    # ------------------------------------------------------------------ #

    def _expr(self, node: ast.expr, guarded: Set[str]) -> None:
        if isinstance(node, ast.BoolOp):
            local = set(guarded)
            for value in node.values:
                self._expr(value, local)
                if isinstance(node.op, ast.And):
                    local |= _not_none_keys(value)
                else:
                    local |= _is_none_keys(value)
            return
        if isinstance(node, ast.IfExp):
            self._expr(node.test, guarded)
            self._expr(node.body, guarded | _not_none_keys(node.test))
            self._expr(node.orelse, guarded | _is_none_keys(node.test))
            return
        if isinstance(node, ast.Attribute):
            key = _obs_key(node.value)
            if key is not None and key not in guarded:
                self._findings.append(
                    self._context.finding(
                        node,
                        self.rule_id,
                        f"{key}.{node.attr} is not dominated by an "
                        f"`{key} is not None` check; every obs hook site "
                        f"must guard (obs=None is the uninstrumented "
                        f"fast path)",
                    )
                )
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self._expr(child, guarded)
