"""RPR003 — async-safety: no blocking calls inside actor coroutines.

The runtime's determinism depends on the event loop never stalling: a
``time.sleep`` inside an actor coroutine blocks *every* actor (the
paper's atomic-event interleavings are produced by cooperative yields,
not threads), and synchronous file or subprocess I/O does the same with
an OS-dependent duration — which turns a reproducible interleaving into
a machine-dependent one.  Anything slow belongs either outside the event
loop (the harness measures wall time around ``asyncio.run``) or behind
the transport's virtual clock.

Flagged inside any ``async def`` in ``src/repro/``: ``time.sleep``,
built-in ``open`` (and ``io.open``), every ``subprocess.*`` call, and
``os.system``.  The WAL's buffered appends are invoked through
synchronous helper *methods* and stay out of scope by design — the rule
polices the coroutine bodies the event loop actually runs.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import FileContext, Rule, register
from repro.analysis.findings import Finding
from repro.analysis.rules.common import call_name, in_repro_package, iter_calls

_BLOCKING = {
    "time.sleep": "blocks the entire event loop; await asyncio.sleep "
    "or route delays through the virtual-time transport",
    "open": "synchronous file I/O stalls every actor; do it outside "
    "the event loop or behind a synchronous helper method",
    "io.open": "synchronous file I/O stalls every actor; do it outside "
    "the event loop or behind a synchronous helper method",
    "os.system": "spawning processes from a coroutine blocks the loop "
    "for an OS-dependent duration",
}


@register
class AsyncSafetyRule(Rule):
    rule_id = "RPR003"
    title = "no blocking calls inside async def bodies"

    def applies_to(self, path: str) -> bool:
        return in_repro_package(path)

    def check(self, context: FileContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if isinstance(node, ast.AsyncFunctionDef):
                yield from self._check_coroutine(context, node)

    def _check_coroutine(
        self, context: FileContext, func: ast.AsyncFunctionDef
    ) -> Iterator[Finding]:
        for call in iter_calls(func):
            name = call_name(call)
            if name is None:
                continue
            reason = _BLOCKING.get(name)
            if reason is None and name.startswith("subprocess."):
                reason = (
                    "spawning processes from a coroutine blocks the loop "
                    "for an OS-dependent duration"
                )
            if reason is not None:
                yield context.finding(
                    call,
                    self.rule_id,
                    f"{name}() inside async {func.name}: {reason}",
                )
