"""RPR004 — dispatch-bypass: algorithms never touch channels directly.

PR 4's contract is that :func:`repro.kernel.dispatch.dispatch_event` is
the *one* place messages meet algorithms, and the kernels own all
channel I/O.  An algorithm that constructs a ``FifoChannel`` or calls
``.send()`` / ``.receive()`` itself bypasses the per-source FIFO
bookkeeping, the WAL's logged-before-dispatched ordering, and the trace
records every checker consumes — the resulting run *looks* fine and
replays differently, the exact silent-divergence failure mode the
conformance suite exists to rule out.

Scope: the algorithm-implementation layers ``repro.core``,
``repro.multisource``, and ``repro.warehouse``.  (The kernels, the
transports, and the messaging package itself are the channel owners and
stay out of scope.)

Two passes.  The *file pass* flags direct violations syntactically.
The *effect pass* consults the whole-program effect inference
(:mod:`repro.analysis.effects`): a call to a resolved project function
whose inferred effects include ``channel-send`` is the same bypass one
hop removed — an algorithm laundering its I/O through a helper was
invisible to the per-file rule.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator

from repro.analysis.engine import FileContext, Rule, register
from repro.analysis.findings import Finding
from repro.analysis.rules.common import call_name, iter_calls, module_of

if TYPE_CHECKING:
    from repro.analysis.effects import ProjectAnalysis

#: Packages holding algorithm implementations (no channel I/O allowed).
_ALGORITHM_PACKAGES = ("core", "multisource", "warehouse")

_CHANNEL_METHODS = ("send", "receive", "recv", "receive_nowait")


@register
class DispatchBypassRule(Rule):
    rule_id = "RPR004"
    title = "algorithm modules route all I/O through repro.kernel.dispatch"
    effect_rule = True

    def applies_to(self, path: str) -> bool:
        module = module_of(path)
        return len(module) >= 2 and module[1] in _ALGORITHM_PACKAGES

    def check_effects(self, analysis: "ProjectAnalysis") -> Iterator[Finding]:
        from repro.analysis.effects import CHANNEL

        for context in self.effect_contexts(analysis):
            for function in analysis.functions_in(context):
                for site in analysis.sites_of(function):
                    if site.target is None:
                        continue
                    if CHANNEL not in analysis.effects_of(site.target):
                        continue
                    chain = analysis.describe(site.target, CHANNEL)
                    yield context.finding(
                        site.node,
                        self.rule_id,
                        f"{function.display} calls {site.raw}(), which "
                        f"transitively performs channel I/O "
                        f"({chain}); algorithms return routed pairs and "
                        f"let repro.kernel.dispatch ship them",
                    )

    def check(self, context: FileContext) -> Iterator[Finding]:
        for call in iter_calls(context.tree):
            name = call_name(call)
            if name is None:
                continue
            leaf = name.split(".")[-1]
            if leaf == "FifoChannel":
                yield context.finding(
                    call,
                    self.rule_id,
                    "algorithm code must not construct channels; the "
                    "execution kernels own all FifoChannel pairs",
                )
            elif (
                isinstance(call.func, ast.Attribute)
                and call.func.attr in _CHANNEL_METHODS
            ):
                yield context.finding(
                    call,
                    self.rule_id,
                    f".{call.func.attr}() is channel I/O; algorithms return "
                    f"routed (destination, request) pairs and let "
                    f"repro.kernel.dispatch ship them",
                )
