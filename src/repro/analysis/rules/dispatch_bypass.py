"""RPR004 — dispatch-bypass: algorithms never touch channels directly.

PR 4's contract is that :func:`repro.kernel.dispatch.dispatch_event` is
the *one* place messages meet algorithms, and the kernels own all
channel I/O.  An algorithm that constructs a ``FifoChannel`` or calls
``.send()`` / ``.receive()`` itself bypasses the per-source FIFO
bookkeeping, the WAL's logged-before-dispatched ordering, and the trace
records every checker consumes — the resulting run *looks* fine and
replays differently, the exact silent-divergence failure mode the
conformance suite exists to rule out.

Scope: the algorithm-implementation layers ``repro.core``,
``repro.multisource``, and ``repro.warehouse``.  (The kernels, the
transports, and the messaging package itself are the channel owners and
stay out of scope.)
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import FileContext, Rule, register
from repro.analysis.findings import Finding
from repro.analysis.rules.common import call_name, iter_calls, module_of

#: Packages holding algorithm implementations (no channel I/O allowed).
_ALGORITHM_PACKAGES = ("core", "multisource", "warehouse")

_CHANNEL_METHODS = ("send", "receive", "recv", "receive_nowait")


@register
class DispatchBypassRule(Rule):
    rule_id = "RPR004"
    title = "algorithm modules route all I/O through repro.kernel.dispatch"

    def applies_to(self, path: str) -> bool:
        module = module_of(path)
        return len(module) >= 2 and module[1] in _ALGORITHM_PACKAGES

    def check(self, context: FileContext) -> Iterator[Finding]:
        for call in iter_calls(context.tree):
            name = call_name(call)
            if name is None:
                continue
            leaf = name.split(".")[-1]
            if leaf == "FifoChannel":
                yield context.finding(
                    call,
                    self.rule_id,
                    "algorithm code must not construct channels; the "
                    "execution kernels own all FifoChannel pairs",
                )
            elif (
                isinstance(call.func, ast.Attribute)
                and call.func.attr in _CHANNEL_METHODS
            ):
                yield context.finding(
                    call,
                    self.rule_id,
                    f".{call.func.attr}() is channel I/O; algorithms return "
                    f"routed (destination, request) pairs and let "
                    f"repro.kernel.dispatch ship them",
                )
