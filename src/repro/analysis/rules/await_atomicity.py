"""RPR011 — await-atomicity: no yield between mutation and WAL append.

The warehouse's durability story (PR 4, ``docs/DURABILITY.md``) treats
one dispatched event as *atomic*: :func:`repro.kernel.dispatch.
dispatch_event` advances the algorithm state machine, and the actor then
appends the matching WAL record.  Between those two points the actor
must not ``await``: a yield hands the scheduler to another coroutine,
which can observe (or worse, crash) a warehouse whose in-memory state
has advanced past its durable log.  Recovery then replays the WAL into
a state that never existed — the silent-divergence failure mode the
whole conformance suite exists to rule out.

Scope: async methods of classes whose name ends with ``Actor`` inside
``repro.runtime`` and ``repro.sharding`` (shard actors reuse
``WarehouseActor``, so both layers are covered).

Mechanics: using the whole-program effect inference, collect every call
whose effects include ``state-mutation`` (directly — ``dispatch_event``,
``on_update`` and friends — or transitively through a resolved helper),
every call whose effects include ``wal-append`` (and not
``state-mutation``: a call that does both is internally consistent),
and every ``await`` expression.  An ``await`` lexically between a
mutation and the *next* WAL append after it is the violation.

The ``logged-before-dispatched`` direction (RECV appended before
``dispatch_event`` runs) is already safe by construction: the append
precedes the mutation, so no window exists.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator, List, Tuple

from repro.analysis.engine import Rule, register
from repro.analysis.findings import Finding
from repro.analysis.rules.common import module_of, walk_body

if TYPE_CHECKING:
    from repro.analysis.effects import ProjectAnalysis

#: The actor layers: everything that owns a WAL handle.
_ACTOR_PACKAGES = ("runtime", "sharding")


def _pos(node: ast.AST) -> Tuple[int, int]:
    return (getattr(node, "lineno", 0), getattr(node, "col_offset", 0))


def _end_pos(node: ast.AST) -> Tuple[int, int]:
    return (
        getattr(node, "end_lineno", None) or getattr(node, "lineno", 0),
        getattr(node, "end_col_offset", None) or 0,
    )


def _awaits_in(node: ast.AST) -> List[ast.Await]:
    found = [
        child for child in walk_body(node) if isinstance(child, ast.Await)
    ]
    found.sort(key=_pos)
    return found


@register
class AwaitAtomicityRule(Rule):
    rule_id = "RPR011"
    title = "actors never await between a state mutation and its WAL append"
    effect_rule = True

    def applies_to(self, path: str) -> bool:
        module = module_of(path)
        return len(module) >= 2 and module[1] in _ACTOR_PACKAGES

    def check_effects(self, analysis: "ProjectAnalysis") -> Iterator[Finding]:
        from repro.analysis.effects import STATE, WAL

        for context in self.effect_contexts(analysis):
            for function in analysis.functions_in(context):
                if not function.is_async or function.class_name is None:
                    continue
                if not function.class_name.endswith("Actor"):
                    continue
                sites = analysis.sites_of(function)
                mutations = []
                appends = []
                for site in sites:
                    effects = analysis.call_effects(site)
                    if STATE in effects:
                        mutations.append(site)
                    elif WAL in effects:
                        appends.append(site)
                if not mutations or not appends:
                    continue
                awaits = _awaits_in(function.node)
                flagged = set()
                for mutation in mutations:
                    start = _end_pos(mutation.node)
                    following = [
                        append
                        for append in appends
                        if _pos(append.node) > start
                    ]
                    if not following:
                        continue
                    stop = min(_pos(append.node) for append in following)
                    append_line = min(
                        append.line
                        for append in following
                        if _pos(append.node) == stop
                    )
                    for awaited in awaits:
                        where = _pos(awaited)
                        if not (start < where < stop):
                            continue
                        if id(awaited) in flagged:
                            continue
                        flagged.add(id(awaited))
                        yield context.finding(
                            awaited,
                            self.rule_id,
                            f"{function.display} awaits between the state "
                            f"mutation at line {mutation.line} "
                            f"({mutation.raw}) and its WAL append at line "
                            f"{append_line}: a yield here lets other "
                            f"coroutines observe state the log does not "
                            f"hold yet — append the WAL record before "
                            f"awaiting",
                        )
