"""RPR008 — serving-readonly: the serving tier never writes warehouse state.

The serving cache (``repro.serving``) sits *beside* the maintenance
pipeline: it observes invalidation streams and reads ``view_state()``
snapshots, but the consistency proofs (Appendix B, and the sharded
variants) only hold if every view write flows through
:func:`repro.kernel.dispatch.dispatch_event`.  A serving module that
calls ``apply_delta`` / ``replace`` / ``key_delete``, rebinds a
catalog's algorithm table, or pushes messages onto a channel is a second
writer the proofs know nothing about — reads would diverge from the
event sequence in ways no staleness bound describes.

Scope: every module in the ``repro.serving`` package.
"""

from __future__ import annotations

import ast
from typing import Iterator, Tuple

from repro.analysis.engine import FileContext, Rule, register
from repro.analysis.findings import Finding
from repro.analysis.rules.common import dotted_name, iter_calls, module_of

#: Mutating MaterializedView / catalog entry points.
_WRITE_METHODS = ("apply_delta", "key_delete")

#: ``.replace`` is also a (very common) str method; only flag it when the
#: receiver's dotted path mentions warehouse-state vocabulary.
_STATE_HINTS = (
    "mv",
    "warehouse",
    "catalog",
    "algorithm",
    "algorithms",
    "view",
    "state",
    "contents",
    "source",
)

#: Channel egress: the serving tier consumes snapshots and invalidation
#: streams, it never originates protocol traffic.
_SEND_METHODS = ("send", "send_nowait", "put", "put_nowait")

#: Attribute rebinds that would swap warehouse structure out from under
#: the maintenance pipeline.
_REBIND_ATTRS = ("algorithms", "mv")


def _receiver_parts(node: ast.Attribute) -> Tuple[str, ...]:
    name = dotted_name(node.value)
    return tuple(name.split(".")) if name else ()


@register
class ServingReadOnlyRule(Rule):
    rule_id = "RPR008"
    title = "serving-layer modules are read-only over warehouse state"

    def applies_to(self, path: str) -> bool:
        module = module_of(path)
        return len(module) >= 2 and module[1] == "serving"

    def check(self, context: FileContext) -> Iterator[Finding]:
        for call in iter_calls(context.tree):
            if not isinstance(call.func, ast.Attribute):
                continue
            attr = call.func.attr
            if attr in _WRITE_METHODS:
                yield context.finding(
                    call,
                    self.rule_id,
                    f".{attr}() writes materialized-view state; the serving "
                    f"tier is read-only — all view writes go through "
                    f"repro.kernel.dispatch",
                )
            elif attr == "replace" and any(
                part.lstrip("_") in _STATE_HINTS
                for part in _receiver_parts(call.func)
            ):
                yield context.finding(
                    call,
                    self.rule_id,
                    ".replace() on warehouse state installs a whole new "
                    "view from outside the maintenance pipeline",
                )
            elif attr in _SEND_METHODS:
                yield context.finding(
                    call,
                    self.rule_id,
                    f".{attr}() is channel egress; the serving tier "
                    f"observes the warehouse, it never sends",
                )
        for node in ast.walk(context.tree):
            if not isinstance(node, (ast.Assign, ast.AugAssign)):
                continue
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                if (
                    isinstance(target, ast.Attribute)
                    and target.attr in _REBIND_ATTRS
                ):
                    yield context.finding(
                        node,
                        self.rule_id,
                        f"rebinding .{target.attr} swaps warehouse "
                        f"structure out from under the maintenance "
                        f"pipeline; the serving tier must not own it",
                    )
