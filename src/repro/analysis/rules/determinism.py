"""RPR002 — determinism: no wall clock, no unseeded randomness.

The whole reproduction rests on runs being replayable: virtual-time
transports, ``conformance.replay_concurrent``, and WAL recovery all
assume that the same seeds and inputs reproduce the identical event
sequence.  One ``time.time()`` in a scheduling decision or one
module-level ``random.random()`` breaks all three at once — and does so
silently, which is precisely the anomaly shape the paper warns about.

Banned inside ``src/repro/`` (outside the CLI surface):

- ``time.time`` / ``time.time_ns`` / ``time.monotonic`` /
  ``time.monotonic_ns`` (``time.perf_counter`` stays legal: the harness
  uses it for the wall-seconds *metric*, which never feeds scheduling);
- ``datetime.now`` / ``datetime.utcnow`` / ``datetime.today`` /
  ``date.today``;
- the module-level ``random.*`` functions (shared, unseeded state) —
  construct a seeded ``random.Random(seed)`` instead; ``SystemRandom``
  and ``os.urandom`` are banned for the same reason.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import FileContext, Rule, register
from repro.analysis.findings import Finding
from repro.analysis.rules.common import (
    call_name,
    in_repro_package,
    is_cli_module,
    iter_calls,
)

_BANNED_CALLS = {
    "time.time": "wall-clock time breaks virtual-time replay",
    "time.time_ns": "wall-clock time breaks virtual-time replay",
    "time.monotonic": "wall-clock time breaks virtual-time replay",
    "time.monotonic_ns": "wall-clock time breaks virtual-time replay",
    "os.urandom": "OS entropy is unseedable",
    "random.SystemRandom": "OS entropy is unseedable",
}

_DATETIME_ATTRS = ("now", "utcnow", "today")


@register
class DeterminismRule(Rule):
    rule_id = "RPR002"
    title = "no wall-clock or unseeded randomness inside src/repro"

    def applies_to(self, path: str) -> bool:
        return in_repro_package(path) and not is_cli_module(path)

    def check(self, context: FileContext) -> Iterator[Finding]:
        yield from self._check_imports(context)
        for call in iter_calls(context.tree):
            name = call_name(call)
            if name is None:
                continue
            reason = _BANNED_CALLS.get(name)
            if reason is not None:
                yield context.finding(
                    call,
                    self.rule_id,
                    f"{name}() is nondeterministic ({reason}); virtual-time "
                    f"runs, replay_concurrent, and WAL recovery all require "
                    f"seeded determinism",
                )
                continue
            parts = name.split(".")
            if (
                len(parts) >= 2
                and parts[-1] in _DATETIME_ATTRS
                and parts[-2] in ("datetime", "date")
            ):
                yield context.finding(
                    call,
                    self.rule_id,
                    f"{name}() reads the wall clock; deterministic code "
                    f"must take timestamps from the virtual clock or its "
                    f"caller",
                )
            elif parts[0] == "random" and len(parts) == 2 and parts[1] != "Random":
                yield context.finding(
                    call,
                    self.rule_id,
                    f"module-level {name}() uses the shared unseeded RNG; "
                    f"derive a private random.Random(seed) instead",
                )

    def _check_imports(self, context: FileContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.ImportFrom):
                continue
            if node.module == "random":
                for alias in node.names:
                    if alias.name != "Random":
                        yield context.finding(
                            node,
                            self.rule_id,
                            f"from random import {alias.name} pulls in the "
                            f"shared unseeded RNG; import random.Random and "
                            f"seed it",
                        )
            elif node.module == "os":
                for alias in node.names:
                    if alias.name == "urandom":
                        yield context.finding(
                            node,
                            self.rule_id,
                            "from os import urandom is unseedable OS "
                            "entropy; derive randomness from the run seed",
                        )
