"""RPR012 — exception-safety: handlers validate before mutating state.

A protocol handler (``on_update`` / ``on_answer`` / ``handle_*``) that
pops its pending-query bookkeeping *and then* raises on a validation
failure leaves the algorithm in a state no legal execution produces:
the UQS entry is gone but no routed return was built, so compensation
never fires and recovery replays into the same half-mutated shape.
Section 4's correctness argument assumes every event either completes
or leaves the state untouched — validate first, mutate after.

Scope: methods named ``on_update`` / ``on_update_batch`` / ``on_answer``
/ ``on_refresh`` or ``handle_*`` on classes in the algorithm layers
(``repro.core``, ``repro.multisource``, ``repro.warehouse``).

Mechanics: within one handler body (nested defs excluded), find the
first *mutation* — an assignment/``del`` targeting a ``self`` chain, a
container mutator (``.pop()``, ``.update()``, …) on a ``self`` chain,
or a ``self.method()`` call whose inferred effects include state or
self mutation (the interprocedural part: ``self._retire(...)`` counts
even though the pops live two files away).  Every ``raise`` statement
lexically after it is flagged — *except* raises inside ``except``
handlers, which are the legitimate translate-and-reraise idiom
(``try: pop / except KeyError: raise ProtocolError``): the pop that
failed did not mutate anything.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator, List, Optional, Tuple

from repro.analysis.engine import FileContext, Rule, register
from repro.analysis.findings import Finding
from repro.analysis.rules.common import dotted_name, module_of, walk_body

if TYPE_CHECKING:
    from repro.analysis.effects import ProjectAnalysis
    from repro.analysis.project import FunctionInfo

_ALGORITHM_PACKAGES = ("core", "multisource", "warehouse")

_HANDLER_NAMES = frozenset(
    {"on_update", "on_update_batch", "on_answer", "on_refresh"}
)

#: Container mutators that count as mutation when rooted at ``self``.
_MUTATOR_LEAVES = frozenset(
    {
        "append",
        "add",
        "clear",
        "discard",
        "extend",
        "insert",
        "pop",
        "popitem",
        "remove",
        "setdefault",
        "update",
    }
)


def _pos(node: ast.AST) -> Tuple[int, int]:
    return (getattr(node, "lineno", 0), getattr(node, "col_offset", 0))


def _self_rooted(node: ast.AST) -> bool:
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    return isinstance(node, ast.Name) and node.id == "self"


def _is_handler(name: str) -> bool:
    return name in _HANDLER_NAMES or name.startswith("handle_")


def _raises_outside_handlers(
    body: List[ast.stmt],
) -> List[ast.Raise]:
    """Every ``raise`` in execution position, skipping except-handler
    bodies and nested function/class definitions."""
    found: List[ast.Raise] = []

    def visit(statements: List[ast.stmt]) -> None:
        for stmt in statements:
            if isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            if isinstance(stmt, ast.Raise):
                found.append(stmt)
                continue
            if isinstance(stmt, ast.Try):
                visit(stmt.body)
                visit(stmt.orelse)
                visit(stmt.finalbody)
                continue  # handler bodies are the legal reraise idiom
            for attr in ("body", "orelse", "finalbody"):
                nested = getattr(stmt, attr, None)
                if isinstance(nested, list):
                    visit(nested)

    visit(body)
    found.sort(key=_pos)
    return found


def _raised_name(node: ast.Raise) -> str:
    exc = node.exc
    if isinstance(exc, ast.Call):
        name = dotted_name(exc.func)
    else:
        name = dotted_name(exc) if exc is not None else None
    return name or "an exception"


@register
class ExceptionSafetyRule(Rule):
    rule_id = "RPR012"
    title = "protocol handlers validate before mutating algorithm state"
    effect_rule = True

    def applies_to(self, path: str) -> bool:
        module = module_of(path)
        return len(module) >= 2 and module[1] in _ALGORITHM_PACKAGES

    def check_effects(self, analysis: "ProjectAnalysis") -> Iterator[Finding]:
        for context in self.effect_contexts(analysis):
            for function in analysis.functions_in(context):
                if function.class_name is None:
                    continue
                if not _is_handler(function.name):
                    continue
                yield from self._check_handler(analysis, context, function)

    def _check_handler(
        self,
        analysis: "ProjectAnalysis",
        context: FileContext,
        function: "FunctionInfo",
    ) -> Iterator[Finding]:
        from repro.analysis.effects import MUTATES_SELF, STATE

        mutation: Optional[Tuple[Tuple[int, int], int, str]] = None

        def note(node: ast.AST, what: str) -> None:
            nonlocal mutation
            candidate = (_pos(node), node.lineno, what)
            if mutation is None or candidate[0] < mutation[0]:
                mutation = candidate

        for node in walk_body(function.node):
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    if isinstance(
                        target, (ast.Attribute, ast.Subscript)
                    ) and _self_rooted(target):
                        note(node, "assigns self state")
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    if isinstance(
                        target, (ast.Attribute, ast.Subscript)
                    ) and _self_rooted(target):
                        note(node, "deletes self state")
            elif isinstance(node, ast.Call):
                callee = dotted_name(node.func)
                if callee is None or not _self_rooted(node.func):
                    continue
                leaf = callee.split(".")[-1]
                if "." in callee and leaf in _MUTATOR_LEAVES:
                    note(node, f"mutates via {callee}()")
        for site in analysis.sites_of(function):
            if not site.self_receiver or site.target is None:
                continue
            effects = analysis.call_effects(site)
            if STATE in effects or MUTATES_SELF in effects:
                note(site.node, f"mutates via {site.raw}()")

        if mutation is None:
            return
        mutated_at, mutation_line, what = mutation
        for raised in _raises_outside_handlers(function.node.body):
            if _pos(raised) <= mutated_at:
                continue
            yield context.finding(
                raised,
                self.rule_id,
                f"{function.display} raises {_raised_name(raised)} after "
                f"it {what} at line {mutation_line}: a handler that "
                f"mutates and then raises leaves UQS/pending state "
                f"half-applied for compensation and recovery — validate "
                f"before mutating",
            )
