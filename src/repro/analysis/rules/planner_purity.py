"""RPR010 — planner purity: shared-compensation planning is deterministic.

The shared-compensation engine's byte-identity guarantee (``docs/
MULTIVIEW.md``) rests on two static properties.  First, canonical term
signatures (:mod:`repro.relational.signature`) must be pure functions of
the query expression — the WAL replays planning after a crash and the
conformance suite replays action logs, and both must regroup members
into the *identical* shared queries.  Second, the
:class:`~repro.warehouse.planner.CompensationPlanner` is a bookkeeping
component behind the catalog, not an actor: it must never touch a
channel, a clock, or a random number, because its decisions are part of
the algorithm state the codec persists and recovery reconstructs.

Checked inside any class whose name (or base class) ends with
``Planner`` and in every function of a ``signature`` module:

- no wall-clock or randomness calls (``time.*``, ``datetime.now`` and
  friends, ``random.*`` — *including* seeded RNGs, whose output depends
  on call order — and ``os.urandom``);
- no builtin ``hash()``: Python salts string hashing per process, so the
  same query would group differently on every run (signatures are
  structural tuples compared by value instead);
- no channel I/O (``FifoChannel`` construction or ``.send()`` /
  ``.receive()`` calls): the planner returns routed pairs and the
  kernels ship them, exactly like every algorithm (cf. RPR004).

Unlike RPR007, mutating ``self`` is *allowed*: the planner legitimately
owns mutable route state (``plan`` installs routes, ``retire`` pops
them); what must be pure is the mapping from queries to groups, not the
bookkeeping around it.

The file pass above catches direct violations.  The *effect pass*
consults the whole-program inference: a planner method (or signature
function) calling a resolved helper whose inferred effects include a
clock, randomness, or channel I/O is the violation the per-file rule
provably could not see — the seeded transitive fixture and its golden
test pin exactly that diff.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator, Optional

from repro.analysis.engine import FileContext, Rule, register
from repro.analysis.findings import Finding
from repro.analysis.rules.common import (
    call_name,
    dotted_name,
    in_repro_package,
    module_of,
)

if TYPE_CHECKING:
    from repro.analysis.effects import ProjectAnalysis

_DATETIME_ATTRS = ("now", "utcnow", "today")

_CHANNEL_METHODS = ("send", "receive", "recv", "receive_nowait")


def _is_planner(node: ast.ClassDef) -> bool:
    if node.name.endswith("Planner"):
        return True
    for base in node.bases:
        name = dotted_name(base)
        if name is not None and name.split(".")[-1].endswith("Planner"):
            return True
    return False


def _impurity(name: str) -> Optional[str]:
    """Why a called name breaks deterministic planning, or None."""
    parts = name.split(".")
    if name == "hash":
        return (
            "builtin hash() is salted per process, so the same query "
            "groups differently on every run; signatures are structural "
            "tuples compared by value"
        )
    if parts[0] == "time":
        return "a clock makes grouping a function of when it runs, not of the query"
    if len(parts) >= 2 and parts[-1] in _DATETIME_ATTRS and parts[-2] in (
        "datetime",
        "date",
    ):
        return "a clock makes grouping a function of when it runs, not of the query"
    if parts[0] == "random" or name == "os.urandom":
        return (
            "randomness (even seeded — its output depends on call order) "
            "makes shared-query grouping diverge between a run and its replay"
        )
    return None


@register
class PlannerPurityRule(Rule):
    rule_id = "RPR010"
    title = "CompensationPlanner and signature code plan deterministically"
    effect_rule = True

    def applies_to(self, path: str) -> bool:
        return in_repro_package(path)

    def check_effects(self, analysis: "ProjectAnalysis") -> Iterator[Finding]:
        from repro.analysis.effects import CHANNEL, CLOCK, RANDOMNESS

        reasons = {
            CLOCK: "reaches a clock",
            RANDOMNESS: "reaches randomness (or process-salted hash())",
            CHANNEL: "reaches channel I/O",
        }
        for context in self.effect_contexts(analysis):
            module = module_of(context.path)
            signature_module = bool(module) and module[-1] == "signature"
            for function in analysis.functions_in(context):
                if not signature_module:
                    klass = analysis.project.class_of(function)
                    if klass is None or not _is_planner(klass.node):
                        continue
                for site in analysis.sites_of(function):
                    if site.target is None:
                        continue
                    hit = analysis.call_effects(site) & set(reasons)
                    for effect in sorted(hit):
                        chain = analysis.describe(site.target, effect)
                        yield context.finding(
                            site.node,
                            self.rule_id,
                            f"{function.display} calls {site.raw}(), which "
                            f"transitively {reasons[effect]} ({chain}); "
                            f"planning must be a pure function of the "
                            f"query so WAL replay regroups identically",
                        )
                        break

    def check(self, context: FileContext) -> Iterator[Finding]:
        module = module_of(context.path)
        if module and module[-1] == "signature":
            # Signature modules are checked whole: every function is part
            # of the canonical-form computation.
            tree: ast.AST = context.tree
            yield from self._check_body(context, tree, module[-1])
        for node in ast.walk(context.tree):
            if isinstance(node, ast.ClassDef) and _is_planner(node):
                yield from self._check_body(context, node, node.name)

    def _check_body(
        self, context: FileContext, scope: ast.AST, where: str
    ) -> Iterator[Finding]:
        for node in ast.walk(scope):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node)
            if name is not None:
                reason = _impurity(name)
                if reason is not None:
                    yield context.finding(
                        node,
                        self.rule_id,
                        f"{where} calls {name}(): {reason}",
                    )
                    continue
                if name.split(".")[-1] == "FifoChannel":
                    yield context.finding(
                        node,
                        self.rule_id,
                        f"{where} constructs a channel: the planner returns "
                        f"routed pairs and repro.kernel.dispatch ships them",
                    )
                    continue
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _CHANNEL_METHODS
            ):
                yield context.finding(
                    node,
                    self.rule_id,
                    f"{where} calls .{node.func.attr}(): channel I/O belongs "
                    f"to the kernels, never to planning code",
                )
